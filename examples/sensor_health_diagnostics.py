"""Fleet-scale sensor health: catching fouling before it bites.

§5 could verify the sensor surface by taking it out and looking; a
diffused fleet (§6) cannot.  This example runs a monitoring point
through months of accelerated service in hard water with a *bad*
surface configuration (high overtemperature + bare-oxide adhesion, the
fig. 8 regime), and shows the zero-flow drift monitor raising DEGRADED
and then FAULT from night-window data alone — before the daytime flow
readings silently drift out of spec.

Run:  python examples/sensor_health_diagnostics.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.conditioning.diagnostics import HealthStatus, ZeroFlowDriftMonitor
from repro.sensor.fouling import FoulingConfig, FoulingModel
from repro.station.scenarios import build_calibrated_monitor

WEEK_S = 7 * 86_400.0
MONTHS = 6
OVERTEMP_K = 30.0     # air-style setting: the fouling-prone regime
BULK_K = 288.15
SPEED_MPS = 0.3


def main() -> None:
    print("Calibrating the monitoring point ...")
    setup = build_calibrated_monitor(seed=31, fast=True,
                                     use_pulsed_drive=False)
    cal = setup.calibration
    monitor = ZeroFlowDriftMonitor(cal, ewma_alpha=0.3)

    # Accelerated service: a fouling-prone surface in the fig. 8 regime.
    fouling = FoulingModel(FoulingConfig(adhesion_factor=1.0))
    area = setup.monitor.sensor.wetted_area_m2()

    print(f"\nSimulating {MONTHS} months of service "
          f"(ΔT={OVERTEMP_K:.0f} K, bare-oxide surface, hard water):\n")
    rows = []
    rng = np.random.default_rng(0)
    from repro.physics.carbonate import TUSCAN_TAP_WATER
    for week in range(MONTHS * 4):
        fouling.step(WEEK_S, TUSCAN_TAP_WATER, BULK_K + OVERTEMP_K,
                     BULK_K, SPEED_MPS)
        # Nightly zero-flow check: the measured A coefficient through
        # the (fouled) surface, with realistic measurement scatter.
        g_zero = fouling.degrade_conductance(cal.law.coeff_a, area)
        for _ in range(20):
            monitor.update(g_zero * (1.0 + 0.005 * rng.normal()))
        if week % 4 == 3:
            rows.append((
                f"month {week // 4 + 1}",
                round(fouling.thickness_m * 1e6, 2),
                round(monitor.drift_fraction() * 100.0, 2),
                monitor.status().value,
            ))
    print(format_table(
        ["service time", "deposit [µm]", "zero-flow drift [%]",
         "diagnostic verdict"],
        rows, title="Night-window drift diagnostics (fig. 8 regime)"))

    final = monitor.status()
    print(f"\nFinal verdict: {final.value.upper()}")
    if final is not HealthStatus.HEALTHY:
        print("The fleet management system would now schedule this head "
              "for a purge cycle or replacement — without a site visit.")
    print("\n(The paper's deployed configuration — PECVD passivation, "
          "pulsed drive, ΔT=5 K — stays HEALTHY indefinitely; see bench E6.)")


if __name__ == "__main__":
    main()
