"""Bubble mitigation study: why the paper pulses the heater.

Drives the same die two ways at an air-style overtemperature (40 K) in
near-stagnant water — the worst case of fig. 7 — and prints the bubble
coverage timeline, then shows the paper's full fix (pulsed + reduced
5 K overtemperature).

Run:  python examples/bubble_mitigation_study.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.drive import ContinuousDrive, PulsedDrive
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

CONDITIONS = FlowConditions(speed_mps=0.05, pressure_pa=1.0e5)
DURATION_S = 60.0
CHECKPOINTS_S = [5.0, 15.0, 30.0, 60.0]


def run_case(label, overtemperature_k, pulsed):
    sensor = MAFSensor(MAFConfig(seed=5))
    platform = ISIFPlatform.for_anemometer(seed=5)
    drive = PulsedDrive(period_s=1.0, duty=0.30) if pulsed else ContinuousDrive()
    controller = CTAController(
        sensor, platform, CTAConfig(overtemperature_k=overtemperature_k),
        drive=drive)
    dt = platform.dt_s
    timeline = {}
    next_checkpoint = 0
    for i in range(int(DURATION_S / dt)):
        tel = controller.step(CONDITIONS)
        t = (i + 1) * dt
        if (next_checkpoint < len(CHECKPOINTS_S)
                and t >= CHECKPOINTS_S[next_checkpoint]):
            timeline[CHECKPOINTS_S[next_checkpoint]] = tel.readout.bubble_coverage_a
            next_checkpoint += 1
    print(f"  {label}: coverage "
          + ", ".join(f"{t:.0f}s={c * 100:.1f}%" for t, c in timeline.items()))
    return timeline


def main() -> None:
    print("Near-stagnant water (5 cm/s), 1 bar — fig. 7 conditions.\n")
    print("Air-style overtemperature (40 K):")
    cont = run_case("continuous DC", 40.0, pulsed=False)
    puls = run_case("pulsed 30 %  ", 40.0, pulsed=True)
    print("\nPaper's water configuration (5 K, pulsed):")
    paper = run_case("pulsed + reduced ΔT", 5.0, pulsed=True)

    print()
    rows = [
        ["continuous, ΔT=40 K", round(cont[60.0] * 100, 1)],
        ["pulsed 30 %, ΔT=40 K", round(puls[60.0] * 100, 1)],
        ["pulsed 30 %, ΔT=5 K (paper)", round(paper[60.0] * 100, 2)],
    ]
    print(format_table(["drive scheme", "bubble coverage after 60 s [%]"],
                       rows, title="Summary (cf. paper fig. 7)"))


if __name__ == "__main__":
    main()
