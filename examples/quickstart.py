"""Quickstart: build a calibrated water-flow monitoring point and read it.

Builds the MEMS hot-wire die, the ISIF platform and the constant-
temperature loop, runs the calibration campaign against the simulated
Promag 50 reference, then measures a steady 120 cm/s line.

Run:  python examples/quickstart.py
"""

from repro import FlowConditions, build_calibrated_monitor


def main() -> None:
    print("Building and calibrating the monitor (takes a few seconds)...")
    setup = build_calibrated_monitor(seed=1, fast=True,
                                     use_pulsed_drive=False)

    cal = setup.calibration
    print("\nFitted King's law (eq. 2 of the paper):")
    print(f"  G(v) = {cal.law.coeff_a * 1e3:.3f} mW/K "
          f"+ {cal.law.coeff_b * 1e3:.3f} mW/K (m/s)^-n * v^{cal.law.exponent:.2f}")
    print(f"  calibration residual: {cal.rms_residual_mps * 100:.2f} cm/s rms")

    report = setup.monitor.platform.self_test()
    print(f"\nISIF self-test: tone {report['tone_hz']:.1f} Hz, "
          f"amplitude error {report['amplitude_error'] * 100:.1f} %")

    print("\nMeasuring a steady line at 120 cm/s ...")
    conditions = FlowConditions(speed_mps=1.20)
    measurement = setup.monitor.measure(conditions, duration_s=15.0)
    print(f"  flow     : {measurement.speed_cmps:7.2f} cm/s")
    print(f"  direction: {'forward' if measurement.direction >= 0 else 'reverse'}")
    print(f"  bubbles  : {measurement.bubble_coverage * 100:.2f} % coverage")


if __name__ == "__main__":
    main()
