"""Water-station campaign: the fig. 11 scenario through the public API.

Reproduces the paper's evaluation setup at the (simulated) Vinci water
station: a staircase of line speeds over the 0-250 cm/s full scale,
with the MAF+ISIF monitor and the Promag 50 reference recording
synchronously, followed by a per-level summary table.

Run:  python examples/water_station_monitoring.py
"""

from repro import build_calibrated_monitor, staircase
from repro.analysis.report import format_table

LEVELS_CMPS = [0.0, 50.0, 100.0, 175.0, 250.0]
DWELL_S = 10.0


def main() -> None:
    print("Calibrating against the Promag 50 ...")
    setup = build_calibrated_monitor(seed=7, fast=True,
                                     use_pulsed_drive=False)

    print(f"Running the staircase {LEVELS_CMPS} cm/s "
          f"({DWELL_S:.0f} s per level) ...")
    profile = staircase(LEVELS_CMPS, dwell_s=DWELL_S)
    record = setup.rig.run(profile, record_every_n=100)

    t0 = record.time_s[0]
    rows = []
    for i, level in enumerate(LEVELS_CMPS):
        window = record.steady_window(t0 + i * DWELL_S + 0.6 * DWELL_S,
                                      t0 + (i + 1) * DWELL_S)
        stats = window.summary()
        ref = stats["reference_mps"]["mean"] * 100.0
        maf = stats["measured_mps"]["mean"] * 100.0
        rows.append((level, round(ref, 2), round(maf, 2),
                     round(maf - ref, 2)))
    print()
    print(format_table(
        ["setpoint [cm/s]", "Promag 50 [cm/s]", "MAF+ISIF [cm/s]",
         "error [cm/s]"],
        rows, title="Water speed evaluation (cf. paper fig. 11)"))

    worst = max(abs(r[3]) for r in rows)
    print(f"\nWorst per-level error: {worst:.2f} cm/s "
          f"({worst / 2.5:.2f} % of the 250 cm/s full scale)")


if __name__ == "__main__":
    main()
