"""A deployed, battery-powered monitoring node (§6 + §7 end to end).

Provisions a node at the "factory" (calibration burned into EEPROM with
CRC), deploys it on a distribution spur, runs wake-measure-transmit-
sleep cycles over a noisy telemetry uplink, and reports the battery
outlook — the paper's "4 alkaline AA ... autonomy of one year" story
with every subsystem in the loop.

Run:  python examples/deployed_field_node.py
"""

from repro.conditioning.eeprom_image import store_calibration
from repro.conditioning.field_node import FieldNode, FieldNodeConfig
from repro.isif.eeprom import Eeprom
from repro.isif.uart import Parity, UartLink
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.station.scenarios import build_calibrated_monitor


def main() -> None:
    print("Factory: calibrating the die and burning the EEPROM image ...")
    setup = build_calibrated_monitor(seed=20, fast=True,
                                     use_pulsed_drive=False)
    eeprom = Eeprom()
    store_calibration(eeprom, setup.calibration)

    print("Field: installing the node on the spur and booting ...")
    node = FieldNode(
        sensor=MAFSensor(MAFConfig(seed=21)),
        eeprom=eeprom,
        link=UartLink(parity=Parity.EVEN, bit_error_rate=0.002, seed=4),
        config=FieldNodeConfig(burst_s=1.0, period_s=900.0),
    )
    node.boot()
    print(f"  booted with calibration "
          f"A={setup.calibration.law.coeff_a * 1e3:.3f} mW/K, "
          f"B={setup.calibration.law.coeff_b * 1e3:.3f} mW/K")

    print("\nRunning 12 measurement cycles (one per 15 min of node time):")
    conditions = FlowConditions(speed_mps=0.9)
    for i in range(12):
        report = node.run_cycle(conditions)
        status = (f"{report.frame.flow_mps * 100:6.1f} cm/s (seq {report.frame.sequence})"
                  if report.frame else "frame lost to line noise")
        print(f"  cycle {i + 1:2d}: {status}")

    print(f"\nTelemetry drop rate : {node.telemetry.drop_rate * 100:.1f} %")
    print(f"Watchdog resets     : {node.watchdog.reset_count}")
    print(f"Battery remaining   : {node.battery_remaining_ah * 1e3:.1f} mAh "
          f"of {node.battery.usable_capacity_ah * 1e3:.0f} mAh")
    print(f"Projected autonomy  : {node.projected_autonomy_years():.1f} years "
          "(paper claims one year on 4x AA)")


if __name__ == "__main__":
    main()
