"""Design-space exploration on the ISIF platform (§3 methodology).

ISIF exists to let a designer sweep analog settings and digital IP
configurations against a live sensor before committing to silicon.
This example explores AFE gain x channel LPF corner for the MAF
anemometer, scoring each configuration by conductance noise (the
resolution proxy) and LEON load, and prints the preferred corner.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

CONDITIONS = FlowConditions(speed_mps=1.0)


def evaluate(gain_index, lpf_hz):
    """Close the loop in one configuration; return its scorecard."""
    sensor = MAFSensor(MAFConfig(seed=66, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(
        gain_index=gain_index, digital_lpf_cutoff_hz=lpf_hz, seed=66)
    controller = CTAController(sensor, platform, CTAConfig())
    controller.settle(CONDITIONS, 0.6)
    g = []
    for _ in range(1000):
        tel = controller.step(CONDITIONS)
        g.append(controller.conductance_from_supplies(
            tel.supply_a_v, tel.supply_b_v))
    g = np.array(g)
    return {
        "noise_pct": float(np.std(g) / np.mean(g)) * 100.0,
        "cpu_util_pct": platform.scheduler.utilization() * 100.0,
    }


def main() -> None:
    grid = {"gain_index": [0, 2, 4, 6], "lpf_hz": [10.0, 50.0, 200.0]}
    total = len(grid["gain_index"]) * len(grid["lpf_hz"])
    print(f"Exploring {total} configurations ...")
    results = sweep(grid, evaluate)

    rows = [(r.params["gain_index"], r.params["lpf_hz"],
             round(r.metrics["noise_pct"], 4),
             round(r.metrics["cpu_util_pct"], 2))
            for r in results]
    print()
    print(format_table(
        ["AFE gain index", "LPF corner [Hz]", "G noise [% rms]",
         "LEON util [%]"],
        rows, title="Design-space exploration (MAF anemometer channel)"))

    best = min(results, key=lambda r: r.metrics["noise_pct"])
    print(f"\nPreferred corner: gain index {best.params['gain_index']}, "
          f"LPF {best.params['lpf_hz']:.0f} Hz "
          f"({best.metrics['noise_pct']:.4f} % rms conductance noise)")
    print("In the platform flow, this configuration would now be frozen "
          "into the dedicated ASIC (paper §7).")


if __name__ == "__main__":
    main()
