"""Distribution-network leak detection (the paper's §6 vision).

"The presented measurement system ... can be widely diffused all over
the water distribution channels: allowing also any malfunction behavior
(e.g. water loss in tube) ... to be immediately localized and isolated."

Three calibrated monitoring points bound two pipe segments.  Midway
through the run a leak opens in the second segment; the CUSUM balance
detector localises it.  To keep the example quick, the meters report
once per second from steady sub-runs of the full simulation.

Run:  python examples/leak_detection_network.py
"""

import numpy as np

from repro import FlowConditions, LeakDetector, NetworkSegmentMonitor, build_calibrated_monitor

SNAPSHOTS = 120          # one per "second" of network time
LEAK_STARTS_AT = 60      # snapshot index when the pipe starts losing water
LINE_SPEED_MPS = 1.0
LEAK_LOSS_MPS = 0.06     # 6 cm/s of speed equivalent lost in segment B


def main() -> None:
    print("Calibrating three monitoring points (A, B, C) ...")
    meters = [build_calibrated_monitor(seed=s, fast=True,
                                       use_pulsed_drive=False).monitor
              for s in (11, 22, 33)]

    detector = LeakDetector()
    detector.add_segment(NetworkSegmentMonitor("segment A-B",
                                               threshold_mps_s=1.5))
    detector.add_segment(NetworkSegmentMonitor("segment B-C",
                                               threshold_mps_s=1.5))

    print("Monitoring the network (leak opens in segment B-C at "
          f"t = {LEAK_STARTS_AT} s) ...")
    # Settle all meters at the working point first.
    for meter, v in zip(meters, (LINE_SPEED_MPS,) * 3):
        meter.measure(FlowConditions(speed_mps=v), 10.0)

    detected = None
    for t in range(SNAPSHOTS):
        leaking = t >= LEAK_STARTS_AT
        v_a = LINE_SPEED_MPS
        v_b = LINE_SPEED_MPS
        v_c = LINE_SPEED_MPS - (LEAK_LOSS_MPS if leaking else 0.0)
        readings = []
        for meter, v in zip(meters, (v_a, v_b, v_c)):
            m = meter.measure(FlowConditions(speed_mps=v), 0.2)
            readings.append(m.speed_mps)
        events = detector.update({
            "segment A-B": (readings[0], readings[1]),
            "segment B-C": (readings[1], readings[2]),
        }, dt_s=1.0)
        if events and detected is None:
            detected = (t, events[0])
            break

    if detected is None:
        print("No leak detected (unexpected).")
        return
    t_detect, event = detected
    print(f"\nLEAK ALARM at t = {t_detect} s "
          f"({t_detect - LEAK_STARTS_AT} s after onset)")
    print(f"  localised to : {event.segment}")
    print(f"  estimated loss: {event.estimated_loss_mps * 100:.1f} cm/s "
          f"(injected: {LEAK_LOSS_MPS * 100:.1f} cm/s)")


if __name__ == "__main__":
    main()
