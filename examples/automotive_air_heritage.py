"""The die's automotive heritage: the same stack in its native air duct.

§2: "This MAF (Mass Air Flow) sensor was originally designed for
automotive but is also suitable for all applications of flow control of
gaseous and fluid media."  This example runs the identical die,
platform and firmware in air at the classic automotive overtemperature
(ΔT = 40 K — fine in a gas, catastrophic in water per fig. 7), performs
a mini calibration, and contrasts the two media side by side.

Run:  python examples/automotive_air_heritage.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.platform import ISIFPlatform
from repro.physics import air
from repro.physics.convection import WireGeometry, derive_kings_coefficients
from repro.physics.kings_law import fit_kings_law
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

AIR_SPEEDS_MPS = [1.0, 3.0, 6.0, 10.0, 15.0]  # duct velocities
AIR_T = 293.15


def main() -> None:
    print("Closing the CTA loop in AIR at ΔT = 40 K ...")
    sensor = MAFSensor(MAFConfig(seed=30, medium="air"))
    controller = CTAController(sensor, ISIFPlatform.for_anemometer(seed=30),
                               CTAConfig(overtemperature_k=40.0))

    points = []
    for v in AIR_SPEEDS_MPS:
        cond = FlowConditions(speed_mps=v, temperature_k=AIR_T,
                              pressure_pa=0.0)
        tel = controller.settle(cond, 1.5)
        g = controller.conductance_from_supplies(tel.supply_a_v,
                                                 tel.supply_b_v)
        points.append((v, g, tel.supply_a_v,
                       tel.readout.heater_a_power_w))
    law = fit_kings_law(np.array([p[0] for p in points]),
                        np.array([p[1] for p in points]), exponent=0.5)

    rows = [(v, round(u, 3), round(p * 1e3, 2), round(g * 1e6, 1))
            for v, g, u, p in points]
    print()
    print(format_table(
        ["air speed [m/s]", "supply [V]", "heater power [mW]", "G [µW/K]"],
        rows, title="MAF in its native medium (ΔT = 40 K, 20 °C air)"))
    print(f"fitted King's law (air): A = {law.coeff_a * 1e6:.1f} µW/K, "
          f"B = {law.coeff_b * 1e6:.1f} µW/K (m/s)^-0.5")

    # Contrast with water at the physics level.
    a_air, b_air, _ = derive_kings_coefficients(WireGeometry(), 313.15,
                                                medium=air)
    from repro.physics import water
    a_w, b_w, _ = derive_kings_coefficients(WireGeometry(), 290.65,
                                            medium=water)
    print()
    print(format_table(
        ["medium", "A [µW/K]", "B [µW/K (m/s)^-0.5]", "typical ΔT [K]",
         "range [m/s]"],
        [["air (automotive)", round(a_air * 1e6, 1), round(b_air * 1e6, 1),
          40, "0-20"],
         ["water (this paper)", round(a_w * 1e6, 1), round(b_w * 1e6, 1),
          5, "0-2.5"]],
        title="Why water operation needed rework (§2/§4)"))
    print("\nWater conducts ~2 orders of magnitude harder: same die, but "
          "reduced overtemperature,\npulsed drive, backside fill and "
          "water-proof packaging — the subject of the paper.")


if __name__ == "__main__":
    main()
