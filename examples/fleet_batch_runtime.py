"""Fleet-scale monitoring through the batched session runtime.

The §6 vision is a MAF monitoring point at both ends of every pipe of a
distribution network.  This example runs a 12-monitor fleet through
``repro.runtime.Session`` — the chunk-vectorized batch engine — then
re-runs one monitor through the scalar reference path to show the two
are bit-identical, and prints the per-monitor steady statistics the
fleet model consumes.

Run:  python examples/fleet_batch_runtime.py
"""

import time

import numpy as np

from repro import Session, hold
from repro.analysis.report import format_table

N_MONITORS = 12
SPEED_CMPS = 120.0
DURATION_S = 10.0


def main() -> None:
    print(f"Calibrating a {N_MONITORS}-monitor fleet ...")
    # Continuous drive for clean steady statistics (the pulsed drive
    # gates the estimator to a 30 % duty and is studied elsewhere).
    with Session(n_monitors=N_MONITORS, seed=2024,
                 use_pulsed_drive=False,
                 fast_calibration=True) as session:
        session.calibrate()

        profile = hold(SPEED_CMPS, DURATION_S)
        t0 = time.perf_counter()
        result = session.run(profile, engine="batch")
        batch_s = time.perf_counter() - t0
        print(f"Batched run: {N_MONITORS} monitors x "
              f"{int(DURATION_S * 1000)} samples in {batch_s:.2f} s")

        # The scalar path is the reference implementation; same seeds,
        # same traces, bit for bit.
        scalar = session.run(profile, engine="scalar")
        identical = all(
            np.array_equal(getattr(result, name), getattr(scalar, name))
            for name in result.STACKED_FIELDS)
        print(f"Batch vs scalar traces bit-identical: {identical}")

    rows = []
    for i in range(N_MONITORS):
        window = result.trace(i).steady_window(0.5 * DURATION_S, DURATION_S)
        stats = window.summary()["measured_mps"]
        rows.append((i, round(stats["mean"] * 100.0, 2),
                     round(stats["std"] * 100.0, 3)))
    print()
    print(format_table(
        ["monitor", "mean [cm/s]", "sigma [cm/s]"], rows,
        title=f"Fleet steady statistics at {SPEED_CMPS:.0f} cm/s"))


if __name__ == "__main__":
    main()
