"""Shared fixtures for the experiment benches (E1-E14).

One full-quality calibrated setup (the §4 campaign against the
Promag 50) is built once per session and shared by the measurement
benches.  Benches that need their own sensor state build fresh setups.

Every bench prints the paper-style table/series it regenerates, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section of the paper in one run.
"""

from __future__ import annotations

import pytest

from repro.station.scenarios import CalibratedSetup, build_calibrated_monitor


@pytest.fixture(scope="session")
def paper_setup() -> CalibratedSetup:
    """Full-quality calibrated monitor, continuous drive.

    Continuous drive is used for the *measurement* benches because at
    the paper's reduced overtemperature (5 K) no bubbles form either
    way (E5 demonstrates exactly that), and it keeps the 0.1 Hz output
    filter's effective settling at its nominal value.
    """
    return build_calibrated_monitor(seed=123, use_pulsed_drive=False)


@pytest.fixture(scope="session")
def pulsed_setup() -> CalibratedSetup:
    """Full-quality calibrated monitor operated with the paper's
    pulsed drive (1 s period, 30 % duty)."""
    return build_calibrated_monitor(seed=321, use_pulsed_drive=True)
