"""X2 — streaming-service throughput (raw engine vs multiplexed cohort).

Times the same 32-rig workload (16 clients x 2 monitors, 2 s horizon)
through the raw :class:`BatchEngine` and through a resident
:class:`FleetService` streaming every client bounded snapshot windows,
asserts every client's stitched stream is bit-identical to its rows of
the raw run (the parity contract is part of the bench), and appends the
numbers as the ``"service"`` stage of ``BENCH_throughput.json`` —
read-modify-write, so the X0/X1 figures persist alongside.

Attach and streaming are timed separately: attach cost is the same
calibration a standalone session pays (warm here — the fleet is sized
to the calibration LRU, 16 x 2 = 32 entries, so the raw baseline warms
every key), while the streaming phase carries the service's own per-tick
coalescing work (row slicing, per-window summaries, queue handling).
The bar: streaming keeps at least a third of raw engine throughput
while fanning 8 windows out to each of 16 clients.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import BatchEngine, RunResult, Session
from repro.service import FleetService
from repro.station.profiles import hold

pytestmark = [pytest.mark.slow, pytest.mark.service]

N_CLIENTS = 16
N_MONITORS = 2  # per client -> 32-rig cohort (== the calibration LRU)
DURATION_S = 2.0
TICK_STEPS = 250  # 8 windows per client
BASE_SEED = 9000


def _client_rigs(seed):
    with Session(n_monitors=N_MONITORS, seed=seed,
                 fast_calibration=True) as session:
        session.calibrate()
        return [handle.rig for handle in session.monitors]


def test_x02_service_streaming_throughput():
    """Raw engine vs streamed cohort at N=64; appends the service stage."""
    profile = hold(50.0, DURATION_S)
    seeds = [BASE_SEED + i for i in range(N_CLIENTS)]

    # Raw baseline: one engine over the exact rig set the service will
    # multiplex (first build pays calibration; the service reuses it).
    all_rigs = [rig for seed in seeds for rig in _client_rigs(seed)]
    t0 = time.perf_counter()
    raw = BatchEngine(all_rigs).run(profile)
    raw_s = time.perf_counter() - t0

    async def drive():
        async with FleetService(tick_steps=TICK_STEPS) as service:
            t0 = time.perf_counter()
            clients = [
                await service.attach(profile, n_monitors=N_MONITORS,
                                     seed=seed, fast_calibration=True)
                for seed in seeds
            ]
            attach_s = time.perf_counter() - t0

            async def consume(client):
                windows = [snap.window async for snap in client.snapshots()]
                return windows, await client.result()

            t0 = time.perf_counter()
            streamed = await asyncio.gather(*(consume(c) for c in clients))
            stream_s = time.perf_counter() - t0
            return clients, streamed, service.stats(), attach_s, stream_s

    clients, streamed, stats, attach_s, stream_s = asyncio.run(drive())

    # Parity is part of the bench: the cohort rows are the raw rows, and
    # a client's stitched stream is its awaited result.
    assert len({c.group_id for c in clients}) == 1
    for i, (windows, result) in enumerate(streamed):
        lo = i * N_MONITORS
        stitched = RunResult.concat_time(windows)
        for name in ("time_s",) + RunResult.STACKED_FIELDS:
            assert np.array_equal(np.asarray(getattr(stitched, name)),
                                  np.asarray(getattr(result, name))), name
        assert np.array_equal(result.measured_mps,
                              raw.measured_mps[lo:lo + N_MONITORS])

    samples = N_CLIENTS * N_MONITORS * int(round(DURATION_S * 1000.0))
    stage = {
        "clients": N_CLIENTS,
        "n_monitors": N_CLIENTS * N_MONITORS,
        "tick_steps": TICK_STEPS,
        "samples": samples,
        "snapshots": stats["snapshots"],
        "ticks": stats["ticks"],
        "attach_s": attach_s,
        "raw_samples_per_s": samples / raw_s,
        "service_samples_per_s": samples / stream_s,
        "coalescing_overhead": stream_s / raw_s,
        "bit_identical": True,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["service"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert stats["snapshots"] == N_CLIENTS * stats["ticks"]
    assert stats["completed"] == N_CLIENTS
    # Streaming must not cost more than ~3x the raw engine pass.
    assert stage["service_samples_per_s"] >= stage["raw_samples_per_s"] / 3.0, \
        stage
