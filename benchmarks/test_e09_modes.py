"""E9 — §2: constant-temperature mode is robust to fluid temperature.

"...the latter one [CT] maintains a fixed value of the sensing resistor
thus achieving more robustness respect to changes of the temperature of
the fluid itself."

Workload: each operating mode (CT / CC / CP) is "calibrated" at 15 °C
(its conductance observable recorded at a known flow), then the water
drifts to 25 °C at the same true flow; the apparent-flow error each
mode's stale calibration produces is the ambient sensitivity.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.conditioning.modes import (
    ConstantCurrentMode,
    ConstantPowerMode,
    ConstantTemperatureMode,
)
from repro.isif.platform import ISIFPlatform
from repro.physics.kings_law import fit_kings_law
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

SPEEDS_MPS = [0.3, 0.8, 1.5, 2.2]
TEST_SPEED_MPS = 1.0
COLD_K = 288.15
WARM_K = 298.15


def _mode_factories():
    return [
        ("constant temperature (paper)",
         lambda s, p: ConstantTemperatureMode(s, p)),
        ("constant current",
         lambda s, p: ConstantCurrentMode(s, p, current_a=0.025)),
        ("constant power",
         lambda s, p: ConstantPowerMode(s, p, power_w=0.030)),
    ]


def _apparent_flow_error_pct(factory):
    """Calibrate at 15 °C, measure at 25 °C, report % flow error."""
    sensor = MAFSensor(MAFConfig(seed=77, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(seed=77)
    mode = factory(sensor, platform)
    # Mini calibration campaign at the cold temperature.
    points = []
    for v in SPEEDS_MPS:
        m = mode.measure(FlowConditions(speed_mps=v, temperature_k=COLD_K),
                         settle_s=1.0)
        points.append((v, m.conductance_w_per_k))
    law = fit_kings_law(np.array([p[0] for p in points]),
                        np.array([p[1] for p in points]), exponent=0.5)
    # Warm measurement with the stale (cold) calibration.
    warm = mode.measure(FlowConditions(speed_mps=TEST_SPEED_MPS,
                                       temperature_k=WARM_K), settle_s=2.0)
    excess = max(warm.conductance_w_per_k - law.coeff_a, 0.0)
    v_apparent = (excess / law.coeff_b) ** 2.0
    return (v_apparent - TEST_SPEED_MPS) / TEST_SPEED_MPS * 100.0


def _ct_compensated_error_pct():
    """CT with the Rt-tracked King's-law temperature compensation."""
    from repro.conditioning.flow_estimator import EstimatorConfig, FlowEstimator
    from repro.station.scenarios import build_calibrated_monitor

    setup = build_calibrated_monitor(seed=77, fast=True,
                                     use_pulsed_drive=False)
    controller = setup.monitor.controller
    est = FlowEstimator(
        controller, setup.calibration,
        EstimatorConfig(output_bandwidth_hz=1.0, sample_rate_hz=1000.0,
                        temperature_compensation=True))
    warm = FlowConditions(speed_mps=TEST_SPEED_MPS, temperature_k=WARM_K)
    v = 0.0
    for _ in range(6000):
        v = est.update(controller.step(warm))
    return (v - TEST_SPEED_MPS) / TEST_SPEED_MPS * 100.0


def _run_all():
    rows = [(name, _apparent_flow_error_pct(factory))
            for name, factory in _mode_factories()]
    rows.append(("CT + temperature compensation (extension)",
                 _ct_compensated_error_pct()))
    return rows


def test_e09_modes(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ["operating mode", "flow error after +10 K fluid drift [%]"],
        [(n, round(e, 2)) for n, e in rows],
        title="E9 / §2 — ambient robustness of the operating modes "
              f"(true flow {TEST_SPEED_MPS * 100:.0f} cm/s, 15→25 °C)"))

    errors = {name: abs(err) for name, err in rows}
    ct = errors["constant temperature (paper)"]
    cc = errors["constant current"]
    cp = errors["constant power"]
    ct_comp = errors["CT + temperature compensation (extension)"]
    # CT keeps its electrical operating point; its residual error is the
    # water-property drift of the King's-law constants themselves (the
    # paper: "The constants A, B and the exponent n are ... ambient
    # specific"), ~20 % for a +10 K swing.  CC/CP additionally corrupt
    # the overtemperature estimate and collapse entirely.
    assert ct < 30.0
    assert cc > 3.0 * ct
    assert cp > 3.0 * ct
    # The Rt-tracked compensation (extension) cuts CT's residual further.
    assert ct_comp < 0.7 * ct
