"""E6 — Fig. 8 + §5: CaCO3 deposits and their mitigation.

Fig. 8 shows calcite scaling the heater region; §5 reports that the
final design showed "no deposit of calcium carbonate" after months in
the Tuscan line.  The deposit matters because its thermal resistance
drifts the King's-law gain, which a stale calibration turns into flow
error.

Workload: 6 months in hard water at 30 cm/s, quasi-static (the loop is
settled, then fouling integrates week by week), over a matrix of
{passivation: bare-oxide / PECVD-nitride} x {drive: continuous /
pulsed 30 %} x {overtemperature: 30 K / 5 K}.

Shape criteria: scaling needs the hot wall (only the high-ΔT cases
grow deposit), passivation and pulsing each cut it, and the paper's
combination (nitride + pulsed + 5 K) stays clean for 6 months.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.physics.carbonate import TUSCAN_TAP_WATER
from repro.sensor.fouling import FoulingConfig, FoulingModel

SPEED_MPS = 0.30
BULK_K = 288.15
MONTHS = 6
WEEK_S = 7 * 86_400.0

CASES = [
    ("bare oxide, continuous, ΔT=30 K", 1.00, 1.0, 30.0),
    ("PECVD nitride, continuous, ΔT=30 K", 0.10, 1.0, 30.0),
    ("PECVD nitride, pulsed 30 %, ΔT=30 K", 0.10, 0.3, 30.0),
    ("PECVD nitride, pulsed 30 %, ΔT=5 K (paper)", 0.10, 0.3, 5.0),
]


def _grow(adhesion, duty, overtemp_k):
    model = FoulingModel(FoulingConfig(adhesion_factor=adhesion))
    wall_k = BULK_K + duty * overtemp_k  # time-averaged wall temperature
    for _ in range(MONTHS * 4):
        model.step(WEEK_S, TUSCAN_TAP_WATER, wall_k, BULK_K, SPEED_MPS)
    return model


def _gain_drift_pct(model, clean_g=5.0e-3, area=1.9e-8):
    g_fouled = model.degrade_conductance(clean_g, area)
    return (1.0 - g_fouled / clean_g) * 100.0


def _run_all():
    rows = []
    for name, adhesion, duty, overtemp in CASES:
        model = _grow(adhesion, duty, overtemp)
        rows.append((name, model.thickness_m * 1e6,
                     _gain_drift_pct(model)))
    return rows


def test_e06_fouling(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", f"deposit after {MONTHS} months [µm]",
         "conductance (gain) drift [%]"],
        rows,
        title="E6 / fig. 8 — CaCO3 fouling matrix (hard Tuscan water, "
              "30 cm/s)"))

    thickness = {r[0]: r[1] for r in rows}
    drift = {r[0]: r[2] for r in rows}
    bare = thickness["bare oxide, continuous, ΔT=30 K"]
    nitride = thickness["PECVD nitride, continuous, ΔT=30 K"]
    pulsed = thickness["PECVD nitride, pulsed 30 %, ΔT=30 K"]
    paper = thickness["PECVD nitride, pulsed 30 %, ΔT=5 K (paper)"]
    # Fig. 8: an unprotected continuously hot surface scales visibly.
    assert bare > 1.0  # micrometres
    assert drift["bare oxide, continuous, ΔT=30 K"] > 2.0
    # Passivation cuts it hard; pulsing cuts it further.
    assert nitride < 0.3 * bare
    assert pulsed < nitride
    # §5: the deployed configuration shows "no deposit" after months.
    assert paper < 0.01  # < 10 nm: no deposit at any practical level
    assert drift["PECVD nitride, pulsed 30 %, ΔT=5 K (paper)"] < 0.05
