"""E1 — Fig. 11: water speed evaluation data.

Workload: the Vinci-line staircase over the paper's full scale
(0-250 cm/s), MAF+ISIF readings against the Promag 50 reference.
Reproduced artefact: the measured-vs-reference speed series; shape
criterion: the MAF tracks the reference across the whole range with
errors consistent with the §5 resolution/repeatability numbers.
"""

import numpy as np

from repro.analysis.metrics import FULL_SCALE_MPS, accuracy_rms
from repro.analysis.report import format_table
from repro.station.profiles import staircase

LEVELS_CMPS = [0.0, 25.0, 75.0, 125.0, 175.0, 250.0]
DWELL_S = 10.0


def _run(setup):
    profile = staircase(LEVELS_CMPS, dwell_s=DWELL_S)
    record = setup.rig.run(profile, record_every_n=100)
    t0 = record.time_s[0]
    rows = []
    for i, level in enumerate(LEVELS_CMPS):
        lo = t0 + i * DWELL_S + 0.6 * DWELL_S  # last 40 % of the dwell
        hi = t0 + (i + 1) * DWELL_S
        window = record.steady_window(lo, hi)
        rows.append((
            level,
            float(np.mean(window.reference_mps)) * 100.0,
            float(np.mean(window.measured_mps)) * 100.0,
            float(np.mean(window.measured_mps - window.reference_mps)) * 100.0,
        ))
    return record, rows


def test_e01_speed_evaluation(benchmark, paper_setup):
    record, rows = benchmark.pedantic(
        lambda: _run(paper_setup), rounds=1, iterations=1)
    print()
    print(format_table(
        ["setpoint [cm/s]", "Promag 50 [cm/s]", "MAF+ISIF [cm/s]",
         "error [cm/s]"],
        rows,
        title="E1 / fig. 11 — water speed evaluation (staircase 0-250 cm/s)"))

    errors_cmps = np.array([r[3] for r in rows])
    # Shape: tracking over the full range within a few % of full scale,
    # consistent with the paper's ±1 % repeatability + ≤±1.76 % resolution.
    assert np.max(np.abs(errors_cmps)) < 0.05 * FULL_SCALE_MPS * 100.0
    # Monotone response across the staircase.
    measured = [r[2] for r in rows]
    assert all(b > a for a, b in zip(measured, measured[1:]))
    # Whole-series RMS agreement (excluding line transients).
    rms = accuracy_rms(record.measured_mps[20:], record.reference_mps[20:])
    assert rms < 0.15
