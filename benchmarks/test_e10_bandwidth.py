"""E10 — §4: "further filtering (with an IIR filter down to the
bandwidth of 0.1 Hz) in order to improve the sensitivity".

Workload: the output-filter corner is swept; at each setting the bench
measures (a) the ±3σ resolution at a steady 125 cm/s and (b) the 5 %
response time of the filter.  The paper's 0.1 Hz choice sits at the
slow-but-fine end of this trade.

Shape criteria: resolution improves monotonically (≈ sqrt(BW)) as the
corner is lowered, while the response time grows as 1/BW.
"""

import numpy as np

from repro.analysis.metrics import resolution_3sigma
from repro.analysis.report import format_table
from repro.conditioning.flow_estimator import EstimatorConfig, FlowEstimator
from repro.sensor.maf import FlowConditions

BANDWIDTHS_HZ = [10.0, 2.0, 0.5, 0.1]
SPEED_CMPS = 125.0


def _resolution_at(setup, bandwidth_hz):
    controller = setup.monitor.controller
    estimator = FlowEstimator(
        controller, setup.calibration,
        EstimatorConfig(output_bandwidth_hz=bandwidth_hz,
                        sample_rate_hz=setup.monitor.config.loop_rate_hz))
    line = setup.rig.line
    v = SPEED_CMPS * 1e-2
    line.jump_to(v)
    dt = setup.monitor.platform.dt_s
    settle_s = min(max(6.0 / bandwidth_hz, 4.0), 30.0)
    window_s = min(max(10.0 / bandwidth_hz, 8.0), 40.0)
    for _ in range(int(settle_s / dt)):
        state = line.step(dt, v)
        estimator.update(controller.step(line.conditions(state)))
    readings = []
    for _ in range(int(window_s / dt)):
        state = line.step(dt, v)
        readings.append(estimator.update(controller.step(line.conditions(state))))
    res = resolution_3sigma(np.array(readings)) * 100.0
    return res, estimator.response_time_s(0.05)


def _run(setup):
    return [(bw, *_resolution_at(setup, bw)) for bw in BANDWIDTHS_HZ]


def test_e10_bandwidth(benchmark, paper_setup):
    rows = benchmark.pedantic(lambda: _run(paper_setup),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["output BW [Hz]", "resolution ±3σ [cm/s]", "response (5 %) [s]"],
        [(bw, round(r, 3), round(t, 2)) for bw, r, t in rows],
        title="E10 / §4 — sensitivity vs bandwidth trade "
              f"(steady {SPEED_CMPS:.0f} cm/s)"))

    res = np.array([r[1] for r in rows])
    times = np.array([r[2] for r in rows])
    # Monotone: narrower filter -> better resolution, slower response.
    assert np.all(np.diff(res) < 0.0)
    assert np.all(np.diff(times) > 0.0)
    # Roughly sqrt(BW): two decades of BW buy about one decade of sigma.
    gain = res[0] / res[-1]
    assert 3.0 < gain < 40.0
    # The paper's 0.1 Hz point: few-cm/s class resolution, ~5 s response.
    assert res[-1] < 4.0
    assert times[-1] == np.clip(times[-1], 3.0, 8.0)
