"""E2 — §5 resolution: ±0.75 … ±4 cm/s (±0.35 % … ±1.76 % FS).

Workload: steady flows across the range; the ±3σ band of the filtered
output is the resolution.  The paper's output filter is 0.1 Hz; its
settling (~12 s to 3 σ) makes direct noise measurement at every
setpoint expensive, so the sweep measures at 0.5 Hz and scales by
sqrt(BW) (white-noise-through-one-pole), and one mid-range point is
also measured directly at 0.1 Hz to validate the scaling.

Shape criteria: resolution is in the paper's sub-cm/s … few-cm/s
window, *worst at high flow* (King-law compression), and the sqrt(BW)
scaling holds.
"""

import numpy as np

from repro.analysis.metrics import FULL_SCALE_MPS, resolution_3sigma
from repro.analysis.report import format_table
from repro.conditioning.flow_estimator import EstimatorConfig, FlowEstimator
from repro.sensor.maf import FlowConditions

SETPOINTS_CMPS = [5.0, 25.0, 75.0, 125.0, 200.0, 250.0]
MEASURE_BW_HZ = 0.5
PAPER_BW_HZ = 0.1


def _noise_band(setup, speed_cmps, bandwidth_hz, settle_s, window_s):
    """±3σ of the estimator output at a steady setpoint [cm/s]."""
    controller = setup.monitor.controller
    estimator = FlowEstimator(
        controller, setup.calibration,
        EstimatorConfig(output_bandwidth_hz=bandwidth_hz,
                        sample_rate_hz=setup.monitor.config.loop_rate_hz))
    line = setup.rig.line
    v = speed_cmps * 1e-2
    line.jump_to(v)
    dt = setup.monitor.platform.dt_s
    for _ in range(int(settle_s / dt)):
        state = line.step(dt, v)
        estimator.update(controller.step(line.conditions(state)))
    readings = []
    for _ in range(int(window_s / dt)):
        state = line.step(dt, v)
        readings.append(estimator.update(controller.step(line.conditions(state))))
    return resolution_3sigma(np.array(readings)) * 100.0


def _run(setup):
    rows = []
    for v_cmps in SETPOINTS_CMPS:
        band = _noise_band(setup, v_cmps, MEASURE_BW_HZ,
                           settle_s=6.0, window_s=12.0)
        scaled = band * np.sqrt(PAPER_BW_HZ / MEASURE_BW_HZ)
        rows.append((v_cmps, band, scaled,
                     scaled / (FULL_SCALE_MPS * 100.0) * 100.0))
    direct_01 = _noise_band(setup, 125.0, PAPER_BW_HZ,
                            settle_s=25.0, window_s=35.0)
    return rows, direct_01


def test_e02_resolution(benchmark, paper_setup):
    rows, direct_01 = benchmark.pedantic(
        lambda: _run(paper_setup), rounds=1, iterations=1)
    print()
    print(format_table(
        ["speed [cm/s]", f"±3σ @ {MEASURE_BW_HZ} Hz [cm/s]",
         f"±3σ @ {PAPER_BW_HZ} Hz scaled [cm/s]", "% of FS"],
        rows,
        title="E2 / §5 — resolution vs flow speed "
              "(paper: ±0.75 … ±4 cm/s = ±0.35 … ±1.76 % FS)"))
    scaled_at_125 = [r[2] for r in rows if r[0] == 125.0][0]
    print(f"direct 0.1 Hz measurement @125 cm/s: ±{direct_01:.2f} cm/s "
          f"(scaled prediction ±{scaled_at_125:.2f} cm/s)")

    # Analytic cross-check: infer sigma_G from the 125 cm/s point, then
    # predict every other band through the King's-law sensitivity
    # dv/dG ∝ v^(1-n) (repro.analysis.uncertainty's delta method).
    law = paper_setup.calibration.law
    v_anchor = 1.25
    band_anchor = [r[1] for r in rows if r[0] == 125.0][0] / 100.0  # m/s, ±3σ
    dv_dg = lambda v: 1.0 / (law.exponent * law.coeff_b
                             * max(v, 0.02) ** (law.exponent - 1.0))
    sigma_g = band_anchor / 3.0 / dv_dg(v_anchor)
    print("\nanalytic prediction from the King's-law sensitivity "
          f"(sigma_G = {sigma_g * 1e6:.2f} µW/K inferred at 125 cm/s):")
    for v_cmps, band, *_ in rows:
        predicted = 3.0 * dv_dg(v_cmps / 100.0) * sigma_g * 100.0
        print(f"  {v_cmps:6.1f} cm/s: measured ±{band:.2f}, "
              f"predicted ±{predicted:.2f} cm/s")
        if v_cmps >= 25.0:  # anchor model valid once forced convection rules
            assert predicted == np.clip(predicted, band / 2.0, band * 2.0)

    scaled = np.array([r[2] for r in rows])
    pct_fs = np.array([r[3] for r in rows])
    # Paper window (generous factor 2 on both ends for a simulated rig).
    assert np.min(scaled) > 0.1
    assert np.max(scaled) < 8.0
    assert np.max(pct_fs) < 3.5
    # Worst resolution at the top of the range (King-law compression).
    assert scaled[-1] > 1.5 * np.min(scaled[:3])
    # sqrt(BW) scaling validated within a factor ~2.
    assert direct_01 == np.clip(direct_01, scaled_at_125 / 2.5,
                                scaled_at_125 * 2.5)
