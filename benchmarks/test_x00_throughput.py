"""X0 — simulator throughput (library performance, not a paper artefact).

pytest-benchmark timing of the hot paths a user actually pays for:

* one closed-loop tick (sensor + AFE + ADC + PI) with the behavioural
  ADC — the default system-simulation cost;
* the same tick with the bit-true ΣΔ + CIC chain (OSR 64) — the price
  of structural ADC fidelity (the E13 trade);
* one raw sensor step (physics only).

These keep performance regressions visible: the E1-E12 benches assume
thousands of ticks per wall-second.
"""

import pytest

from repro.conditioning.cta import CTAController
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

COND = FlowConditions(speed_mps=1.0)


def make_loop(bit_true):
    sensor = MAFSensor(MAFConfig(seed=99))
    platform = ISIFPlatform.for_anemometer(seed=99, bit_true_adc=bit_true)
    controller = CTAController(sensor, platform)
    controller.settle(COND, 0.1)
    return controller


def test_x00_loop_tick_behavioural(benchmark):
    controller = make_loop(bit_true=False)
    benchmark(lambda: controller.step(COND))
    # > 1000 ticks/s keeps the system benches tractable.
    assert benchmark.stats["mean"] < 1e-3


def test_x00_loop_tick_bit_true(benchmark):
    controller = make_loop(bit_true=True)
    benchmark(lambda: controller.step(COND))
    # The OSR-64 modulator costs real time but must stay usable.
    assert benchmark.stats["mean"] < 20e-3


def test_x00_sensor_step_physics_only(benchmark):
    sensor = MAFSensor(MAFConfig(seed=98))
    benchmark(lambda: sensor.step(1e-3, 2.0, 2.0, COND))
    assert benchmark.stats["mean"] < 2e-4
