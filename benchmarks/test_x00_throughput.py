"""X0 — simulator throughput (library performance, not a paper artefact).

pytest-benchmark timing of the hot paths a user actually pays for:

* one closed-loop tick (sensor + AFE + ADC + PI) with the behavioural
  ADC — the default system-simulation cost;
* the same tick with the bit-true ΣΔ + CIC chain (OSR 64) — the price
  of structural ADC fidelity (the E13 trade);
* one raw sensor step (physics only);
* the fleet-scale comparison: scalar reference loop vs the vectorized
  batch engine at N=16, with the samples/sec figures persisted to
  ``BENCH_throughput.json`` at the repo root;
* the engine-only kernel figures at N=16 in both numerics modes
  (``"kernels"`` stage of the same file; see ``docs/performance.md``).

These keep performance regressions visible: the E1-E12 benches assume
thousands of ticks per wall-second, and the fleet benches assume the
batch engine's ≥5x advantage.
"""

import json
import time
from pathlib import Path

import pytest

from repro.conditioning.cta import CTAController
from repro.isif.platform import ISIFPlatform
from repro.runtime import Session
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.station.profiles import hold

COND = FlowConditions(speed_mps=1.0)


def make_loop(bit_true):
    sensor = MAFSensor(MAFConfig(seed=99))
    platform = ISIFPlatform.for_anemometer(seed=99, bit_true_adc=bit_true)
    controller = CTAController(sensor, platform)
    controller.settle(COND, 0.1)
    return controller


def test_x00_loop_tick_behavioural(benchmark):
    controller = make_loop(bit_true=False)
    benchmark(lambda: controller.step(COND))
    # > 1000 ticks/s keeps the system benches tractable.
    assert benchmark.stats["mean"] < 1e-3


def test_x00_loop_tick_bit_true(benchmark):
    controller = make_loop(bit_true=True)
    benchmark(lambda: controller.step(COND))
    # The OSR-64 modulator costs real time but must stay usable.
    assert benchmark.stats["mean"] < 20e-3


def test_x00_sensor_step_physics_only(benchmark):
    sensor = MAFSensor(MAFConfig(seed=98))
    benchmark(lambda: sensor.step(1e-3, 2.0, 2.0, COND))
    assert benchmark.stats["mean"] < 2e-4


def test_x00_batch_engine_speedup():
    """Scalar vs batched fleet run at N=16; persists BENCH_throughput.json.

    The batch engine's reason to exist is fleet-scale throughput: the
    acceptance bar is ≥5x over the scalar reference path at N=16.  The
    timed runs execute with observability *disabled* (the default), so
    the headline numbers measure the uninstrumented hot path; a final
    instrumented run then records the per-stage breakdown under
    ``"stages"``.
    """
    from repro.observability import observed

    n_monitors, duration_s = 16, 5.0
    profile = hold(50.0, duration_s)
    with Session(n_monitors=n_monitors, seed=7,
                 fast_calibration=True) as session:
        session.calibrate()
        t0 = time.perf_counter()
        session.run(profile, engine="batch")
        batch_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        session.run(profile, engine="scalar")
        scalar_s = time.perf_counter() - t0
        # Per-stage breakdown from one instrumented batch run.
        with observed() as registry:
            session.run(profile, engine="batch")
            snapshot = registry.snapshot()
    samples = n_monitors * int(round(duration_s * 1000.0))
    stage_names = (
        "span.session.run.s",
        "runtime.batch.chunk_s",
        "runtime.batch.samples",
        "runtime.batch.chunks",
        "runtime.batch.samples_per_s",
        "isif.scheduler.bulk_ticks",
        "station.calibration_cache.hits",
        "station.calibration_cache.misses",
    )
    payload = {
        "n_monitors": n_monitors,
        "samples": samples,
        "scalar_samples_per_s": samples / scalar_s,
        "batched_samples_per_s": samples / batch_s,
        "speedup": scalar_s / batch_s,
        "stages": {name: snapshot[name]
                   for name in stage_names if name in snapshot},
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    merged = json.loads(out.read_text()) if out.exists() else {}
    merged.update(payload)
    out.write_text(json.dumps(merged, indent=2) + "\n")
    assert payload["speedup"] >= 5.0, payload
    assert payload["stages"], "instrumented run produced no stage metrics"


#: The pre-kernel batched figure the kernel layer is measured against
#: (N=16, dt=1 ms); the acceptance bar is >=2x this in exact mode.
_PRE_KERNEL_SAMPLES_PER_S = 66382.78


def test_x00_kernel_throughput():
    """Engine-only samples/s at N=16, both numerics modes.

    Unlike :func:`test_x00_batch_engine_speedup`, the timing excludes
    the session layer (materialization, result assembly dispatch stays,
    but no calibration or handle bookkeeping): the clock wraps only
    ``BatchEngine.run``.  Long holds amortize the per-run plan/extract
    overhead, the collector stays off during the timed region, and the
    best of ``repeats`` guards against scheduler noise.  The figures
    land in the ``"kernels"`` stage of ``BENCH_throughput.json``
    (read-modify-write, so the X0/X1 stages persist alongside).
    """
    import gc

    from repro.runtime import BatchEngine

    repeats = 6
    n_monitors, duration_s = 16, 10.0
    profile = hold(50.0, duration_s)
    samples = n_monitors * int(round(duration_s * 1000.0))
    with Session(n_monitors=n_monitors, seed=7,
                 fast_calibration=True) as session:
        session.calibrate()
        rates = {}
        for mode in ("exact", "fast"):
            # Fresh rigs per mode: the engine's state write-back leaves
            # drive phases mid-cycle, which a later *constructor* on the
            # same rigs rejects; repeated runs on one engine are fine.
            rigs = [handle.rig for handle in session._materialize()]
            engine = BatchEngine(rigs, numerics=mode)
            best_s = float("inf")
            gc.disable()
            try:
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    engine.run(profile)
                    best_s = min(best_s, time.perf_counter() - t0)
            finally:
                gc.enable()
            rates[mode] = samples / best_s
    stage = {
        "n_monitors": n_monitors,
        "samples": samples,
        "repeats": repeats,
        "exact_samples_per_s": rates["exact"],
        "fast_samples_per_s": rates["fast"],
        "pre_kernel_samples_per_s": _PRE_KERNEL_SAMPLES_PER_S,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["kernels"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")
    # The acceptance headline is >=2x the pre-kernel figure (the
    # committed stage shows it); the in-test floor sits at 1.6x so a
    # loaded host flags real regressions without flaking on noise.
    assert rates["exact"] >= 1.6 * _PRE_KERNEL_SAMPLES_PER_S, stage
    assert rates["fast"] >= rates["exact"] * 0.9, stage


def test_x00_observability_overhead():
    """Engine throughput with observability off vs fully on.

    The disabled path is the headline contract (<2% tax: one attribute
    check per instrumented call site), measured implicitly by every
    other stage running with the defaults disabled.  This stage records
    the price of opting *in* — registry + tracer + events + per-stage
    profiler all enabled — as the ``"observability_overhead"`` entry of
    ``BENCH_throughput.json``.  The in-test floor is deliberately loose
    (shared runners): it exists to flag an accidental per-sample
    instrument in the hot loop, not to pin a speed bar.
    """
    import gc

    from repro.observability import observed
    from repro.runtime import BatchEngine

    repeats = 4
    n_monitors, duration_s = 16, 5.0
    profile = hold(50.0, duration_s)
    samples = n_monitors * int(round(duration_s * 1000.0))
    with Session(n_monitors=n_monitors, seed=7,
                 fast_calibration=True) as session:
        session.calibrate()
        rates = {}
        for label, profile_flag in (("disabled", None), ("enabled", True)):
            rigs = [handle.rig for handle in session._materialize()]
            engine = BatchEngine(rigs)
            best_s = float("inf")
            gc.disable()
            try:
                for _ in range(repeats):
                    if profile_flag:
                        with observed(profile=True):
                            t0 = time.perf_counter()
                            engine.run(profile)
                            best_s = min(best_s,
                                         time.perf_counter() - t0)
                    else:
                        t0 = time.perf_counter()
                        engine.run(profile)
                        best_s = min(best_s, time.perf_counter() - t0)
            finally:
                gc.enable()
            rates[label] = samples / best_s
    stage = {
        "n_monitors": n_monitors,
        "samples": samples,
        "repeats": repeats,
        "disabled_samples_per_s": rates["disabled"],
        "enabled_samples_per_s": rates["enabled"],
        "enabled_overhead_fraction":
            1.0 - rates["enabled"] / rates["disabled"],
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["observability_overhead"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert rates["enabled"] >= 0.5 * rates["disabled"], stage
