"""X1 — sharded-runtime throughput (serial batch vs process shards).

Times the same N=64 fleet through the serial :class:`BatchEngine` and
the process-parallel :class:`ShardedEngine` at 4 workers, asserts the
two results are bit-identical (the parity contract is part of the
bench), and appends the numbers as the ``"parallel"`` stage of
``BENCH_throughput.json`` — read-modify-write, so the X0 serial
figures persist alongside.

The ≥1.8x speedup bar only applies where it is physically attainable:
on hosts with fewer than 4 CPUs (CI smoke runners, this container)
sharding overhead without spare cores cannot beat the serial engine, so
the stage is recorded as ``{"skipped": true}`` — no misleading speedup
figure — and the test skips.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import (BatchEngine, RunResult, ShardedEngine,
                           spawn_monitor_seeds)
from repro.station.profiles import hold
from repro.station.scenarios import build_calibrated_monitor

pytestmark = [pytest.mark.slow, pytest.mark.parallel]

N_MONITORS = 64
WORKERS = 4
DURATION_S = 2.0
SEED = 4242


def _fleet():
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(SEED, N_MONITORS)]


def _machine():
    """The host fingerprint every stage records, skipped ones included.

    A throughput figure (or the absence of one) is meaningless without
    the machine it came from; downstream comparisons key on these.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def test_x01_sharded_engine_throughput():
    """Serial vs 4-way sharded run at N=64; appends the parallel stage."""
    cpus = os.cpu_count() or 1
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    if cpus < WORKERS:
        # Without spare cores a speedup figure would be noise, not
        # signal: record the stage as skipped and bail out.
        payload = json.loads(out.read_text()) if out.exists() else {}
        payload["parallel"] = {
            "n_monitors": N_MONITORS,
            "workers": WORKERS,
            "skipped": True,
            **_machine(),
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"{cpus} CPU(s) < {WORKERS} workers: sharded speedup "
                    f"is not measurable on this host")

    profile = hold(50.0, DURATION_S)
    serial_rigs = _fleet()  # first build pays calibration; later are cached
    t0 = time.perf_counter()
    serial = BatchEngine(serial_rigs).run(profile)
    serial_s = time.perf_counter() - t0

    sharded_rigs = _fleet()
    engine = ShardedEngine(sharded_rigs, workers=WORKERS)
    t0 = time.perf_counter()
    sharded = engine.run(profile)
    sharded_s = time.perf_counter() - t0

    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(sharded, name)),
                              np.asarray(getattr(serial, name))), name

    samples = N_MONITORS * int(round(DURATION_S * 1000.0))
    stage = {
        "n_monitors": N_MONITORS,
        "workers": WORKERS,
        **_machine(),
        "samples": samples,
        "serial_samples_per_s": samples / serial_s,
        "sharded_samples_per_s": samples / sharded_s,
        "speedup": serial_s / sharded_s,
        "bit_identical": True,
    }
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["parallel"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")
    # With real cores to spread over, sharding must pay for itself.
    assert stage["speedup"] >= 1.8, stage
    assert stage["sharded_samples_per_s"] > 0.0
