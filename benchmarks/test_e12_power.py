"""E12 — §7: "advanced low power techniques with deep sleep mode ...
supplied by rechargeable batteries (4 alkaline AA) that guarantees
autonomy of one year for a typical sensor usage."

Workload: duty-cycled measurement schedules (a 2 s burst every N
minutes, deep sleep in between) against the 4xAA pack.  The measured
current during a burst is not a guess: it is taken from the simulated
CTA loop's bridge supply current at mid flow, plus the electronics
budget.

Shape criterion: a typical monitoring cadence (every 15 min) crosses
the one-year line; continuous operation is hopeless — which is exactly
why the ASIC's deep sleep matters.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.isif.power import BatteryPack, PowerModel, PowerState
from repro.sensor.maf import FlowConditions

BURST_S = 2.0
PERIODS_MIN = [1.0, 5.0, 15.0, 60.0]


def _measured_burst_current_a(setup):
    """Battery current during a measurement burst, from the live loop."""
    controller = setup.monitor.controller
    cond = FlowConditions(speed_mps=1.25)
    controller.settle(cond, 1.0)
    currents = []
    for _ in range(200):
        tel = controller.step(cond)
        if tel.energised:
            currents.append(tel.readout.supply_current_a)
    sensor_current = float(np.mean(currents))
    electronics_current = 18.0e-3  # AFE + ADC + LEON + DACs, 0.35 µm BCD
    return sensor_current + electronics_current


def _run(setup):
    burst_a = _measured_burst_current_a(setup)
    model = PowerModel(measure_current_a=burst_a)
    pack = BatteryPack()
    rows = []
    for period_min in PERIODS_MIN:
        avg = model.duty_cycled_current_a(BURST_S, period_min * 60.0)
        rows.append((period_min, avg * 1e6, pack.autonomy_years(avg)))
    always_on = model.average_current_a([(PowerState.MEASURE, 1.0)])
    rows.append(("continuous", always_on * 1e6,
                 pack.autonomy_years(always_on)))
    return burst_a, rows


def test_e12_power(benchmark, paper_setup):
    burst_a, rows = benchmark.pedantic(lambda: _run(paper_setup),
                                       rounds=1, iterations=1)
    print()
    print(f"measured burst current: {burst_a * 1e3:.1f} mA "
          "(bridge supplies from the live loop + electronics budget)")
    print(format_table(
        ["measure period [min]", "avg current [µA]", "autonomy [years]"],
        [(p, round(i, 1), round(y, 2)) for p, i, y in rows],
        title="E12 / §7 — battery autonomy on 4x alkaline AA"))

    autonomy = {p: y for p, _, y in rows}
    # The paper's claim: one year at a typical cadence.
    assert autonomy[15.0] > 1.0
    assert autonomy[60.0] > 1.0
    # Deep sleep is what buys it: continuous drains in weeks.
    assert autonomy["continuous"] < 0.1
    # Burst current sanity: tens of mA, dominated by electronics+heater.
    assert 0.01 < burst_a < 0.1
