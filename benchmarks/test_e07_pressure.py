"""E7 — §5: pressure 0-3 bar, peaks of 7 bar.

The campaign ran "with pressure variance from 0 up to 3 bar with peaks
of 7 bar" and the devices were "tested with respect to mechanical
resistance against pressure".  The enabler is the organic backside fill
(§2: "an enhanced stability against water pressure is achieved").

Workload: (a) the calibrated monitor rides a pressure profile with
6.8 bar peaks while measuring a steady 100 cm/s — the reading must not
care about pressure; (b) a burst sweep of membrane ratings with and
without the fill.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.errors import SensorFault
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.sensor.membrane import ORGANIC_FILL, WATER_BACKSIDE, Membrane
from repro.station.profiles import pressure_peaks

SPEED_CMPS = 100.0


def _pressure_ride(setup):
    profile = pressure_peaks(speed_cmps=SPEED_CMPS, base_bar=2.0,
                             peak_bar=6.8, dwell_s=6.0, peaks=3)
    record = setup.rig.run(profile, record_every_n=100)
    t0 = record.time_s[0]
    settled = record.steady_window(t0 + 8.0, t0 + profile.duration_s)
    low_p = settled.measured_mps[settled.pressure_pa < 3.0e5]
    high_p = settled.measured_mps[settled.pressure_pa > 5.0e5]
    return (float(np.mean(low_p)), float(np.mean(high_p)),
            float(np.max(record.pressure_pa)))


def _burst_ratings():
    filled = Membrane(backside=ORGANIC_FILL)
    flooded = Membrane(backside=WATER_BACKSIDE)
    return filled.burst_pressure_pa, flooded.burst_pressure_pa


def test_e07_pressure(benchmark, paper_setup):
    (v_low, v_high, p_max) = benchmark.pedantic(
        lambda: _pressure_ride(paper_setup), rounds=1, iterations=1)
    filled_rating, flooded_rating = _burst_ratings()
    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["reading at <3 bar [cm/s]", v_low * 100.0],
            ["reading at >5 bar [cm/s]", v_high * 100.0],
            ["max line pressure seen [bar]", p_max / 1e5],
            ["burst rating, organic fill [bar]", filled_rating / 1e5],
            ["burst rating, flooded cavity [bar]", flooded_rating / 1e5],
        ],
        title="E7 / §5 — pressure robustness (0-3 bar, ~7 bar peaks)"))

    # The sensor survived the peaks...
    assert paper_setup.monitor.sensor.failed is None
    assert p_max > 6.0e5
    # ...and the reading is pressure-insensitive (thermal principle).
    assert v_high == pytest.approx(v_low, rel=0.03)
    # The fill is what buys the rating.
    assert filled_rating > 7.0e5
    assert flooded_rating < 7.0e5

    # (b) an unfilled die dies at the first peak.
    naked = MAFSensor(MAFConfig(seed=2, membrane=Membrane(backside=WATER_BACKSIDE)))
    with pytest.raises(SensorFault):
        naked.step(1e-3, 1.0, 1.0,
                   FlowConditions(speed_mps=1.0, pressure_pa=6.8e5))
