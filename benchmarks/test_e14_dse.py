"""E14 — §3: design-space exploration on the platform.

"These features help the designers to carry on a quick and exhaustive
design space exploration changing analog settings, interconnecting
digital IPs ... finding the fittest solution in interfacing a target
sensor, both in term of area and performances."

Workload: a grid over {AFE gain step} x {PI integral gain} x {channel
LPF corner}; each point closes the loop on the same die, measures the
raw conductance noise (resolution proxy) and the loop settling, and
checks the LEON cycle budget of the software partition.

Shape criteria: the sweep surfaces a real trade — higher AFE gain
lowers the noise floor until the error signal clips; slower LPFs
filter more but slow the loop — and every explored partition fits the
CPU in real time.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

COND = FlowConditions(speed_mps=1.0)

GRID = {
    "gain_index": [1, 3, 5],
    "ki": [5_000.0, 20_000.0],
    "lpf_hz": [10.0, 50.0],
}


def _evaluate(gain_index, ki, lpf_hz):
    sensor = MAFSensor(MAFConfig(seed=66, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(
        gain_index=gain_index, digital_lpf_cutoff_hz=lpf_hz, seed=66)
    controller = CTAController(sensor, platform, CTAConfig(ki=ki))
    controller.settle(COND, 0.8)
    supplies = []
    clipped = 0
    for _ in range(1500):
        tel = controller.step(COND)
        supplies.append(tel.supply_a_v)
        clipped += platform.channels[0].afe.clipped
    g = np.array([controller.conductance_from_supplies(u, u)
                  for u in supplies])
    return {
        "noise_pct": float(np.std(g) / np.mean(g)) * 100.0,
        "clip_fraction": clipped / 1500.0,
        "cpu_util_pct": platform.scheduler.utilization() * 100.0,
        "overrun": float(platform.scheduler.overrun),
    }


def _osr_sweep():
    """Second axis: ΣΔ oversampling ratio of the bit-true chain.

    The decimation factor is an area/noise trade on silicon; here it is
    measured as conductance noise at the loop output.
    """
    from dataclasses import replace
    from repro.isif.channel import ChannelConfig

    rows = []
    for osr in (16, 64, 256):
        sensor = MAFSensor(MAFConfig(seed=67, enable_bubbles=False,
                                     enable_fouling=False))
        platform = ISIFPlatform.for_anemometer(seed=67, bit_true_adc=True)
        for ch in platform.channels[:2]:
            ch.config = replace(ch.config, adc_osr=osr)
            ch._rebuild()
        controller = CTAController(sensor, platform, CTAConfig())
        controller.settle(COND, 0.3)
        g = []
        for _ in range(400):
            tel = controller.step(COND)
            g.append(controller.conductance_from_supplies(
                tel.supply_a_v, tel.supply_b_v))
        g = np.array(g)
        rows.append((osr, float(np.std(g) / np.mean(g)) * 100.0))
    return rows


def test_e14_design_space_exploration(benchmark):
    results, osr_rows = benchmark.pedantic(
        lambda: (sweep(GRID, _evaluate), _osr_sweep()),
        rounds=1, iterations=1)
    print()
    rows = [
        (r.params["gain_index"], r.params["ki"], r.params["lpf_hz"],
         round(r.metrics["noise_pct"], 3),
         round(r.metrics["clip_fraction"], 3),
         round(r.metrics["cpu_util_pct"], 2))
        for r in results
    ]
    print(format_table(
        ["AFE gain idx", "PI ki", "LPF [Hz]", "G noise [% rms]",
         "clip fraction", "LEON util [%]"],
        rows,
        title="E14 / §3 — design-space exploration "
              "(12 configurations, same die)"))
    print(format_table(
        ["ΣΔ OSR (bit-true)", "G noise [% rms]"],
        [(osr, round(n, 4)) for osr, n in osr_rows],
        title="decimation-factor ablation (DESIGN.md §5)"))
    # Higher OSR buys a quieter conversion.
    noises = [n for _, n in osr_rows]
    assert noises[-1] < noises[0]

    by_params = {(r.params["gain_index"], r.params["ki"],
                  r.params["lpf_hz"]): r.metrics for r in results}
    # Every partition is real-time feasible on the LEON.
    assert all(r.metrics["overrun"] == 0.0 for r in results)
    assert all(r.metrics["cpu_util_pct"] < 5.0 for r in results)
    # No configuration clips at this operating point (error is small at
    # equilibrium); the sweep would expose a clipping gain on transients.
    assert all(r.metrics["clip_fraction"] < 0.5 for r in results)
    # The sweep surfaces the real trade-offs: more AFE gain suppresses
    # the ADC-referred noise floor...
    for ki in GRID["ki"]:
        for lpf in GRID["lpf_hz"]:
            assert (by_params[(5, ki, lpf)]["noise_pct"]
                    < by_params[(1, ki, lpf)]["noise_pct"])
    # ...and at low gain (noise-floor-limited), a hotter integrator
    # amplifies that floor into the supply — the classic gain/noise trade.
    assert (by_params[(1, 20_000.0, 50.0)]["noise_pct"]
            > by_params[(1, 5_000.0, 50.0)]["noise_pct"])
