"""E5 — Fig. 7: bubble generation and the pulsed-drive fix.

§4: hot-wire anemometry "proved less success in liquids because of
bubbles ... overcome adopting a pulsed voltage driving technique ...
in conjunction with reduced overtemperature".

Workload: a slow line (worst case for bubble detachment) with the
heater driven four ways — {continuous, pulsed} x {air-style 40 K,
water-style 5 K overtemperature}.  Reported: bubble surface coverage
and the flow-reading corruption it causes.

Shape criteria: only the continuous high-overtemperature combination
fouls with bubbles and corrupts the measurement; the paper's scheme
(pulsed + reduced overtemperature) stays clean.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.drive import ContinuousDrive, PulsedDrive
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

SPEED_MPS = 0.05  # near-stagnant: bubbles stick
DURATION_S = 90.0
CONDITIONS = FlowConditions(speed_mps=SPEED_MPS, pressure_pa=1.0e5)


def _run_case(overtemperature_k, pulsed, seed):
    sensor = MAFSensor(MAFConfig(seed=seed))
    platform = ISIFPlatform.for_anemometer(seed=seed)
    drive = PulsedDrive(period_s=1.0, duty=0.30) if pulsed else ContinuousDrive()
    controller = CTAController(
        sensor, platform,
        CTAConfig(overtemperature_k=overtemperature_k), drive=drive)
    dt = platform.dt_s
    g_trace = []
    coverage_trace = []
    for _ in range(int(DURATION_S / dt)):
        tel = controller.step(CONDITIONS)
        if tel.sample_valid:
            g_trace.append(controller.conductance_from_supplies(
                tel.supply_a_v, tel.supply_b_v))
        coverage_trace.append(tel.readout.bubble_coverage_a)
    g = np.array(g_trace[len(g_trace) // 2:])
    corruption = float(np.std(g) / np.mean(g))
    return float(np.max(coverage_trace)), corruption


def _run_all():
    cases = [
        ("continuous, ΔT=40 K (air-style)", 40.0, False),
        ("pulsed,     ΔT=40 K", 40.0, True),
        ("continuous, ΔT=5 K", 5.0, False),
        ("pulsed,     ΔT=5 K (paper)", 5.0, True),
    ]
    rows = []
    for name, d_t, pulsed in cases:
        coverage, corruption = _run_case(d_t, pulsed, seed=55)
        rows.append((name, coverage, corruption * 100.0))
    return rows


def _duty_sweep():
    """Ablation: bubble coverage vs pulsed duty at ΔT=40 K."""
    rows = []
    for duty in (0.15, 0.30, 0.60, 0.90):
        sensor = MAFSensor(MAFConfig(seed=56))
        platform = ISIFPlatform.for_anemometer(seed=56)
        controller = CTAController(
            sensor, platform, CTAConfig(overtemperature_k=40.0),
            drive=PulsedDrive(period_s=1.0, duty=duty,
                              blanking_s=min(0.05, duty * 0.5)))
        dt = platform.dt_s
        worst = 0.0
        for _ in range(int(45.0 / dt)):
            tel = controller.step(CONDITIONS)
            worst = max(worst, tel.readout.bubble_coverage_a)
        rows.append((duty, worst))
    return rows


def test_e05_bubbles(benchmark):
    rows, duty_rows = benchmark.pedantic(
        lambda: (_run_all(), _duty_sweep()), rounds=1, iterations=1)
    print()
    print(format_table(
        ["drive scheme", "peak bubble coverage", "signal corruption [% rms]"],
        rows,
        title="E5 / fig. 7 — bubble generation vs drive scheme "
              f"(v = {SPEED_MPS * 100:.0f} cm/s, 1 bar)"))
    print(format_table(
        ["pulsed duty", "peak coverage @ ΔT=40 K"],
        [(d, round(c, 3)) for d, c in duty_rows],
        title="duty-cycle ablation (DESIGN.md §5)"))
    # More off-time, fewer bubbles — monotone in duty.
    coverages = [c for _, c in duty_rows]
    assert all(b >= a - 0.02 for a, b in zip(coverages, coverages[1:]))
    assert coverages[0] < 0.3 * coverages[-1]

    by_name = {r[0]: r for r in rows}
    cont_hot = by_name["continuous, ΔT=40 K (air-style)"]
    pulsed_hot = by_name["pulsed,     ΔT=40 K"]
    paper = by_name["pulsed,     ΔT=5 K (paper)"]
    cont_cold = by_name["continuous, ΔT=5 K"]
    # The naive scheme fouls badly.
    assert cont_hot[1] > 0.3
    assert cont_hot[2] > 3.0
    # Pulsing alone already knocks coverage down hard.
    assert pulsed_hot[1] < 0.5 * cont_hot[1]
    # The paper's combination is clean.
    assert paper[1] < 0.02
    assert paper[2] < 1.0
    # Reduced overtemperature alone is also clean (below nucleation).
    assert cont_cold[1] < 0.02
