"""X5 — live-plane overhead (snapshot sampler on vs off).

Times the same resident-service workload (one 16-rig client, 4 s
horizon, 8 streamed windows) with the live snapshot pipeline sampling
at its service-default 20 Hz test cadence and with it off, interleaved
best-of-3 so machine drift hits both arms equally.  The bars: the
sampler costs at most 3 % of streaming wall time at N=16, and the
streamed results are bit-identical in both modes (monitoring must
never perturb numerics).  Appends the ``"live"`` stage to
``BENCH_throughput.json`` read-modify-write, preserving the X0-X4
figures alongside.
"""

import asyncio
import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import observability as obs
from repro.observability import MetricsRegistry
from repro.runtime import RunResult
from repro.service import FleetService
from repro.station.profiles import hold

pytestmark = [pytest.mark.slow, pytest.mark.service, pytest.mark.live]

N_MONITORS = 16
DURATION_S = 4.0
TICK_STEPS = 500  # 8 windows
SEED = 7500
CADENCE_S = 0.05  # 10x the service default: a worst-case sampling load


def _run_once(sample: bool):
    """One streamed service run; returns (stream wall s, result, ring)."""
    profile = hold(50.0, DURATION_S)

    async def drive():
        async with FleetService(
                tick_steps=TICK_STEPS,
                sample_every_s=CADENCE_S if sample else None) as service:
            client = await service.attach(profile, n_monitors=N_MONITORS,
                                          seed=SEED, fast_calibration=True)
            t0 = time.perf_counter()
            async for _ in client.snapshots():
                pass
            result = await client.result()
            stream_s = time.perf_counter() - t0
            ring = 0 if service.pipeline is None else len(service.pipeline)
        return stream_s, result, ring

    return asyncio.run(drive())


def test_x05_live_sampler_overhead_and_parity():
    """Sampler on vs off: <= 3 % overhead, bit-identical streams."""
    old_registry = obs.get_registry()
    obs.set_registry(MetricsRegistry(enabled=True))
    try:
        _run_once(False)  # warm the calibration cache outside the clocks

        off_s, on_s = [], []
        reference = None
        ring_total = 0
        for _ in range(3):
            t_off, result_off, _ = _run_once(False)
            t_on, result_on, ring = _run_once(True)
            off_s.append(t_off)
            on_s.append(t_on)
            ring_total += ring
            if reference is None:
                reference = result_off
            for result in (result_off, result_on):
                for name in ("time_s",) + RunResult.STACKED_FIELDS:
                    assert np.array_equal(
                        np.asarray(getattr(result, name)),
                        np.asarray(getattr(reference, name))), name
    finally:
        obs.set_registry(old_registry)

    assert ring_total > 0  # the sampler provably ran in the on arm
    samples = N_MONITORS * int(round(DURATION_S * 1000.0))
    overhead = min(on_s) / min(off_s) - 1.0
    stage = {
        "n_monitors": N_MONITORS,
        "samples": samples,
        "tick_steps": TICK_STEPS,
        "sampler_cadence_s": CADENCE_S,
        "rounds": 3,
        "off_s": min(off_s),
        "on_s": min(on_s),
        "off_samples_per_s": samples / min(off_s),
        "on_samples_per_s": samples / min(on_s),
        "sampler_overhead": overhead,
        "ring_samples": ring_total,
        "bit_identical": True,
    }
    print("\nX5 live-plane overhead (sampler on vs off, best of 3):")
    print(f"  off: {stage['off_samples_per_s']:.0f} samples/s "
          f"({stage['off_s'] * 1e3:.1f} ms)")
    print(f"  on:  {stage['on_samples_per_s']:.0f} samples/s "
          f"({stage['on_s'] * 1e3:.1f} ms), "
          f"{ring_total} ring samples")
    print(f"  overhead: {overhead:+.2%}")

    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["live"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")

    assert overhead <= 0.03, stage
