"""E11 — §4: "Due to the extremely thin membrane technology (2 µm
thickness including the passivation layer) the response times are
reasonably short, even in water."

Two measurements:

* closed loop — an instantaneous local-flow step at the sensor head
  (line dynamics bypassed) with the CTA loop running; settling is set
  by the conditioning chain (digital LPF + PI), **not** the sensor;
* open loop (the membrane ablation) — fixed supply, flow step; the
  heater temperature settles with the membrane's own thermal time
  constant, which grows with stack thickness.

Shape criteria: the 2 µm sensor settles in well under a millisecond
(so it never limits the system), the loop in tens of milliseconds, and
a 5x thicker membrane is ~5x slower at the sensor level.
"""

import numpy as np

from repro.analysis.metrics import settling_time_s
from repro.analysis.report import format_table
from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor
from repro.sensor.materials import MembraneLayer
from repro.sensor.membrane import Membrane

V_FROM = 0.3
V_TO = 1.8
LOOP_RATE_HZ = 10_000.0  # fast loop to resolve millisecond settling


def _thick_stack(factor: float) -> tuple[MembraneLayer, ...]:
    """The default stack with every layer ``factor`` times thicker."""
    from dataclasses import replace
    return tuple(replace(layer, thickness_m=layer.thickness_m * factor)
                 for layer in Membrane().stack)


def _closed_loop_settling_ms(seed=9):
    sensor = MAFSensor(MAFConfig(seed=seed, enable_bubbles=False,
                                 enable_fouling=False))
    platform = ISIFPlatform.for_anemometer(loop_rate_hz=LOOP_RATE_HZ,
                                           seed=seed)
    controller = CTAController(sensor, platform, CTAConfig())
    controller.settle(FlowConditions(speed_mps=V_FROM), 0.3)
    steps = int(0.2 * LOOP_RATE_HZ)
    t, u = [], []
    for i in range(steps):
        tel = controller.step(FlowConditions(speed_mps=V_TO))
        t.append(i / LOOP_RATE_HZ)
        u.append(tel.supply_a_v)
    u = np.array(u)
    final = float(np.mean(u[-steps // 10:]))
    return settling_time_s(np.array(t), u, final, band_fraction=0.02) * 1e3


def _open_loop_settling_us(membrane: Membrane, seed=9):
    """Fixed-supply heater temperature settling after a flow step [µs]."""
    sensor = MAFSensor(MAFConfig(seed=seed, membrane=membrane,
                                 enable_bubbles=False, enable_fouling=False))
    supply = 2.0
    dt = 2e-6  # resolve the sub-ms membrane time constant
    for _ in range(20_000):  # 40 ms pre-settle at the initial flow
        sensor.step(dt, supply, supply, FlowConditions(speed_mps=V_FROM))
    fluid_k = FlowConditions(speed_mps=V_TO).temperature_k
    t, overtemp = [], []
    for i in range(60_000):
        r = sensor.step(dt, supply, supply, FlowConditions(speed_mps=V_TO))
        t.append(i * dt)
        # Settle on the overtemperature (the signal), not absolute kelvin.
        overtemp.append(r.heater_a_temperature_k - fluid_k)
    overtemp = np.array(overtemp)
    final = float(np.mean(overtemp[-5000:]))
    return settling_time_s(np.array(t), overtemp, final,
                           band_fraction=0.02) * 1e6


def _run_all():
    loop_ms = _closed_loop_settling_ms()
    thin_us = _open_loop_settling_us(Membrane())
    thick_us = _open_loop_settling_us(Membrane(stack=_thick_stack(5.0)))
    return loop_ms, thin_us, thick_us


def test_e11_step_response(benchmark):
    loop_ms, thin_us, thick_us = benchmark.pedantic(
        _run_all, rounds=1, iterations=1)
    print()
    print(format_table(
        ["measurement", "settling to 2 %"],
        [["closed loop (2 µm, full chain)", f"{loop_ms:.1f} ms"],
         ["open-loop sensor, 2 µm stack (paper)", f"{thin_us:.0f} µs"],
         ["open-loop sensor, 10 µm stack (ablation)", f"{thick_us:.0f} µs"]],
        title=f"E11 / §4 — flow-step response "
              f"({V_FROM * 100:.0f} → {V_TO * 100:.0f} cm/s at the head)"))

    # "Reasonably short, even in water": the sensor itself is sub-ms,
    # the whole loop tens of ms — neither limits the 0.1 Hz application.
    assert thin_us < 1000.0
    assert loop_ms < 50.0
    # A 5x thicker membrane stores ~5x the heat: distinctly slower.
    assert thick_us > 3.0 * thin_us
