"""E8 — §5: comparison against commercial devices.

"Compared to commercial devices, as for example magnetic system like
Promag 50 (resolution lower than ±0.5% respect to full scale), this
implementation features a slightly higher noise but dramatically
reduces the cost of more than one order of magnitude ... achieves the
same accuracy of the turbine wheel devices with cost reduction and
improved reliability since no mechanical moving parts are exposed."

Workload: the three meters read the same steady line at low/mid/high
flow; the table reports each meter's ±3σ resolution (% FS), plus the
deployment traits the paper argues from.
"""

import numpy as np

from repro.analysis.metrics import FULL_SCALE_MPS, resolution_pct_fs
from repro.analysis.report import format_table
from repro.baselines.promag import Promag50
from repro.baselines.turbine import TurbineMeter
from repro.baselines.venturi import VenturiMeter

SETPOINTS_CMPS = [25.0, 125.0, 250.0]
WINDOW_S = 20.0
MAF_COST_EUR = 150.0  # sensor + conditioning ASIC at volume (paper's pitch)


def _meter_resolution(meter, v_mps, dt=1e-3):
    for _ in range(int(5.0 / dt)):
        meter.read(v_mps, dt)
    readings = np.array([meter.read(v_mps, dt)
                         for _ in range(int(WINDOW_S / dt))])
    return resolution_pct_fs(readings)


def _maf_resolution(setup, v_cmps):
    line = setup.rig.line
    monitor = setup.monitor
    v = v_cmps * 1e-2
    line.jump_to(v)
    from repro.sensor.maf import FlowConditions
    dt = monitor.platform.dt_s
    for _ in range(int(8.0 / dt)):
        state = line.step(dt, v)
        monitor.step(line.conditions(state))
    readings = []
    for _ in range(int(WINDOW_S / dt)):
        state = line.step(dt, v)
        readings.append(monitor.step(line.conditions(state)).speed_mps)
    return resolution_pct_fs(np.array(readings))


def _meter_mean(meter, v_mps, seconds=10.0, dt=1e-3):
    for _ in range(int(5.0 / dt)):
        meter.read(v_mps, dt)
    readings = [meter.read(v_mps, dt) for _ in range(int(seconds / dt))]
    return float(np.mean(readings))


def _run(setup):
    promag = Promag50(seed=11)
    turbine = TurbineMeter(seed=12)
    venturi = VenturiMeter(seed=15)
    rows = []
    for v_cmps in SETPOINTS_CMPS:
        v = v_cmps * 1e-2
        rows.append((
            v_cmps,
            _maf_resolution(setup, v_cmps),
            _meter_resolution(promag, v),
            _meter_resolution(turbine, v),
            _meter_resolution(venturi, v),
        ))
    # Accuracy stressors the turbine cannot dodge: low-flow stall and
    # bearing wear (the MAF has no moving parts -> neither applies).
    stall_err_pct = abs(_meter_mean(TurbineMeter(seed=13), 0.03) - 0.03) \
        / FULL_SCALE_MPS * 100.0
    worn = TurbineMeter(seed=14)
    worn.age(17_500.0)  # ~2 years of continuous service
    wear_err_pct = abs(_meter_mean(worn, 1.25) - 1.25) / FULL_SCALE_MPS * 100.0
    return rows, stall_err_pct, wear_err_pct


def test_e08_comparison(benchmark, paper_setup):
    rows, stall_err_pct, wear_err_pct = benchmark.pedantic(
        lambda: _run(paper_setup), rounds=1, iterations=1)
    print()
    print(format_table(
        ["speed [cm/s]", "MAF+ISIF [±% FS]", "Promag 50 [±% FS]",
         "turbine [±% FS]", "venturi dP [±% FS]"],
        rows,
        title="E8 / §5 — resolution comparison (3σ, % of 250 cm/s FS)"))

    promag_traits = Promag50().traits
    turbine_traits = TurbineMeter().traits
    trait_rows = [
        ["cost [EUR]", MAF_COST_EUR, promag_traits.cost_eur,
         turbine_traits.cost_eur],
        ["moving parts", "no", "no", "yes"],
        ["hot insertable", "yes", "no", "no"],
        ["error at 3 cm/s (stall) [% FS]", "~0", "~0",
         round(stall_err_pct, 2)],
        ["error after 2 y wear [% FS]", "0 (no wear)", "~0",
         round(wear_err_pct, 2)],
    ]
    print(format_table(
        ["trait", "MAF+ISIF", "Promag 50", "turbine"], trait_rows,
        title="deployment traits and accuracy stressors"))

    maf_res = np.array([r[1] for r in rows])
    promag_res = np.array([r[2] for r in rows])
    venturi_res = np.array([r[4] for r in rows])
    # Paper shape: MAF slightly noisier than the Promag...
    assert np.all(maf_res > promag_res)
    assert np.all(promag_res < 0.5)  # the Promag's class
    # The intrusive dP meter's square-law turndown loses the paper's
    # low-flow regime outright (its worst point is the MAF's best).
    assert venturi_res[0] > maf_res[0]
    # ...but its worst-case resolution stays within the turbine's
    # worst-case *accuracy* once stall and wear are on the table —
    # the paper's "same accuracy ... with improved reliability".
    assert np.max(maf_res) < max(stall_err_pct, wear_err_pct) + 0.5
    assert stall_err_pct > 1.0  # the turbine's dead zone is real
    assert wear_err_pct > 1.0   # and so is its drift
    # ...and more than an order of magnitude cheaper than the Promag.
    assert promag_traits.cost_eur > 10.0 * MAF_COST_EUR
