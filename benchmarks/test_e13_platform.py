"""E13 — §3: platform fidelity ablations.

Two ISIF properties the paper's methodology rests on:

* the software peripherals "feature an exact matching with hardware
  devices" — here: the fixed-point IPs are bit-identical between their
  "hardware" and "software" instances, and the whole fixed-point loop
  lands on the float loop within LSB-scale error;
* the behavioural ADC model used by the fast benches is equivalent to
  the bit-true ΣΔ modulator + CIC chain at the system level.

Reported: DC agreement and noise of both ADC chains, bit-exactness of
the IP twins, and the loop-level float-vs-fixed-point difference.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.fir import FirFilter, design_lowpass_fir
from repro.isif.fixed_point import QFormat
from repro.isif.iir import IIRBiquad, design_lowpass_biquad
from repro.isif.pi_controller import PIConfig, PIController
from repro.isif.platform import ISIFPlatform
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaAdc
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

Q = QFormat(3, 16)


def _adc_comparison():
    from repro.analysis.adc_metrics import sine_test

    x = 0.42
    beh = BehavioralAdc(vref_v=2.5, rng=np.random.default_rng(1))
    bt = SigmaDeltaAdc(vref_v=2.5, osr=128, rng=np.random.default_rng(2))
    beh_codes = np.array([beh.convert(x) for _ in range(400)])
    bt_codes = np.array([bt.convert(x) for _ in range(120)][20:])
    # Dynamic characterisation: sine test on both chains.
    rate = 200.0
    n = 2048
    t = np.arange(n) / rate
    stimulus = 1.8 * np.sin(2 * np.pi * 3.1 * t)
    beh_sine = np.array([beh.convert(float(v)) for v in stimulus])
    bt_sine = np.array([bt.convert(float(v)) for v in stimulus])
    beh_enob = sine_test(beh_sine[200:], 3.1, rate).enob
    bt_enob = sine_test(bt_sine[200:], 3.1, rate).enob
    return {
        "behavioural mean [V]": float(np.mean(beh_codes)) * beh.lsb_v,
        "bit-true mean [V]": float(np.mean(bt_codes)) * bt.lsb_v,
        "behavioural noise [LSB rms]": float(np.std(beh_codes)),
        "bit-true noise [LSB rms]": float(np.std(bt_codes)),
        "behavioural ENOB [bits]": beh_enob,
        "bit-true ENOB [bits]": bt_enob,
    }


def _ip_twin_mismatches():
    """Run hw/sw twins of each fixed-point IP on identical stimuli."""
    rng = np.random.default_rng(3)
    mismatches = 0
    fir_coeffs = design_lowpass_fir(80.0, 1000.0, taps=21)
    fir_hw, fir_sw = (FirFilter(fir_coeffs, qformat=Q) for _ in range(2))
    b, a = design_lowpass_biquad(100.0, 1000.0)
    iir_hw, iir_sw = (IIRBiquad(b, a, qformat=Q) for _ in range(2))
    pi_cfg = PIConfig(kp=2.0, ki=500.0, dt_s=1e-3, out_min=0.0,
                      out_max=5.0, qformat=Q)
    pi_hw, pi_sw = PIController(pi_cfg), PIController(pi_cfg)
    for _ in range(3000):
        code = Q.to_int(float(rng.uniform(-1.0, 1.0)))
        mismatches += fir_hw.step_codes(code) != fir_sw.step_codes(code)
        mismatches += iir_hw.step_codes(code) != iir_sw.step_codes(code)
        err = Q.to_int(float(rng.uniform(-0.05, 0.05)))
        mismatches += pi_hw.step_codes(err) != pi_sw.step_codes(err)
    return mismatches


def _loop_float_vs_fixed():
    def settle(qformat):
        sensor = MAFSensor(MAFConfig(seed=88, enable_bubbles=False,
                                     enable_fouling=False))
        platform = ISIFPlatform.for_anemometer(seed=88)
        controller = CTAController(sensor, platform,
                                   CTAConfig(qformat=qformat))
        tel = controller.settle(FlowConditions(speed_mps=1.0), 1.0)
        return tel.supply_a_v

    return settle(None), settle(QFormat(3, 20))


def _word_length_ablation():
    """Loop equilibrium error vs fixed-point fraction bits.

    The trimming-bit budget of a hardware IP is area (§3: "reduced
    number of trimming bits"); this sweep shows where the datapath
    width stops mattering for the anemometer loop.
    """
    u_ref = _loop_float_vs_fixed()[0]
    rows = []
    for frac_bits in (10, 12, 16, 20):
        sensor = MAFSensor(MAFConfig(seed=88, enable_bubbles=False,
                                     enable_fouling=False))
        platform = ISIFPlatform.for_anemometer(seed=88)
        controller = CTAController(
            sensor, platform, CTAConfig(qformat=QFormat(3, frac_bits)))
        tel = controller.settle(FlowConditions(speed_mps=1.0), 1.0)
        rows.append((frac_bits, abs(tel.supply_a_v - u_ref)))
    return rows


def test_e13_platform(benchmark):
    adc, mismatches, (u_float, u_fixed), word_rows = benchmark.pedantic(
        lambda: (_adc_comparison(), _ip_twin_mismatches(),
                 _loop_float_vs_fixed(), _word_length_ablation()),
        rounds=1, iterations=1)
    print()
    rows = [[k, round(v, 6)] for k, v in adc.items()]
    rows.append(["hw/sw IP twin mismatches (9000 steps)", mismatches])
    rows.append(["loop supply, float IPs [V]", round(u_float, 4)])
    rows.append(["loop supply, Q3.20 IPs [V]", round(u_fixed, 4)])
    for frac_bits, err in word_rows:
        rows.append([f"equilibrium error vs float, Q3.{frac_bits} [mV]",
                     round(err * 1e3, 3)])
    print(format_table(["quantity", "value"], rows,
                       title="E13 / §3 — platform fidelity ablations"))

    # Word-length ablation: by Q3.16 the datapath is no longer the
    # limiting error source (sub-mV against the float loop).
    err_by_bits = dict(word_rows)
    assert err_by_bits[16] < 5e-3
    assert err_by_bits[20] <= err_by_bits[10] + 1e-4

    # Both ADC models agree at DC to within a few LSB.
    assert abs(adc["behavioural mean [V]"] - 0.42) < 5e-4
    assert abs(adc["bit-true mean [V]"] - 0.42) < 5e-3
    # Both chains deliver precision-class dynamic performance.
    assert adc["behavioural ENOB [bits]"] > 12.0
    assert adc["bit-true ENOB [bits]"] > 10.0
    # The hw/sw matching property is exact, not approximate.
    assert mismatches == 0
    # Fixed-point loop lands on the float loop (quantisation-scale gap).
    assert abs(u_float - u_fixed) < 0.02
