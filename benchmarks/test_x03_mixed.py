"""X3 — mixed-fleet throughput (group-by-config vs per-group serial).

Times the same 8-rig, 4-config-group fleet through the
:class:`~repro.runtime.mixed.MixedEngine` (which partitions the fleet
into config-equivalence groups, runs each group on its own
:class:`BatchEngine`, and interleaves the ragged blocks back into
caller order) and through the obvious baseline — one serial
:class:`BatchEngine` pass per group, summed.  Asserts every rig's
mixed-run rows are bit-identical to its rows from the group run alone
(the parity contract is part of the bench), and appends the numbers as
the ``"mixed"`` stage of ``BENCH_throughput.json`` — read-modify-write,
so the earlier stages persist alongside.

The bar: the group split plus the ragged merge must stay bookkeeping —
the mixed pass may not cost more than ~1.5x the summed per-group runs.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.runtime import (BatchEngine, MixedEngine, RunResult,
                           spawn_monitor_seeds)
from repro.runtime.mixed import fleet_groups
from repro.station.profiles import hold
from repro.station.scenarios import build_calibrated_monitor

pytestmark = pytest.mark.slow

N_MONITORS = 8
OVERTEMPERATURES_K = (5.0, 6.0, 7.0, 8.0)  # 4 config groups, interleaved
DURATION_S = 2.0
SEED = 31000


def _fleet():
    seeds = spawn_monitor_seeds(SEED, N_MONITORS)
    return [build_calibrated_monitor(
                seed=s, fast=True,
                overtemperature_k=OVERTEMPERATURES_K[
                    i % len(OVERTEMPERATURES_K)]).rig
            for i, s in enumerate(seeds)]


def test_x03_mixed_engine_throughput():
    """Mixed vs per-group serial at 8 rigs / 4 groups; appends the stage."""
    profile = hold(50.0, DURATION_S)

    # Per-group serial baseline: one BatchEngine pass per config group,
    # in caller order within each group (first build pays calibration;
    # the mixed pass below reuses the cache).
    baseline_rigs = _fleet()
    groups = fleet_groups(baseline_rigs)
    t0 = time.perf_counter()
    group_runs = {key: BatchEngine([baseline_rigs[p] for p in positions])
                  .run(profile)
                  for key, positions in groups.items()}
    serial_s = time.perf_counter() - t0

    mixed_rigs = _fleet()
    engine = MixedEngine(mixed_rigs)
    t0 = time.perf_counter()
    mixed = engine.run(profile)
    mixed_s = time.perf_counter() - t0

    # Parity is part of the bench: each rig's mixed rows are exactly
    # its rows from running its config group alone.
    assert len(groups) == len(OVERTEMPERATURES_K)
    for key, positions in groups.items():
        alone = group_runs[key]
        for rank, position in enumerate(positions):
            for name in RunResult.STACKED_FIELDS:
                assert np.asarray(getattr(mixed, name))[position].tobytes() \
                    == np.asarray(getattr(alone, name))[rank].tobytes(), \
                    (name, position)
    assert np.array_equal(np.asarray(mixed.time_s),
                          np.asarray(next(iter(group_runs.values())).time_s))

    samples = N_MONITORS * int(round(DURATION_S * 1000.0))
    stage = {
        "n_monitors": N_MONITORS,
        "config_groups": len(groups),
        "samples": samples,
        "serial_samples_per_s": samples / serial_s,
        "mixed_samples_per_s": samples / mixed_s,
        "grouping_overhead": mixed_s / serial_s,
        "bit_identical": True,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["mixed"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")

    # The split/merge must stay bookkeeping, not a second physics pass.
    assert stage["grouping_overhead"] <= 1.5, stage
