"""E4 — §5: "The flow direction was clearly detected."

Workload: a bidirectional staircase (forward levels then the same
levels reversed).  The dual-heater asymmetry must claim the correct
sign at every level once the line has settled, across the full speed
range — including high speed, where the thermal wake is thinnest.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.station.profiles import bidirectional_staircase

LEVELS_CMPS = [20.0, 80.0, 180.0, 250.0]
DWELL_S = 8.0


def _run(setup):
    profile = bidirectional_staircase(LEVELS_CMPS, dwell_s=DWELL_S)
    record = setup.rig.run(profile, record_every_n=100)
    t0 = record.time_s[0]
    rows = []
    all_levels = LEVELS_CMPS + [-level for level in LEVELS_CMPS]
    for i, level in enumerate(all_levels):
        window = record.steady_window(t0 + i * DWELL_S + 0.6 * DWELL_S,
                                      t0 + (i + 1) * DWELL_S)
        claimed = int(np.median(window.direction))
        rows.append((level, claimed, int(np.sign(level)),
                     "ok" if claimed == np.sign(level) else "WRONG"))
    return rows


def test_e04_direction(benchmark, paper_setup):
    rows = benchmark.pedantic(lambda: _run(paper_setup),
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["setpoint [cm/s]", "claimed direction", "true direction", "verdict"],
        rows,
        title="E4 / §5 — flow direction detection over ±(20-250) cm/s"))
    assert all(r[3] == "ok" for r in rows)
