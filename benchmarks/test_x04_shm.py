"""X4 — parallel backend comparison (spawn pools vs the shm runtime).

Times the same fleets through the process-per-run spawn backend and the
persistent zero-copy shm backend at N in {4, 16, 64}, asserts the two
backends agree bitwise (the parity contract is part of the bench), and
appends the numbers as the ``"shm"`` stage of
``BENCH_throughput.json`` — read-modify-write, so earlier stages
persist alongside.

Two figures matter per fleet size:

- steady-state samples/s on each backend (the shm number is taken from
  a *second* run, after the pool has amortized spawn + load cost —
  that amortization is the backend's whole reason to exist);
- per-window attach overhead (the ``shm.attach_s`` histogram: shared
  block allocation + zero-copy view assembly), which is the price the
  shm merge pays instead of pickling trace arrays through pipes.

The ≥1.5x bar at N=16 only applies where it is physically attainable:
on hosts with fewer than 4 CPUs the stage is recorded as
``{"skipped": true}`` — with the machine fingerprint, so the absence
of a figure is still attributable — and the test skips.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro import observability as obs
from repro.observability import MetricsRegistry
from repro.runtime import (RunResult, ShardedEngine, shutdown_pool,
                           spawn_monitor_seeds)
from repro.station.profiles import hold
from repro.station.scenarios import build_calibrated_monitor

pytestmark = [pytest.mark.slow, pytest.mark.parallel]

FLEET_SIZES = (4, 16, 64)
WORKERS = 4
DURATION_S = 1.0
SEED = 24242


def _fleet(n):
    return [build_calibrated_monitor(seed=s, fast=True).rig
            for s in spawn_monitor_seeds(SEED, n)]


def _machine():
    """The host fingerprint every stage records, skipped ones included."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _assert_bit_identical(a, b):
    for name in ("time_s",) + RunResult.STACKED_FIELDS:
        assert np.array_equal(np.asarray(getattr(a, name)),
                              np.asarray(getattr(b, name))), name


def test_x04_shm_vs_spawn_throughput():
    """Spawn vs persistent-pool shm at N in {4, 16, 64}; appends "shm"."""
    cpus = os.cpu_count() or 1
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    if cpus < WORKERS:
        payload = json.loads(out.read_text()) if out.exists() else {}
        payload["shm"] = {
            "workers": WORKERS,
            "fleet_sizes": list(FLEET_SIZES),
            "skipped": True,
            **_machine(),
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"{cpus} CPU(s) < {WORKERS} workers: backend speedup "
                    f"is not measurable on this host")

    profile = hold(50.0, DURATION_S)
    steps = int(round(DURATION_S * 1000.0))
    fleets = {}
    old_registry = obs.get_registry()
    try:
        for n in FLEET_SIZES:
            # A fresh registry per fleet size: the attach histogram
            # must describe this size's windows only.
            registry = obs.set_registry(MetricsRegistry(enabled=True))
            samples = n * steps

            spawn_engine = ShardedEngine(_fleet(n), workers=WORKERS)
            t0 = time.perf_counter()
            spawn_result = spawn_engine.run(profile)
            spawn_s = time.perf_counter() - t0

            shutdown_pool()  # each size pays its own pool start-up
            with ShardedEngine(_fleet(n), workers=WORKERS,
                               backend="shm") as shm_engine:
                t0 = time.perf_counter()
                shm_engine.run(profile)
                cold_s = time.perf_counter() - t0
                # The figure that matters: the pool is warm, the
                # engine is loaded, a run costs advance commands plus
                # a zero-copy merge.
                t0 = time.perf_counter()
                shm_result = shm_engine.run(profile)
                shm_s = time.perf_counter() - t0

            _assert_bit_identical(shm_result, spawn_result)
            attach = registry.histogram("shm.attach_s").snapshot()
            fleets[str(n)] = {
                "samples": samples,
                "spawn_samples_per_s": samples / spawn_s,
                "shm_cold_samples_per_s": samples / cold_s,
                "shm_samples_per_s": samples / shm_s,
                "speedup": spawn_s / shm_s,
                "attach_mean_s": attach["mean"],
                "attach_windows": attach["count"],
                "bit_identical": True,
            }
    finally:
        shutdown_pool()
        obs.set_registry(old_registry)

    stage = {"workers": WORKERS, **_machine(), "fleets": fleets}
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["shm"] = stage
    out.write_text(json.dumps(payload, indent=2) + "\n")
    # With the pool warm, skipping per-run spawn + pickle-merge must
    # pay for itself where the issue drew the line: N=16.
    assert fleets["16"]["speedup"] >= 1.5, stage
    for numbers in fleets.values():
        assert numbers["shm_samples_per_s"] > 0.0
