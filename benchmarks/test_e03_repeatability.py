"""E3 — §5 repeatability ≈ ±1 % of full scale.

Workload: the same setpoint (100 cm/s) approached repeatedly, half the
runs from below (40 cm/s) and half from above (200 cm/s), mimicking a
valve operator re-establishing a test point.  Repeatability is the
half-spread of the settled means over full scale.
"""

import numpy as np

from repro.analysis.metrics import repeatability_pct_fs
from repro.analysis.report import format_table
from repro.station.profiles import staircase

TARGET_CMPS = 100.0
APPROACHES_CMPS = [40.0, 200.0, 40.0, 200.0]
APPROACH_DWELL_S = 6.0
# The 0.1 Hz output IIR cascaded with the line lag needs ~10 s to decay
# below the noise floor; measure over the last quarter of a long dwell.
TARGET_DWELL_S = 18.0


def _run(setup):
    means = []
    for start in APPROACHES_CMPS:
        profile = staircase([start], dwell_s=APPROACH_DWELL_S)
        profile.append(profile.segments[0].__class__(
            duration_s=TARGET_DWELL_S, speed_mps=TARGET_CMPS * 1e-2,
            pressure_pa=2.0e5, temperature_k=288.15))
        record = setup.rig.run(profile, record_every_n=100)
        t0 = record.time_s[0]
        window = record.steady_window(
            t0 + APPROACH_DWELL_S + 0.75 * TARGET_DWELL_S,
            t0 + APPROACH_DWELL_S + TARGET_DWELL_S)
        means.append(float(np.mean(window.measured_mps)))
    return means


def test_e03_repeatability(benchmark, paper_setup):
    means = benchmark.pedantic(lambda: _run(paper_setup),
                               rounds=1, iterations=1)
    rep = repeatability_pct_fs(np.array(means))
    print()
    rows = [(f"from {a:.0f} cm/s", m * 100.0)
            for a, m in zip(APPROACHES_CMPS, means)]
    rows.append(("repeatability [± % FS]", rep))
    print(format_table(
        ["approach", "settled mean [cm/s]"], rows,
        title=f"E3 / §5 — repeatability at {TARGET_CMPS:.0f} cm/s "
              "(paper: ≈ ±1 % FS)"))

    # Paper shape: about ±1 % FS; allow up to ±2 % for the simulated rig,
    # and require it to be a meaningful nonzero spread measurement.
    assert 0.0 <= rep < 2.0
    # All approaches land near the target (no hysteresis blow-up).
    assert np.all(np.abs(np.array(means) - 1.0) < 0.12)
