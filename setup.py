"""Setup shim for environments without the `wheel` package (offline CI).

`pip install -e .` uses pyproject.toml metadata; this file only enables
the legacy `python setup.py develop` fallback.
"""

from setuptools import setup

setup()
