"""Comparator flow meters from the paper's results discussion.

The Endress+Hauser Promag 50 magnetic meter (the calibration reference,
"resolution lower than ±0.5% respect to full scale") and a turbine-wheel
meter (the paper claims cost/reliability parity-or-better: "the same
accuracy of the turbine wheel devices with cost reduction and improved
reliability since no mechanical moving parts are exposed in water").
"""

from repro.baselines.base import FlowMeter, MeterTraits
from repro.baselines.promag import Promag50
from repro.baselines.turbine import TurbineMeter
from repro.baselines.venturi import VenturiMeter

__all__ = ["FlowMeter", "MeterTraits", "Promag50", "TurbineMeter", "VenturiMeter"]
