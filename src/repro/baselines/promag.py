"""Endress+Hauser Proline Promag 50 electromagnetic flow meter model.

The paper's reference instrument: "a commercial high resolution magnetic
water meter" with "resolution lower than ±0.5% respect to full scale".
Electromagnetic meters read the Faraday voltage of the conductive water
moving through a magnetic field — no moving parts, excellent linearity,
but a full spool piece: expensive and not hot-insertable.

Model: a small calibration gain error (within the accuracy class), white
resolution noise, and a fast first-order electrode-filter response.
Bidirectional, as the real device.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.baselines.base import FlowMeter, MeterTraits

__all__ = ["Promag50"]


class Promag50(FlowMeter):
    """Reference-grade magnetic meter.

    Parameters
    ----------
    full_scale_mps:
        Configured span (paper line: 2.5 m/s).
    accuracy_of_reading:
        Calibration-class gain error bound (±0.5 % of reading for the
        Promag 50 family).
    resolution_fraction_fs:
        1-sigma single-reading noise as a fraction of full scale — the
        "high resolution" the paper leans on; 0.05 % FS.
    response_time_s:
        Output damping of the transmitter.
    seed:
        Draw for this unit's realised gain error.
    """

    def __init__(self, full_scale_mps: float = 2.5,
                 accuracy_of_reading: float = 0.005,
                 resolution_fraction_fs: float = 0.0005,
                 response_time_s: float = 0.1,
                 seed: int = 77) -> None:
        if full_scale_mps <= 0.0:
            raise ConfigurationError("full scale must be positive")
        if not 0.0 <= accuracy_of_reading < 0.1:
            raise ConfigurationError("accuracy class out of plausible range")
        if resolution_fraction_fs < 0.0 or response_time_s <= 0.0:
            raise ConfigurationError("noise and response time must be valid")
        self.full_scale_mps = full_scale_mps
        self.accuracy_of_reading = accuracy_of_reading
        self.resolution_fraction_fs = resolution_fraction_fs
        self.response_time_s = response_time_s
        rng = np.random.default_rng(seed)
        # A real unit sits somewhere inside its accuracy class.
        self._gain = 1.0 + float(rng.uniform(-accuracy_of_reading,
                                             accuracy_of_reading)) * 0.5
        self._rng = rng
        self._state = 0.0
        self.traits = MeterTraits(
            name="Promag 50 (magnetic)",
            cost_eur=3500.0,
            has_moving_parts=False,
            intrusive=False,
            hot_insertable=False,
        )

    def read(self, true_speed_mps: float, dt_s: float) -> float:
        if dt_s <= 0.0:
            raise ConfigurationError("dt must be positive")
        alpha = 1.0 - np.exp(-dt_s / self.response_time_s)
        self._state += alpha * (true_speed_mps * self._gain - self._state)
        noise = self.resolution_fraction_fs * self.full_scale_mps * self._rng.normal()
        return float(self._state + noise)

    def reset(self) -> None:
        self._state = 0.0
