"""Venturi differential-pressure flow meter model.

The paper's introduction positions the MAF against classical *intrusive*
meters: "Some sensors perform flow detection through a pressure
variation in the measuring line obtained with porous sections or
different section size in the line (Venturi effect) ... All above
mentioned sensors perform an intrusive measurement, since they induce a
perturbation in the flow under test (e.g. a pressure loss)."

Model: dp = K * rho * v^2 / 2 read by a pressure transducer with a
fixed absolute noise floor — the square-law compression makes low-flow
readings disappear into that floor (terrible turndown), and the device
permanently burns head (pressure loss) the paper's non-intrusive sensor
does not.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.baselines.base import FlowMeter, MeterTraits

__all__ = ["VenturiMeter"]

WATER_DENSITY = 998.0


class VenturiMeter(FlowMeter):
    """Venturi tube + differential-pressure transducer.

    Parameters
    ----------
    beta:
        Throat/pipe diameter ratio (0.3 … 0.75 per ISO 5167).
    dp_noise_pa:
        RMS noise floor of the dp transducer.
    dp_full_scale_pa:
        Transducer span; dp beyond it clips.
    discharge_coefficient:
        Cd of the tube (≈0.98 for a machined venturi).
    seed:
        Noise seed.
    """

    def __init__(self, beta: float = 0.6, dp_noise_pa: float = 15.0,
                 dp_full_scale_pa: float = 50_000.0,
                 discharge_coefficient: float = 0.98,
                 seed: int = 99) -> None:
        if not 0.3 <= beta <= 0.75:
            raise ConfigurationError("beta outside the ISO 5167 range")
        if dp_noise_pa < 0.0 or dp_full_scale_pa <= 0.0:
            raise ConfigurationError("transducer parameters must be valid")
        if not 0.9 <= discharge_coefficient <= 1.0:
            raise ConfigurationError("implausible discharge coefficient")
        self.beta = beta
        self.dp_noise_pa = dp_noise_pa
        self.dp_full_scale_pa = dp_full_scale_pa
        self.cd = discharge_coefficient
        self._rng = np.random.default_rng(seed)
        # Velocity-of-approach factor: dp = (rho/2) (v/ (Cd E))^2 ... with
        # E = 1/sqrt(1 - beta^4), referenced to pipe velocity.
        self._e = 1.0 / np.sqrt(1.0 - beta**4)
        self.traits = MeterTraits(
            name="venturi dP",
            cost_eur=900.0,
            has_moving_parts=False,
            intrusive=True,
            hot_insertable=False,
        )

    def _dp_pa(self, v_mps: float) -> float:
        """True differential pressure at a pipe speed."""
        v_throat = abs(v_mps) * self._e / self.cd / self.beta**2
        return 0.5 * WATER_DENSITY * (v_throat**2 - v_mps**2)

    def read(self, true_speed_mps: float, dt_s: float) -> float:
        if dt_s <= 0.0:
            raise ConfigurationError("dt must be positive")
        dp = self._dp_pa(true_speed_mps)
        dp_meas = dp + self.dp_noise_pa * float(self._rng.normal())
        dp_meas = float(np.clip(dp_meas, 0.0, self.dp_full_scale_pa))
        # Invert the square law (unsigned: dp cannot tell direction).
        scale = self._dp_pa(1.0)
        return float(np.sqrt(dp_meas / scale))

    def permanent_pressure_loss_pa(self, v_mps: float) -> float:
        """Unrecovered head the tube burns (10-15 % of dp for a venturi)."""
        return 0.12 * self._dp_pa(v_mps)
