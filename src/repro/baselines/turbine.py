"""Turbine-wheel flow meter model (paper ref. [5]).

The incumbent technology the paper positions against: comparable
accuracy to the MAF system but with a rotor, bearings and a pickup in
the water — so it stalls at low flow, lags steps with rotor inertia,
quantises into pulses, and wears (K-factor drift) over service life.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.baselines.base import FlowMeter, MeterTraits

__all__ = ["TurbineMeter"]


class TurbineMeter(FlowMeter):
    """Axial turbine meter with inertia, stall and wear.

    Parameters
    ----------
    full_scale_mps:
        Configured span.
    stall_speed_mps:
        Below this, bearing friction stops the rotor (reads 0).
    rotor_time_constant_s:
        First-order rotor spin-up/down time at mid flow.
    pulses_per_meter:
        Pickup pulses per meter of flow — sets the quantisation floor
        for a fixed gate time.
    gate_time_s:
        Pulse-counting window of the totaliser electronics.
    wear_drift_per_kh:
        Fractional under-read accumulated per 1000 h of running (bearing
        wear makes turbines read low over life).
    seed:
        Noise seed.
    """

    def __init__(self, full_scale_mps: float = 2.5,
                 stall_speed_mps: float = 0.05,
                 rotor_time_constant_s: float = 0.5,
                 pulses_per_meter: float = 400.0,
                 gate_time_s: float = 1.0,
                 wear_drift_per_kh: float = 0.002,
                 seed: int = 88) -> None:
        if full_scale_mps <= 0.0 or stall_speed_mps < 0.0:
            raise ConfigurationError("speeds must be valid")
        if rotor_time_constant_s <= 0.0 or pulses_per_meter <= 0.0 or gate_time_s <= 0.0:
            raise ConfigurationError("rotor parameters must be positive")
        if wear_drift_per_kh < 0.0:
            raise ConfigurationError("wear drift must be non-negative")
        self.full_scale_mps = full_scale_mps
        self.stall_speed_mps = stall_speed_mps
        self.rotor_time_constant_s = rotor_time_constant_s
        self.pulses_per_meter = pulses_per_meter
        self.gate_time_s = gate_time_s
        self.wear_drift_per_kh = wear_drift_per_kh
        self._rng = np.random.default_rng(seed)
        self._rotor_speed = 0.0
        self._running_hours = 0.0
        self.traits = MeterTraits(
            name="turbine wheel",
            cost_eur=400.0,
            has_moving_parts=True,
            intrusive=True,
            hot_insertable=False,
        )

    @property
    def wear_factor(self) -> float:
        """Current K-factor degradation multiplier (<= 1)."""
        return 1.0 - self.wear_drift_per_kh * self._running_hours / 1000.0

    def age(self, running_hours: float) -> None:
        """Accumulate service time (wear)."""
        if running_hours < 0.0:
            raise ConfigurationError("hours must be non-negative")
        self._running_hours += running_hours

    def read(self, true_speed_mps: float, dt_s: float) -> float:
        if dt_s <= 0.0:
            raise ConfigurationError("dt must be positive")
        v = abs(true_speed_mps)
        # Rotor dynamics: relaxes toward the flow speed unless stalled.
        target = 0.0 if v < self.stall_speed_mps else v
        alpha = 1.0 - np.exp(-dt_s / self.rotor_time_constant_s)
        self._rotor_speed += alpha * (target - self._rotor_speed)
        if self._rotor_speed < self.stall_speed_mps / 2.0 and target == 0.0:
            self._rotor_speed = 0.0
        self._running_hours += dt_s / 3600.0
        # Pulse quantisation over the gate window, with jitter of ±1 count.
        pulses = self._rotor_speed * self.wear_factor \
            * self.pulses_per_meter * self.gate_time_s
        counted = np.floor(pulses + self._rng.uniform())
        return float(counted / (self.pulses_per_meter * self.gate_time_s))

    def reset(self) -> None:
        self._rotor_speed = 0.0
