"""Common interface for comparator flow meters."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MeterTraits", "FlowMeter"]


@dataclass(frozen=True)
class MeterTraits:
    """Deployment-relevant properties surfaced by the comparison bench.

    Attributes
    ----------
    name:
        Device name.
    cost_eur:
        Approximate unit cost (order-of-magnitude comparisons only —
        the paper claims "more than one order of magnitude" reduction).
    has_moving_parts:
        Mechanical wear parts exposed to water.
    intrusive:
        Perturbs the flow / causes pressure loss.
    hot_insertable:
        Can be mounted without stopping the line.
    """

    name: str
    cost_eur: float
    has_moving_parts: bool
    intrusive: bool
    hot_insertable: bool

    def __post_init__(self) -> None:
        if self.cost_eur <= 0.0:
            raise ConfigurationError("cost must be positive")


class FlowMeter(ABC):
    """A device that turns the true line speed into a reading."""

    traits: MeterTraits

    @abstractmethod
    def read(self, true_speed_mps: float, dt_s: float) -> float:
        """Advance internal dynamics by ``dt_s`` and return a reading [m/s]."""

    def reset(self) -> None:
        """Return to power-on state (default: nothing to do)."""
