"""Timer and watchdog peripherals (§3: "timers, watchdog").

The watchdog is safety-relevant for an autonomous metering point: if
the conditioning firmware hangs (e.g. stuck waiting on a dead ADC), the
watchdog expires and forces a reset instead of silently reporting a
frozen flow value — exactly the failure the leak-detection application
cannot tolerate.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["PeriodicTimer", "Watchdog", "WatchdogReset"]


class WatchdogReset(Exception):
    """Raised by the watchdog model when the timeout expires.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a watchdog
    reset is a system event the test harness must always see, never a
    library error a broad handler should swallow.
    """


class PeriodicTimer:
    """Down-counting auto-reload timer with an optional callback."""

    def __init__(self, period_s: float,
                 callback: Callable[[], None] | None = None) -> None:
        if period_s <= 0.0:
            raise ConfigurationError("timer period must be positive")
        self.period_s = period_s
        self.callback = callback
        self._remaining = period_s
        self._fired = 0

    @property
    def fire_count(self) -> int:
        """Expirations so far."""
        return self._fired

    def advance(self, dt: float) -> int:
        """Advance time; returns how many times the timer fired."""
        if dt < 0.0:
            raise ConfigurationError("dt must be non-negative")
        fires = 0
        self._remaining -= dt
        while self._remaining <= 0.0:
            self._remaining += self.period_s
            fires += 1
            self._fired += 1
            if self.callback is not None:
                self.callback()
        return fires

    def restart(self) -> None:
        """Reload the full period."""
        self._remaining = self.period_s


class Watchdog:
    """Window-less watchdog: kick it before ``timeout_s`` elapses.

    Usage inside a control loop::

        wd = Watchdog(timeout_s=0.5)
        while True:
            loop_body()
            wd.kick()
            wd.advance(dt)      # driven from the same time base
    """

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0.0:
            raise ConfigurationError("watchdog timeout must be positive")
        self.timeout_s = timeout_s
        self._since_kick = 0.0
        self._resets = 0
        self._enabled = True

    @property
    def reset_count(self) -> int:
        """Resets forced so far."""
        return self._resets

    def enable(self, on: bool = True) -> None:
        """Gate the watchdog (disabled during deep sleep)."""
        self._enabled = on
        if on:
            self._since_kick = 0.0

    def kick(self) -> None:
        """Service the watchdog (the firmware's liveness proof)."""
        self._since_kick = 0.0

    def advance(self, dt: float) -> None:
        """Advance time.

        Raises
        ------
        WatchdogReset
            When the timeout expires without a kick.  The counter is
            cleared so the handler can resume after "reset".
        """
        if dt < 0.0:
            raise ConfigurationError("dt must be non-negative")
        if not self._enabled:
            return
        self._since_kick += dt
        if self._since_kick >= self.timeout_s:
            self._resets += 1
            self._since_kick = 0.0
            raise WatchdogReset(
                f"watchdog expired after {self.timeout_s} s without service "
                f"(reset #{self._resets})")
