"""SPI peripheral model (§3: "SPIs (Serial Peripheral Interface)").

Full-duplex mode-configurable master/slave byte exchange.  On the real
board the SPI talks to the external reference meter's totaliser and to
host-side configuration tools; in the reproduction it is exercised by
the platform tests and the telemetry example.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["SpiMode", "SpiSlave", "SpiMaster", "LoopbackSlave", "RegisterSlave"]


class SpiMode:
    """Clock polarity/phase combinations (mode 0..3)."""

    VALID = (0, 1, 2, 3)


class SpiSlave:
    """Interface for a device on the bus: one byte in, one byte out."""

    def exchange_byte(self, mosi: int) -> int:
        """Consume the master's byte, return the slave's byte."""
        raise NotImplementedError

    def select(self) -> None:
        """Chip-select asserted (start of a transaction)."""

    def deselect(self) -> None:
        """Chip-select released (end of a transaction)."""


class LoopbackSlave(SpiSlave):
    """Echoes every byte back (test-bus loopback, §3's test bus)."""

    def exchange_byte(self, mosi: int) -> int:
        return mosi


class RegisterSlave(SpiSlave):
    """A register-file-backed slave: [addr][data...] write, addr|0x80 read.

    Byte protocol: first byte of the transaction is the address (MSB set
    for read); subsequent bytes write to / read from auto-incrementing
    addresses.
    """

    def __init__(self, size: int = 64) -> None:
        if size <= 0 or size > 128:
            raise ConfigurationError("register slave size must be in (0, 128]")
        self._regs = bytearray(size)
        self._addr: int | None = None
        self._reading = False

    def select(self) -> None:
        self._addr = None
        self._reading = False

    def exchange_byte(self, mosi: int) -> int:
        if not 0 <= mosi <= 0xFF:
            raise ConfigurationError("SPI bytes must be 8-bit")
        if self._addr is None:
            self._reading = bool(mosi & 0x80)
            self._addr = mosi & 0x7F
            if self._addr >= len(self._regs):
                raise ConfigurationError(
                    f"SPI register address {self._addr} out of range")
            return 0x00
        value = self._regs[self._addr]
        if not self._reading:
            self._regs[self._addr] = mosi
        self._addr = (self._addr + 1) % len(self._regs)
        return value

    def peek(self, address: int) -> int:
        """Direct register inspection for tests."""
        return self._regs[address]


class SpiMaster:
    """Byte-granular SPI master.

    Parameters
    ----------
    mode:
        SPI mode 0..3 (modelled for configuration completeness; byte
        semantics are mode-independent at this abstraction level).
    clock_hz:
        Bus clock, used to report transfer durations for the power and
        scheduler models.
    """

    def __init__(self, mode: int = 0, clock_hz: float = 1.0e6) -> None:
        if mode not in SpiMode.VALID:
            raise ConfigurationError(f"SPI mode must be one of {SpiMode.VALID}")
        if clock_hz <= 0.0:
            raise ConfigurationError("clock must be positive")
        self.mode = mode
        self.clock_hz = clock_hz

    def transfer(self, slave: SpiSlave, mosi: bytes) -> tuple[bytes, float]:
        """One chip-select transaction.

        Returns
        -------
        (miso, duration_s)
            The slave's bytes and the bus time consumed.
        """
        slave.select()
        miso = bytearray()
        try:
            for byte in mosi:
                miso.append(slave.exchange_byte(byte))
        finally:
            slave.deselect()
        duration = len(mosi) * 8.0 / self.clock_hz
        return bytes(miso), duration
