"""UART peripheral model (§3: "standard IPs such as ... UARTs").

Bit-level 8-N-1 (configurable parity) transmitter/receiver pair.  The
deployed monitor streams measurement frames over this link
(:mod:`repro.conditioning.telemetry`); the model is bit-accurate so the
telemetry tests can inject line noise and verify the framing layer's
error detection.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Parity", "UartTransmitter", "UartReceiver", "UartLink"]


class Parity(Enum):
    """Parity configuration."""

    NONE = "none"
    EVEN = "even"
    ODD = "odd"


def _parity_bit(byte: int, parity: Parity) -> int | None:
    ones = bin(byte).count("1")
    if parity is Parity.NONE:
        return None
    if parity is Parity.EVEN:
        return ones & 1
    return (ones & 1) ^ 1


class UartTransmitter:
    """Serialises bytes into line bits (idle-high convention)."""

    def __init__(self, parity: Parity = Parity.NONE) -> None:
        self.parity = parity

    def serialise(self, data: bytes) -> np.ndarray:
        """Bitstream (one entry per bit time): start, 8 data LSB-first,
        optional parity, stop."""
        bits: list[int] = []
        for byte in data:
            if not 0 <= byte <= 0xFF:
                raise ConfigurationError("bytes must be 8-bit")
            bits.append(0)  # start
            bits.extend((byte >> i) & 1 for i in range(8))
            p = _parity_bit(byte, self.parity)
            if p is not None:
                bits.append(p)
            bits.append(1)  # stop
        return np.array(bits, dtype=np.uint8)


class UartReceiver:
    """Deserialises line bits back into bytes with error flags."""

    def __init__(self, parity: Parity = Parity.NONE) -> None:
        self.parity = parity

    def frame_bits(self) -> int:
        """Bits per character frame."""
        return 10 + (0 if self.parity is Parity.NONE else 1)

    def deserialise(self, bits: np.ndarray) -> tuple[bytes, list[int]]:
        """Decode a bitstream.

        Returns
        -------
        (data, error_indices)
            Decoded bytes and the character indices whose frame had a
            framing or parity error (those bytes are still returned —
            the upper layer's CRC decides what to drop).
        """
        frame = self.frame_bits()
        stream = np.asarray(bits, dtype=np.uint8)
        if stream.size % frame != 0:
            raise ConfigurationError(
                f"bitstream length {stream.size} is not a multiple of the "
                f"{frame}-bit frame")
        out = bytearray()
        errors: list[int] = []
        for i in range(stream.size // frame):
            chunk = stream[i * frame:(i + 1) * frame]
            start, payload = chunk[0], chunk[1:9]
            byte = int(sum(int(b) << k for k, b in enumerate(payload)))
            bad = start != 0 or chunk[-1] != 1
            if self.parity is not Parity.NONE:
                expected = _parity_bit(byte, self.parity)
                bad = bad or int(chunk[9]) != expected
            if bad:
                errors.append(i)
            out.append(byte)
        return bytes(out), errors


class UartLink:
    """A TX → (noisy line) → RX pair.

    Parameters
    ----------
    parity:
        Shared parity configuration.
    bit_error_rate:
        Probability of each line bit flipping in transit.
    seed:
        Noise seed.
    """

    def __init__(self, parity: Parity = Parity.NONE,
                 bit_error_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= bit_error_rate < 0.5:
            raise ConfigurationError("bit error rate must be in [0, 0.5)")
        self.tx = UartTransmitter(parity)
        self.rx = UartReceiver(parity)
        self.bit_error_rate = bit_error_rate
        self._rng = np.random.default_rng(seed)

    def transfer(self, data: bytes) -> tuple[bytes, list[int]]:
        """Send bytes through the (possibly noisy) line."""
        bits = self.tx.serialise(data)
        if self.bit_error_rate > 0.0 and bits.size:
            flips = self._rng.random(bits.size) < self.bit_error_rate
            bits = bits ^ flips.astype(np.uint8)
        return self.rx.deserialise(bits)
