"""Power-state model of the dedicated ASIC (§7 "Next steps").

"The dedicated asic, currently in fab, features advanced low power
techniques with deep sleep mode for a considerable power saving allowing
the whole system to be supplied by rechargeable batteries (4 alkaline
AA) that guarantees autonomy of one year for a typical sensor usage."

Experiment E12 reproduces that budget: a duty-cycled schedule (short
measurement bursts, deep sleep in between) against a 4xAA pack.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError

__all__ = ["PowerState", "PowerModel", "BatteryPack"]

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


class PowerState(Enum):
    """Operating states of the ASIC + sensor system."""

    MEASURE = "measure"          # loop closed, heater driven, CPU active
    IDLE = "idle"                # electronics on, heater off
    DEEP_SLEEP = "deep_sleep"    # RTC + wake logic only


@dataclass(frozen=True)
class PowerModel:
    """Current draw per state at the battery terminal.

    Defaults are sized for a 0.35 µm BCD mixed-signal ASIC driving the
    MAF bridge: measurement is dominated by the heater (tens of mW into
    50 Ω) plus analog front-end and CPU; deep sleep is RTC-class.

    Attributes
    ----------
    measure_current_a:
        Draw while the CTA loop runs (heater + AFE + ADC + CPU).
    idle_current_a:
        Electronics awake, heater off.
    deep_sleep_current_a:
        Sleep mode (paper's "advanced low power techniques").
    regulator_efficiency:
        DC/DC efficiency from battery to rails.
    """

    measure_current_a: float = 25.0e-3
    idle_current_a: float = 2.0e-3
    deep_sleep_current_a: float = 8.0e-6
    regulator_efficiency: float = 0.85

    def __post_init__(self) -> None:
        currents = (self.measure_current_a, self.idle_current_a,
                    self.deep_sleep_current_a)
        if any(c <= 0.0 for c in currents):
            raise ConfigurationError("state currents must be positive")
        if not (self.deep_sleep_current_a < self.idle_current_a
                < self.measure_current_a):
            raise ConfigurationError(
                "expected deep_sleep < idle < measure current ordering")
        if not 0.0 < self.regulator_efficiency <= 1.0:
            raise ConfigurationError("regulator efficiency must be in (0, 1]")

    def state_current_a(self, state: PowerState) -> float:
        """Battery current in a state (regulator loss included)."""
        raw = {
            PowerState.MEASURE: self.measure_current_a,
            PowerState.IDLE: self.idle_current_a,
            PowerState.DEEP_SLEEP: self.deep_sleep_current_a,
        }[state]
        return raw / self.regulator_efficiency

    def average_current_a(self, schedule: list[tuple[PowerState, float]]) -> float:
        """Average current of a repeating schedule [(state, seconds), ...]."""
        if not schedule:
            raise ConfigurationError("schedule must not be empty")
        total_t = 0.0
        total_q = 0.0
        for state, duration in schedule:
            if duration < 0.0:
                raise ConfigurationError("durations must be non-negative")
            total_t += duration
            total_q += self.state_current_a(state) * duration
        if total_t <= 0.0:
            raise ConfigurationError("schedule has zero total duration")
        return total_q / total_t

    def duty_cycled_current_a(self, measure_s: float, period_s: float,
                              wake_s: float = 0.05) -> float:
        """Average current of periodic measurement bursts.

        A burst of ``measure_s`` (plus ``wake_s`` of idle warm-up for
        references and filters to settle) every ``period_s``, deep sleep
        in between — the paper's "typical sensor usage".
        """
        if period_s <= measure_s + wake_s:
            raise ConfigurationError("period must exceed the burst length")
        return self.average_current_a([
            (PowerState.IDLE, wake_s),
            (PowerState.MEASURE, measure_s),
            (PowerState.DEEP_SLEEP, period_s - measure_s - wake_s),
        ])


@dataclass(frozen=True)
class BatteryPack:
    """Primary-cell pack (default: the paper's 4 alkaline AA).

    Attributes
    ----------
    cells:
        Series cell count.
    cell_capacity_ah:
        Usable capacity per cell at low drain.
    usable_fraction:
        Derating for self-discharge, temperature and end-of-life voltage.
    """

    cells: int = 4
    cell_capacity_ah: float = 2.8
    usable_fraction: float = 0.80

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ConfigurationError("need at least one cell")
        if self.cell_capacity_ah <= 0.0:
            raise ConfigurationError("capacity must be positive")
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError("usable fraction must be in (0, 1]")

    @property
    def usable_capacity_ah(self) -> float:
        """Usable charge of the pack [Ah] (series cells share one charge)."""
        return self.cell_capacity_ah * self.usable_fraction

    def autonomy_s(self, average_current_a: float) -> float:
        """Runtime [s] at a given average drain."""
        if average_current_a <= 0.0:
            raise ConfigurationError("average current must be positive")
        return self.usable_capacity_ah * 3600.0 / average_current_a

    def autonomy_years(self, average_current_a: float) -> float:
        """Runtime in years — the unit of the paper's claim."""
        return self.autonomy_s(average_current_a) / SECONDS_PER_YEAR
