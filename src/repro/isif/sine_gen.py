"""DDS sine-wave generator IP.

Part of the ISIF digital section ("modulator and channel demodulators
... and sine wave generator").  The anemometer does not excite its
sensor with AC, but the IP is exercised by the platform self-test and
by the design-space-exploration bench, so it is implemented faithfully:
a phase accumulator addressing a quarter-wave LUT.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["SineGenerator"]


class SineGenerator:
    """Phase-accumulator DDS with quarter-wave compression.

    Parameters
    ----------
    sample_rate_hz:
        Clock of the IP.
    phase_bits:
        Accumulator width (frequency resolution = fs / 2**phase_bits).
    lut_bits:
        Address width of the quarter-wave LUT.
    amplitude_bits:
        Output word resolution (signed).
    """

    def __init__(self, sample_rate_hz: float, phase_bits: int = 24,
                 lut_bits: int = 10, amplitude_bits: int = 12) -> None:
        if sample_rate_hz <= 0.0:
            raise ConfigurationError("sample rate must be positive")
        if not 8 <= phase_bits <= 32:
            raise ConfigurationError("phase_bits must be in [8, 32]")
        if not 4 <= lut_bits <= phase_bits - 2:
            raise ConfigurationError("lut_bits must be in [4, phase_bits-2]")
        if not 4 <= amplitude_bits <= 16:
            raise ConfigurationError("amplitude_bits must be in [4, 16]")
        self.sample_rate_hz = sample_rate_hz
        self.phase_bits = phase_bits
        self.lut_bits = lut_bits
        self.amplitude_bits = amplitude_bits
        self._acc = 0
        self._fcw = 0
        amp = (1 << (amplitude_bits - 1)) - 1
        idx = np.arange(1 << lut_bits)
        self._lut = np.round(
            amp * np.sin(np.pi / 2.0 * (idx + 0.5) / (1 << lut_bits))
        ).astype(int)

    @property
    def frequency_resolution_hz(self) -> float:
        """Smallest programmable frequency step."""
        return self.sample_rate_hz / (1 << self.phase_bits)

    def set_frequency(self, hz: float) -> float:
        """Program the frequency; returns the actually realised value."""
        if not 0.0 <= hz < self.sample_rate_hz / 2.0:
            raise ConfigurationError("frequency must be in [0, Nyquist)")
        self._fcw = int(round(hz / self.sample_rate_hz * (1 << self.phase_bits)))
        return self._fcw * self.frequency_resolution_hz

    def step(self) -> int:
        """One clock: returns the signed LUT output code."""
        self._acc = (self._acc + self._fcw) & ((1 << self.phase_bits) - 1)
        quadrant = self._acc >> (self.phase_bits - 2)
        index = (self._acc >> (self.phase_bits - 2 - self.lut_bits)) & ((1 << self.lut_bits) - 1)
        if quadrant == 0:
            return int(self._lut[index])
        if quadrant == 1:
            return int(self._lut[(1 << self.lut_bits) - 1 - index])
        if quadrant == 2:
            return -int(self._lut[index])
        return -int(self._lut[(1 << self.lut_bits) - 1 - index])

    def generate(self, n: int) -> np.ndarray:
        """Run n clocks and return the sample block."""
        if n < 0:
            raise ConfigurationError("n must be non-negative")
        return np.array([self.step() for _ in range(n)], dtype=int)
