"""The assembled ISIF platform (fig. 3).

Aggregates four input channels, the sensor-driving DACs, the software-IP
scheduler and the power model into one object, mirroring the block
diagram: "an analog front end for sensor driving, signal acquisition,
and basic analog conditioning; a digital DSP section based on LEON core;
and peripherals".

:meth:`ISIFPlatform.for_anemometer` returns the platform configured the
way §4 describes for the MAF sensor: channels 0/1 in instrument-amplifier
mode on the two bridge differentials, the 12-bit DACs driving the bridge
supplies, and the digital decimation + low-pass in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.isif.afe import AFEConfig, ReadoutMode
from repro.isif.channel import ChannelConfig, InputChannel
from repro.isif.dac import ThermometerDAC
from repro.isif.power import PowerModel
from repro.isif.scheduler import CpuModel, RealTimeScheduler
from repro.isif.sine_gen import SineGenerator

__all__ = ["ISIFPlatform"]

#: Number of dedicated analog input channels on the die (§3).
NUM_CHANNELS = 4


class ISIFPlatform:
    """Top-level platform model.

    Parameters
    ----------
    loop_rate_hz:
        Control-loop / conversion tick rate shared by channels, DACs and
        the scheduler.
    channel_configs:
        Optional per-channel configurations (defaults applied when None).
    cpu:
        LEON cycle-budget model.
    seed:
        Base seed; channel/DAC instances derive their own.
    """

    def __init__(self, loop_rate_hz: float = 1000.0,
                 channel_configs: list[ChannelConfig | None] | None = None,
                 cpu: CpuModel | None = None, seed: int = 42) -> None:
        if loop_rate_hz <= 0.0:
            raise ConfigurationError("loop rate must be positive")
        self.loop_rate_hz = loop_rate_hz
        configs = channel_configs or [None] * NUM_CHANNELS
        if len(configs) != NUM_CHANNELS:
            raise ConfigurationError(f"expected {NUM_CHANNELS} channel configs")
        self.channels: list[InputChannel] = []
        for i, cfg in enumerate(configs):
            cfg = cfg or ChannelConfig(sample_rate_hz=loop_rate_hz, seed=seed + i)
            if cfg.sample_rate_hz != loop_rate_hz:
                cfg = replace(cfg, sample_rate_hz=loop_rate_hz)
            self.channels.append(InputChannel(cfg, name=f"ch{i}"))
        # Sensor driving stage: two 12-bit supplies (one per bridge) and
        # one 10-bit trim DAC (§3: "configurable 12 bit and 10 bit
        # thermometer DACs").
        self.supply_dac_a = ThermometerDAC(bits=12, vref_v=5.0, seed=seed + 10)
        self.supply_dac_b = ThermometerDAC(bits=12, vref_v=5.0, seed=seed + 11)
        self.trim_dac = ThermometerDAC(bits=10, vref_v=5.0, seed=seed + 12)
        self.scheduler = RealTimeScheduler(loop_rate_hz, cpu)
        self.sine_gen = SineGenerator(loop_rate_hz)
        self.power = PowerModel()
        # APB view of the configuration space (§3: AMBA APB/AHB): the
        # four channel register files live at 0x4000_0000 + i * 0x100.
        from repro.isif.bus import AddressMap
        self.bus = AddressMap()
        for i, channel in enumerate(self.channels):
            self.bus.mount(0x4000_0000 + i * 0x100, 0x100, channel.registers)

    @classmethod
    def for_anemometer(cls, loop_rate_hz: float = 1000.0,
                       gain_index: int = 3,
                       digital_lpf_cutoff_hz: float = 50.0,
                       bit_true_adc: bool = False,
                       seed: int = 42) -> "ISIFPlatform":
        """Platform configured per §4 for the MAF hot-wire in water."""
        afe = AFEConfig(mode=ReadoutMode.INSTRUMENT, gain_index=gain_index)
        bridge_cfg = ChannelConfig(
            sample_rate_hz=loop_rate_hz,
            afe=afe,
            bit_true_adc=bit_true_adc,
            digital_lpf_cutoff_hz=digital_lpf_cutoff_hz,
        )
        configs: list[ChannelConfig | None] = [
            replace(bridge_cfg, seed=seed),          # bridge A differential
            replace(bridge_cfg, seed=seed + 100),    # bridge B differential
            None,                                     # spare (reference meter)
            None,                                     # spare (temperature)
        ]
        return cls(loop_rate_hz, configs, seed=seed)

    # -- conveniences --------------------------------------------------------------

    @property
    def dt_s(self) -> float:
        """Control-loop period."""
        return 1.0 / self.loop_rate_hz

    def acquire_bridges(self, diff_a_v: float, diff_b_v: float) -> tuple[float, float]:
        """Convert both bridge differentials this tick (input-referred V)."""
        return self.channels[0].acquire(diff_a_v), self.channels[1].acquire(diff_b_v)

    def drive_bridges(self, volts_a: float, volts_b: float) -> tuple[float, float]:
        """Command both supply DACs; returns realised voltages."""
        code_a = self.supply_dac_a.code_for_voltage(volts_a)
        code_b = self.supply_dac_b.code_for_voltage(volts_b)
        return (self.supply_dac_a.update(code_a, self.dt_s),
                self.supply_dac_b.update(code_b, self.dt_s))

    def self_test(self) -> dict[str, float]:
        """Platform loop-back self-test via the test bus (§3).

        Feeds a DDS sine through channel 2 and measures amplitude and
        noise; returns a small report dict.  Used by the platform unit
        tests and as a power-on check in the examples.
        """
        ch = self.channels[2]
        # Keep the tone inside the digital LPF passband and the AFE rails.
        tone_hz = min(13.0, ch.config.digital_lpf_cutoff_hz / 4.0)
        realised = self.sine_gen.set_frequency(tone_hz)
        n = max(512, int(8 * self.loop_rate_hz / tone_hz))
        full_scale = (1 << (self.sine_gen.amplitude_bits - 1)) - 1
        amplitude_v = 0.05
        samples = self.sine_gen.generate(n) / full_scale * amplitude_v
        out = ch.acquire_block(samples)
        settled = out[n // 4:]
        # acquire() is input-referred, so compare directly to the stimulus.
        measured_amp = float(np.sqrt(2.0) * np.std(settled))
        return {
            "tone_hz": realised,
            "injected_amplitude_v": amplitude_v,
            "measured_amplitude_v": measured_amp,
            "amplitude_error": abs(measured_amp - amplitude_v) / amplitude_v,
        }
