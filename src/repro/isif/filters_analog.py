"""Anti-aliasing low-pass ahead of the ΣΔ ADC.

A second-order Butterworth, discretised once (bilinear transform at the
simulation rate) and run sample-by-sample.  In the real channel this is
a continuous gm-C stage; modelling it discretely at the loop rate is
adequate because everything above the loop Nyquist is already folded by
the simulation itself.
"""

from __future__ import annotations

import numpy as np
from scipy import signal

from repro.errors import ConfigurationError

__all__ = ["AntiAliasFilter"]


class AntiAliasFilter:
    """Second-order Butterworth low-pass, stepped per sample.

    Parameters
    ----------
    cutoff_hz:
        -3 dB corner.
    sample_rate_hz:
        Fixed calling rate; must exceed 2x the corner.
    """

    def __init__(self, cutoff_hz: float, sample_rate_hz: float) -> None:
        if cutoff_hz <= 0.0 or sample_rate_hz <= 0.0:
            raise ConfigurationError("cutoff and sample rate must be positive")
        if cutoff_hz >= sample_rate_hz / 2.0:
            raise ConfigurationError(
                f"cutoff {cutoff_hz} Hz at or above Nyquist of {sample_rate_hz} Hz")
        self.cutoff_hz = cutoff_hz
        self.sample_rate_hz = sample_rate_hz
        self._sos = signal.butter(2, cutoff_hz, fs=sample_rate_hz, output="sos")
        # Per-sample stepping uses a hand-rolled DF2T cascade: calling
        # scipy's sosfilt on length-1 arrays dominates the loop profile.
        self._coeffs = [tuple(float(c) for c in row) for row in self._sos]
        self._state = [[0.0, 0.0] for _ in self._coeffs]

    def step(self, x: float) -> float:
        """Filter one sample (direct-form II transposed per section)."""
        y = float(x)
        for (b0, b1, b2, _a0, a1, a2), st in zip(self._coeffs, self._state):
            out = b0 * y + st[0]
            st[0] = b1 * y - a1 * out + st[1]
            st[1] = b2 * y - a2 * out
            y = out
        return y

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter a block of samples (state carries over)."""
        return np.array([self.step(float(v)) for v in np.asarray(x, dtype=float)])

    def reset(self, value: float = 0.0) -> None:
        """Reset internal state to a settled DC value."""
        self._state = [[0.0, 0.0] for _ in self._coeffs]
        if value != 0.0:
            # Run to steady state on the DC value (cheap: ~10 time consts).
            settle = int(10.0 * self.sample_rate_hz / self.cutoff_hz)
            for _ in range(settle):
                self.step(value)
