"""One complete ISIF input channel (fig. 4): AFE → anti-alias → ΣΔ →
decimation/low-pass.

The channel is configured through its register file exactly as firmware
would configure the silicon: write ``CTRL``/``LPF`` fields, then pulse
``apply_registers``.  Its per-tick product is an *input-referred* digital
sample of the bridge differential — the quantity the closed loop's
reference subtraction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.isif.afe import GAIN_STEPS, AFEConfig, AnalogFrontEnd, ReadoutMode
from repro.isif.filters_analog import AntiAliasFilter
from repro.isif.iir import OnePoleLowpass
from repro.isif.registers import Field, Register, RegisterFile
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaAdc

__all__ = ["ChannelConfig", "InputChannel"]

_MODE_CODES = {0: ReadoutMode.INSTRUMENT, 1: ReadoutMode.CHARGE, 2: ReadoutMode.TRANSRESISTIVE}


@dataclass(frozen=True)
class ChannelConfig:
    """Static channel configuration.

    Attributes
    ----------
    sample_rate_hz:
        Conversion rate (the control-loop tick rate).
    afe:
        Front-end configuration.
    bit_true_adc:
        Select the bit-true ΣΔ + CIC instead of the behavioural ADC.
    adc_osr:
        Oversampling ratio of the bit-true modulator.
    digital_lpf_cutoff_hz:
        Post-decimation one-pole low-pass corner ("The digital section
        decimates the ΣΔ ADC output and low-pass filters", §4).
    vref_v:
        ADC reference (full scale ±vref at the AFE output).
    seed:
        Noise seed for this channel instance.
    """

    sample_rate_hz: float = 1000.0
    afe: AFEConfig = AFEConfig()
    bit_true_adc: bool = False
    adc_osr: int = 64
    digital_lpf_cutoff_hz: float = 50.0
    vref_v: float = 2.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0.0:
            raise ConfigurationError("sample rate must be positive")
        if not 0.0 < self.digital_lpf_cutoff_hz < self.sample_rate_hz / 2.0:
            raise ConfigurationError("digital LPF corner must be inside (0, Nyquist)")


class InputChannel:
    """Stateful signal chain for one analog input."""

    def __init__(self, config: ChannelConfig | None = None, name: str = "ch0") -> None:
        self.name = name
        self.config = config or ChannelConfig()
        self.registers = self._build_registers()
        self._rebuild()

    # -- register interface ------------------------------------------------------

    def _build_registers(self) -> RegisterFile:
        rf = RegisterFile(f"{self.name}_regs")
        rf.add(Register("CTRL", 0x00, reset=0, fields=(
            Field("MODE", 0, 2),
            Field("GAIN", 2, 3),
            Field("ADC_SEL", 5, 1),      # 0 = behavioural, 1 = bit-true
            Field("ENABLE", 6, 1),
        )))
        rf.add(Register("LPF", 0x04, reset=50, fields=(
            Field("CUTOFF_HZ", 0, 12),
        )))
        rf.add(Register("TRIM", 0x08, reset=2048, fields=(
            Field("OFFSET", 0, 12),      # offset trim, ±rail/2 span, mid = 0
        )))
        # Reflect the dataclass defaults into the reset image.
        ctrl = rf.reg("CTRL")
        ctrl.write_field("GAIN", self.config.afe.gain_index)
        ctrl.write_field("ADC_SEL", int(self.config.bit_true_adc))
        ctrl.write_field("ENABLE", 1)
        rf.reg("LPF").write_field("CUTOFF_HZ", int(self.config.digital_lpf_cutoff_hz))
        return rf

    def apply_registers(self) -> None:
        """Rebuild the signal chain from the current register image."""
        ctrl = self.registers.reg("CTRL")
        mode = _MODE_CODES.get(ctrl.read_field("MODE"))
        if mode is None:
            raise ConfigurationError(f"{self.name}: reserved MODE code")
        gain_index = ctrl.read_field("GAIN")
        if gain_index >= len(GAIN_STEPS):
            raise ConfigurationError(f"{self.name}: GAIN code {gain_index} unused")
        trim_code = self.registers.reg("TRIM").read_field("OFFSET")
        trim_v = (trim_code - 2048) / 2048.0 * self.config.afe.rail_v / 2.0
        cutoff = float(self.registers.reg("LPF").read_field("CUTOFF_HZ"))
        if not 0.0 < cutoff < self.config.sample_rate_hz / 2.0:
            raise ConfigurationError(f"{self.name}: LPF cutoff {cutoff} Hz out of range")
        self.config = replace(
            self.config,
            afe=replace(self.config.afe, mode=mode, gain_index=gain_index,
                        offset_trim_v=trim_v),
            bit_true_adc=bool(ctrl.read_field("ADC_SEL")),
            digital_lpf_cutoff_hz=cutoff,
        )
        self._rebuild()

    # -- processing ---------------------------------------------------------------

    def _rebuild(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.afe = AnalogFrontEnd(cfg.afe, rng=np.random.default_rng(cfg.seed + 1))
        anti_alias_corner = min(cfg.sample_rate_hz * 0.4, 4.0 * cfg.digital_lpf_cutoff_hz * 4)
        anti_alias_corner = min(max(anti_alias_corner, cfg.digital_lpf_cutoff_hz * 2),
                                cfg.sample_rate_hz * 0.45)
        self.anti_alias = AntiAliasFilter(anti_alias_corner, cfg.sample_rate_hz)
        if cfg.bit_true_adc:
            self.adc: BehavioralAdc | SigmaDeltaAdc = SigmaDeltaAdc(
                vref_v=cfg.vref_v, osr=cfg.adc_osr,
                rng=np.random.default_rng(cfg.seed + 2))
        else:
            self.adc = BehavioralAdc(vref_v=cfg.vref_v,
                                     rng=np.random.default_rng(cfg.seed + 2))
        self.digital_lpf = OnePoleLowpass(cfg.digital_lpf_cutoff_hz, cfg.sample_rate_hz)
        self._dt = 1.0 / cfg.sample_rate_hz

    def acquire(self, analog_input: float) -> float:
        """One conversion tick: raw analog input → input-referred volts.

        The returned value is divided by the AFE gain so the firmware
        reasons in bridge-voltage units regardless of the PGA setting.
        """
        conditioned = self.afe.process(analog_input, self._dt)
        band_limited = self.anti_alias.step(conditioned)
        code = self.adc.convert(band_limited)
        filtered = self.digital_lpf.step(self.adc.to_volts(code))
        return filtered / self.config.afe.gain

    def acquire_block(self, analog_inputs: np.ndarray) -> np.ndarray:
        """Convert a block of consecutive samples."""
        return np.array([self.acquire(float(v)) for v in analog_inputs])

    def input_referred_noise_vrms(self, samples: int = 2000) -> float:
        """Measure the chain's input-referred noise floor empirically.

        Feeds zero volts for ``samples`` ticks and returns the standard
        deviation of the output — the number that ultimately limits the
        flow resolution (experiment E2).
        """
        if samples < 10:
            raise ConfigurationError("need at least 10 samples")
        out = self.acquire_block(np.zeros(samples))
        settled = out[samples // 5:]
        return float(np.std(settled))
