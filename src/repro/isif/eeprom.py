"""On-chip EEPROM model (§3: "CACHE, ROM RAM and EEPROM memories").

The deployed sensor keeps its calibration image (the fitted King's-law
constants, trim settings, direction offset) in EEPROM.  The model
implements page-organised storage with write-endurance wear, plus the
CRC-protected calibration record layout the firmware uses
(:mod:`repro.conditioning.eeprom_image`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SensorFault

__all__ = ["Eeprom", "crc16_ccitt"]


def crc16_ccitt(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE — the checksum the firmware stores with the
    calibration image (polynomial 0x1021)."""
    crc = seed
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


class Eeprom:
    """Page-organised EEPROM with endurance accounting.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    page_size:
        Write granularity; a write touching a page costs one erase/write
        cycle of that whole page.
    endurance_cycles:
        Cycles per page before wear-out; writes to a worn page corrupt
        (deterministically flip a bit) instead of storing cleanly.
    seed:
        Seed for the wear-out corruption pattern.
    """

    def __init__(self, size_bytes: int = 2048, page_size: int = 32,
                 endurance_cycles: int = 100_000, seed: int = 0) -> None:
        if size_bytes <= 0 or page_size <= 0 or size_bytes % page_size != 0:
            raise ConfigurationError(
                "size must be a positive multiple of the page size")
        if endurance_cycles <= 0:
            raise ConfigurationError("endurance must be positive")
        self.size_bytes = size_bytes
        self.page_size = page_size
        self.endurance_cycles = endurance_cycles
        self._data = bytearray(b"\xff" * size_bytes)
        self._page_cycles = [0] * (size_bytes // page_size)
        self._rng = np.random.default_rng(seed)

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        self._check_range(address, length)
        return bytes(self._data[address:address + length])

    def write(self, address: int, data: bytes) -> None:
        """Write bytes; accounts one cycle per touched page.

        A page past its endurance corrupts one bit of the written data —
        the failure the calibration CRC exists to catch.
        """
        self._check_range(address, len(data))
        if not data:
            return
        first_page = address // self.page_size
        last_page = (address + len(data) - 1) // self.page_size
        payload = bytearray(data)
        for page in range(first_page, last_page + 1):
            self._page_cycles[page] += 1
            if self._page_cycles[page] > self.endurance_cycles:
                # Worn cell: flip one bit of the part landing in this page.
                page_lo = max(page * self.page_size, address) - address
                page_hi = min((page + 1) * self.page_size,
                              address + len(data)) - address
                idx = int(self._rng.integers(page_lo, page_hi))
                payload[idx] ^= 1 << int(self._rng.integers(0, 8))
        self._data[address:address + len(payload)] = payload

    def page_cycles(self, page_index: int) -> int:
        """Accumulated erase/write cycles of one page."""
        if not 0 <= page_index < len(self._page_cycles):
            raise ConfigurationError("page index out of range")
        return self._page_cycles[page_index]

    def wear_out_page(self, page_index: int) -> None:
        """Test hook: age a page to its endurance limit."""
        if not 0 <= page_index < len(self._page_cycles):
            raise ConfigurationError("page index out of range")
        self._page_cycles[page_index] = self.endurance_cycles

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or length < 0 or address + length > self.size_bytes:
            raise ConfigurationError(
                f"access [{address}, {address + length}) outside "
                f"{self.size_bytes}-byte EEPROM")
