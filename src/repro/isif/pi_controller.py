"""PI controller IP — the heart of the constant-temperature loop.

"Closed loop is implemented by software-emulated IPs which feature
reference subtraction, PI controller and feedback actuation directly to
supply the two bridges" (§4).  The controller output is the bridge
supply voltage, which — at loop equilibrium — *is* the measurement
(proportional to the mass flow through King's law).

Anti-windup is conditional integration with back-calculation: when the
output saturates at the DAC range, the integrator only accepts error of
the de-saturating sign.  The fixed-point path matches the hardware IP
bit for bit, as with the other DSP blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.isif.fixed_point import QFormat

__all__ = ["PIConfig", "PIController"]


@dataclass(frozen=True)
class PIConfig:
    """PI gains and limits.

    Attributes
    ----------
    kp:
        Proportional gain [output units / error unit].
    ki:
        Integral gain [output units / (error unit * s)].
    dt_s:
        Fixed execution period of the IP.
    out_min / out_max:
        Actuator limits (the 12-bit DAC's 0..vref span).
    qformat:
        Optional fixed-point datapath format.
    """

    kp: float
    ki: float
    dt_s: float
    out_min: float = 0.0
    out_max: float = 5.0
    qformat: QFormat | None = None

    def __post_init__(self) -> None:
        if self.kp < 0.0 or self.ki < 0.0:
            raise ConfigurationError("PI gains must be non-negative")
        if self.kp == 0.0 and self.ki == 0.0:
            raise ConfigurationError("at least one PI gain must be nonzero")
        if self.dt_s <= 0.0:
            raise ConfigurationError("dt must be positive")
        if self.out_min >= self.out_max:
            raise ConfigurationError("out_min must be below out_max")


class PIController:
    """Discrete PI with conditional-integration anti-windup."""

    def __init__(self, config: PIConfig) -> None:
        self.config = config
        self._integral = 0.0
        self._saturated_sign = 0
        q = config.qformat
        if q is not None:
            self._kp_code = q.to_int(config.kp)
            self._ki_dt_code = q.to_int(config.ki * config.dt_s)
            self._int_code = 0
            self._min_code = q.to_int(config.out_min)
            self._max_code = q.to_int(config.out_max)

    @property
    def integral(self) -> float:
        """Current integrator state (output units)."""
        if self.config.qformat is not None:
            return self.config.qformat.to_float(self._int_code)
        return self._integral

    def preset(self, output: float) -> None:
        """Bumpless start: preset the integrator to a known output."""
        cfg = self.config
        value = float(np.clip(output, cfg.out_min, cfg.out_max))
        self._integral = value
        if cfg.qformat is not None:
            self._int_code = cfg.qformat.to_int(value)
        self._saturated_sign = 0

    def reset(self) -> None:
        """Zero all state."""
        self.preset(self.config.out_min)

    def step(self, error: float) -> float:
        """One control period: error in, actuator command out."""
        if self.config.qformat is None:
            return self._step_float(error)
        q = self.config.qformat
        return q.to_float(self.step_codes(q.to_int(error)))

    def _step_float(self, error: float) -> float:
        cfg = self.config
        if self._saturated_sign == 0 or np.sign(error) != self._saturated_sign:
            self._integral += cfg.ki * error * cfg.dt_s
        raw = cfg.kp * error + self._integral
        out = float(np.clip(raw, cfg.out_min, cfg.out_max))
        if raw > cfg.out_max:
            self._saturated_sign = 1
        elif raw < cfg.out_min:
            self._saturated_sign = -1
        else:
            self._saturated_sign = 0
        # Back-calculate so the integrator can't run past the rails.
        self._integral = float(np.clip(self._integral, cfg.out_min - cfg.kp * abs(error),
                                       cfg.out_max + cfg.kp * abs(error)))
        return out

    def step_codes(self, error_code: int) -> int:
        """Bit-exact integer control step."""
        cfg = self.config
        q = cfg.qformat
        if q is None:
            raise ConfigurationError("controller was built without a Q-format")
        err_sign = (error_code > 0) - (error_code < 0)
        if self._saturated_sign == 0 or err_sign != self._saturated_sign:
            inc = q.mul(self._ki_dt_code, error_code)
            self._int_code = q.saturate(self._int_code + inc)
        p_term = q.mul(self._kp_code, error_code)
        raw = self._int_code + p_term
        if raw > self._max_code:
            self._saturated_sign = 1
            out = self._max_code
        elif raw < self._min_code:
            self._saturated_sign = -1
            out = self._min_code
        else:
            self._saturated_sign = 0
            out = raw
        # Integrator clamp (back-calculation analogue).
        self._int_code = min(max(self._int_code, self._min_code - abs(p_term)),
                             self._max_code + abs(p_term))
        return out
