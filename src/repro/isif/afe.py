"""Programmable analog front-end of one ISIF input channel (fig. 4).

"The readout stage is composed by an operational amplifier that can be
programmed to implement a charge amplifier, a trans-resistive stage or
an instrument amplifier."  The anemometer uses the instrument-amplifier
mode on the bridge differential; the other two modes are implemented for
platform completeness (they serve capacitive and photo/current sensors).

Imperfections modelled: programmable-gain steps, input-referred offset
with trim, input-referred noise (white + 1/f), finite bandwidth
(single-pole), and rail saturation — each one visible to the
calibration firmware the way it would be on silicon.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import math

import numpy as np

from repro.errors import ConfigurationError, SaturationError

__all__ = ["ReadoutMode", "AFEConfig", "AnalogFrontEnd"]


class ReadoutMode(Enum):
    """Operating mode of the programmable readout opamp."""

    INSTRUMENT = "instrument"
    CHARGE = "charge"
    TRANSRESISTIVE = "transresistive"


#: Discrete PGA gain settings available on the channel.
GAIN_STEPS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0)


@dataclass(frozen=True)
class AFEConfig:
    """Static configuration of the front-end.

    Attributes
    ----------
    mode:
        Readout topology.
    gain_index:
        Index into :data:`GAIN_STEPS` (instrument mode).
    rail_v:
        Analog supply rail; outputs clip at ±rail.
    bandwidth_hz:
        Closed-loop single-pole bandwidth.
    offset_v:
        Input-referred offset before trimming.
    offset_trim_v:
        Trim applied by firmware (subtracts from the offset).
    noise_density_v_per_rthz:
        White input noise density [V/√Hz].
    flicker_corner_hz:
        1/f corner of the input noise.
    feedback_capacitance_f:
        Charge-amp feedback capacitor (CHARGE mode only).
    feedback_resistance_ohm:
        Trans-resistance feedback resistor (TRANSRESISTIVE mode only).
    strict:
        If True, clipping raises :class:`SaturationError` instead of
        silently limiting — useful in tests.
    """

    mode: ReadoutMode = ReadoutMode.INSTRUMENT
    gain_index: int = 4
    rail_v: float = 2.5
    bandwidth_hz: float = 10_000.0
    offset_v: float = 0.5e-3
    offset_trim_v: float = 0.0
    noise_density_v_per_rthz: float = 20.0e-9
    flicker_corner_hz: float = 10.0
    feedback_capacitance_f: float = 10.0e-12
    feedback_resistance_ohm: float = 1.0e6
    strict: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.gain_index < len(GAIN_STEPS):
            raise ConfigurationError(
                f"gain_index must be in [0, {len(GAIN_STEPS) - 1}]")
        if self.rail_v <= 0.0 or self.bandwidth_hz <= 0.0:
            raise ConfigurationError("rail and bandwidth must be positive")
        if self.noise_density_v_per_rthz < 0.0 or self.flicker_corner_hz < 0.0:
            raise ConfigurationError("noise parameters must be non-negative")
        if self.feedback_capacitance_f <= 0.0 or self.feedback_resistance_ohm <= 0.0:
            raise ConfigurationError("feedback elements must be positive")

    @property
    def gain(self) -> float:
        """Instrument-amplifier voltage gain of the selected step."""
        return GAIN_STEPS[self.gain_index]


class AnalogFrontEnd:
    """Stateful front-end: call :meth:`process` once per sample.

    The single-pole bandwidth limit is applied as an exact first-order
    discrete filter, and the sampled input-referred noise is the white
    density integrated over the Nyquist band of the calling rate plus a
    1/f contribution approximated by a slow random-walk component.
    """

    def __init__(self, config: AFEConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config or AFEConfig()
        self._rng = rng or np.random.default_rng(0)
        self._state_v = 0.0
        self._flicker_v = 0.0
        self._clipped = False

    @property
    def clipped(self) -> bool:
        """True if the last sample hit a rail (sticky until read)."""
        flag, self._clipped = self._clipped, False
        return flag

    def retrim(self, offset_trim_v: float) -> None:
        """Firmware offset-trim update (register write on silicon)."""
        from dataclasses import replace
        self.config = replace(self.config, offset_trim_v=offset_trim_v)

    def process(self, inp: float, dt: float) -> float:
        """Condition one input sample taken ``dt`` seconds after the last.

        ``inp`` is volts in INSTRUMENT mode, coulombs per step in CHARGE
        mode, amperes in TRANSRESISTIVE mode.
        """
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        cfg = self.config
        ideal = self._ideal_output(inp, dt)
        noisy = ideal + self._sample_noise(dt) * self._output_noise_gain()
        # Single-pole bandwidth.
        alpha = 1.0 - math.exp(-2.0 * math.pi * cfg.bandwidth_hz * dt)
        self._state_v += alpha * (noisy - self._state_v)
        out = self._state_v
        if abs(out) > cfg.rail_v:
            self._clipped = True
            if cfg.strict:
                raise SaturationError(
                    f"AFE output {out:.3f} V beyond ±{cfg.rail_v} V rail")
            out = cfg.rail_v if out > 0.0 else -cfg.rail_v
            self._state_v = out
        return out

    # -- internals ------------------------------------------------------------

    def _ideal_output(self, inp: float, dt: float) -> float:
        cfg = self.config
        residual_offset = cfg.offset_v - cfg.offset_trim_v
        if cfg.mode is ReadoutMode.INSTRUMENT:
            return (inp + residual_offset) * cfg.gain
        if cfg.mode is ReadoutMode.TRANSRESISTIVE:
            return inp * cfg.feedback_resistance_ohm + residual_offset * cfg.gain
        # CHARGE: V = Q / Cf, integrating charge packets per call.
        return inp / cfg.feedback_capacitance_f + residual_offset * cfg.gain

    def _output_noise_gain(self) -> float:
        cfg = self.config
        if cfg.mode is ReadoutMode.INSTRUMENT:
            return cfg.gain
        if cfg.mode is ReadoutMode.TRANSRESISTIVE:
            return cfg.gain
        return 1.0 / (cfg.feedback_capacitance_f * 1e9)  # noise charge -> V

    def _sample_noise(self, dt: float) -> float:
        cfg = self.config
        nyquist = 0.5 / dt
        white_rms = cfg.noise_density_v_per_rthz * math.sqrt(nyquist)
        # 1/f as a bounded random walk with corner-frequency leak.
        leak = math.exp(-2.0 * math.pi * cfg.flicker_corner_hz * dt * 0.1)
        flicker_rms = cfg.noise_density_v_per_rthz * math.sqrt(
            max(math.log(max(cfg.flicker_corner_hz, 1e-3) / 1e-3), 0.0))
        self._flicker_v = self._flicker_v * leak + flicker_rms * math.sqrt(
            max(1.0 - leak * leak, 0.0)) * self._rng.normal()
        return white_rms * self._rng.normal() + self._flicker_v
