"""ISIF (Intelligent Sensor InterFace) platform simulation.

Behaviour-accurate model of the mixed-signal SoC of §3: programmable
analog front-end, ΣΔ ADC (bit-true and behavioural), CIC/FIR decimation,
thermometer DACs, fixed-point digital IPs (FIR, IIR, PI, sine) with
bit-identical hardware/software execution, an APB-like register file, a
LEON cycle-budget scheduler, and the power-state model of the §7 ASIC.
"""

from repro.isif.fixed_point import QFormat
from repro.isif.registers import Register, RegisterFile, Field
from repro.isif.afe import AnalogFrontEnd, ReadoutMode, AFEConfig
from repro.isif.filters_analog import AntiAliasFilter
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaModulator, SigmaDeltaAdc
from repro.isif.decimator import CICDecimator
from repro.isif.dac import ThermometerDAC
from repro.isif.fir import FirFilter, design_lowpass_fir
from repro.isif.iir import IIRBiquad, OnePoleLowpass, design_lowpass_biquad
from repro.isif.pi_controller import PIController, PIConfig
from repro.isif.sine_gen import SineGenerator
from repro.isif.scheduler import RealTimeScheduler, IPTask, CpuModel
from repro.isif.channel import InputChannel, ChannelConfig
from repro.isif.platform import ISIFPlatform
from repro.isif.power import PowerState, PowerModel, BatteryPack
from repro.isif.eeprom import Eeprom, crc16_ccitt
from repro.isif.uart import UartLink, UartTransmitter, UartReceiver, Parity
from repro.isif.spi import SpiMaster, SpiSlave, LoopbackSlave, RegisterSlave
from repro.isif.timers import PeriodicTimer, Watchdog, WatchdogReset
from repro.isif.demodulator import IQDemodulator
from repro.isif.clock import ClockGenerator, ClockDivider
from repro.isif.bus import AddressMap, Mapping
from repro.isif.reference import BandgapReference, ratiometric_gain_error

__all__ = [
    "QFormat",
    "Register",
    "RegisterFile",
    "Field",
    "AnalogFrontEnd",
    "ReadoutMode",
    "AFEConfig",
    "AntiAliasFilter",
    "BehavioralAdc",
    "SigmaDeltaModulator",
    "SigmaDeltaAdc",
    "CICDecimator",
    "ThermometerDAC",
    "FirFilter",
    "design_lowpass_fir",
    "IIRBiquad",
    "OnePoleLowpass",
    "design_lowpass_biquad",
    "PIController",
    "PIConfig",
    "SineGenerator",
    "RealTimeScheduler",
    "IPTask",
    "CpuModel",
    "InputChannel",
    "ChannelConfig",
    "ISIFPlatform",
    "PowerState",
    "PowerModel",
    "BatteryPack",
    "Eeprom",
    "crc16_ccitt",
    "UartLink",
    "UartTransmitter",
    "UartReceiver",
    "Parity",
    "SpiMaster",
    "SpiSlave",
    "LoopbackSlave",
    "RegisterSlave",
    "PeriodicTimer",
    "Watchdog",
    "WatchdogReset",
    "IQDemodulator",
    "ClockGenerator",
    "ClockDivider",
    "AddressMap",
    "Mapping",
    "BandgapReference",
    "ratiometric_gain_error",
]
