"""Channel demodulator IP (§3: "modulator and channel demodulators").

A digital IQ (lock-in) demodulator: the input is mixed with quadrature
DDS references and low-passed, yielding amplitude and phase of the
component at the reference frequency.  On ISIF this conditions
AC-excited sensors (capacitive, resonant); here it also powers the
platform's tone-based self-test with a noise-immune amplitude readout.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.isif.iir import OnePoleLowpass

__all__ = ["IQDemodulator"]


class IQDemodulator:
    """Quadrature lock-in demodulator.

    Parameters
    ----------
    sample_rate_hz:
        Processing rate.
    reference_hz:
        Frequency of interest.
    bandwidth_hz:
        Post-mixer low-pass corner (measurement bandwidth); must be well
        below the reference to reject the 2f image.
    """

    def __init__(self, sample_rate_hz: float, reference_hz: float,
                 bandwidth_hz: float = 1.0) -> None:
        if sample_rate_hz <= 0.0:
            raise ConfigurationError("sample rate must be positive")
        if not 0.0 < reference_hz < sample_rate_hz / 2.0:
            raise ConfigurationError("reference must be inside (0, Nyquist)")
        if not 0.0 < bandwidth_hz <= reference_hz / 2.0:
            raise ConfigurationError(
                "bandwidth must be positive and <= reference/2 "
                "(2f image rejection)")
        self.sample_rate_hz = sample_rate_hz
        self.reference_hz = reference_hz
        self._phase = 0.0
        self._dphi = 2.0 * math.pi * reference_hz / sample_rate_hz
        self._lpf_i = OnePoleLowpass(bandwidth_hz, sample_rate_hz)
        self._lpf_q = OnePoleLowpass(bandwidth_hz, sample_rate_hz)
        self._i = 0.0
        self._q = 0.0

    def step(self, x: float) -> tuple[float, float]:
        """Process one sample; returns the filtered (I, Q) pair."""
        self._i = self._lpf_i.step(x * math.cos(self._phase))
        self._q = self._lpf_q.step(x * -math.sin(self._phase))
        self._phase += self._dphi
        if self._phase > 2.0 * math.pi:
            self._phase -= 2.0 * math.pi
        return self._i, self._q

    def process(self, x: np.ndarray) -> tuple[float, float]:
        """Process a block; returns the final (I, Q)."""
        for sample in np.asarray(x, dtype=float):
            self.step(float(sample))
        return self._i, self._q

    @property
    def amplitude(self) -> float:
        """Amplitude of the locked component (peak, not rms)."""
        return 2.0 * math.hypot(self._i, self._q)

    @property
    def phase_rad(self) -> float:
        """Phase of the locked component relative to the reference."""
        return math.atan2(self._q, self._i)

    def reset(self) -> None:
        """Clear mixer phase and filter state."""
        self._phase = 0.0
        self._lpf_i.reset()
        self._lpf_q.reset()
        self._i = 0.0
        self._q = 0.0
