"""The channel's 16-bit Sigma-Delta ADC.

Two interchangeable models (DESIGN.md §5, ablated in experiment E13):

* :class:`SigmaDeltaAdc` — *bit-true*: a 2nd-order single-bit CIFB
  modulator stepped OSR times per output sample, decimated by the CIC in
  :mod:`repro.isif.decimator`.  Slow but structurally faithful — it
  exhibits real quantisation noise shaping, idle tones and overload.
* :class:`BehavioralAdc` — *noise-equivalent*: quantises directly to
  16 bits and adds the thermal + shaped-quantisation noise budget as a
  Gaussian.  ~100x faster; the default for system benches.

Both present the same interface: ``convert(volts) -> signed int code``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BehavioralAdc", "SigmaDeltaModulator", "SigmaDeltaAdc"]


class BehavioralAdc:
    """Noise-equivalent 16-bit ADC model.

    Parameters
    ----------
    vref_v:
        Full scale is ±vref.
    bits:
        Output word length.
    enob:
        Effective number of bits; total input-referred noise is sized so
        SNR matches this ENOB (quantisation included).  15.0 is typical
        for a 16-bit ΣΔ at moderate OSR.
    rng:
        Noise generator (deterministic when seeded).
    """

    def __init__(self, vref_v: float = 2.5, bits: int = 16, enob: float = 15.0,
                 rng: np.random.Generator | None = None) -> None:
        if vref_v <= 0.0:
            raise ConfigurationError("vref must be positive")
        if not 2 <= bits <= 24:
            raise ConfigurationError("bits must be in [2, 24]")
        if enob > bits:
            raise ConfigurationError("ENOB cannot exceed the word length")
        self.vref_v = vref_v
        self.bits = bits
        self.enob = enob
        self._rng = rng or np.random.default_rng(0)
        self._max_code = (1 << (bits - 1)) - 1
        self._min_code = -(1 << (bits - 1))
        lsb = 2.0 * vref_v / (1 << bits)
        ideal_noise = lsb / np.sqrt(12.0)
        total_noise = ideal_noise * 2.0 ** (bits - enob)
        # Extra (thermal) noise on top of the ideal quantisation floor.
        self._thermal_rms_v = float(np.sqrt(max(total_noise**2 - ideal_noise**2, 0.0)))
        self._lsb_v = lsb

    @property
    def lsb_v(self) -> float:
        """Weight of one output code [V]."""
        return self._lsb_v

    def convert(self, volts: float) -> int:
        """One conversion: signed two's-complement code."""
        noisy = volts + self._thermal_rms_v * self._rng.normal()
        code = int(noisy / self._lsb_v + (0.5 if noisy >= 0.0 else -0.5))
        return min(max(code, self._min_code), self._max_code)

    def to_volts(self, code: int) -> float:
        """Nominal input voltage for a code."""
        return code * self._lsb_v


class SigmaDeltaModulator:
    """2nd-order single-bit CIFB ΣΔ modulator.

    Classic boser-wooley integrator chain:

        x1' = x1 + (u - v)        (v = ±1 feedback)
        x2' = x2 + (x1 - v)
        v   = sign(x2)

    with integrator gains 0.5 / 0.5 for robust stability up to ~-6 dBFS
    inputs.  Input u is normalised to ±1 full scale.
    """

    GAIN1 = 0.5
    GAIN2 = 0.5

    def __init__(self, vref_v: float = 2.5) -> None:
        if vref_v <= 0.0:
            raise ConfigurationError("vref must be positive")
        self.vref_v = vref_v
        self._x1 = 0.0
        self._x2 = 0.0

    def reset(self) -> None:
        """Clear integrator state."""
        self._x1 = 0.0
        self._x2 = 0.0

    def step(self, volts: float) -> int:
        """One modulator clock: returns the output bit as +1 / -1."""
        u = float(np.clip(volts / self.vref_v, -1.2, 1.2))
        v = 1.0 if self._x2 >= 0.0 else -1.0
        self._x1 += self.GAIN1 * (u - v)
        self._x2 += self.GAIN2 * (self._x1 - v)
        # Integrator clipping (finite swing) keeps overload recoverable.
        self._x1 = float(np.clip(self._x1, -4.0, 4.0))
        self._x2 = float(np.clip(self._x2, -4.0, 4.0))
        return 1 if v > 0.0 else -1

    def run(self, volts: np.ndarray) -> np.ndarray:
        """Modulate a whole block (sequential, state carries over)."""
        out = np.empty(len(volts), dtype=np.int8)
        x1, x2 = self._x1, self._x2
        g1, g2 = self.GAIN1, self.GAIN2
        vref = self.vref_v
        for i, sample in enumerate(np.asarray(volts, dtype=float)):
            u = min(max(sample / vref, -1.2), 1.2)
            v = 1.0 if x2 >= 0.0 else -1.0
            x1 += g1 * (u - v)
            x2 += g2 * (x1 - v)
            x1 = min(max(x1, -4.0), 4.0)
            x2 = min(max(x2, -4.0), 4.0)
            out[i] = 1 if v > 0.0 else -1
        self._x1, self._x2 = x1, x2
        return out


class SigmaDeltaAdc:
    """Bit-true ΣΔ ADC: modulator + CIC decimation to 16-bit codes.

    ``convert`` takes the (assumed constant over the conversion) input
    voltage, runs the modulator for OSR clocks, decimates, and scales to
    a signed 16-bit code compatible with :class:`BehavioralAdc`.
    """

    def __init__(self, vref_v: float = 2.5, osr: int = 64, bits: int = 16,
                 thermal_noise_v: float = 10.0e-6,
                 rng: np.random.Generator | None = None) -> None:
        from repro.isif.decimator import CICDecimator  # local to avoid cycle
        if osr < 8:
            raise ConfigurationError("OSR below 8 cannot shape noise usefully")
        self.vref_v = vref_v
        self.osr = osr
        self.bits = bits
        self.thermal_noise_v = thermal_noise_v
        self.modulator = SigmaDeltaModulator(vref_v)
        self._cic = CICDecimator(order=3, rate=osr)
        self._rng = rng or np.random.default_rng(0)
        self._max_code = (1 << (bits - 1)) - 1

    @property
    def lsb_v(self) -> float:
        """Weight of one output code [V]."""
        return 2.0 * self.vref_v / (1 << self.bits)

    def convert(self, volts: float) -> int:
        """One full conversion (OSR modulator clocks)."""
        noise = self._rng.normal(0.0, self.thermal_noise_v, self.osr)
        bits_out = self.modulator.run(volts + noise)
        decimated = self._cic.decimate(bits_out.astype(np.int64))
        if decimated.size == 0:
            # CIC pipeline still filling (first conversion); run once more.
            bits_out = self.modulator.run(volts + noise)
            decimated = self._cic.decimate(bits_out.astype(np.int64))
        # CIC gain is rate**order; normalise to ±1 then to codes.
        normalised = float(decimated[-1]) / self._cic.gain
        code = int(np.floor(normalised * (self._max_code + 1) + 0.5))
        return int(np.clip(code, -self._max_code - 1, self._max_code))

    def to_volts(self, code: int) -> float:
        """Nominal input voltage for a code."""
        return code * self.lsb_v
