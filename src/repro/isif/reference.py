"""Bandgap voltage reference (§3: "service circuitries provide
voltage/current references").

The reference sets the scale of both the ΣΔ ADC and the thermometer
DACs.  Its two imperfections behave very differently at system level:

* the *absolute* tolerance (±0.5 % class after trim) would be a direct
  flow gain error — **if** the ADC and DAC used different references.
  ISIF is ratiometric: both scale from the same bandgap, so the loop's
  supply measurement and actuation errors cancel (a property
  :func:`ratiometric_gain_error` makes explicit and the tests verify);
* the temperature coefficient moves the scale between calibration and
  service — small (25 ppm/K class) but a true drift term.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BandgapReference", "ratiometric_gain_error"]


class BandgapReference:
    """Trimmed bandgap with tolerance, tempco and output noise.

    Parameters
    ----------
    nominal_v:
        Design output (2.5 V for the channel scale, 5 V buffered for
        the DAC span).
    tolerance:
        Post-trim absolute tolerance (fraction); the instance's realised
        value is drawn once.
    tempco_ppm_per_k:
        Linear drift around 25 °C (a trimmed curvature-corrected bandgap
        is 10-50 ppm/K).
    noise_uv_rms:
        Broadband output noise.
    seed:
        Instance draw seed.
    """

    def __init__(self, nominal_v: float = 2.5, tolerance: float = 0.005,
                 tempco_ppm_per_k: float = 25.0,
                 noise_uv_rms: float = 30.0, seed: int = 0) -> None:
        if nominal_v <= 0.0:
            raise ConfigurationError("nominal voltage must be positive")
        if not 0.0 <= tolerance < 0.1:
            raise ConfigurationError("tolerance out of the trimmed-bandgap class")
        if tempco_ppm_per_k < 0.0 or noise_uv_rms < 0.0:
            raise ConfigurationError("tempco and noise must be non-negative")
        self.nominal_v = nominal_v
        self.tolerance = tolerance
        self.tempco_ppm_per_k = tempco_ppm_per_k
        self.noise_uv_rms = noise_uv_rms
        self._rng = np.random.default_rng(seed)
        self._trim_error = float(self._rng.uniform(-tolerance, tolerance))
        self.die_temperature_k = 298.15

    def value_v(self, noisy: bool = False) -> float:
        """Output voltage at the current die temperature."""
        drift = self.tempco_ppm_per_k * 1e-6 * (self.die_temperature_k - 298.15)
        v = self.nominal_v * (1.0 + self._trim_error + drift)
        if noisy and self.noise_uv_rms > 0.0:
            v += self.noise_uv_rms * 1e-6 * float(self._rng.normal())
        return v

    def gain_error_fraction(self) -> float:
        """Fractional scale error vs nominal at the current temperature."""
        return self.value_v() / self.nominal_v - 1.0


def ratiometric_gain_error(adc_reference: BandgapReference,
                           dac_reference: BandgapReference) -> float:
    """Net gain error of a measure-through-actuate loop.

    The CTA loop *measures* the bridge with the ADC scale and *drives*
    it with the DAC scale; the flow observable is their ratio.  With a
    shared reference (same object) the error is exactly zero; with
    independent references it is the mismatch of the two.
    """
    return (dac_reference.value_v() / dac_reference.nominal_v) \
        / (adc_reference.value_v() / adc_reference.nominal_v) - 1.0
