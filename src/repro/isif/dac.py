"""Thermometer-coded DACs of the sensor driving stage.

"The sensor driving stage of the platform is provided by a set of
configurable 12 bit and 10 bit thermometer DACs."  The CTA loop's PI
output lands on a 12-bit DAC that supplies the Wheatstone bridges; a
10-bit one trims the bridge balance.

Thermometer coding means 2^n - 1 nominally equal elements are summed,
which guarantees monotonicity; element mismatch shows up as INL (a
random-walk bow) but never as a missing code — a property the tests
assert and the closed loop quietly depends on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ThermometerDAC"]


class ThermometerDAC:
    """An n-bit thermometer DAC with element mismatch.

    Parameters
    ----------
    bits:
        Resolution; the element array has 2**bits - 1 unit cells.
    vref_v:
        Output at full-scale code.
    mismatch_sigma:
        Relative 1-sigma mismatch of one unit element (0.35 µm BCD
        unit current sources match to ~0.1 % at this size).
    seed:
        Mismatch draw seed — each instance is one particular die.
    settling_time_s:
        First-order output settling; 0 disables dynamics.
    """

    def __init__(self, bits: int = 12, vref_v: float = 5.0,
                 mismatch_sigma: float = 1.0e-3, seed: int = 99,
                 settling_time_s: float = 0.0) -> None:
        if not 4 <= bits <= 14:
            raise ConfigurationError("thermometer DACs beyond 14 bits are impractical")
        if vref_v <= 0.0:
            raise ConfigurationError("vref must be positive")
        if mismatch_sigma < 0.0 or settling_time_s < 0.0:
            raise ConfigurationError("mismatch and settling must be non-negative")
        self.bits = bits
        self.vref_v = vref_v
        self.settling_time_s = settling_time_s
        self.max_code = (1 << bits) - 1
        rng = np.random.default_rng(seed)
        elements = 1.0 + mismatch_sigma * rng.normal(size=self.max_code)
        # Cumulative element sums give every static level exactly once.
        levels = np.concatenate([[0.0], np.cumsum(elements)])
        self._levels_v = levels / levels[-1] * vref_v
        self._output_v = 0.0

    @property
    def lsb_v(self) -> float:
        """Nominal LSB weight [V]."""
        return self.vref_v / self.max_code

    def ideal_output(self, code: int) -> float:
        """Static level for a code, mismatch included, no dynamics [V]."""
        if not 0 <= code <= self.max_code:
            raise ConfigurationError(
                f"code {code} out of range [0, {self.max_code}]")
        return float(self._levels_v[code])

    def update(self, code: int, dt: float | None = None) -> float:
        """Apply a code; returns the (possibly settling) output voltage."""
        target = self.ideal_output(code)
        if not self.settling_time_s or dt is None:
            self._output_v = target
        else:
            alpha = 1.0 - np.exp(-dt / self.settling_time_s)
            self._output_v += alpha * (target - self._output_v)
        return self._output_v

    def code_for_voltage(self, volts: float) -> int:
        """Nearest code for a requested output (firmware helper)."""
        code = int(np.floor(volts / self.lsb_v + 0.5))
        return int(np.clip(code, 0, self.max_code))

    def inl_lsb(self) -> np.ndarray:
        """Integral nonlinearity of every code in LSB (endpoint-fit)."""
        codes = np.arange(self.max_code + 1)
        ideal = codes * self.lsb_v
        return (self._levels_v - ideal) / self.lsb_v

    def dnl_lsb(self) -> np.ndarray:
        """Differential nonlinearity per step in LSB."""
        steps = np.diff(self._levels_v)
        return steps / self.lsb_v - 1.0
