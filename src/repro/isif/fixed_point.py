"""Q-format fixed-point arithmetic for the digital IPs.

The ISIF property the paper leans on is *exact matching* between
hardware IPs and their software-peripheral twins: an algorithm explored
in software on the LEON can be swapped for the silicon IP "with low
risks and costs".  To keep that property in simulation, every digital
IP here computes on integers in a declared Q-format; the float path is
only a design reference.

Conventions: two's-complement signed values, saturating arithmetic
(silicon DSP blocks saturate rather than wrap), round-half-up on
quantisation and right shifts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["QFormat"]


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format Q<int_bits>.<frac_bits>.

    ``int_bits`` counts magnitude bits left of the binary point
    (excluding sign).  Total width = 1 + int_bits + frac_bits.

    Examples
    --------
    >>> q = QFormat(3, 12)      # Q3.12, 16-bit word
    >>> q.to_int(1.5)
    6144
    >>> q.to_float(q.to_int(1.5))
    1.5
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ConfigurationError("bit counts must be non-negative")
        if self.width > 64:
            raise ConfigurationError("formats wider than 64 bits are not supported")

    @property
    def width(self) -> int:
        """Total word width in bits (sign included)."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """LSB weight denominator: value = int / scale."""
        return 1 << self.frac_bits

    @property
    def max_int(self) -> int:
        """Largest representable integer code."""
        return (1 << (self.int_bits + self.frac_bits)) - 1

    @property
    def min_int(self) -> int:
        """Smallest (most negative) representable integer code."""
        return -(1 << (self.int_bits + self.frac_bits))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    @property
    def min_value(self) -> float:
        """Most negative representable real value."""
        return self.min_int / self.scale

    @property
    def resolution(self) -> float:
        """Weight of one LSB."""
        return 1.0 / self.scale

    # -- conversions ------------------------------------------------------------

    def to_int(self, value: float) -> int:
        """Quantise a real value to an integer code (round, then saturate)."""
        code = int(np.floor(float(value) * self.scale + 0.5))
        return self.saturate(code)

    def to_float(self, code: int) -> float:
        """Real value of an integer code."""
        return code / self.scale

    def saturate(self, code: int) -> int:
        """Clamp an integer code into the representable range."""
        if code > self.max_int:
            return self.max_int
        if code < self.min_int:
            return self.min_int
        return code

    def quantize(self, value: float) -> float:
        """Round-trip a real value through the format."""
        return self.to_float(self.to_int(value))

    # -- arithmetic on codes -----------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Saturating addition of two codes in this format."""
        return self.saturate(a + b)

    def mul(self, a: int, b: int, other: "QFormat | None" = None) -> int:
        """Saturating multiply: ``a`` (this format) times ``b`` (other format).

        The double-width product is rescaled back into this format with
        round-half-up, matching a DSP multiplier followed by a rounding
        right-shift.
        """
        fmt_b = other or self
        product = a * b  # exact in Python ints
        shift = fmt_b.frac_bits
        rounded = (product + (1 << (shift - 1))) >> shift if shift > 0 else product
        return self.saturate(rounded)

    def rescale(self, code: int, source: "QFormat") -> int:
        """Convert a code from ``source`` format into this format."""
        diff = self.frac_bits - source.frac_bits
        if diff >= 0:
            return self.saturate(code << diff)
        shift = -diff
        rounded = (code + (1 << (shift - 1))) >> shift
        return self.saturate(rounded)
