"""FIR filter IP with a bit-exact fixed-point path.

One of the dedicated DSP IPs of the digital section.  The float path is
the design reference; when constructed with a :class:`QFormat`, the IP
quantises coefficients once and computes on integer codes with a
double-width accumulator — the exact arithmetic of the silicon block,
so the software-peripheral twin (the same object stepped by the LEON
scheduler) matches it bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.isif.fixed_point import QFormat

__all__ = ["FirFilter", "design_lowpass_fir"]


class FirFilter:
    """Direct-form FIR.

    Parameters
    ----------
    coefficients:
        Tap weights (float design values).
    qformat:
        If given, coefficients and data are quantised to this format and
        the filter computes on integer codes.
    """

    def __init__(self, coefficients: np.ndarray,
                 qformat: QFormat | None = None) -> None:
        coeffs = np.asarray(coefficients, dtype=float)
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise ConfigurationError("coefficients must be a non-empty 1-D array")
        self.coefficients = coeffs
        self.qformat = qformat
        if qformat is not None:
            self._coeff_codes = [qformat.to_int(c) for c in coeffs]
        self._delay_f = np.zeros(coeffs.size)
        self._delay_i = [0] * coeffs.size

    @property
    def order(self) -> int:
        """Filter order (taps - 1)."""
        return self.coefficients.size - 1

    def reset(self) -> None:
        """Clear the delay line."""
        self._delay_f[:] = 0.0
        self._delay_i = [0] * self.coefficients.size

    def step(self, x: float) -> float:
        """Filter one sample (float in, float out; fixed-point inside
        when a Q-format was configured)."""
        if self.qformat is None:
            self._delay_f = np.roll(self._delay_f, 1)
            self._delay_f[0] = x
            return float(self._delay_f @ self.coefficients)
        return self.qformat.to_float(self.step_codes(self.qformat.to_int(x)))

    def step_codes(self, x_code: int) -> int:
        """Bit-exact integer step: code in, code out.

        Accumulates exactly (Python ints), rounds once at the output —
        the canonical single-rounding MAC datapath.
        """
        if self.qformat is None:
            raise ConfigurationError("filter was built without a Q-format")
        q = self.qformat
        self._delay_i = [x_code] + self._delay_i[:-1]
        acc = 0
        for code, coeff in zip(self._delay_i, self._coeff_codes):
            acc += code * coeff
        shift = q.frac_bits
        rounded = (acc + (1 << (shift - 1))) >> shift if shift > 0 else acc
        return q.saturate(rounded)

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter a block (state carries over)."""
        return np.array([self.step(float(v)) for v in np.asarray(x, dtype=float)])

    def dc_gain(self) -> float:
        """Gain at DC (sum of taps, quantised taps if fixed point)."""
        if self.qformat is None:
            return float(np.sum(self.coefficients))
        return float(sum(self._coeff_codes)) / self.qformat.scale


def design_lowpass_fir(cutoff_hz: float, sample_rate_hz: float,
                       taps: int = 31) -> np.ndarray:
    """Windowed-sinc (Hamming) low-pass design helper."""
    if taps < 3 or taps % 2 == 0:
        raise ConfigurationError("taps must be odd and >= 3")
    if not 0.0 < cutoff_hz < sample_rate_hz / 2.0:
        raise ConfigurationError("cutoff must be inside (0, Nyquist)")
    fc = cutoff_hz / sample_rate_hz
    n = np.arange(taps) - (taps - 1) / 2.0
    h = 2.0 * fc * np.sinc(2.0 * fc * n)
    h *= np.hamming(taps)
    return h / np.sum(h)
