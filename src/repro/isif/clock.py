"""Clock generation (§3: "service circuitries provide voltage/current
references, and oscillation for clock generation").

An on-chip RC/ring oscillator with a frequency tolerance (trimmed at
production), temperature drift, and cycle-to-cycle jitter, plus a
divider tree that derives the loop tick from the core clock.  The
time-base error matters to a *flow totaliser*: a 1 % slow clock reads
1 % low in accumulated volume even with a perfect flow reading — a
systematic the tests quantify.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ClockGenerator", "ClockDivider"]


class ClockGenerator:
    """Trimmed on-chip oscillator.

    Parameters
    ----------
    nominal_hz:
        Target frequency (ISIF core clock class: tens of MHz).
    tolerance_ppm:
        Post-trim frequency tolerance; the realised frequency of this
        instance is drawn once inside it.
    tempco_ppm_per_k:
        Linear frequency drift with die temperature around 25 °C.
    jitter_ppm_rms:
        Cycle-to-cycle period jitter.
    seed:
        Instance draw / jitter seed.
    """

    def __init__(self, nominal_hz: float = 40.0e6,
                 tolerance_ppm: float = 500.0,
                 tempco_ppm_per_k: float = 30.0,
                 jitter_ppm_rms: float = 50.0,
                 seed: int = 0) -> None:
        if nominal_hz <= 0.0:
            raise ConfigurationError("nominal frequency must be positive")
        if min(tolerance_ppm, tempco_ppm_per_k, jitter_ppm_rms) < 0.0:
            raise ConfigurationError("ppm parameters must be non-negative")
        self.nominal_hz = nominal_hz
        self.tolerance_ppm = tolerance_ppm
        self.tempco_ppm_per_k = tempco_ppm_per_k
        self.jitter_ppm_rms = jitter_ppm_rms
        self._rng = np.random.default_rng(seed)
        self._trim_error_ppm = float(
            self._rng.uniform(-tolerance_ppm, tolerance_ppm))
        self.die_temperature_k = 298.15

    def frequency_hz(self) -> float:
        """Realised frequency at the current die temperature."""
        drift_ppm = self.tempco_ppm_per_k * (self.die_temperature_k - 298.15)
        return self.nominal_hz * (1.0 + (self._trim_error_ppm + drift_ppm) * 1e-6)

    def period_s(self, jittered: bool = False) -> float:
        """One clock period; optionally with cycle jitter applied."""
        base = 1.0 / self.frequency_hz()
        if not jittered or self.jitter_ppm_rms == 0.0:
            return base
        return base * (1.0 + self.jitter_ppm_rms * 1e-6
                       * float(self._rng.normal()))

    def time_base_error_fraction(self) -> float:
        """Fractional error of any interval measured with this clock.

        Positive = the clock runs fast = intervals read long.
        """
        return self.frequency_hz() / self.nominal_hz - 1.0


class ClockDivider:
    """Integer divider deriving a block clock from the core clock."""

    def __init__(self, source: ClockGenerator, divide_by: int) -> None:
        if divide_by < 1:
            raise ConfigurationError("divider must be >= 1")
        self.source = source
        self.divide_by = divide_by

    def frequency_hz(self) -> float:
        """Divided output frequency."""
        return self.source.frequency_hz() / self.divide_by

    def ticks_for(self, duration_s: float) -> int:
        """How many divided ticks this clock counts in a true duration.

        The totaliser systematic: a ppm-fast clock counts extra ticks.
        """
        if duration_s < 0.0:
            raise ConfigurationError("duration must be non-negative")
        return int(duration_s * self.frequency_hz())
