"""LEON real-time scheduler and software-IP runtime.

"The CPU potentiality joined with the flexibility and configurability
of the DSP section allows designers to implement ad-hoc algorithm for
the target sensor, combining hardware processing with software
routines" (§3).  We do not simulate the SPARC-V8 ISA; what matters to
the reproduction is (a) that software IPs execute the *same arithmetic*
as their hardware twins (guaranteed by the shared fixed-point datapaths)
and (b) that the cycle budget of the chosen software partition fits the
LEON in real time — which this scheduler accounts for explicitly, so
the design-space-exploration bench can reject partitions that would not
run on the real 0.35 µm part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.observability import get_registry

__all__ = ["CpuModel", "IPTask", "RealTimeScheduler"]


@dataclass(frozen=True)
class CpuModel:
    """Cycle budget of the embedded CPU.

    Attributes
    ----------
    clock_hz:
        Core clock (ISIF's LEON runs at a few tens of MHz in 0.35 µm).
    interrupt_overhead_cycles:
        Fixed cost per scheduler tick (context save/restore).
    """

    clock_hz: float = 40.0e6
    interrupt_overhead_cycles: int = 120

    def __post_init__(self) -> None:
        if self.clock_hz <= 0.0:
            raise ConfigurationError("clock must be positive")
        if self.interrupt_overhead_cycles < 0:
            raise ConfigurationError("overhead must be non-negative")


#: Reference cycle costs of the software peripherals on a LEON2-class
#: integer pipeline (hand-estimated from the operation counts; MACs use
#: the hardware multiplier at ~2 cycles).
DEFAULT_CYCLE_COSTS = {
    "reference_subtract": 12,
    "pi_controller": 60,
    "iir_onepole": 40,
    "iir_biquad": 110,
    "fir_tap": 6,
    "decimate_postproc": 25,
    "direction_logic": 45,
    "kings_inversion": 350,  # sqrt + divide in software
}


@dataclass
class IPTask:
    """One software IP registered with the scheduler.

    Attributes
    ----------
    name:
        Task name (unique).
    step:
        Callable executed every tick; takes no arguments (closures bind
        the data flow) and returns nothing or a value that is ignored.
    cycles:
        Estimated LEON cycles per execution.
    divider:
        Execute every ``divider``-th tick (decimated-rate tasks).
    """

    name: str
    step: Callable[[], object]
    cycles: int
    divider: int = 1

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigurationError(f"task {self.name!r}: cycles must be non-negative")
        if self.divider < 1:
            raise ConfigurationError(f"task {self.name!r}: divider must be >= 1")


class RealTimeScheduler:
    """Fixed-rate cooperative scheduler with cycle accounting.

    Call :meth:`tick` once per control period; it runs every due task
    and accumulates the cycle cost.  :meth:`utilization` reports the
    fraction of the CPU the software partition consumes; exceeding 1.0
    sets :attr:`overrun` (the partition is infeasible on this CPU, a
    result — not an exception — because the DSE bench records it).
    """

    def __init__(self, tick_rate_hz: float, cpu: CpuModel | None = None) -> None:
        if tick_rate_hz <= 0.0:
            raise ConfigurationError("tick rate must be positive")
        self.tick_rate_hz = tick_rate_hz
        self.cpu = cpu or CpuModel()
        self._tasks: list[IPTask] = []
        self._tick_count = 0
        self._cycles_accumulated = 0
        self._worst_tick_cycles = 0
        self.overrun = False

    def register(self, task: IPTask) -> None:
        """Add a task; names must be unique."""
        if any(t.name == task.name for t in self._tasks):
            raise ConfigurationError(f"duplicate task {task.name!r}")
        self._tasks.append(task)

    def tick(self) -> None:
        """Run one scheduler period."""
        cycles = self.cpu.interrupt_overhead_cycles
        for task in self._tasks:
            if self._tick_count % task.divider == 0:
                task.step()
                cycles += task.cycles
        self._tick_count += 1
        self._cycles_accumulated += cycles
        self._worst_tick_cycles = max(self._worst_tick_cycles, cycles)
        budget = self.cpu.clock_hz / self.tick_rate_hz
        if self._worst_tick_cycles > budget:
            self.overrun = True

    def bulk_tick(self, n: int) -> None:
        """Advance the scheduler accounting by ``n`` ticks at once.

        Fast path for the batch runtime: when every registered task runs
        at the base rate (divider 1), the per-tick cycle cost is a
        constant and ``n`` ticks can be accounted in closed form without
        executing the task bodies.  This is exact for pure
        cycle-accounting stubs (the CTA loop's software IPs are no-ops
        whose arithmetic runs inside the controller); tasks with real
        side effects or dividers > 1 fall back to looping :meth:`tick`,
        which preserves full semantics.

        Raises
        ------
        ConfigurationError
            If ``n`` is negative.
        """
        if n < 0:
            raise ConfigurationError("bulk_tick count must be non-negative")
        if n == 0:
            return
        registry = get_registry()
        if registry.enabled:
            registry.counter("isif.scheduler.bulk_calls").inc()
            registry.counter("isif.scheduler.bulk_ticks").inc(n)
        if any(t.divider != 1 for t in self._tasks):
            for _ in range(n):
                self.tick()
            return
        cycles = self.cpu.interrupt_overhead_cycles + sum(
            t.cycles for t in self._tasks)
        self._tick_count += n
        self._cycles_accumulated += cycles * n
        self._worst_tick_cycles = max(self._worst_tick_cycles, cycles)
        if self._worst_tick_cycles > self.cpu.clock_hz / self.tick_rate_hz:
            self.overrun = True

    @property
    def ticks(self) -> int:
        """Ticks executed so far."""
        return self._tick_count

    def utilization(self) -> float:
        """Average CPU utilisation of the partition so far."""
        if self._tick_count == 0:
            return 0.0
        avg_cycles = self._cycles_accumulated / self._tick_count
        return avg_cycles * self.tick_rate_hz / self.cpu.clock_hz

    def worst_case_utilization(self) -> float:
        """Worst observed single-tick utilisation."""
        return self._worst_tick_cycles * self.tick_rate_hz / self.cpu.clock_hz

    def task_names(self) -> tuple[str, ...]:
        """Registered task names in execution order."""
        return tuple(t.name for t in self._tasks)
