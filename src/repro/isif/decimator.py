"""CIC decimator for the ΣΔ bitstream (the channel's "decimate" block).

Pure integer arithmetic (exact, overflow-free in Python ints; word
growth is order * log2(rate) bits as in silicon).  A CIC of order 3
behind a 2nd-order modulator attenuates the shaped quantisation noise
by the textbook margin; the droop over the narrow signal band at high
OSR is negligible for the anemometer's near-DC signal, and a droop
compensation FIR is available for wider-band use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["CICDecimator", "droop_compensation_fir"]


class CICDecimator:
    """Cascaded integrator-comb decimator.

    Parameters
    ----------
    order:
        Number of integrator/comb stage pairs (N).
    rate:
        Decimation factor (R); differential delay fixed at 1.
    """

    def __init__(self, order: int = 3, rate: int = 64) -> None:
        if order < 1 or order > 6:
            raise ConfigurationError("CIC order must be in [1, 6]")
        if rate < 2:
            raise ConfigurationError("decimation rate must be >= 2")
        self.order = order
        self.rate = rate
        self._integrators = [0] * order
        self._combs = [0] * order
        self._phase = 0

    @property
    def gain(self) -> int:
        """DC gain R**N — divide outputs by this to normalise."""
        return self.rate**self.order

    def reset(self) -> None:
        """Clear all stage state."""
        self._integrators = [0] * self.order
        self._combs = [0] * self.order
        self._phase = 0

    def decimate(self, samples: np.ndarray) -> np.ndarray:
        """Push input samples; return any output samples produced.

        Input length need not be a multiple of the rate — phase persists
        across calls, so a streaming caller gets exactly one output per
        ``rate`` inputs overall.
        """
        ints = self._integrators
        combs = self._combs
        out: list[int] = []
        phase = self._phase
        for x in np.asarray(samples).tolist():
            acc = int(x)
            for i in range(self.order):
                ints[i] += acc
                acc = ints[i]
            phase += 1
            if phase == self.rate:
                phase = 0
                y = acc
                for i in range(self.order):
                    y, combs[i] = y - combs[i], y
                out.append(y)
        self._phase = phase
        return np.array(out, dtype=np.int64)


def droop_compensation_fir(order: int, rate: int, taps: int = 15) -> np.ndarray:
    """Design an inverse-sinc FIR compensating CIC passband droop.

    Least-squares fit of 1/|H_cic| over the lower quarter of the
    post-decimation band.  Returns float taps (to be quantised by the
    FIR IP's Q-format when mapped to hardware).
    """
    if taps % 2 == 0 or taps < 3:
        raise ConfigurationError("taps must be odd and >= 3")
    # Target response on a fine frequency grid (post-decimation units).
    f = np.linspace(1e-4, 0.25, 128)  # cycles/sample after decimation
    # CIC magnitude referred to post-decimation frequency axis.
    f_pre = f / rate
    h_cic = np.abs(np.sin(np.pi * f_pre * rate) / (rate * np.sin(np.pi * f_pre))) ** order
    target = 1.0 / h_cic
    # Linear-phase (symmetric) FIR least squares on cosine basis.
    half = taps // 2
    basis = np.array([
        np.ones_like(f) if k == 0 else 2.0 * np.cos(2.0 * np.pi * f * k)
        for k in range(half + 1)
    ]).T
    coeffs, *_ = np.linalg.lstsq(basis, target, rcond=None)
    fir = np.concatenate([coeffs[::-1][:half], coeffs])
    return fir
