"""Register file and APB-like configuration bus.

The ISIF digital section configures its analog blocks through "a JLCC
approach for handling the digital bits used for analog block
configurations" and exposes its IPs on AMBA APB/AHB.  This module
models the software-visible part: 32-bit registers with named bit
fields, grouped into a :class:`RegisterFile` that peripherals attach to.

The conditioning firmware (:mod:`repro.conditioning`) programs the
platform exclusively through this interface, so every knob a real
driver would touch has an address here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RegisterError

__all__ = ["Field", "Register", "RegisterFile"]

WORD_MASK = 0xFFFF_FFFF


@dataclass(frozen=True)
class Field:
    """A named bit field inside a register.

    Attributes
    ----------
    name:
        Field name, unique within its register.
    lsb:
        Bit position of the least-significant bit.
    width:
        Field width in bits.
    """

    name: str
    lsb: int
    width: int

    def __post_init__(self) -> None:
        if not 0 <= self.lsb <= 31:
            raise RegisterError(f"field {self.name!r}: lsb out of a 32-bit word")
        if self.width < 1 or self.lsb + self.width > 32:
            raise RegisterError(f"field {self.name!r}: width {self.width} does not fit")

    @property
    def mask(self) -> int:
        """In-place mask of the field within the word."""
        return ((1 << self.width) - 1) << self.lsb

    @property
    def max_value(self) -> int:
        """Largest value the field can hold."""
        return (1 << self.width) - 1


class Register:
    """One 32-bit register with optional named fields."""

    def __init__(self, name: str, offset: int, reset: int = 0,
                 fields: tuple[Field, ...] = ()) -> None:
        if offset % 4 != 0:
            raise RegisterError(f"register {name!r}: offset {offset:#x} not word aligned")
        if not 0 <= reset <= WORD_MASK:
            raise RegisterError(f"register {name!r}: reset value out of 32 bits")
        names = [f.name for f in fields]
        if len(names) != len(set(names)):
            raise RegisterError(f"register {name!r}: duplicate field names")
        for a in fields:
            for b in fields:
                if a is not b and (a.mask & b.mask):
                    raise RegisterError(
                        f"register {name!r}: fields {a.name!r} and {b.name!r} overlap")
        self.name = name
        self.offset = offset
        self.reset = reset
        self.fields = {f.name: f for f in fields}
        self.value = reset

    def read(self) -> int:
        """Read the full 32-bit word."""
        return self.value

    def write(self, value: int) -> None:
        """Write the full 32-bit word."""
        if not 0 <= value <= WORD_MASK:
            raise RegisterError(f"{self.name}: write value {value:#x} out of 32 bits")
        self.value = value

    def read_field(self, field_name: str) -> int:
        """Read one named field."""
        f = self._field(field_name)
        return (self.value & f.mask) >> f.lsb

    def write_field(self, field_name: str, value: int) -> None:
        """Read-modify-write one named field."""
        f = self._field(field_name)
        if not 0 <= value <= f.max_value:
            raise RegisterError(
                f"{self.name}.{field_name}: value {value} exceeds {f.width}-bit field")
        self.value = (self.value & ~f.mask) | (value << f.lsb)

    def _field(self, field_name: str) -> Field:
        try:
            return self.fields[field_name]
        except KeyError:
            raise RegisterError(f"{self.name}: no field {field_name!r}") from None


class RegisterFile:
    """Address-indexed collection of registers (one APB peripheral).

    Peripheral models instantiate a file, declare their registers, and
    read their configuration from it each step, so firmware and tests
    interact with the block exactly the way a device driver would.
    """

    def __init__(self, name: str, base_address: int = 0) -> None:
        self.name = name
        self.base_address = base_address
        self._by_offset: dict[int, Register] = {}
        self._by_name: dict[str, Register] = {}

    def add(self, register: Register) -> Register:
        """Attach a register; offsets and names must be unique."""
        if register.offset in self._by_offset:
            raise RegisterError(
                f"{self.name}: offset {register.offset:#x} already occupied")
        if register.name in self._by_name:
            raise RegisterError(f"{self.name}: duplicate register {register.name!r}")
        self._by_offset[register.offset] = register
        self._by_name[register.name] = register
        return register

    def reg(self, name: str) -> Register:
        """Look a register up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise RegisterError(f"{self.name}: no register {name!r}") from None

    def read(self, offset: int) -> int:
        """Bus read at a byte offset."""
        return self._at(offset).read()

    def write(self, offset: int, value: int) -> None:
        """Bus write at a byte offset."""
        self._at(offset).write(value)

    def reset_all(self) -> None:
        """Return every register to its reset value."""
        for r in self._by_offset.values():
            r.value = r.reset

    def dump(self) -> dict[str, int]:
        """Snapshot of all register values keyed by name."""
        return {r.name: r.value for r in self._by_offset.values()}

    def _at(self, offset: int) -> Register:
        try:
            return self._by_offset[offset]
        except KeyError:
            raise RegisterError(
                f"{self.name}: no register at offset {offset:#x}") from None

    def __len__(self) -> int:
        return len(self._by_offset)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
