"""IIR filter IPs (biquad and one-pole) with bit-exact fixed-point paths.

The anemometer's final "IIR filter down to the bandwidth of 0.1 Hz"
(§4) is a first-order low-pass running on the decimated rate; the
biquad covers the general platform IP.  As with the FIR, constructing
with a :class:`QFormat` switches the datapath to integer arithmetic so
hardware and software-peripheral execution match bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.isif.fixed_point import QFormat

__all__ = ["IIRBiquad", "OnePoleLowpass", "design_lowpass_biquad"]


class OnePoleLowpass:
    """y[n] = y[n-1] + alpha (x[n] - y[n-1]).

    Parameters
    ----------
    cutoff_hz / sample_rate_hz:
        Corner and calling rate; alpha = 1 - exp(-2 pi fc / fs).
    qformat:
        Optional fixed-point format for a bit-exact datapath.  The
        silicon block uses a power-of-two alpha (barrel shift instead of
        a multiplier); pass ``shift_alpha=True`` to round alpha to the
        nearest 2^-k the way the hardware IP does.
    """

    def __init__(self, cutoff_hz: float, sample_rate_hz: float,
                 qformat: QFormat | None = None,
                 shift_alpha: bool = False) -> None:
        if cutoff_hz <= 0.0 or sample_rate_hz <= 0.0:
            raise ConfigurationError("cutoff and rate must be positive")
        if cutoff_hz >= sample_rate_hz / 2.0:
            raise ConfigurationError("cutoff at or above Nyquist")
        alpha = 1.0 - np.exp(-2.0 * np.pi * cutoff_hz / sample_rate_hz)
        self.shift_bits: int | None = None
        if shift_alpha:
            self.shift_bits = max(1, int(round(-np.log2(alpha))))
            alpha = 2.0 ** (-self.shift_bits)
        self.alpha = float(alpha)
        self.cutoff_hz = cutoff_hz
        self.sample_rate_hz = sample_rate_hz
        self.qformat = qformat
        self._y_f = 0.0
        self._y_code = 0
        if qformat is not None and self.shift_bits is None:
            self._alpha_code = qformat.to_int(self.alpha)

    def reset(self, value: float = 0.0) -> None:
        """Preset the state (e.g. to the first sample to avoid a long tail)."""
        self._y_f = value
        if self.qformat is not None:
            self._y_code = self.qformat.to_int(value)

    def step(self, x: float) -> float:
        """Filter one sample."""
        if self.qformat is None:
            self._y_f += self.alpha * (x - self._y_f)
            return self._y_f
        return self.qformat.to_float(self.step_codes(self.qformat.to_int(x)))

    def step_codes(self, x_code: int) -> int:
        """Bit-exact integer step."""
        q = self.qformat
        if q is None:
            raise ConfigurationError("filter was built without a Q-format")
        diff = x_code - self._y_code
        if self.shift_bits is not None:
            k = self.shift_bits
            inc = (diff + (1 << (k - 1))) >> k if k > 0 else diff
        else:
            prod = diff * self._alpha_code
            inc = (prod + (1 << (q.frac_bits - 1))) >> q.frac_bits
        self._y_code = q.saturate(self._y_code + inc)
        return self._y_code

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter a block (state carries over)."""
        return np.array([self.step(float(v)) for v in np.asarray(x, dtype=float)])

    def settling_time_s(self, fraction: float = 0.01) -> float:
        """Time to settle within ``fraction`` of a step (continuous est.)."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError("fraction must be in (0, 1)")
        tau = 1.0 / (2.0 * np.pi * self.cutoff_hz)
        return float(-tau * np.log(fraction))


class IIRBiquad:
    """Direct-form-I biquad: b0..b2 / a1..a2 (a0 normalised to 1)."""

    def __init__(self, b: np.ndarray, a: np.ndarray,
                 qformat: QFormat | None = None) -> None:
        b = np.asarray(b, dtype=float)
        a = np.asarray(a, dtype=float)
        if b.shape != (3,) or a.shape not in ((2,), (3,)):
            raise ConfigurationError("expect b of length 3 and a of length 2 or 3")
        if a.shape == (3,):
            if a[0] == 0.0:
                raise ConfigurationError("a0 must be nonzero")
            b = b / a[0]
            a = a[1:] / a[0]
        # Stability: poles inside the unit circle.
        poles = np.roots(np.concatenate([[1.0], a]))
        if np.any(np.abs(poles) >= 1.0):
            raise ConfigurationError(f"unstable biquad: |poles| = {np.abs(poles)}")
        self.b = b
        self.a = a
        self.qformat = qformat
        if qformat is not None:
            self._b_codes = [qformat.to_int(c) for c in b]
            self._a_codes = [qformat.to_int(c) for c in a]
        self._x_hist = [0.0, 0.0]
        self._y_hist = [0.0, 0.0]
        self._xi_hist = [0, 0]
        self._yi_hist = [0, 0]

    def reset(self) -> None:
        """Clear delay lines."""
        self._x_hist = [0.0, 0.0]
        self._y_hist = [0.0, 0.0]
        self._xi_hist = [0, 0]
        self._yi_hist = [0, 0]

    def step(self, x: float) -> float:
        """Filter one sample."""
        if self.qformat is None:
            y = (self.b[0] * x + self.b[1] * self._x_hist[0]
                 + self.b[2] * self._x_hist[1]
                 - self.a[0] * self._y_hist[0] - self.a[1] * self._y_hist[1])
            self._x_hist = [x, self._x_hist[0]]
            self._y_hist = [y, self._y_hist[0]]
            return float(y)
        return self.qformat.to_float(self.step_codes(self.qformat.to_int(x)))

    def step_codes(self, x_code: int) -> int:
        """Bit-exact integer step (single rounding at the accumulator)."""
        q = self.qformat
        if q is None:
            raise ConfigurationError("filter was built without a Q-format")
        acc = (self._b_codes[0] * x_code
               + self._b_codes[1] * self._xi_hist[0]
               + self._b_codes[2] * self._xi_hist[1]
               - self._a_codes[0] * self._yi_hist[0]
               - self._a_codes[1] * self._yi_hist[1])
        shift = q.frac_bits
        y = (acc + (1 << (shift - 1))) >> shift if shift > 0 else acc
        y = q.saturate(y)
        self._xi_hist = [x_code, self._xi_hist[0]]
        self._yi_hist = [y, self._yi_hist[0]]
        return y

    def process(self, x: np.ndarray) -> np.ndarray:
        """Filter a block (state carries over)."""
        return np.array([self.step(float(v)) for v in np.asarray(x, dtype=float)])

    def dc_gain(self) -> float:
        """Gain at DC."""
        return float(np.sum(self.b) / (1.0 + np.sum(self.a)))


def design_lowpass_biquad(cutoff_hz: float, sample_rate_hz: float,
                          q_factor: float = 0.7071) -> tuple[np.ndarray, np.ndarray]:
    """RBJ cookbook low-pass biquad design: returns (b, a1a2)."""
    if cutoff_hz <= 0.0 or cutoff_hz >= sample_rate_hz / 2.0:
        raise ConfigurationError("cutoff must be inside (0, Nyquist)")
    if q_factor <= 0.0:
        raise ConfigurationError("Q must be positive")
    w0 = 2.0 * np.pi * cutoff_hz / sample_rate_hz
    alpha = np.sin(w0) / (2.0 * q_factor)
    cos_w0 = np.cos(w0)
    b = np.array([(1 - cos_w0) / 2.0, 1 - cos_w0, (1 - cos_w0) / 2.0])
    a0 = 1 + alpha
    a = np.array([-2.0 * cos_w0, 1 - alpha])
    return b / a0, a / a0
