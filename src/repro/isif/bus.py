"""APB address map: one bus view over all peripheral register files.

§3: the digital section talks to its peripherals over "memories busses
and peripherals for external communication (AMBA APB/AHB)".  The
:class:`AddressMap` mounts each block's :class:`RegisterFile` at a base
address and dispatches 32-bit reads/writes — the view a LEON device
driver (or a debugger on the test bus) actually has.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegisterError
from repro.isif.registers import RegisterFile

__all__ = ["Mapping", "AddressMap"]


@dataclass(frozen=True)
class Mapping:
    """One peripheral window in the map.

    Attributes
    ----------
    base:
        Base byte address (word aligned).
    size:
        Window size in bytes.
    block:
        The register file mounted there.
    """

    base: int
    size: int
    block: RegisterFile

    def __post_init__(self) -> None:
        if self.base % 4 != 0 or self.size % 4 != 0 or self.size <= 0:
            raise RegisterError("mapping must be word aligned with positive size")

    @property
    def end(self) -> int:
        """First address past the window."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Whether an address falls in this window."""
        return self.base <= address < self.end


class AddressMap:
    """The SoC-level bus decoder."""

    def __init__(self) -> None:
        self._mappings: list[Mapping] = []

    def mount(self, base: int, size: int, block: RegisterFile) -> Mapping:
        """Mount a peripheral window; overlaps are rejected."""
        new = Mapping(base, size, block)
        for existing in self._mappings:
            if new.base < existing.end and existing.base < new.end:
                raise RegisterError(
                    f"window [{new.base:#x}, {new.end:#x}) overlaps "
                    f"{existing.block.name} at [{existing.base:#x}, "
                    f"{existing.end:#x})")
        self._mappings.append(new)
        self._mappings.sort(key=lambda m: m.base)
        return new

    def _decode(self, address: int) -> tuple[RegisterFile, int]:
        if address % 4 != 0:
            raise RegisterError(f"unaligned bus access at {address:#x}")
        for mapping in self._mappings:
            if mapping.contains(address):
                return mapping.block, address - mapping.base
        raise RegisterError(f"bus error: no peripheral at {address:#x}")

    def read(self, address: int) -> int:
        """32-bit bus read."""
        block, offset = self._decode(address)
        return block.read(offset)

    def write(self, address: int, value: int) -> None:
        """32-bit bus write."""
        block, offset = self._decode(address)
        block.write(offset, value)

    def windows(self) -> tuple[Mapping, ...]:
        """All mounted windows in address order."""
        return tuple(self._mappings)

    def memory_map_listing(self) -> str:
        """Human-readable map (the platform datasheet table)."""
        lines = ["base        end         peripheral"]
        for m in self._mappings:
            lines.append(f"{m.base:#010x}  {m.end:#010x}  {m.block.name}")
        return "\n".join(lines)
