"""anemos -- reproduction of "Hot Wire Anemometric MEMS Sensor for Water
Flow Monitoring" (DATE 2008).

Layers (bottom up):

* :mod:`repro.physics` -- water properties, convection/King's law,
  thermal RC networks, turbulence, carbonate chemistry;
* :mod:`repro.sensor` -- the MEMS MAF die: resistors, membrane, bridges,
  bubbles, fouling, housing;
* :mod:`repro.isif` -- the ISIF platform SoC: AFE, sigma-delta ADC,
  DACs, fixed-point DSP IPs, scheduler, power model;
* :mod:`repro.conditioning` -- the paper's contribution: constant-
  temperature loop, pulsed drive, calibration, flow/direction
  estimation, leak detection;
* :mod:`repro.baselines` -- Promag 50 and turbine-wheel comparators;
* :mod:`repro.station` -- the simulated Vinci test line and rig, plus
  scenario campaigns (demand generators + event injection) over
  ``FleetSpec``-described fleets;
* :mod:`repro.analysis` -- section-5 metrics and sweep/report helpers;
* :mod:`repro.runtime` -- fleet-scale sessions over the vectorized
  batch engine and the process-parallel sharded engine;
* :mod:`repro.service` -- the resident asyncio streaming service
  multiplexing concurrent client runs onto shared engine ticks;
* :mod:`repro.store` / :mod:`repro.runtime.checkpoint` -- the
  durability layer: a disk-backed artifact store under the calibration
  cache, and bit-exact engine checkpoints that let crashed runs,
  campaigns and service cohorts resume exactly where they died.

Quick start (one monitor)::

    from repro import build_calibrated_monitor, hold

    setup = build_calibrated_monitor(seed=1)
    record = setup.rig.run(hold(speed_cmps=120.0, duration_s=20.0))
    print(record.measured_mps[-1] * 100.0, "cm/s")

Quick start (a fleet, one call)::

    import repro

    result = repro.run(repro.staircase([0.0, 50.0, 120.0], dwell_s=10.0),
                       n_monitors=16, seed=1)
    print(result.summary(monitor=0))

Quick start (streaming)::

    async with repro.connect() as client:
        session = await client.attach(profile, n_monitors=4, seed=7)
        async for snap in session.snapshots():
            ...
        result = await session.result()  # bit-identical to repro.run
"""

# The exception hierarchy is re-exported wholesale: repro.errors.__all__
# is the single source of truth, so a class added there is automatically
# part of the top-level API (asserted by tests/test_api_quality.py).
from repro import errors as errors
from repro.errors import *  # noqa: F401,F403
from repro.physics.kings_law import KingsLaw, fit_kings_law
from repro.sensor.maf import MAFSensor, MAFConfig, FlowConditions
from repro.isif.platform import ISIFPlatform
from repro.conditioning.cta import CTAController, CTAConfig
from repro.conditioning.monitor import WaterFlowMonitor, FlowMeasurement, MonitorConfig
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.drive import ContinuousDrive, PulsedDrive
from repro.conditioning.leak_detect import LeakDetector, NetworkSegmentMonitor
from repro.baselines.promag import Promag50
from repro.baselines.turbine import TurbineMeter
from repro.station.scenarios import build_calibrated_monitor, CalibratedSetup, vinci_station
from repro.station.profiles import hold, staircase, ramp, step, bidirectional_staircase, pressure_peaks
from repro.station.rig import TestRig, run_calibration
from repro.runtime import (BatchEngine, Checkpoint, FleetSpec, MixedEngine,
                           MonitorHandle, RigSpec, RunResult, Session,
                           ShardedEngine, load_checkpoint, run_batch,
                           run_durable, save_checkpoint)
from repro.station.campaign import (Event, ScenarioSpec, builtin_scenario,
                                    household_demand, run_campaign,
                                    station_demand)
from repro.service import (ClientSession, FleetService, RecoveredCohort,
                           ServiceClient, Snapshot, connect,
                           recover_cohorts, run)
from repro.store import (ArtifactStore, canonical_key, get_default_store,
                         set_default_store)

__version__ = "1.0.0"

__all__ = [
    *errors.__all__,
    "KingsLaw",
    "fit_kings_law",
    "MAFSensor",
    "MAFConfig",
    "FlowConditions",
    "ISIFPlatform",
    "CTAController",
    "CTAConfig",
    "WaterFlowMonitor",
    "FlowMeasurement",
    "MonitorConfig",
    "FlowCalibration",
    "ContinuousDrive",
    "PulsedDrive",
    "LeakDetector",
    "NetworkSegmentMonitor",
    "Promag50",
    "TurbineMeter",
    "build_calibrated_monitor",
    "CalibratedSetup",
    "vinci_station",
    "hold",
    "staircase",
    "ramp",
    "step",
    "bidirectional_staircase",
    "pressure_peaks",
    "TestRig",
    "run_calibration",
    "Session",
    "MonitorHandle",
    "BatchEngine",
    "ShardedEngine",
    "MixedEngine",
    "FleetSpec",
    "RigSpec",
    "RunResult",
    "run_batch",
    "Event",
    "ScenarioSpec",
    "builtin_scenario",
    "household_demand",
    "station_demand",
    "run_campaign",
    "FleetService",
    "ClientSession",
    "RecoveredCohort",
    "ServiceClient",
    "Snapshot",
    "connect",
    "recover_cohorts",
    "run",
    "ArtifactStore",
    "canonical_key",
    "get_default_store",
    "set_default_store",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "run_durable",
    "__version__",
]
