"""Physical substrate: water properties, convection, King's law, thermal RC
networks, turbulence noise and carbonate chemistry.

These modules replace the physical testbed of the paper (a MEMS die in a
potable-water line) with first-principles models, per the substitution
table in ``DESIGN.md`` §2.
"""

from repro.physics.water import WaterProperties, water_properties, saturation_pressure, boiling_temperature
from repro.physics.kings_law import KingsLaw, fit_kings_law
from repro.physics.convection import (
    WireGeometry,
    reynolds_number,
    nusselt_kramers,
    film_conductance,
    derive_kings_coefficients,
)
from repro.physics.thermal import ThermalNetwork, ThermalNode
from repro.physics.turbulence import OrnsteinUhlenbeck, FlowNoise
from repro.physics.carbonate import WaterChemistry, langelier_index, scaling_driving_force

__all__ = [
    "WaterProperties",
    "water_properties",
    "saturation_pressure",
    "boiling_temperature",
    "KingsLaw",
    "fit_kings_law",
    "WireGeometry",
    "reynolds_number",
    "nusselt_kramers",
    "film_conductance",
    "derive_kings_coefficients",
    "ThermalNetwork",
    "ThermalNode",
    "OrnsteinUhlenbeck",
    "FlowNoise",
    "WaterChemistry",
    "langelier_index",
    "scaling_driving_force",
]
