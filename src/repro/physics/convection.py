"""Forced-convection heat transfer from the heated wire to the water.

The MAF die exposes a thin hot film on a membrane; for heat-transfer
purposes it is modelled as an equivalent cylinder in cross-flow, the
classical hot-wire abstraction for which King (1914) derived his law.
The film conductance G(v) [W/K] follows the Kramers correlation

    Nu = 0.42 Pr^0.20 + 0.57 Pr^0.33 Re^0.50

which, with Re = v d / nu, collapses exactly onto King's form

    G(v) = A + B v^n          (n = 0.5)

so the empirical constants A, B of eq. (2) in the paper acquire a
physical derivation here (DESIGN.md §2).  Fluid properties are
evaluated at the film temperature (arithmetic mean of wall and bulk).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.physics import water

__all__ = [
    "WireGeometry",
    "reynolds_number",
    "nusselt_kramers",
    "film_conductance",
    "derive_kings_coefficients",
    "NATURAL_CONVECTION_FLOOR",
]

#: Minimum effective speed [m/s] representing natural convection: even in
#: still water the heated wire loses heat by buoyant plumes, so G(0) > A.
NATURAL_CONVECTION_FLOOR = 2.0e-3


@dataclass(frozen=True)
class WireGeometry:
    """Equivalent-cylinder geometry of one heater element.

    The defaults approximate the paper's 50 Ω Ti/TiN heater meander on a
    2 µm membrane: an effective cylinder 1 mm long and 6 µm in diameter
    gives film conductances of a few mW/K in water, matching the
    few-tens-of-mW drive levels a 12-bit DAC supply can sustain.

    Attributes
    ----------
    length_m:
        Effective wetted length of the heater [m].
    diameter_m:
        Effective hydraulic diameter of the heater element [m].
    """

    length_m: float = 1.0e-3
    diameter_m: float = 6.0e-6

    def __post_init__(self) -> None:
        if self.length_m <= 0.0 or self.diameter_m <= 0.0:
            raise ConfigurationError("wire geometry dimensions must be positive")
        if self.diameter_m > self.length_m:
            raise ConfigurationError(
                "equivalent wire diameter exceeds its length; "
                "the cross-flow cylinder abstraction does not hold"
            )

    @property
    def surface_area_m2(self) -> float:
        """Wetted lateral surface area [m^2]."""
        return float(np.pi * self.diameter_m * self.length_m)


def reynolds_number(speed_mps, geometry: WireGeometry, film_temperature_k,
                    medium=water) -> np.ndarray:
    """Reynolds number of the wire in cross-flow at the film temperature.

    ``medium`` is a property module with the water-module interface
    (:mod:`repro.physics.water` by default, :mod:`repro.physics.air`
    for the die's original automotive duty).
    """
    nu = medium.kinematic_viscosity(film_temperature_k)
    return np.abs(np.asarray(speed_mps, dtype=float)) * geometry.diameter_m / nu


def nusselt_kramers(reynolds, prandtl) -> np.ndarray:
    """Kramers (1946) Nusselt correlation for a heated cylinder in cross-flow.

    Validated for 0.01 < Re < 10000 and liquids as well as gases, which
    covers the full 0–250 cm/s water range of the paper (Re of order 1–20
    for a micrometric element).
    """
    re = np.asarray(reynolds, dtype=float)
    pr = np.asarray(prandtl, dtype=float)
    if np.any(re < 0.0):
        raise ConfigurationError("Reynolds number must be non-negative")
    return 0.42 * pr**0.20 + 0.57 * pr**0.33 * np.sqrt(re)


def film_conductance(
    speed_mps,
    geometry: WireGeometry,
    wall_temperature_k,
    bulk_temperature_k,
    medium=water,
) -> np.ndarray:
    """Convective conductance G [W/K] from the wire surface to the water.

    A small natural-convection floor is applied to the speed so that the
    conductance at rest stays finite and above the pure-conduction limit,
    as observed with real hot films in still liquid.

    Scalar inputs take a fast pure-float path (this is the per-tick hot
    spot of the whole simulation); arrays use the vectorised correlations.
    """
    if (isinstance(speed_mps, (int, float))
            and isinstance(wall_temperature_k, (int, float))
            and isinstance(bulk_temperature_k, (int, float))):
        film_t = 0.5 * (float(wall_temperature_k) + float(bulk_temperature_k))
        v_eff = abs(float(speed_mps))
        if v_eff < NATURAL_CONVECTION_FLOOR:
            v_eff = NATURAL_CONVECTION_FLOOR
        k, nu_visc, pr = medium.film_properties_scalar(film_t)
        re = v_eff * geometry.diameter_m / nu_visc
        nusselt = 0.42 * pr**0.20 + 0.57 * pr**0.33 * math.sqrt(re)
        return nusselt * k * math.pi * geometry.length_m
    film_t = 0.5 * (
        np.asarray(wall_temperature_k, dtype=float)
        + np.asarray(bulk_temperature_k, dtype=float)
    )
    v_eff = np.maximum(np.abs(np.asarray(speed_mps, dtype=float)), NATURAL_CONVECTION_FLOOR)
    re = reynolds_number(v_eff, geometry, film_t, medium=medium)
    pr = medium.prandtl_number(film_t)
    nu = nusselt_kramers(re, pr)
    k = medium.thermal_conductivity(film_t)
    # h = Nu k / d over area pi d L  =>  G = Nu k pi L (d cancels).
    return nu * k * np.pi * geometry.length_m


def derive_kings_coefficients(
    geometry: WireGeometry,
    film_temperature_k: float,
    medium=water,
) -> tuple[float, float, float]:
    """Derive the King's-law constants (A, B, n) from the physics.

    Returns ``(A, B, n)`` such that ``G(v) = A + B * v**n`` with n = 0.5,
    the units of A being W/K and of B being W/(K (m/s)^0.5).  These feed
    :class:`repro.physics.kings_law.KingsLaw` and serve as the ground
    truth against which the firmware's *fitted* constants are compared.
    """
    pr = float(medium.prandtl_number(film_temperature_k))
    k = float(medium.thermal_conductivity(film_temperature_k))
    nu_visc = float(medium.kinematic_viscosity(film_temperature_k))
    scale = k * np.pi * geometry.length_m
    coeff_a = 0.42 * pr**0.20 * scale
    coeff_b = 0.57 * pr**0.33 * np.sqrt(geometry.diameter_m / nu_visc) * scale
    return coeff_a, coeff_b, 0.5
