"""Stochastic flow fluctuations seen by the sensor.

Pipe flow at the paper's test station is turbulent over most of the
0-250 cm/s range (Re_pipe of order 1e4-1e5 in a DN50 line).  The sensor
head therefore samples a fluctuating local velocity.  We model the
fluctuation as an Ornstein-Uhlenbeck (first-order Gauss-Markov) process
whose standard deviation is a turbulence intensity times the mean speed
and whose correlation time scales with the integral length of the pipe
divided by the speed — the standard low-order surrogate for streamwise
velocity fluctuations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["OrnsteinUhlenbeck", "FlowNoise"]


class OrnsteinUhlenbeck:
    """Exact-discretisation Ornstein-Uhlenbeck process.

    dx = -x/tau dt + sigma sqrt(2/tau) dW, stationary std = sigma.

    The exact update ``x' = x rho + sigma sqrt(1-rho^2) xi`` with
    ``rho = exp(-dt/tau)`` is used so the statistics are correct for any
    time step, including steps long compared to tau.
    """

    def __init__(self, tau_s: float, sigma: float, rng: np.random.Generator) -> None:
        if tau_s <= 0.0:
            raise ConfigurationError("OU correlation time must be positive")
        if sigma < 0.0:
            raise ConfigurationError("OU sigma must be non-negative")
        self.tau_s = tau_s
        self.sigma = sigma
        self._rng = rng
        self._x = 0.0 if sigma == 0.0 else float(rng.normal(0.0, sigma))

    @property
    def value(self) -> float:
        """Current sample of the process."""
        return self._x

    def step(self, dt: float) -> float:
        """Advance by ``dt`` seconds and return the new sample."""
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        if self.sigma == 0.0:
            self._x = 0.0
            return 0.0
        rho = math.exp(-dt / self.tau_s)
        self._x = self._x * rho + self.sigma * math.sqrt(1.0 - rho * rho) * self._rng.normal()
        return self._x

    def retune(self, tau_s: float | None = None, sigma: float | None = None) -> None:
        """Update parameters in place (speed-dependent turbulence)."""
        if tau_s is not None:
            if tau_s <= 0.0:
                raise ConfigurationError("OU correlation time must be positive")
            self.tau_s = tau_s
        if sigma is not None:
            if sigma < 0.0:
                raise ConfigurationError("OU sigma must be non-negative")
            self.sigma = sigma


@dataclass(frozen=True)
class FlowNoiseConfig:
    """Tuning of the turbulent-fluctuation surrogate.

    Attributes
    ----------
    intensity:
        Turbulence intensity: std of the fluctuation as a fraction of the
        mean speed.  5-8 % is typical for developed pipe flow.
    floor_mps:
        Residual fluctuation at zero mean flow [m/s] (pump ripple,
        thermal plumes).
    integral_length_m:
        Integral length scale [m]; tau = L / max(v, v_min).
    min_speed_mps:
        Lower bound used when converting length scale to correlation
        time, so tau stays finite at rest.
    """

    intensity: float = 0.06
    floor_mps: float = 2.0e-3
    integral_length_m: float = 0.02
    min_speed_mps: float = 0.02


class FlowNoise:
    """Speed-dependent turbulent fluctuation generator.

    Call :meth:`perturb` once per simulation step with the commanded mean
    speed; it returns the instantaneous local speed at the sensor head.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        config: FlowNoiseConfig | None = None,
    ) -> None:
        self.config = config or FlowNoiseConfig()
        if not 0.0 <= self.config.intensity < 1.0:
            raise ConfigurationError("turbulence intensity must be in [0, 1)")
        self._ou = OrnsteinUhlenbeck(tau_s=1.0, sigma=0.0, rng=rng)

    def perturb(self, mean_speed_mps: float, dt: float) -> float:
        """Return the fluctuating local speed for this step [m/s].

        The sign of the mean speed is preserved; fluctuations never flip
        a strong flow's direction but can dither around zero at rest,
        exactly the regime where direction detection is hardest.
        """
        cfg = self.config
        v_mag = abs(mean_speed_mps)
        sigma = cfg.intensity * v_mag + cfg.floor_mps
        tau = cfg.integral_length_m / max(v_mag, cfg.min_speed_mps)
        self._ou.retune(tau_s=tau, sigma=sigma)
        return mean_speed_mps + self._ou.step(dt)
