"""Lumped-element thermal RC networks.

The MEMS die is modelled as a small network of thermal nodes (heater
films, membrane, substrate) connected by conductances to each other and
to ambient reservoirs (the water, the chip frame).  The network is
linear in temperature for fixed conductances, so each time step is
integrated with an unconditionally stable implicit-Euler solve — the
membrane node time constants (sub-millisecond, the paper's "reasonably
short response times") are stiff next to the control-loop period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ThermalNode", "ThermalNetwork"]


@dataclass
class ThermalNode:
    """One lumped thermal node.

    Attributes
    ----------
    name:
        Unique identifier used to address the node.
    capacitance_j_per_k:
        Heat capacity [J/K].
    temperature_k:
        Current temperature state [K].
    """

    name: str
    capacitance_j_per_k: float
    temperature_k: float = 293.15

    def __post_init__(self) -> None:
        if self.capacitance_j_per_k <= 0.0:
            raise ConfigurationError(f"node {self.name!r}: capacitance must be positive")


class ThermalNetwork:
    """A network of thermal nodes with node-node and node-ambient couplings.

    Usage::

        net = ThermalNetwork()
        net.add_node(ThermalNode("heater", 2e-9, 293.15))
        net.add_node(ThermalNode("membrane", 5e-8, 293.15))
        net.couple("heater", "membrane", 1e-4)
        net.couple_ambient("heater", "water", 3e-3)
        net.set_ambient("water", 288.15)
        net.step(dt=1e-3, powers={"heater": 0.02})

    Conductances to ambient may be updated every step (flow-dependent
    film conductance) via :meth:`couple_ambient`; the solver rebuilds its
    matrix lazily only when topology or values changed.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, ThermalNode] = {}
        self._order: list[str] = []
        self._internal: dict[tuple[str, str], float] = {}
        self._ambient_couplings: dict[tuple[str, str], float] = {}
        self._ambients: dict[str, float] = {}
        self._dirty = True
        self._g_matrix: np.ndarray | None = None
        self._cap: np.ndarray | None = None

    # -- construction -----------------------------------------------------

    def add_node(self, node: ThermalNode) -> None:
        """Register a node; names must be unique."""
        if node.name in self._nodes:
            raise ConfigurationError(f"duplicate thermal node {node.name!r}")
        self._nodes[node.name] = node
        self._order.append(node.name)
        self._dirty = True

    def couple(self, node_a: str, node_b: str, conductance_w_per_k: float) -> None:
        """Set the conductance [W/K] between two internal nodes."""
        self._require(node_a)
        self._require(node_b)
        if node_a == node_b:
            raise ConfigurationError("cannot couple a node to itself")
        if conductance_w_per_k < 0.0:
            raise ConfigurationError("conductance must be non-negative")
        key = (min(node_a, node_b), max(node_a, node_b))
        self._internal[key] = conductance_w_per_k
        self._dirty = True

    def couple_ambient(self, node: str, ambient: str, conductance_w_per_k: float) -> None:
        """Set the conductance [W/K] from a node to an ambient reservoir.

        May be called every step with a new value (e.g. flow-dependent
        film conductance); the reservoir is created on first use with a
        default temperature of 293.15 K.
        """
        self._require(node)
        if conductance_w_per_k < 0.0:
            raise ConfigurationError("conductance must be non-negative")
        self._ambients.setdefault(ambient, 293.15)
        self._ambient_couplings[(node, ambient)] = conductance_w_per_k
        self._dirty = True

    def set_ambient(self, ambient: str, temperature_k: float) -> None:
        """Set the temperature [K] of an ambient reservoir."""
        self._ambients[ambient] = float(temperature_k)

    # -- inspection --------------------------------------------------------

    def temperature(self, node: str) -> float:
        """Current temperature [K] of a node."""
        return self._require(node).temperature_k

    def temperatures(self) -> dict[str, float]:
        """All node temperatures keyed by node name."""
        return {name: self._nodes[name].temperature_k for name in self._order}

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._order)

    def set_temperature(self, node: str, temperature_k: float) -> None:
        """Force a node's state (used for initialisation)."""
        self._require(node).temperature_k = float(temperature_k)

    def total_energy_j(self, reference_k: float = 0.0) -> float:
        """Stored thermal energy relative to a reference temperature [J]."""
        return sum(
            n.capacitance_j_per_k * (n.temperature_k - reference_k)
            for n in self._nodes.values()
        )

    # -- integration --------------------------------------------------------

    def step(self, dt: float, powers: dict[str, float] | None = None) -> dict[str, float]:
        """Advance all node temperatures by ``dt`` seconds.

        Parameters
        ----------
        dt:
            Time step [s]; must be positive.
        powers:
            Heat injected into nodes [W] during the step (e.g. Joule
            heating of the heater films).  Missing nodes get 0.

        Returns
        -------
        dict
            New node temperatures keyed by name.

        Notes
        -----
        Implicit Euler on ``C dT/dt = -G T + G_amb T_amb + P`` — stable
        for any dt, first-order accurate; accurate enough because the
        controller samples far faster than the thermal plant moves.
        """
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if not self._order:
            raise ConfigurationError("thermal network has no nodes")
        if self._dirty:
            self._rebuild()
        assert self._g_matrix is not None and self._cap is not None

        n = len(self._order)
        idx = {name: i for i, name in enumerate(self._order)}
        t_old = np.array([self._nodes[name].temperature_k for name in self._order])
        rhs = self._cap / dt * t_old
        for (node, ambient), g in self._ambient_couplings.items():
            rhs[idx[node]] += g * self._ambients[ambient]
        if powers:
            for name, p in powers.items():
                rhs[idx[self._require(name).name]] += p

        system = np.diag(self._cap / dt) + self._g_matrix
        t_new = np.linalg.solve(system, rhs)
        for i, name in enumerate(self._order):
            self._nodes[name].temperature_k = float(t_new[i])
        return self.temperatures()

    def steady_state(self, powers: dict[str, float] | None = None) -> dict[str, float]:
        """Solve the steady temperatures directly (dT/dt = 0).

        Requires every node to have at least an indirect path to an
        ambient reservoir, otherwise the conductance matrix is singular.
        """
        if self._dirty:
            self._rebuild()
        assert self._g_matrix is not None
        idx = {name: i for i, name in enumerate(self._order)}
        rhs = np.zeros(len(self._order))
        for (node, ambient), g in self._ambient_couplings.items():
            rhs[idx[node]] += g * self._ambients[ambient]
        if powers:
            for name, p in powers.items():
                rhs[idx[self._require(name).name]] += p
        try:
            t = np.linalg.solve(self._g_matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise ConfigurationError(
                "steady state undefined: some node has no path to an ambient"
            ) from exc
        for i, name in enumerate(self._order):
            self._nodes[name].temperature_k = float(t[i])
        return self.temperatures()

    # -- internals -----------------------------------------------------------

    def _require(self, name: str) -> ThermalNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown thermal node {name!r}") from None

    def _rebuild(self) -> None:
        n = len(self._order)
        idx = {name: i for i, name in enumerate(self._order)}
        g = np.zeros((n, n))
        for (a, b), cond in self._internal.items():
            i, j = idx[a], idx[b]
            g[i, i] += cond
            g[j, j] += cond
            g[i, j] -= cond
            g[j, i] -= cond
        for (node, _ambient), cond in self._ambient_couplings.items():
            g[idx[node], idx[node]] += cond
        self._g_matrix = g
        self._cap = np.array([self._nodes[name].capacitance_j_per_k for name in self._order])
        self._dirty = False
