"""King's law: the static transfer characteristic of a hot-wire anemometer.

Equation (2) of the paper:

    I^2 R_w = U^2 / R_w = (T_w - T_ref) (A + B v^n)

This module provides the forward law (speed -> heater power for a given
overtemperature), its inverse (measured power or bridge voltage -> speed)
and a fitting routine used by the calibration firmware
(:mod:`repro.conditioning.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import CalibrationError, ConfigurationError

__all__ = ["KingsLaw", "fit_kings_law"]


@dataclass(frozen=True)
class KingsLaw:
    """King's-law model ``G(v) = A + B |v|**n`` [W/K].

    Attributes
    ----------
    coeff_a:
        Zero-flow (conduction + natural convection) conductance [W/K].
    coeff_b:
        Forced-convection coefficient [W/(K (m/s)^n)].
    exponent:
        Empirical exponent n; 0.5 for the classical cross-flow cylinder.
    """

    coeff_a: float
    coeff_b: float
    exponent: float = 0.5

    def __post_init__(self) -> None:
        if self.coeff_a <= 0.0 or self.coeff_b <= 0.0:
            raise ConfigurationError("King's-law coefficients must be positive")
        if not 0.1 <= self.exponent <= 1.0:
            raise ConfigurationError(
                f"King's-law exponent {self.exponent} outside the physical range [0.1, 1]"
            )

    def conductance(self, speed_mps) -> np.ndarray:
        """Film conductance G(v) [W/K]; even in v (direction-insensitive)."""
        v = np.abs(np.asarray(speed_mps, dtype=float))
        return self.coeff_a + self.coeff_b * v**self.exponent

    def power(self, speed_mps, overtemperature_k) -> np.ndarray:
        """Heater power [W] needed to hold ``overtemperature_k`` at ``v``."""
        d_t = np.asarray(overtemperature_k, dtype=float)
        if np.any(d_t < 0.0):
            raise ConfigurationError("overtemperature must be non-negative")
        return d_t * self.conductance(speed_mps)

    def invert_power(self, power_w, overtemperature_k) -> np.ndarray:
        """Speed magnitude [m/s] from heater power and overtemperature.

        Powers below the zero-flow level map to 0 (the physical branch);
        this clipping is what limits low-flow resolution in practice.
        """
        p = np.asarray(power_w, dtype=float)
        d_t = np.asarray(overtemperature_k, dtype=float)
        if np.any(d_t <= 0.0):
            raise ConfigurationError("overtemperature must be positive to invert")
        g = p / d_t
        excess = np.maximum(g - self.coeff_a, 0.0)
        return (excess / self.coeff_b) ** (1.0 / self.exponent)

    def sensitivity(self, speed_mps, overtemperature_k) -> np.ndarray:
        """dP/dv [W/(m/s)] — the local gain that sets resolution.

        King-law compression: sensitivity falls as v^(n-1), which is why
        the paper's worst-case resolution (±4 cm/s) occurs at high flow.
        """
        v = np.maximum(np.abs(np.asarray(speed_mps, dtype=float)), 1e-9)
        d_t = np.asarray(overtemperature_k, dtype=float)
        return d_t * self.coeff_b * self.exponent * v ** (self.exponent - 1.0)

    def with_gain_drift(self, relative_drift: float) -> "KingsLaw":
        """Return a copy whose B coefficient drifted by ``relative_drift``.

        Used to represent fouling-induced gain error when assessing how a
        stale calibration misreads a fouled sensor.
        """
        return replace(self, coeff_b=self.coeff_b * (1.0 + relative_drift))


def fit_kings_law(
    speeds_mps: np.ndarray,
    conductances_w_per_k: np.ndarray,
    exponent: float | None = None,
) -> KingsLaw:
    """Fit King's law to measured (speed, conductance) calibration points.

    If ``exponent`` is given, A and B come from a linear least-squares fit
    on ``v**n``; otherwise n is scanned over [0.30, 0.70] and the value
    minimising the residual is kept, mirroring how the empirical constants
    of eq. (2) are "ambient specific" and determined at calibration time.

    Raises
    ------
    CalibrationError
        If fewer than 3 points are supplied, points are degenerate, or
        the fitted coefficients are non-physical.
    """
    v = np.abs(np.asarray(speeds_mps, dtype=float))
    g = np.asarray(conductances_w_per_k, dtype=float)
    if v.shape != g.shape or v.ndim != 1:
        raise CalibrationError("speeds and conductances must be 1-D arrays of equal length")
    if v.size < 3:
        raise CalibrationError(f"need at least 3 calibration points, got {v.size}")
    if np.ptp(v) <= 0.0:
        raise CalibrationError("calibration speeds are all identical")

    def _linear_fit(n: float) -> tuple[float, float, float]:
        basis = np.column_stack([np.ones_like(v), v**n])
        coeffs, residual, _, _ = np.linalg.lstsq(basis, g, rcond=None)
        res = float(residual[0]) if residual.size else float(np.sum((basis @ coeffs - g) ** 2))
        return float(coeffs[0]), float(coeffs[1]), res

    if exponent is not None:
        coeff_a, coeff_b, _ = _linear_fit(exponent)
        best_n = exponent
    else:
        best = None
        for n in np.linspace(0.30, 0.70, 41):
            coeff_a, coeff_b, res = _linear_fit(float(n))
            if best is None or res < best[3]:
                best = (coeff_a, coeff_b, float(n), res)
        assert best is not None
        coeff_a, coeff_b, best_n, _ = best

    if coeff_a <= 0.0 or coeff_b <= 0.0:
        raise CalibrationError(
            f"fit produced non-physical coefficients A={coeff_a:.3e}, B={coeff_b:.3e}; "
            "check the calibration data for inverted or noisy points"
        )
    return KingsLaw(coeff_a=coeff_a, coeff_b=coeff_b, exponent=best_n)
