"""Thermophysical properties of dry air at 1 atm.

The MAF die "was originally designed for automotive" mass-air-flow
duty (§2); this module lets the same sensor/conditioning stack run in
its native medium.  Correlations: ideal-gas density, Sutherland
viscosity, and a standard conductivity fit — all better than 1 % over
-20 … 150 °C, far beyond the envelope used here.

The module exposes the same property interface as
:mod:`repro.physics.water` (``film_properties_scalar`` plus the
vectorised functions), so the convection layer can take either medium.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "density",
    "specific_heat",
    "thermal_conductivity",
    "dynamic_viscosity",
    "kinematic_viscosity",
    "prandtl_number",
    "film_properties_scalar",
]

#: Specific gas constant of dry air [J/(kg K)].
R_AIR = 287.05

#: Working pressure [Pa] — MAF ducts sit near ambient.
PRESSURE_PA = 101_325.0

_RANGE_K = (230.0, 430.0)


def _check(temperature_k) -> np.ndarray:
    t = np.asarray(temperature_k, dtype=float)
    lo, hi = _RANGE_K
    if np.any(t < lo) or np.any(t > hi):
        raise ConfigurationError(
            f"air temperature {t!r} K outside the correlation range "
            f"[{lo}, {hi}] K")
    return t


def density(temperature_k) -> np.ndarray:
    """Ideal-gas density [kg/m^3] at 1 atm."""
    t = _check(temperature_k)
    return PRESSURE_PA / (R_AIR * t)


def specific_heat(temperature_k) -> np.ndarray:
    """Isobaric cp [J/(kg K)] (weak quadratic around 1005)."""
    t = _check(temperature_k)
    return 1002.5 + 2.75e-4 * (t - 260.0) ** 2 * 1e-1


def thermal_conductivity(temperature_k) -> np.ndarray:
    """k [W/(m K)] — linearised kinetic-theory fit."""
    t = _check(temperature_k)
    return 0.0241 * (t / 273.15) ** 0.9


def dynamic_viscosity(temperature_k) -> np.ndarray:
    """Sutherland's law [Pa s]."""
    t = _check(temperature_k)
    mu0, t0, s = 1.716e-5, 273.15, 110.4
    return mu0 * (t / t0) ** 1.5 * (t0 + s) / (t + s)


def kinematic_viscosity(temperature_k) -> np.ndarray:
    """nu [m^2/s]."""
    return dynamic_viscosity(temperature_k) / density(temperature_k)


def prandtl_number(temperature_k) -> np.ndarray:
    """Pr — ~0.71 and nearly flat for air."""
    t = _check(temperature_k)
    return specific_heat(t) * dynamic_viscosity(t) / thermal_conductivity(t)


def film_properties_scalar(temperature_k: float) -> tuple[float, float, float]:
    """Fast scalar (k, nu, Pr) — the same contract as the water module."""
    t = float(temperature_k)
    lo, hi = _RANGE_K
    if not lo < t < hi:
        raise ConfigurationError(
            f"air film temperature {t} K outside [{lo}, {hi}] K")
    k = 0.0241 * (t / 273.15) ** 0.9
    mu = 1.716e-5 * (t / 273.15) ** 1.5 * (273.15 + 110.4) / (t + 110.4)
    rho = PRESSURE_PA / (R_AIR * t)
    cp = 1002.5 + 2.75e-4 * (t - 260.0) ** 2 * 1e-1
    return k, mu / rho, cp * mu / k
