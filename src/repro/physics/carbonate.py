"""Calcium-carbonate chemistry of potable water.

The paper (fig. 8 and eq. (3)) identifies the thermally driven reaction

    Ca(HCO3)2  ->  CaCO3 + CO2 + H2O

as a failure mechanism: calcite solubility *decreases* with temperature,
so the heated wire is exactly where scale precipitates.  We model the
propensity to scale with the classical Langelier Saturation Index (LSI),
evaluated at the hot-wall temperature, and expose a driving force that
the fouling model (:mod:`repro.sensor.fouling`) integrates into deposit
thickness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import CELSIUS_OFFSET

__all__ = [
    "WaterChemistry",
    "langelier_index",
    "saturation_ratio",
    "scaling_driving_force",
    "TUSCAN_TAP_WATER",
]


@dataclass(frozen=True)
class WaterChemistry:
    """Bulk chemistry of the water in the line.

    Attributes
    ----------
    calcium_mg_per_l:
        Calcium hardness expressed as mg/L of CaCO3.
    alkalinity_mg_per_l:
        Total alkalinity expressed as mg/L of CaCO3.
    ph:
        Bulk pH.
    tds_mg_per_l:
        Total dissolved solids [mg/L].
    """

    calcium_mg_per_l: float = 180.0
    alkalinity_mg_per_l: float = 220.0
    ph: float = 7.4
    tds_mg_per_l: float = 450.0

    def __post_init__(self) -> None:
        if self.calcium_mg_per_l <= 0.0 or self.alkalinity_mg_per_l <= 0.0:
            raise ConfigurationError("hardness and alkalinity must be positive")
        if not 4.0 <= self.ph <= 11.0:
            raise ConfigurationError(f"pH {self.ph} outside plausible potable range")
        if self.tds_mg_per_l <= 0.0:
            raise ConfigurationError("TDS must be positive")


#: Hard Tuscan tap water — representative of the Vinci test station
#: (Arno basin groundwater is notoriously calcareous).  The pH puts it
#: just *below* calcite saturation at line temperature, so pipes stay
#: clean but any heated surface crosses into the scaling regime — the
#: paper's fig. 8 situation.
TUSCAN_TAP_WATER = WaterChemistry(
    calcium_mg_per_l=220.0,
    alkalinity_mg_per_l=260.0,
    ph=7.35,
    tds_mg_per_l=520.0,
)


def _ph_of_saturation(chem: WaterChemistry, temperature_k) -> np.ndarray:
    """Langelier pH of saturation pHs = 9.3 + A + B - C - D."""
    t_k = np.asarray(temperature_k, dtype=float)
    if np.any(t_k < CELSIUS_OFFSET) or np.any(t_k > CELSIUS_OFFSET + 150.0):
        raise ConfigurationError("temperature outside liquid water range for LSI")
    a = (np.log10(chem.tds_mg_per_l) - 1.0) / 10.0
    b = -13.12 * np.log10(t_k) + 34.55
    c = np.log10(chem.calcium_mg_per_l) - 0.4
    d = np.log10(chem.alkalinity_mg_per_l)
    return 9.3 + a + b - c - d


def langelier_index(chem: WaterChemistry, temperature_k) -> np.ndarray:
    """Langelier Saturation Index at the given (wall) temperature.

    LSI > 0: water is supersaturated in CaCO3 and tends to scale;
    LSI < 0: water is aggressive (dissolves scale).  Because the B term
    falls with temperature, LSI *rises* on the heated wall — the paper's
    core fouling mechanism.
    """
    return chem.ph - _ph_of_saturation(chem, temperature_k)


def saturation_ratio(chem: WaterChemistry, temperature_k) -> np.ndarray:
    """Supersaturation ratio S = 10**LSI (1 = equilibrium)."""
    return 10.0 ** langelier_index(chem, temperature_k)


def scaling_driving_force(
    chem: WaterChemistry,
    wall_temperature_k,
    bulk_temperature_k,
) -> np.ndarray:
    """Dimensionless crystallisation driving force at the heated wall.

    Follows the usual surface-crystallisation kinetics ~ (S - 1)^2 for
    S > 1 and zero otherwise, evaluated at the wall temperature (the
    locally relevant supersaturation) with an Arrhenius-like thermal
    acceleration relative to the bulk.  The absolute scale is folded
    into the fouling model's rate constant; only the *shape* (more
    overtemperature => disproportionally faster scaling) matters for
    reproducing fig. 8.
    """
    wall_t = np.asarray(wall_temperature_k, dtype=float)
    bulk_t = np.asarray(bulk_temperature_k, dtype=float)
    if np.any(wall_t < bulk_t - 1e-9):
        raise ConfigurationError("wall temperature below bulk: no scaling regime")
    s_wall = saturation_ratio(chem, wall_t)
    base = np.maximum(s_wall - 1.0, 0.0) ** 2
    # Arrhenius acceleration with Ea ~ 40 kJ/mol referenced to the bulk.
    ea_over_r = 4811.0
    accel = np.exp(ea_over_r * (1.0 / bulk_t - 1.0 / wall_t))
    return base * accel
