"""Thermophysical properties of liquid water.

Smooth engineering correlations valid over the potable-water range
(0 … 100 °C at line pressures of 0 … 10 bar), accurate to well under 1 %
against IAPWS tables — far tighter than any other modelling error in
this reproduction.  All functions accept scalars or numpy arrays and
return the same shape.

Temperatures are in kelvin unless a suffix says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import CELSIUS_OFFSET

__all__ = [
    "WaterProperties",
    "water_properties",
    "density",
    "specific_heat",
    "thermal_conductivity",
    "dynamic_viscosity",
    "kinematic_viscosity",
    "prandtl_number",
    "saturation_pressure",
    "boiling_temperature",
    "VALID_RANGE_K",
]

#: Validity range of the correlations [K]: 0 … 100 °C.
VALID_RANGE_K = (CELSIUS_OFFSET, CELSIUS_OFFSET + 100.0)


def _check_range(temperature_k) -> np.ndarray:
    """Validate and broadcast a temperature argument.

    A modest extrapolation margin (±5 K) is tolerated because transient
    solvers may momentarily overshoot; anything beyond that indicates a
    unit mistake (°C passed as K) and raises.
    """
    t = np.asarray(temperature_k, dtype=float)
    low, high = VALID_RANGE_K
    if np.any(t < low - 5.0) or np.any(t > high + 60.0):
        raise ConfigurationError(
            f"water temperature {t!r} K outside liquid range "
            f"[{low:.2f}, {high:.2f}] K — did you pass degrees Celsius?"
        )
    return t


def density(temperature_k) -> np.ndarray:
    """Density of liquid water [kg/m^3] (Kell-style polynomial in °C)."""
    t = _check_range(temperature_k) - CELSIUS_OFFSET
    # Kell (1975) polynomial; max error < 0.05 kg/m^3 over 0-100 C.
    return (
        999.83952
        + 16.945176 * t
        - 7.9870401e-3 * t**2
        - 46.170461e-6 * t**3
        + 105.56302e-9 * t**4
        - 280.54253e-12 * t**5
    ) / (1.0 + 16.879850e-3 * t)


def specific_heat(temperature_k) -> np.ndarray:
    """Isobaric specific heat capacity [J/(kg K)].

    Quartic fit to IAPWS-IF97 at 1 bar; error < 0.1 % over 0-100 °C.
    """
    t = _check_range(temperature_k) - CELSIUS_OFFSET
    return (
        4216.92378
        - 3.04860723 * t
        + 7.96622960e-2 * t**2
        - 8.32342657e-4 * t**3
        + 3.40034965e-6 * t**4
    )


def thermal_conductivity(temperature_k) -> np.ndarray:
    """Thermal conductivity [W/(m K)] (quadratic in K, Ramires et al. form)."""
    t = _check_range(temperature_k)
    return -0.5752 + 6.397e-3 * t - 8.151e-6 * t**2


def dynamic_viscosity(temperature_k) -> np.ndarray:
    """Dynamic viscosity [Pa s] via the Vogel equation."""
    t = _check_range(temperature_k)
    return 2.414e-5 * 10.0 ** (247.8 / (t - 140.0))


def kinematic_viscosity(temperature_k) -> np.ndarray:
    """Kinematic viscosity [m^2/s]."""
    return dynamic_viscosity(temperature_k) / density(temperature_k)


def prandtl_number(temperature_k) -> np.ndarray:
    """Prandtl number (dimensionless): cp * mu / k."""
    t = _check_range(temperature_k)
    return specific_heat(t) * dynamic_viscosity(t) / thermal_conductivity(t)


def saturation_pressure(temperature_k) -> np.ndarray:
    """Saturation (vapour) pressure of water [Pa] via the Antoine equation.

    Valid 1 … 100 °C, better than 0.2 % — used by the bubble-nucleation
    model to decide whether the heated wall can nucleate vapour at the
    local line pressure.
    """
    t_c = _check_range(temperature_k) - CELSIUS_OFFSET
    p_mmhg = 10.0 ** (8.07131 - 1730.63 / (233.426 + t_c))
    return p_mmhg * 133.322


def boiling_temperature(pressure_pa) -> np.ndarray:
    """Boiling temperature [K] at a given absolute pressure [Pa].

    Inverse of :func:`saturation_pressure` (Antoine inverted in closed
    form).  Clipped to the correlation's validity range.
    """
    p = np.asarray(pressure_pa, dtype=float)
    if np.any(p <= 0.0):
        raise ConfigurationError("absolute pressure must be positive")
    p_mmhg = p / 133.322
    t_c = 1730.63 / (8.07131 - np.log10(p_mmhg)) - 233.426
    return np.clip(t_c, 0.0, 180.0) + CELSIUS_OFFSET


def film_properties_scalar(temperature_k: float) -> tuple[float, float, float]:
    """Fast scalar path: (k, nu, Pr) at one film temperature [K].

    Same correlations as the vectorised functions but computed with
    plain floats and no range re-validation — this sits inside the
    per-tick film-conductance evaluation of the sensor model, which the
    profiler identifies as the simulation's hottest spot.  A single
    cheap guard still catches unit mistakes.
    """
    t = float(temperature_k)
    if not 250.0 < t < 450.0:
        raise ConfigurationError(
            f"film temperature {t} K outside liquid range — Celsius passed as K?")
    t_c = t - CELSIUS_OFFSET
    k = -0.5752 + 6.397e-3 * t - 8.151e-6 * t * t
    mu = 2.414e-5 * 10.0 ** (247.8 / (t - 140.0))
    rho = (
        999.83952
        + t_c * (16.945176
                 + t_c * (-7.9870401e-3
                          + t_c * (-46.170461e-6
                                   + t_c * (105.56302e-9 - 280.54253e-12 * t_c))))
    ) / (1.0 + 16.879850e-3 * t_c)
    cp = (
        4216.92378
        + t_c * (-3.04860723
                 + t_c * (7.96622960e-2
                          + t_c * (-8.32342657e-4 + 3.40034965e-6 * t_c)))
    )
    return k, mu / rho, cp * mu / k


@dataclass(frozen=True)
class WaterProperties:
    """Bundle of water properties evaluated at one temperature.

    Attributes
    ----------
    temperature_k:
        Evaluation temperature [K].
    rho:
        Density [kg/m^3].
    cp:
        Isobaric specific heat [J/(kg K)].
    k:
        Thermal conductivity [W/(m K)].
    mu:
        Dynamic viscosity [Pa s].
    nu:
        Kinematic viscosity [m^2/s].
    pr:
        Prandtl number.
    """

    temperature_k: float
    rho: float
    cp: float
    k: float
    mu: float
    nu: float
    pr: float


def water_properties(temperature_k: float) -> WaterProperties:
    """Evaluate all liquid-water properties at one temperature [K]."""
    t = float(_check_range(temperature_k))
    rho = float(density(t))
    cp = float(specific_heat(t))
    k = float(thermal_conductivity(t))
    mu = float(dynamic_viscosity(t))
    return WaterProperties(
        temperature_k=t,
        rho=rho,
        cp=cp,
        k=k,
        mu=mu,
        nu=mu / rho,
        pr=cp * mu / k,
    )
