"""Volume totalisation — what a water utility actually bills.

The monitor reads speed; the application needs accumulated volume.
The totaliser integrates speed x pipe area over time, with one subtle
systematic the flow calibration cannot see: the integration time base
is the node's own oscillator (:mod:`repro.isif.clock`), so a 500 ppm
clock error becomes a 500 ppm volume error forever.  The model carries
that through, and reverse flow (§5: direction detection) is accumulated
separately — backflow must never silently *reduce* the billed volume.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.isif.clock import ClockGenerator

__all__ = ["VolumeTotaliser"]


class VolumeTotaliser:
    """Integrates signed flow speed into forward/reverse volumes.

    Parameters
    ----------
    pipe_diameter_m:
        Inner diameter used for the speed → volumetric conversion.
    clock:
        The node's time base; None uses an ideal clock.
    """

    def __init__(self, pipe_diameter_m: float = 0.05,
                 clock: ClockGenerator | None = None) -> None:
        if pipe_diameter_m <= 0.0:
            raise ConfigurationError("pipe diameter must be positive")
        self.pipe_area_m2 = math.pi * (pipe_diameter_m / 2.0) ** 2
        self.clock = clock
        self._forward_m3 = 0.0
        self._reverse_m3 = 0.0

    @property
    def forward_m3(self) -> float:
        """Accumulated forward volume [m^3]."""
        return self._forward_m3

    @property
    def reverse_m3(self) -> float:
        """Accumulated reverse volume [m^3] (positive number)."""
        return self._reverse_m3

    @property
    def net_m3(self) -> float:
        """Forward minus reverse [m^3]."""
        return self._forward_m3 - self._reverse_m3

    def _effective_dt(self, true_dt_s: float) -> float:
        """The interval as the node's clock measures it."""
        if self.clock is None:
            return true_dt_s
        return true_dt_s * (1.0 + self.clock.time_base_error_fraction())

    def accumulate(self, speed_mps: float, true_dt_s: float) -> None:
        """Add one measurement interval.

        Parameters
        ----------
        speed_mps:
            Signed mean speed over the interval.
        true_dt_s:
            Wall-clock interval length; the totaliser converts it
            through its (possibly wrong) time base.
        """
        if true_dt_s <= 0.0:
            raise ConfigurationError("dt must be positive")
        dv = speed_mps * self.pipe_area_m2 * self._effective_dt(true_dt_s)
        if dv >= 0.0:
            self._forward_m3 += dv
        else:
            self._reverse_m3 += -dv

    def reset(self) -> None:
        """Zero both registers (meter exchange)."""
        self._forward_m3 = 0.0
        self._reverse_m3 = 0.0
