"""Calibration of the anemometer against a reference meter.

§4: "The system ... also provides the monitoring of a commercial
magnetic water flow sensor (Endress and Hauser Proline Promag 50) for
comparing and calibrating the MAF sensor."

The procedure steps the test line through a set of speeds, lets the CTA
loop settle at each, records (reference speed, measured conductance),
and fits King's law.  The resulting :class:`FlowCalibration` is a plain
serialisable object the estimator inverts at run time — a direction
zero-offset for the dual-heater differential is learned at the same
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CalibrationError
from repro.physics.kings_law import KingsLaw, fit_kings_law

__all__ = ["FlowCalibration", "CalibrationProcedure"]


@dataclass(frozen=True)
class FlowCalibration:
    """Fitted transfer model used by the flow estimator.

    Attributes
    ----------
    law:
        Fitted King's law G(v) = A + B v^n in firmware conductance units.
    overtemperature_k:
        CT setpoint at which the calibration holds.
    direction_offset:
        Zero-flow value of the normalised heater asymmetry, subtracted
        before taking the direction sign.
    fluid_temperature_k:
        Water temperature during calibration (ambient-specific constants,
        as the paper notes for eq. (2)).
    rms_residual_mps:
        RMS speed residual of the fit over the calibration points.
    """

    law: KingsLaw
    overtemperature_k: float
    direction_offset: float = 0.0
    fluid_temperature_k: float = 288.15
    rms_residual_mps: float = 0.0
    #: Rt as read by the firmware during the campaign [Ω]; anchors the
    #: fluid-temperature tracking (T = T_cal + (Rt/Rt_cal - 1)/alpha).
    reference_resistance_ohm: float = 2000.0
    #: Datasheet TCR of the Ti/TiN reference [1/K].
    tcr_per_k: float = 3.5e-3

    def fluid_temperature_from_rt(self, rt_ohm: float) -> float:
        """Fluid temperature [K] implied by a firmware Rt reading."""
        if rt_ohm <= 0.0:
            raise CalibrationError("reference resistance must be positive")
        ratio = rt_ohm / self.reference_resistance_ohm
        return self.fluid_temperature_k + (ratio - 1.0) / self.tcr_per_k

    def speed_from_conductance(self, conductance_w_per_k: float,
                               fluid_temperature_k: float | None = None) -> float:
        """Invert the fitted law: G → |v| [m/s].

        When ``fluid_temperature_k`` is given, the King's-law constants
        are first re-referenced from the calibration temperature to the
        current water temperature (temperature compensation — see
        :meth:`compensate_conductance`).
        """
        g = conductance_w_per_k
        if fluid_temperature_k is not None:
            g = self.compensate_conductance(g, fluid_temperature_k)
        excess = max(g - self.law.coeff_a, 0.0)
        return float((excess / self.law.coeff_b) ** (1.0 / self.law.exponent))

    def compensate_conductance(self, conductance_w_per_k: float,
                               fluid_temperature_k: float) -> float:
        """Re-reference a measured conductance to calibration conditions.

        Eq. (2)'s constants are "empirically determined and ambient
        specific": water property drift moves A and B with temperature.
        The firmware knows the property curves (they are tabulated in
        EEPROM on the real device) and the fluid temperature from Rt, so
        it can scale the measured G by the physics-derived A(T)/B(T)
        ratios before inverting the stale calibration.  This removes
        most of the CT mode's residual ambient sensitivity (bench E9).
        """
        from repro.physics.convection import WireGeometry, derive_kings_coefficients
        t_cal = self.fluid_temperature_k + self.overtemperature_k / 2.0
        t_now = fluid_temperature_k + self.overtemperature_k / 2.0
        geometry = WireGeometry()  # nominal die geometry (datasheet)
        a_cal, b_cal, _ = derive_kings_coefficients(geometry, t_cal)
        a_now, b_now, _ = derive_kings_coefficients(geometry, t_now)
        # Split the measured G into its conduction and forced parts using
        # the *physical* A-share at the current temperature, then scale
        # each part back to calibration conditions.
        forced = max(conductance_w_per_k - self.law.coeff_a * a_now / a_cal, 0.0)
        return self.law.coeff_a + forced * b_cal / b_now

    def conductance_from_speed(self, speed_mps: float) -> float:
        """Forward law (for residual checks and tests)."""
        return float(self.law.conductance(speed_mps))

    def to_dict(self) -> dict:
        """Serialise (EEPROM image of the real device)."""
        return {
            "coeff_a": self.law.coeff_a,
            "coeff_b": self.law.coeff_b,
            "exponent": self.law.exponent,
            "overtemperature_k": self.overtemperature_k,
            "direction_offset": self.direction_offset,
            "fluid_temperature_k": self.fluid_temperature_k,
            "rms_residual_mps": self.rms_residual_mps,
            "reference_resistance_ohm": self.reference_resistance_ohm,
            "tcr_per_k": self.tcr_per_k,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlowCalibration":
        """Restore from :meth:`to_dict` output."""
        try:
            law = KingsLaw(coeff_a=float(data["coeff_a"]),
                           coeff_b=float(data["coeff_b"]),
                           exponent=float(data["exponent"]))
            return cls(
                law=law,
                overtemperature_k=float(data["overtemperature_k"]),
                direction_offset=float(data.get("direction_offset", 0.0)),
                fluid_temperature_k=float(data.get("fluid_temperature_k", 288.15)),
                rms_residual_mps=float(data.get("rms_residual_mps", 0.0)),
                reference_resistance_ohm=float(
                    data.get("reference_resistance_ohm", 2000.0)),
                tcr_per_k=float(data.get("tcr_per_k", 3.5e-3)),
            )
        except KeyError as exc:
            raise CalibrationError(f"calibration image missing field {exc}") from exc


@dataclass
class CalibrationProcedure:
    """Collects calibration points and produces a :class:`FlowCalibration`.

    Use :meth:`add_point` while stepping the line (the test rig does
    this), then :meth:`fit`.

    Attributes
    ----------
    overtemperature_k:
        CT setpoint in force during the campaign.
    fluid_temperature_k:
        Water temperature of the campaign.
    """

    overtemperature_k: float
    fluid_temperature_k: float = 288.15
    #: Firmware Rt reading during the campaign (temperature anchor).
    reference_resistance_ohm: float = 2000.0
    _speeds: list[float] = field(default_factory=list)
    _conductances: list[float] = field(default_factory=list)
    _asymmetries: list[float] = field(default_factory=list)

    def add_point(self, reference_speed_mps: float, conductance_w_per_k: float,
                  heater_asymmetry: float = 0.0) -> None:
        """Record one settled operating point.

        ``heater_asymmetry`` is the normalised supply difference
        (u_a² − u_b²)/(u_a² + u_b²) used to learn the direction offset.
        """
        if conductance_w_per_k <= 0.0:
            raise CalibrationError("conductance must be positive")
        self._speeds.append(abs(float(reference_speed_mps)))
        self._conductances.append(float(conductance_w_per_k))
        self._asymmetries.append(float(heater_asymmetry))

    @property
    def points(self) -> int:
        """Number of points recorded so far."""
        return len(self._speeds)

    def fit(self, exponent: float | None = None) -> FlowCalibration:
        """Fit King's law and assemble the calibration object.

        Raises
        ------
        CalibrationError
            With fewer than 4 points or a degenerate/non-physical fit.
        """
        if self.points < 4:
            raise CalibrationError(
                f"need at least 4 calibration points, got {self.points}")
        speeds = np.array(self._speeds)
        conds = np.array(self._conductances)
        law = fit_kings_law(speeds, conds, exponent=exponent)
        # Direction offset: asymmetry observed at the lowest speeds.
        order = np.argsort(speeds)
        low = order[: max(1, self.points // 4)]
        offset = float(np.mean(np.array(self._asymmetries)[low]))
        # Residual in speed units.
        predicted = np.array([
            (max(g - law.coeff_a, 0.0) / law.coeff_b) ** (1.0 / law.exponent)
            for g in conds
        ])
        rms = float(np.sqrt(np.mean((predicted - speeds) ** 2)))
        return FlowCalibration(
            law=law,
            overtemperature_k=self.overtemperature_k,
            direction_offset=offset,
            fluid_temperature_k=self.fluid_temperature_k,
            rms_residual_mps=rms,
            reference_resistance_ohm=self.reference_resistance_ohm,
        )
