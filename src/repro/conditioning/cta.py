"""The constant-temperature anemometer closed loop (§4, fig. 5).

Per control tick:

1. the two bridge differentials are acquired through ISIF channels 0/1
   (instrument amplifier → anti-alias → ΣΔ ADC → decimation → LPF);
2. software IPs compute the error (reference subtraction — the setpoint
   is a nulled bridge) and run one PI step per bridge;
3. the drive scheme gates the PI outputs (continuous or pulsed);
4. the 12-bit thermometer DACs actuate the bridge supplies;
5. the MAF die integrates its electro-thermal state.

"the digital output of the PI controller, which represents the voltage
supplied to the two bridges, is proportional to the water flow."
The loop telemetry therefore exposes the supply voltages — they *are*
the raw measurement handed to :mod:`repro.conditioning.flow_estimator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.observability import get_registry
from repro.conditioning.drive import ContinuousDrive, DriveScheme
from repro.isif.fixed_point import QFormat
from repro.isif.pi_controller import PIConfig, PIController
from repro.isif.platform import ISIFPlatform
from repro.isif.scheduler import DEFAULT_CYCLE_COSTS, IPTask
from repro.sensor.maf import FlowConditions, MAFSensor, SensorReadout

__all__ = ["CTAConfig", "LoopTelemetry", "CTAController"]


def _noop_ip_step() -> None:
    """Cost-model placeholder body for the software IP tasks.

    A module-level function (not a lambda) so controllers — and the
    rigs that own them — stay picklable for the process-parallel
    sharded runtime.
    """


@dataclass(frozen=True)
class CTAConfig:
    """Loop configuration.

    Attributes
    ----------
    overtemperature_k:
        Constant-temperature setpoint above the water.  The paper uses a
        *reduced* overtemperature in water versus air; 5 K default.
    kp / ki:
        PI gains (V per V of bridge error; ki per second).
    supply_max_v:
        DAC full scale (actuator limit).
    supply_min_v:
        Minimum probing bias.  0 V is an absorbing state for a CTA loop
        (no supply → no bridge signal → no loop gain, and the residual
        AFE offset then pins the integrator at the bottom rail), so real
        bridges always keep a small bias; 0.3 V dissipates ~0.1 mW.
    startup_supply_v:
        PI preset so the loop can bootstrap quickly.
    qformat:
        Fixed-point format for the software IPs; None runs them float.
    """

    overtemperature_k: float = 5.0
    kp: float = 50.0
    ki: float = 20_000.0
    supply_max_v: float = 5.0
    supply_min_v: float = 0.3
    startup_supply_v: float = 1.0
    qformat: QFormat | None = QFormat(3, 20)

    def __post_init__(self) -> None:
        if self.overtemperature_k <= 0.0:
            raise ConfigurationError("overtemperature must be positive")
        if not 0.0 <= self.supply_min_v < self.supply_max_v:
            raise ConfigurationError("supply floor outside the DAC range")
        if not self.supply_min_v <= self.startup_supply_v <= self.supply_max_v:
            raise ConfigurationError("startup supply outside the DAC range")

    def to_dict(self) -> dict:
        """Serialise to a plain dict (JSON-safe)."""
        return {
            "overtemperature_k": self.overtemperature_k,
            "kp": self.kp,
            "ki": self.ki,
            "supply_max_v": self.supply_max_v,
            "supply_min_v": self.supply_min_v,
            "startup_supply_v": self.startup_supply_v,
            "qformat": None if self.qformat is None else
            {"int_bits": self.qformat.int_bits,
             "frac_bits": self.qformat.frac_bits},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CTAConfig":
        """Restore from :meth:`to_dict` output.

        Raises
        ------
        ConfigurationError
            On missing or malformed fields.
        """
        try:
            qf = data["qformat"]
            return cls(
                overtemperature_k=float(data["overtemperature_k"]),
                kp=float(data["kp"]),
                ki=float(data["ki"]),
                supply_max_v=float(data["supply_max_v"]),
                supply_min_v=float(data["supply_min_v"]),
                startup_supply_v=float(data["startup_supply_v"]),
                qformat=None if qf is None else
                QFormat(int(qf["int_bits"]), int(qf["frac_bits"])),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed CTAConfig image: {exc}") from exc


@dataclass(frozen=True)
class LoopTelemetry:
    """Everything the loop knows after one tick.

    ``supply_a_v`` / ``supply_b_v`` are the PI outputs (the measurement);
    ``sample_valid`` gates downstream consumers during pulsed off-phases.
    """

    time_s: float
    supply_a_v: float
    supply_b_v: float
    error_a_v: float
    error_b_v: float
    energised: bool
    sample_valid: bool
    readout: SensorReadout


class CTAController:
    """Binds a MAF die to an ISIF platform in constant-temperature mode."""

    def __init__(self, sensor: MAFSensor, platform: ISIFPlatform,
                 config: CTAConfig | None = None,
                 drive: DriveScheme | None = None) -> None:
        self.sensor = sensor
        self.platform = platform
        self.config = config or CTAConfig()
        self.drive = drive or ContinuousDrive()
        dt = platform.dt_s
        pi_cfg = PIConfig(kp=self.config.kp, ki=self.config.ki, dt_s=dt,
                          out_min=self.config.supply_min_v,
                          out_max=self.config.supply_max_v,
                          qformat=self.config.qformat)
        self.pi_a = PIController(pi_cfg)
        self.pi_b = PIController(pi_cfg)
        self.pi_a.preset(self.config.startup_supply_v)
        self.pi_b.preset(self.config.startup_supply_v)
        self.sensor.set_overtemperature(self.config.overtemperature_k)
        self._time_s = 0.0
        self._u_a = self.config.startup_supply_v
        self._u_b = self.config.startup_supply_v
        self._register_software_ips()

    def _register_software_ips(self) -> None:
        """Account the software partition on the LEON scheduler.

        The actual arithmetic runs inside :meth:`step`; these tasks only
        model its cycle cost, so utilisation numbers stay honest.
        """
        sched = self.platform.scheduler
        costs = DEFAULT_CYCLE_COSTS
        for name in ("reference_subtract", "pi_controller"):
            for suffix in ("_a", "_b"):
                sched.register(IPTask(name=name + suffix, step=_noop_ip_step,
                                      cycles=costs[name]))

    # -- loop ---------------------------------------------------------------------

    def step(self, conditions: FlowConditions) -> LoopTelemetry:
        """Run one control tick against the live sensor."""
        dt = self.platform.dt_s
        decision = self.drive.tick(dt)

        u_cmd_a = self._u_a if decision.energise else 0.0
        u_cmd_b = self._u_b if decision.energise else 0.0
        u_app_a, u_app_b = self.platform.drive_bridges(u_cmd_a, u_cmd_b)

        readout = self.sensor.step(dt, u_app_a, u_app_b, conditions)
        meas_a, meas_b = self.platform.acquire_bridges(
            readout.differential_a_v, readout.differential_b_v)

        # Reference subtraction: the setpoint is a balanced (nulled)
        # bridge, so the error is simply the negated differential.
        err_a = -meas_a
        err_b = -meas_b
        if decision.control_active:
            self._u_a = self.pi_a.step(err_a)
            self._u_b = self.pi_b.step(err_b)
        registry = get_registry()
        if registry.enabled:
            registry.counter("conditioning.cta.ticks").inc()
            if (self.pi_a._saturated_sign != 0
                    or self.pi_b._saturated_sign != 0):
                registry.counter("conditioning.cta.pi_saturated_ticks").inc()
        self.platform.scheduler.tick()

        self._time_s += dt
        return LoopTelemetry(
            time_s=self._time_s,
            supply_a_v=self._u_a,
            supply_b_v=self._u_b,
            error_a_v=err_a,
            error_b_v=err_b,
            energised=decision.energise,
            sample_valid=decision.sample_valid,
            readout=readout,
        )

    def run(self, conditions: FlowConditions, duration_s: float) -> list[LoopTelemetry]:
        """Run the loop for a duration under fixed conditions."""
        if duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")
        steps = max(1, int(round(duration_s * self.platform.loop_rate_hz)))
        return [self.step(conditions) for _ in range(steps)]

    def settle(self, conditions: FlowConditions, duration_s: float = 0.2) -> LoopTelemetry:
        """Run until (nominally) settled; returns the last telemetry."""
        telemetry = self.run(conditions, duration_s)
        registry = get_registry()
        if registry.enabled:
            registry.counter("conditioning.cta.settle_ticks").inc(
                len(telemetry))
        return telemetry[-1]

    # -- measurement-side helpers ---------------------------------------------------

    def balance_heater_power_w(self, supply_v: float) -> float:
        """Heater power at bridge balance for a given supply [W].

        Firmware-side model: at equilibrium Rh equals the trim-defined
        balance value, so P = U² Rh* / (Rs + Rh*)² with no free
        parameters — this converts the PI output into the King's-law
        observable.
        """
        bridge = self.sensor.bridge_a
        rh_star = bridge.balance_resistance(self.sensor.reference.nominal_ohm)
        return supply_v**2 * rh_star / (bridge.r_series_ohm + rh_star) ** 2

    def conductance_from_supplies(self, supply_a_v: float, supply_b_v: float) -> float:
        """Mean film conductance G = P/ΔT from both bridges [W/K]."""
        p_mean = 0.5 * (self.balance_heater_power_w(supply_a_v)
                        + self.balance_heater_power_w(supply_b_v))
        return p_mean / self.config.overtemperature_k

    def read_reference_resistance(self, telemetry: LoopTelemetry) -> float | None:
        """Firmware estimate of Rt [Ω] from the reference midpoint.

        Digitises the bridge-A reference-arm midpoint on spare channel 3
        (unity gain, as a driver would configure it) and solves the trim
        divider.  Returns None while the bridge is de-energised (pulsed
        off-phase) — there is no signal to read then.

        This is the input to the fluid-temperature tracking used by the
        estimator's King's-law temperature compensation.
        """
        if not telemetry.energised or telemetry.supply_a_v < 0.2:
            return None
        channel = self.platform.channels[3]
        if channel.config.afe.gain_index != 0:
            channel.registers.reg("CTRL").write_field("GAIN", 0)
            channel.apply_registers()
        # The channel chain is stateful (anti-alias + digital LPF); on
        # silicon it free-runs, so a reading is a short burst of
        # conversions, not a single isolated sample.
        v_mid = 0.0
        for _ in range(40):
            v_mid = channel.acquire(telemetry.readout.reference_midpoint_a_v)
        u = telemetry.supply_a_v
        if v_mid <= 0.0 or v_mid >= u:
            return None
        return self.sensor.bridge_a.r_trim_ohm * v_mid / (u - v_mid)
