"""Top-level application API: a calibrated water-flow monitoring point.

This is the object a downstream user instantiates: it owns the sensor,
the platform, the CTA loop, the drive scheme and the estimator, and
yields timestamped :class:`FlowMeasurement` records — the paper's
"precise measurement water sensing equipment that can be widely diffused
all over the water distribution channels".
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.drive import DriveScheme, PulsedDrive
from repro.conditioning.flow_estimator import EstimatorConfig, FlowEstimator
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFConfig, MAFSensor

__all__ = ["MonitorConfig", "FlowMeasurement", "WaterFlowMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """End-to-end monitor configuration.

    Attributes
    ----------
    loop_rate_hz:
        Control-loop rate.
    cta:
        Constant-temperature loop settings.
    output_bandwidth_hz:
        Final IIR corner (paper: 0.1 Hz).
    use_pulsed_drive:
        Pulsed drive (the paper's water solution) vs continuous DC.
    pulse_period_s / pulse_duty:
        Pulsed-drive timing.
    temperature_compensation:
        Track the fluid temperature through Rt and re-reference the
        King's-law constants before inversion (extension; bench E9).
    """

    loop_rate_hz: float = 1000.0
    cta: CTAConfig = CTAConfig()
    output_bandwidth_hz: float = 0.1
    use_pulsed_drive: bool = True
    pulse_period_s: float = 1.0
    pulse_duty: float = 0.30
    temperature_compensation: bool = False

    def __post_init__(self) -> None:
        if self.loop_rate_hz <= 0.0:
            raise ConfigurationError("loop rate must be positive")

    def to_dict(self) -> dict:
        """Serialise to a plain nested dict (JSON-safe)."""
        return {
            "loop_rate_hz": self.loop_rate_hz,
            "cta": self.cta.to_dict(),
            "output_bandwidth_hz": self.output_bandwidth_hz,
            "use_pulsed_drive": self.use_pulsed_drive,
            "pulse_period_s": self.pulse_period_s,
            "pulse_duty": self.pulse_duty,
            "temperature_compensation": self.temperature_compensation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MonitorConfig":
        """Restore from :meth:`to_dict` output.

        Raises
        ------
        ConfigurationError
            On missing or malformed fields.
        """
        try:
            return cls(
                loop_rate_hz=float(data["loop_rate_hz"]),
                cta=CTAConfig.from_dict(data["cta"]),
                output_bandwidth_hz=float(data["output_bandwidth_hz"]),
                use_pulsed_drive=bool(data["use_pulsed_drive"]),
                pulse_period_s=float(data["pulse_period_s"]),
                pulse_duty=float(data["pulse_duty"]),
                temperature_compensation=bool(
                    data["temperature_compensation"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed MonitorConfig image: {exc}") from exc


@dataclass(frozen=True)
class FlowMeasurement:
    """One reported measurement.

    Attributes
    ----------
    time_s:
        Monitor-local timestamp.
    speed_mps:
        Signed flow speed estimate [m/s].
    speed_cmps:
        Same in the paper's unit [cm/s].
    direction:
        +1 forward, -1 reverse, 0 undecided.
    bubble_coverage:
        Worst heater bubble coverage (diagnostic; healthy ≈ 0).
    valid:
        Whether this tick produced a fresh sample.
    """

    time_s: float
    speed_mps: float
    direction: int
    bubble_coverage: float
    valid: bool

    @property
    def speed_cmps(self) -> float:
        """Speed in the paper's unit."""
        return self.speed_mps * 100.0


class WaterFlowMonitor:
    """A complete calibrated monitoring point."""

    def __init__(self, sensor: MAFSensor, calibration: FlowCalibration,
                 config: MonitorConfig | None = None,
                 platform: ISIFPlatform | None = None,
                 drive: DriveScheme | None = None) -> None:
        self.config = config or MonitorConfig()
        self.platform = platform or ISIFPlatform.for_anemometer(
            loop_rate_hz=self.config.loop_rate_hz)
        if drive is None and self.config.use_pulsed_drive:
            drive = PulsedDrive(period_s=self.config.pulse_period_s,
                                duty=self.config.pulse_duty)
        self.controller = CTAController(sensor, self.platform,
                                        self.config.cta, drive=drive)
        self.estimator = FlowEstimator(
            self.controller, calibration,
            EstimatorConfig(
                output_bandwidth_hz=self.config.output_bandwidth_hz,
                sample_rate_hz=self.config.loop_rate_hz,
                temperature_compensation=self.config.temperature_compensation))

    @classmethod
    def from_calibration_file(cls, path: Path | str,
                              seed: int = 42) -> "WaterFlowMonitor":
        """Rebuild a monitoring point from a stored calibration image.

        Understands both image layouts:

        * ``anemos-cal/2`` (current): the flat calibration fields plus
          a ``format`` marker and nested ``monitor`` / ``sensor``
          config sections, so the rebuilt monitor matches the one that
          was calibrated (including the die seed).
        * legacy flat images (pre-``format``): only the calibration
          fields; the monitor falls back to a default continuous-drive
          configuration and a die seeded with ``seed``.  A deprecation
          note is printed to stderr.

        Raises
        ------
        CalibrationError
            If the file is not valid JSON, declares an unknown format,
            or is missing required fields.
        """
        try:
            image = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise CalibrationError(
                f"calibration image is not valid JSON: {exc}") from exc
        if not isinstance(image, dict):
            raise CalibrationError("calibration image must be a JSON object")
        fmt = image.get("format")
        if fmt == "anemos-cal/2":
            try:
                config = MonitorConfig.from_dict(image["monitor"])
                sensor_cfg = MAFConfig.from_dict(image["sensor"])
            except KeyError as exc:
                raise CalibrationError(
                    f"anemos-cal/2 image missing section {exc}") from exc
        elif fmt is None:
            print("note: legacy flat calibration image (pre anemos-cal/2); "
                  "re-run 'calibrate' to refresh it", file=sys.stderr)
            config = MonitorConfig(use_pulsed_drive=False)
            sensor_cfg = MAFConfig(seed=seed)
        else:
            raise CalibrationError(
                f"unsupported calibration image format {fmt!r}")
        calibration = FlowCalibration.from_dict(image)
        return cls(MAFSensor(sensor_cfg), calibration, config)

    @property
    def sensor(self) -> MAFSensor:
        """The attached die."""
        return self.controller.sensor

    def step(self, conditions: FlowConditions) -> FlowMeasurement:
        """One loop tick → one measurement record."""
        tel = self.controller.step(conditions)
        speed = self.estimator.update(tel)
        worst_cov = max(tel.readout.bubble_coverage_a, tel.readout.bubble_coverage_b)
        return FlowMeasurement(
            time_s=tel.time_s,
            speed_mps=speed,
            direction=self.estimator.direction.direction,
            bubble_coverage=worst_cov,
            valid=tel.sample_valid,
        )

    def measure(self, conditions: FlowConditions, duration_s: float) -> FlowMeasurement:
        """Run for a duration under fixed conditions; return the last record."""
        if duration_s <= 0.0:
            raise ConfigurationError("duration must be positive")
        steps = max(1, int(round(duration_s * self.config.loop_rate_hz)))
        last: FlowMeasurement | None = None
        for _ in range(steps):
            last = self.step(conditions)
        assert last is not None
        return last

    def record(self, conditions: FlowConditions, duration_s: float,
               every_n: int = 1) -> list[FlowMeasurement]:
        """Run and keep every ``every_n``-th record (memory control)."""
        if every_n < 1:
            raise ConfigurationError("every_n must be >= 1")
        steps = max(1, int(round(duration_s * self.config.loop_rate_hz)))
        out = []
        for i in range(steps):
            m = self.step(conditions)
            if i % every_n == 0:
                out.append(m)
        return out
