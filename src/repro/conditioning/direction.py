"""Flow-direction detection from the dual-heater asymmetry.

§2: "For the measurement of the direction of a flow the heating
resistors are arranged twice on a chip ... The fluid picks up heat at
the first resistor and transfers this to the second resistor.  The
results are different cooling effects on the two resistors.  This
difference can be taken for the measurement of directionality."

In constant-temperature operation the downstream heater — bathed in the
upstream heater's warm wake — needs *less* power, hence a lower supply.
The detector therefore looks at the normalised supply-squared asymmetry

    d = (u_a² − u_b²) / (u_a² + u_b²)

(positive ⇒ A works harder ⇒ A is upstream ⇒ forward flow), subtracts
the calibration zero offset (heater mismatch), low-passes it, and
applies hysteresis so turbulence near zero flow cannot chatter the sign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isif.iir import OnePoleLowpass

__all__ = ["DirectionConfig", "DirectionDetector"]


@dataclass(frozen=True)
class DirectionConfig:
    """Detector tuning.

    Attributes
    ----------
    offset:
        Calibration zero offset of the asymmetry (heater mismatch).
    threshold:
        Asymmetry magnitude needed to *claim* a direction.
    hysteresis:
        Extra margin required to *flip* an already-claimed direction.
    filter_cutoff_hz / sample_rate_hz:
        Asymmetry low-pass ahead of the comparator.
    """

    offset: float = 0.0
    threshold: float = 0.004
    hysteresis: float = 0.002
    filter_cutoff_hz: float = 1.0
    sample_rate_hz: float = 1000.0

    def __post_init__(self) -> None:
        if self.threshold <= 0.0 or self.hysteresis < 0.0:
            raise ConfigurationError("threshold must be positive, hysteresis >= 0")
        if self.filter_cutoff_hz <= 0.0:
            raise ConfigurationError("filter cutoff must be positive")


class DirectionDetector:
    """Stateful direction discriminator; feed it every valid loop sample."""

    def __init__(self, config: DirectionConfig | None = None) -> None:
        self.config = config or DirectionConfig()
        self._filter = OnePoleLowpass(self.config.filter_cutoff_hz,
                                      self.config.sample_rate_hz)
        self._direction = 0  # -1 reverse, 0 unknown/still, +1 forward

    @property
    def direction(self) -> int:
        """Current direction claim: +1 forward, -1 reverse, 0 undecided."""
        return self._direction

    @staticmethod
    def asymmetry(supply_a_v: float, supply_b_v: float) -> float:
        """Normalised supply-squared asymmetry d in [-1, 1]."""
        pa = supply_a_v * supply_a_v
        pb = supply_b_v * supply_b_v
        total = pa + pb
        if total <= 0.0:
            return 0.0
        return (pa - pb) / total

    def update(self, supply_a_v: float, supply_b_v: float) -> int:
        """Process one sample pair; returns the (possibly new) direction."""
        cfg = self.config
        d = self._filter.step(self.asymmetry(supply_a_v, supply_b_v) - cfg.offset)
        if self._direction == 0:
            if d > cfg.threshold:
                self._direction = 1
            elif d < -cfg.threshold:
                self._direction = -1
        elif self._direction == 1 and d < -(cfg.threshold + cfg.hysteresis):
            self._direction = -1
        elif self._direction == -1 and d > cfg.threshold + cfg.hysteresis:
            self._direction = 1
        return self._direction

    def reset(self) -> None:
        """Forget the current claim and filter state."""
        self._filter.reset()
        self._direction = 0
