"""A deployed monitoring node: the §6/§7 field device.

Composes everything a diffused metering point needs around the core
monitor:

* boots its calibration from EEPROM (CRC-verified — a node with a
  corrupt image refuses to measure);
* wakes on a schedule, runs a measurement burst, ships a telemetry
  frame over the UART link, then deep-sleeps (§7's battery story);
* services a watchdog during the burst;
* accounts battery charge so a fleet simulation can age nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CalibrationError, ConfigurationError
from repro.conditioning.eeprom_image import load_calibration
from repro.conditioning.monitor import FlowMeasurement, MonitorConfig, WaterFlowMonitor
from repro.conditioning.telemetry import TelemetryChannel, TelemetryFrame
from repro.conditioning.totaliser import VolumeTotaliser
from repro.isif.clock import ClockGenerator
from repro.isif.eeprom import Eeprom
from repro.isif.power import BatteryPack, PowerModel, PowerState
from repro.isif.timers import Watchdog
from repro.isif.uart import UartLink
from repro.sensor.maf import FlowConditions, MAFSensor

__all__ = ["FieldNodeConfig", "CycleReport", "FieldNode"]


@dataclass(frozen=True)
class FieldNodeConfig:
    """Deployment parameters of one node.

    Attributes
    ----------
    burst_s:
        Measurement burst length per wake-up.
    period_s:
        Wake-up period (the §7 "typical sensor usage" cadence).
    watchdog_timeout_s:
        Liveness bound during a burst.
    monitor:
        Conditioning configuration for the burst.
    """

    burst_s: float = 2.0
    period_s: float = 900.0
    watchdog_timeout_s: float = 0.5
    monitor: MonitorConfig = MonitorConfig(use_pulsed_drive=False)

    def __post_init__(self) -> None:
        if self.burst_s <= 0.0 or self.period_s <= self.burst_s:
            raise ConfigurationError("period must exceed the burst length")
        if self.watchdog_timeout_s <= 0.0:
            raise ConfigurationError("watchdog timeout must be positive")


@dataclass(frozen=True)
class CycleReport:
    """Outcome of one wake-measure-transmit-sleep cycle.

    Attributes
    ----------
    measurement:
        The burst's final measurement.
    frame:
        The telemetry frame as received upstream (None if line noise
        destroyed it — the node sleeps regardless).
    charge_used_ah:
        Battery charge consumed by the whole cycle.
    battery_remaining_ah:
        Pack state after the cycle.
    """

    measurement: FlowMeasurement
    frame: TelemetryFrame | None
    charge_used_ah: float
    battery_remaining_ah: float


class FieldNode:
    """One autonomous monitoring point.

    Parameters
    ----------
    sensor:
        The installed die + housing.
    eeprom:
        Non-volatile memory holding the calibration image.
    link:
        Telemetry uplink.
    config:
        Deployment parameters.
    power / battery:
        Energy models (defaults: the §7 ASIC + 4xAA pack).
    """

    def __init__(self, sensor: MAFSensor, eeprom: Eeprom,
                 link: UartLink | None = None,
                 config: FieldNodeConfig | None = None,
                 power: PowerModel | None = None,
                 battery: BatteryPack | None = None,
                 seed: int = 0) -> None:
        self.config = config or FieldNodeConfig()
        self._sensor = sensor
        self._eeprom = eeprom
        self.telemetry = TelemetryChannel(link)
        self.power = power or PowerModel()
        self.battery = battery or BatteryPack()
        self.watchdog = Watchdog(self.config.watchdog_timeout_s)
        self.clock = ClockGenerator(seed=seed)
        # Billing register: each burst's reading is held for the whole
        # period (sample-and-hold totalisation — the standard practice
        # for duty-cycled meters; fast flow transients between bursts
        # alias, which is why utilities bound the wake period).
        self.totaliser = VolumeTotaliser(clock=self.clock)
        self._charge_used_ah = 0.0
        self._monitor: WaterFlowMonitor | None = None

    # -- lifecycle -----------------------------------------------------------------

    def boot(self) -> None:
        """Load + verify the calibration and build the conditioning stack.

        Raises
        ------
        CalibrationError
            If the EEPROM image is corrupt — the node must not measure.
        """
        calibration = load_calibration(self._eeprom)
        self._monitor = WaterFlowMonitor(self._sensor, calibration,
                                         self.config.monitor)

    @property
    def booted(self) -> bool:
        """Whether the node completed :meth:`boot`."""
        return self._monitor is not None

    @property
    def battery_remaining_ah(self) -> float:
        """Usable charge left in the pack."""
        return max(self.battery.usable_capacity_ah - self._charge_used_ah, 0.0)

    @property
    def depleted(self) -> bool:
        """True once the pack is exhausted."""
        return self.battery_remaining_ah <= 0.0

    # -- operation -----------------------------------------------------------------

    def run_cycle(self, conditions: FlowConditions) -> CycleReport:
        """One full wake → measure → transmit → sleep cycle.

        Raises
        ------
        CalibrationError
            If the node was never booted.
        ConfigurationError
            If the battery is already depleted.
        """
        if self._monitor is None:
            raise CalibrationError("node not booted — no valid calibration")
        if self.depleted:
            raise ConfigurationError("battery depleted — node is dark")
        cfg = self.config
        dt = self._monitor.platform.dt_s
        self.watchdog.enable(True)
        self.watchdog.kick()
        measurement: FlowMeasurement | None = None
        steps = max(1, int(round(cfg.burst_s / dt)))
        for _ in range(steps):
            measurement = self._monitor.step(conditions)
            self.watchdog.kick()
            self.watchdog.advance(dt)
        assert measurement is not None
        self.totaliser.accumulate(measurement.speed_mps, cfg.period_s)
        frame = self.telemetry.send(measurement)
        self.watchdog.enable(False)  # deep sleep: watchdog gated

        # Energy bookkeeping for the whole cycle.
        avg_a = self.power.average_current_a([
            (PowerState.MEASURE, cfg.burst_s),
            (PowerState.IDLE, 0.05),
            (PowerState.DEEP_SLEEP, cfg.period_s - cfg.burst_s - 0.05),
        ])
        used = avg_a * cfg.period_s / 3600.0
        self._charge_used_ah += used
        return CycleReport(
            measurement=measurement,
            frame=frame,
            charge_used_ah=used,
            battery_remaining_ah=self.battery_remaining_ah,
        )

    def projected_autonomy_years(self) -> float:
        """Lifetime projection at the configured cadence."""
        cfg = self.config
        avg = self.power.duty_cycled_current_a(cfg.burst_s, cfg.period_s)
        return self.battery.autonomy_years(avg)
