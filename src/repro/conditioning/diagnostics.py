"""Online sensor-health diagnostics.

§5 verifies by inspection that the deployed sensor shows "no corrosion
or pollution on the surface after several months of test and no deposit
of calcium carbonate".  A diffused fleet cannot be inspected, so the
firmware must *infer* surface health from its own signals:

* **zero-flow drift** — during night minimum-flow windows, the measured
  conductance should sit on the calibration's A coefficient; a fouled
  (or bubble-covered) surface reads low, a leaking package reads
  biased.  A slow EWMA of the night readings against A is the fouling
  gauge;
* **loop health** — bridge error RMS and bubble coverage beyond bounds
  flag an unstable or bubbling loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ConfigurationError
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import LoopTelemetry

__all__ = ["HealthStatus", "ZeroFlowDriftMonitor", "LoopHealthMonitor"]


class HealthStatus(Enum):
    """Tri-state diagnostic verdict."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAULT = "fault"


class ZeroFlowDriftMonitor:
    """Tracks conductance drift at (known) zero flow.

    Feed :meth:`update` the firmware conductance during commanded or
    detected night-minimum windows; the EWMA against the calibration's
    zero-flow coefficient A yields a drift fraction:

    * fouling adds series thermal resistance → conductance reads LOW;
    * drift beyond ``degraded_fraction`` / ``fault_fraction`` trips the
      corresponding status.
    """

    def __init__(self, calibration: FlowCalibration,
                 ewma_alpha: float = 0.05,
                 degraded_fraction: float = 0.05,
                 fault_fraction: float = 0.15) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError("EWMA alpha must be in (0, 1]")
        if not 0.0 < degraded_fraction < fault_fraction:
            raise ConfigurationError(
                "need 0 < degraded_fraction < fault_fraction")
        self.calibration = calibration
        self.ewma_alpha = ewma_alpha
        self.degraded_fraction = degraded_fraction
        self.fault_fraction = fault_fraction
        self._ewma_g: float | None = None
        self._samples = 0

    @property
    def samples(self) -> int:
        """Night-window samples consumed so far."""
        return self._samples

    def update(self, conductance_w_per_k: float) -> None:
        """Consume one zero-flow conductance sample."""
        if conductance_w_per_k <= 0.0:
            raise ConfigurationError("conductance must be positive")
        if self._ewma_g is None:
            self._ewma_g = conductance_w_per_k
        else:
            self._ewma_g += self.ewma_alpha * (conductance_w_per_k - self._ewma_g)
        self._samples += 1

    def drift_fraction(self) -> float:
        """Relative deviation of the tracked G from the calibrated A.

        Negative = conductance loss (fouling); positive = gain (leakage
        current or a calibration problem).  0 before any samples.
        """
        if self._ewma_g is None:
            return 0.0
        a = self.calibration.law.coeff_a
        return (self._ewma_g - a) / a

    def status(self) -> HealthStatus:
        """Current verdict (requires a minimally trained EWMA)."""
        if self._samples < 10:
            return HealthStatus.HEALTHY
        drift = abs(self.drift_fraction())
        if drift >= self.fault_fraction:
            return HealthStatus.FAULT
        if drift >= self.degraded_fraction:
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY


class LoopHealthMonitor:
    """Windowed bridge-error and bubble-coverage supervision."""

    def __init__(self, window: int = 500,
                 error_rms_limit_v: float = 5e-3,
                 coverage_limit: float = 0.05) -> None:
        if window < 10:
            raise ConfigurationError("window must be >= 10 samples")
        if error_rms_limit_v <= 0.0 or not 0.0 < coverage_limit < 1.0:
            raise ConfigurationError("limits must be positive (coverage < 1)")
        self.window = window
        self.error_rms_limit_v = error_rms_limit_v
        self.coverage_limit = coverage_limit
        self._errors: list[float] = []
        self._worst_coverage = 0.0

    def update(self, telemetry: LoopTelemetry) -> None:
        """Consume one loop tick (valid samples only are meaningful)."""
        if not telemetry.sample_valid:
            return
        self._errors.append(telemetry.error_a_v)
        if len(self._errors) > self.window:
            del self._errors[0]
        self._worst_coverage = max(
            self._worst_coverage,
            telemetry.readout.bubble_coverage_a,
            telemetry.readout.bubble_coverage_b)

    def error_rms_v(self) -> float:
        """Bridge-error RMS over the window."""
        if not self._errors:
            return 0.0
        return float(np.sqrt(np.mean(np.square(self._errors))))

    def status(self) -> HealthStatus:
        """Loop verdict."""
        if self._worst_coverage > 3.0 * self.coverage_limit:
            return HealthStatus.FAULT
        if (self._worst_coverage > self.coverage_limit
                or self.error_rms_v() > self.error_rms_limit_v):
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY

    def reset_coverage(self) -> None:
        """Acknowledge a bubble event (after a purge cycle)."""
        self._worst_coverage = 0.0
