"""Sensor drive schemes: continuous DC vs pulsed voltage.

§4: "The first problem [bubble generation] can be overcome adopting a
pulsed voltage driving technique instead of continuous sensor biasing in
conjunction with reduced overtemperature of the heating element."

A drive scheme sits between the PI controller and the DAC: it decides,
per tick, whether the heater is energised and whether the loop output is
a *valid measurement sample*.  During pulsed off-phases the heater cools
(bubbles detach), the PI is frozen, and the first ticks of each on-phase
are blanked while the wire re-heats.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DriveDecision", "DriveScheme", "ContinuousDrive", "PulsedDrive"]


@dataclass(frozen=True)
class DriveDecision:
    """Outcome of the drive scheme for one tick.

    Attributes
    ----------
    energise:
        Apply the commanded supply (True) or 0 V (False).
    control_active:
        Run the PI update this tick (frozen during off-phases).
    sample_valid:
        The loop output is a usable flow sample (False while off and
        during the re-heat blanking window).
    """

    energise: bool
    control_active: bool
    sample_valid: bool


class DriveScheme:
    """Interface: call :meth:`tick` once per loop period."""

    def tick(self, dt: float) -> DriveDecision:
        """Advance scheme time by ``dt`` and return this tick's decision."""
        raise NotImplementedError

    def tick_block(self, dt: float, count: int
                   ) -> tuple[list, list, list]:
        """Advance ``count`` ticks at once; returns the three decision
        channels as lists (``energise``, ``control_active``,
        ``sample_valid``).

        The default delegates to :meth:`tick` so custom schemes stay
        correct; the built-in schemes override it with loops that skip
        the per-tick :class:`DriveDecision` allocation (bit-identical
        phase accounting, one validation per block since ``dt`` is
        shared).
        """
        energise, control, valid = [], [], []
        for _ in range(count):
            dec = self.tick(dt)
            energise.append(dec.energise)
            control.append(dec.control_active)
            valid.append(dec.sample_valid)
        return energise, control, valid

    def reset(self) -> None:
        """Restart the scheme's phase."""
        raise NotImplementedError

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the heater is energised (for fouling/power)."""
        raise NotImplementedError


class ContinuousDrive(DriveScheme):
    """Plain DC biasing — the naive scheme that grows bubbles (fig. 7)."""

    def tick(self, dt: float) -> DriveDecision:
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        return DriveDecision(energise=True, control_active=True, sample_valid=True)

    def tick_block(self, dt: float, count: int
                   ) -> tuple[list, list, list]:
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        on = [True] * count
        return on, on, on

    def reset(self) -> None:
        """Stateless — nothing to do."""

    @property
    def duty_cycle(self) -> float:
        return 1.0


class PulsedDrive(DriveScheme):
    """Periodic on/off modulation of the bridge supply.

    Parameters
    ----------
    period_s:
        Full on+off cycle length.
    duty:
        Fraction of the period the heater is on.
    blanking_s:
        Time after each turn-on during which samples are discarded while
        the wire re-heats and the loop re-converges.
    """

    def __init__(self, period_s: float = 1.0, duty: float = 0.30,
                 blanking_s: float = 0.050) -> None:
        if period_s <= 0.0:
            raise ConfigurationError("period must be positive")
        if not 0.0 < duty < 1.0:
            raise ConfigurationError("duty must be in (0, 1)")
        if blanking_s < 0.0 or blanking_s >= duty * period_s:
            raise ConfigurationError(
                "blanking must be non-negative and shorter than the on-phase")
        self.period_s = period_s
        self.duty = duty
        self.blanking_s = blanking_s
        self._t = 0.0

    def tick(self, dt: float) -> DriveDecision:
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        phase = self._t % self.period_s
        self._t += dt
        on = phase < self.duty * self.period_s
        valid = on and phase >= self.blanking_s
        return DriveDecision(energise=on, control_active=on, sample_valid=valid)

    def tick_block(self, dt: float, count: int
                   ) -> tuple[list, list, list]:
        # Same phase arithmetic as ``count`` calls to :meth:`tick`
        # (``duty * period_s`` is loop-invariant, so hoisting it keeps
        # the comparison bits), minus the per-tick DriveDecision.
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        t = self._t
        period = self.period_s
        on_len = self.duty * period
        blank = self.blanking_s
        energise: list[bool] = []
        valid: list[bool] = []
        on_append = energise.append
        valid_append = valid.append
        for _ in range(count):
            phase = t % period
            t += dt
            on = phase < on_len
            on_append(on)
            valid_append(on and phase >= blank)
        self._t = t
        # ``control_active`` mirrors ``energise`` for this scheme; the
        # shared list is safe because callers treat the channels as
        # read-only.
        return energise, energise, valid

    def reset(self) -> None:
        self._t = 0.0

    @property
    def duty_cycle(self) -> float:
        return self.duty

    @property
    def effective_sample_fraction(self) -> float:
        """Fraction of wall-clock time yielding valid samples."""
        return self.duty - self.blanking_s / self.period_s
