"""CRC-protected EEPROM layout of the calibration record.

The deployed monitor boots, loads its calibration from EEPROM, verifies
the CRC, and refuses to report flow with a corrupt image (a wrong
calibration is worse than no measurement in a billing/leak context).

Record layout (network byte order):

    magic   u16     0xA5C3
    version u16     1
    payload f64 x 8 (coeff_a, coeff_b, exponent, overtemperature_k,
                     direction_offset, fluid_temperature_k,
                     reference_resistance_ohm, tcr_per_k)
    crc     u16     CRC-16/CCITT over magic..payload
"""

from __future__ import annotations

import struct

from repro.errors import CalibrationError
from repro.conditioning.calibration import FlowCalibration
from repro.isif.eeprom import Eeprom, crc16_ccitt

__all__ = ["store_calibration", "load_calibration", "CALIBRATION_ADDRESS",
           "RECORD_SIZE"]

MAGIC = 0xA5C3
VERSION = 1
_HEADER = struct.Struct(">HH")
_PAYLOAD = struct.Struct(">8d")
_CRC = struct.Struct(">H")

#: Default EEPROM address of the calibration record.
CALIBRATION_ADDRESS = 0x0000

#: Total record size in bytes.
RECORD_SIZE = _HEADER.size + _PAYLOAD.size + _CRC.size


def _encode(calibration: FlowCalibration) -> bytes:
    body = _HEADER.pack(MAGIC, VERSION) + _PAYLOAD.pack(
        calibration.law.coeff_a,
        calibration.law.coeff_b,
        calibration.law.exponent,
        calibration.overtemperature_k,
        calibration.direction_offset,
        calibration.fluid_temperature_k,
        calibration.reference_resistance_ohm,
        calibration.tcr_per_k,
    )
    return body + _CRC.pack(crc16_ccitt(body))


def store_calibration(eeprom: Eeprom, calibration: FlowCalibration,
                      address: int = CALIBRATION_ADDRESS) -> None:
    """Write the calibration record (one EEPROM transaction)."""
    eeprom.write(address, _encode(calibration))


def load_calibration(eeprom: Eeprom,
                     address: int = CALIBRATION_ADDRESS) -> FlowCalibration:
    """Read and verify the calibration record.

    Raises
    ------
    CalibrationError
        On bad magic, unsupported version or CRC mismatch (worn cell,
        interrupted write) — the monitor must not run uncalibrated.
    """
    raw = eeprom.read(address, RECORD_SIZE)
    body, crc_bytes = raw[:-_CRC.size], raw[-_CRC.size:]
    (stored_crc,) = _CRC.unpack(crc_bytes)
    if crc16_ccitt(body) != stored_crc:
        raise CalibrationError(
            "calibration image CRC mismatch — EEPROM corrupt or image "
            "never written; recalibrate before measuring")
    magic, version = _HEADER.unpack(body[:_HEADER.size])
    if magic != MAGIC:
        raise CalibrationError(f"bad calibration magic {magic:#x}")
    if version != VERSION:
        raise CalibrationError(f"unsupported calibration version {version}")
    (coeff_a, coeff_b, exponent, overtemp, dir_offset, fluid_t,
     rt_ref, tcr) = _PAYLOAD.unpack(body[_HEADER.size:])
    return FlowCalibration.from_dict({
        "coeff_a": coeff_a,
        "coeff_b": coeff_b,
        "exponent": exponent,
        "overtemperature_k": overtemp,
        "direction_offset": dir_offset,
        "fluid_temperature_k": fluid_t,
        "reference_resistance_ohm": rt_ref,
        "tcr_per_k": tcr,
    })
