"""Measurement telemetry framing over the UART link.

The diffused monitoring points of §6 must report upstream.  A frame
carries a timestamped flow measurement plus diagnostics; CRC-16
protects it against the line noise the UART model can inject.

Frame layout (network byte order):

    sync     u16   0x55AA
    seq      u16   rolling frame counter
    time_cs  u32   monitor time in centiseconds
    flow     i16   signed flow in mm/s (±32.7 m/s span, 1 mm/s LSB)
    flags    u8    bit0 valid, bit1 reverse, bit2 bubble warning
    coverage u8    bubble coverage, 1/255 steps
    crc      u16   CRC-16/CCITT over sync..coverage
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ConfigurationError, FrameError
from repro.conditioning.monitor import FlowMeasurement
from repro.isif.eeprom import crc16_ccitt
from repro.isif.uart import UartLink
from repro.observability import get_registry

__all__ = ["TelemetryFrame", "encode_frame", "decode_frame", "FrameError",
           "TelemetryChannel", "FRAME_SIZE"]

SYNC = 0x55AA
_STRUCT = struct.Struct(">HHIhBB")
_CRC = struct.Struct(">H")

#: Total frame size in bytes.
FRAME_SIZE = _STRUCT.size + _CRC.size


@dataclass(frozen=True)
class TelemetryFrame:
    """Decoded telemetry frame.

    Attributes
    ----------
    sequence:
        Rolling 16-bit frame counter (gap detection upstream).
    time_s:
        Monitor timestamp, centisecond resolution.
    flow_mps:
        Signed flow, 1 mm/s resolution.
    valid:
        The sample was fresh (not a pulsed-drive hold).
    bubble_warning:
        Coverage above the diagnostic threshold.
    bubble_coverage:
        Quantised coverage in [0, 1].
    """

    sequence: int
    time_s: float
    flow_mps: float
    valid: bool
    bubble_warning: bool
    bubble_coverage: float


#: Coverage above which the frame carries the bubble-warning flag.
BUBBLE_WARNING_THRESHOLD = 0.05


def encode_frame(measurement: FlowMeasurement, sequence: int) -> bytes:
    """Pack a measurement into a wire frame."""
    if not 0 <= sequence <= 0xFFFF:
        raise ConfigurationError("sequence must be 16-bit")
    flow_mmps = int(round(measurement.speed_mps * 1000.0))
    flow_mmps = max(-32768, min(32767, flow_mmps))
    flags = (int(measurement.valid)
             | (int(measurement.speed_mps < 0.0) << 1)
             | (int(measurement.bubble_coverage > BUBBLE_WARNING_THRESHOLD) << 2))
    coverage = max(0, min(255, int(round(measurement.bubble_coverage * 255.0))))
    time_cs = int(round(measurement.time_s * 100.0)) & 0xFFFF_FFFF
    body = _STRUCT.pack(SYNC, sequence, time_cs, flow_mmps, flags, coverage)
    return body + _CRC.pack(crc16_ccitt(body))


def decode_frame(raw: bytes) -> TelemetryFrame:
    """Unpack and validate a wire frame.

    Raises
    ------
    FrameError
        On short input, bad sync word or CRC mismatch.
    """
    if len(raw) != FRAME_SIZE:
        raise FrameError(f"frame must be {FRAME_SIZE} bytes, got {len(raw)}",
                         reason="length")
    body, crc_bytes = raw[:-_CRC.size], raw[-_CRC.size:]
    (stored,) = _CRC.unpack(crc_bytes)
    if crc16_ccitt(body) != stored:
        raise FrameError("frame CRC mismatch (line noise)", reason="crc")
    sync, seq, time_cs, flow_mmps, flags, coverage = _STRUCT.unpack(body)
    if sync != SYNC:
        raise FrameError(f"bad sync word {sync:#x}", reason="sync")
    return TelemetryFrame(
        sequence=seq,
        time_s=time_cs / 100.0,
        flow_mps=flow_mmps / 1000.0,
        valid=bool(flags & 0x01),
        bubble_warning=bool(flags & 0x04),
        bubble_coverage=coverage / 255.0,
    )


class TelemetryChannel:
    """Frames measurements and moves them across a UART link.

    Frames whose UART characters or CRC arrive damaged are counted and
    dropped — the upstream consumer sees sequence gaps, never garbage.
    Per-channel tallies (``frames_sent`` / ``frames_dropped`` /
    ``crc_failures``) are always kept; with observability enabled the
    same tallies also feed the ``conditioning.telemetry.*`` counters of
    the process-wide metrics registry.
    """

    def __init__(self, link: UartLink | None = None) -> None:
        self.link = link or UartLink()
        self._sequence = 0
        self.frames_sent = 0
        self.frames_dropped = 0
        self.crc_failures = 0

    def send(self, measurement: FlowMeasurement) -> TelemetryFrame | None:
        """Transmit one measurement; returns the decoded frame or None
        if the line damaged it (dropped)."""
        raw = encode_frame(measurement, self._sequence)
        self._sequence = (self._sequence + 1) & 0xFFFF
        self.frames_sent += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("conditioning.telemetry.frames_sent").inc()
        received, _char_errors = self.link.transfer(raw)
        try:
            return decode_frame(received)
        except FrameError as exc:
            self.frames_dropped += 1
            if exc.reason == "crc":
                self.crc_failures += 1
            if registry.enabled:
                registry.counter(
                    "conditioning.telemetry.frames_dropped").inc()
                if exc.reason == "crc":
                    registry.counter(
                        "conditioning.telemetry.crc_failures").inc()
            return None

    @property
    def drop_rate(self) -> float:
        """Fraction of frames lost to line noise so far."""
        if self.frames_sent == 0:
            return 0.0
        return self.frames_dropped / self.frames_sent
