"""Relay (Åström–Hägglund) auto-tuning of the CTA loop's PI gains.

The paper's platform methodology is exactly this kind of bring-up
automation: instead of hand-exploring PI gains per sensor variant (one
axis of bench E14), the firmware can run a relay experiment — replace
the PI with a bang-bang drive, measure the induced limit cycle, and
derive the ultimate gain/period — then apply Ziegler–Nichols PI rules.

The relay toggles the bridge supply between ``u0 ± h``; the bridge
error oscillates at the loop's ultimate period P_u with amplitude a,
giving K_u = 4h / (π a) and the classic (conservative) PI setting
K_p = 0.4 K_u, K_i = 1.2 K_u / P_u.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.conditioning.cta import CTAConfig
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFSensor

__all__ = ["RelayResult", "RelayAutotuner"]


@dataclass(frozen=True)
class RelayResult:
    """Outcome of a relay experiment.

    Attributes
    ----------
    ultimate_gain:
        K_u = 4h / (pi a) [V of supply per V of bridge error].
    ultimate_period_s:
        Limit-cycle period P_u.
    kp / ki:
        Recommended PI gains (conservative Ziegler–Nichols).
    oscillation_amplitude_v:
        Measured bridge-error amplitude a.
    cycles_used:
        Limit cycles averaged for the estimate.
    """

    ultimate_gain: float
    ultimate_period_s: float
    kp: float
    ki: float
    oscillation_amplitude_v: float
    cycles_used: int

    def to_cta_config(self, base: CTAConfig | None = None) -> CTAConfig:
        """Bake the recommendation into a loop configuration."""
        from dataclasses import replace
        return replace(base or CTAConfig(), kp=self.kp, ki=self.ki)


class RelayAutotuner:
    """Runs the relay experiment against a live (simulated) sensor.

    Parameters
    ----------
    sensor / platform:
        The die and the ISIF instance to tune on.
    center_supply_v:
        Operating-point bias u0 (choose near the expected mid-flow
        supply so the plant gain is representative).
    relay_amplitude_v:
        Relay half-swing h.
    overtemperature_k:
        CT setpoint the bridges are trimmed to during the experiment.
    """

    def __init__(self, sensor: MAFSensor, platform: ISIFPlatform,
                 center_supply_v: float = 2.2,
                 relay_amplitude_v: float = 0.4,
                 overtemperature_k: float = 5.0) -> None:
        if relay_amplitude_v <= 0.0:
            raise ConfigurationError("relay amplitude must be positive")
        if not 0.0 < center_supply_v - relay_amplitude_v \
                or center_supply_v + relay_amplitude_v > 5.0:
            raise ConfigurationError("relay swing leaves the DAC range")
        self.sensor = sensor
        self.platform = platform
        self.center_supply_v = center_supply_v
        self.relay_amplitude_v = relay_amplitude_v
        self.overtemperature_k = overtemperature_k

    def run(self, conditions: FlowConditions, max_duration_s: float = 4.0,
            settle_cycles: int = 3, measure_cycles: int = 5) -> RelayResult:
        """Execute the experiment.

        Raises
        ------
        ConvergenceError
            If no stable limit cycle appears within the budget.
        """
        if measure_cycles < 2:
            raise ConfigurationError("need at least 2 measured cycles")
        self.sensor.set_overtemperature(self.overtemperature_k,
                                        conditions.temperature_k)
        dt = self.platform.dt_s
        u = self.center_supply_v + self.relay_amplitude_v
        sign = 1
        crossings: list[float] = []
        amplitudes: list[float] = []
        peak = 0.0
        steps = int(max_duration_s / dt)
        for i in range(steps):
            u_a, u_b = self.platform.drive_bridges(u, u)
            readout = self.sensor.step(dt, u_a, u_b, conditions)
            err, _ = self.platform.acquire_bridges(
                readout.differential_a_v, readout.differential_b_v)
            err = -err  # loop error convention
            peak = max(peak, abs(err))
            new_sign = 1 if err > 0.0 else -1
            if new_sign != sign:
                crossings.append(i * dt)
                amplitudes.append(peak)
                peak = 0.0
                sign = new_sign
            u = self.center_supply_v + sign * self.relay_amplitude_v
            if len(crossings) >= 2 * (settle_cycles + measure_cycles) + 1:
                break
        else:
            if len(crossings) < 2 * (settle_cycles + 2):
                raise ConvergenceError(
                    f"relay produced only {len(crossings) // 2} limit cycles "
                    f"in {max_duration_s} s — plant too slow or relay too small")

        # Discard the settling cycles; average the rest.
        zc = np.array(crossings[2 * settle_cycles:])
        amp = np.array(amplitudes[2 * settle_cycles:])
        if zc.size < 4:
            raise ConvergenceError("too few post-settle crossings")
        half_periods = np.diff(zc)
        period = 2.0 * float(np.mean(half_periods))
        a = float(np.mean(amp))
        if a <= 0.0 or period <= 0.0:
            raise ConvergenceError("degenerate limit cycle")
        ku = 4.0 * self.relay_amplitude_v / (np.pi * a)
        return RelayResult(
            ultimate_gain=ku,
            ultimate_period_s=period,
            kp=0.4 * ku,
            ki=1.2 * ku / period,
            oscillation_amplitude_v=a,
            cycles_used=zc.size // 2,
        )
