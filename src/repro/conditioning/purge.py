"""Bubble purge cycles: acting on the diagnostics.

The pulsed drive *prevents* bubble accumulation; but a deployed node
that ever finds itself fouled (wrong configuration, extreme water, a
stuck continuous-drive fallback) can actively recover: de-energise the
heaters for a purge interval — stuck bubbles collapse and detach with
no heat input — then re-arm and verify.  This module automates that
recover-verify-escalate sequence around the loop health monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SensorFault
from repro.conditioning.cta import CTAController
from repro.conditioning.diagnostics import HealthStatus, LoopHealthMonitor
from repro.sensor.maf import FlowConditions

__all__ = ["PurgeConfig", "PurgeController"]


@dataclass(frozen=True)
class PurgeConfig:
    """Purge sequencing parameters.

    Attributes
    ----------
    off_time_s:
        Heater-off interval per purge attempt (bubble collapse takes
        a couple of seconds of idle detachment).
    recheck_time_s:
        Powered observation window after a purge before verdicting.
    max_attempts:
        Escalate to :class:`SensorFault` after this many failed purges
        (the surface is fouled by something a purge cannot remove).
    coverage_ok:
        Residual coverage below which the purge counts as successful.
    """

    off_time_s: float = 4.0
    recheck_time_s: float = 1.0
    max_attempts: int = 3
    coverage_ok: float = 0.02

    def __post_init__(self) -> None:
        if self.off_time_s <= 0.0 or self.recheck_time_s <= 0.0:
            raise ConfigurationError("purge intervals must be positive")
        if self.max_attempts < 1:
            raise ConfigurationError("need at least one attempt")
        if not 0.0 < self.coverage_ok < 1.0:
            raise ConfigurationError("coverage_ok must be in (0, 1)")


class PurgeController:
    """Wraps a CTA loop with automatic bubble-purge recovery."""

    def __init__(self, controller: CTAController,
                 health: LoopHealthMonitor | None = None,
                 config: PurgeConfig | None = None) -> None:
        self.controller = controller
        self.health = health or LoopHealthMonitor()
        self.config = config or PurgeConfig()
        self._purges = 0

    @property
    def purge_count(self) -> int:
        """Purge cycles executed so far."""
        return self._purges

    def step(self, conditions: FlowConditions):
        """One supervised loop tick (returns the loop telemetry)."""
        tel = self.controller.step(conditions)
        self.health.update(tel)
        return tel

    def worst_coverage(self) -> float:
        """Worst bubble coverage currently on either heater."""
        sensor = self.controller.sensor
        return max(sensor.bubbles_a.coverage, sensor.bubbles_b.coverage)

    def purge(self, conditions: FlowConditions) -> bool:
        """Run one purge attempt; returns True when the surface is clean.

        The bridge supplies are forced to zero for ``off_time_s`` (the
        sensor still integrates — bubbles detach in the idle phase),
        then the loop is re-armed and observed for ``recheck_time_s``.
        """
        cfg = self.config
        dt = self.controller.platform.dt_s
        sensor = self.controller.sensor
        for _ in range(int(cfg.off_time_s / dt)):
            sensor.step(dt, 0.0, 0.0, conditions)
        # Verdict on the surface itself, before any re-heating: did the
        # off-phase actually detach the coverage?
        clean = self.worst_coverage() < cfg.coverage_ok
        # Bumpless re-arm: preset the PIs so the loop restarts cleanly.
        self.controller.pi_a.preset(self.controller.config.startup_supply_v)
        self.controller.pi_b.preset(self.controller.config.startup_supply_v)
        for _ in range(int(cfg.recheck_time_s / dt)):
            self.controller.step(conditions)
        self._purges += 1
        return clean

    def recover(self, conditions: FlowConditions,
                safe_overtemperature_k: float | None = 5.0) -> int:
        """Purge until clean or escalation, then fix the cause.

        Bubbles grew because the operating point allowed them; cleaning
        the surface without retrimming just regrows them (exactly the
        paper's point about *reduced overtemperature in conjunction
        with* pulsed drive).  The bridges are therefore retrimmed to
        ``safe_overtemperature_k`` *before* purging (None keeps the
        current setpoint, e.g. when the drive scheme was fixed instead),
        so the post-purge recheck runs at the fixed operating point.

        Returns
        -------
        int
            Attempts used.

        Raises
        ------
        SensorFault
            After ``max_attempts`` failed purges — the degradation is
            not bubbles (fouling, damage) and needs a site visit.
        """
        if safe_overtemperature_k is not None:
            self.controller.sensor.set_overtemperature(
                safe_overtemperature_k, conditions.temperature_k)
        for attempt in range(1, self.config.max_attempts + 1):
            if self.purge(conditions):
                self.health.reset_coverage()
                return attempt
        raise SensorFault(
            f"surface still degraded after {self.config.max_attempts} purge "
            "cycles — not a bubble problem; flag for maintenance")
