"""From loop telemetry to a flow reading.

§4: "This output signal requires further filtering (with an IIR filter
down to the bandwidth of 0.1 Hz) in order to improve the sensitivity."

Pipeline per *valid* loop sample:

1. supplies → balance heater power → conductance G = P/ΔT (firmware
   model, no free parameters);
2. calibration inversion G → |v| (fitted King's law);
3. direction detector sign;
4. the 0.1 Hz output IIR (the sensitivity/response-time trade studied
   in experiment E10).

During pulsed-drive off-phases the estimator holds its last output —
the IIR state is simply not advanced — so the reported flow does not
droop between bursts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAController, LoopTelemetry
from repro.conditioning.direction import DirectionConfig, DirectionDetector
from repro.isif.iir import OnePoleLowpass

__all__ = ["EstimatorConfig", "FlowEstimator"]


@dataclass(frozen=True)
class EstimatorConfig:
    """Estimator tuning.

    Attributes
    ----------
    output_bandwidth_hz:
        Corner of the final IIR (the paper's 0.1 Hz).
    sample_rate_hz:
        Loop rate feeding the estimator.
    use_direction:
        Whether to sign the output with the dual-heater detector.
    temperature_compensation:
        Re-reference the King's-law constants to the current fluid
        temperature (tracked through Rt) before inverting — removes most
        of the residual ambient sensitivity quantified in bench E9.
    temperature_update_every:
        Valid samples between Rt readings (the water temperature moves
        on minute scales; reading every tick would waste channel 3).
    """

    output_bandwidth_hz: float = 0.1
    sample_rate_hz: float = 1000.0
    use_direction: bool = True
    temperature_compensation: bool = False
    temperature_update_every: int = 500

    def __post_init__(self) -> None:
        if not 0.0 < self.output_bandwidth_hz < self.sample_rate_hz / 2.0:
            raise ConfigurationError("output bandwidth must be in (0, Nyquist)")


class FlowEstimator:
    """Consumes loop telemetry, produces signed flow speed [m/s]."""

    def __init__(self, controller: CTAController, calibration: FlowCalibration,
                 config: EstimatorConfig | None = None) -> None:
        self.controller = controller
        self.calibration = calibration
        self.config = config or EstimatorConfig(
            sample_rate_hz=controller.platform.loop_rate_hz)
        self._iir = OnePoleLowpass(self.config.output_bandwidth_hz,
                                   self.config.sample_rate_hz)
        self.direction = DirectionDetector(DirectionConfig(
            offset=calibration.direction_offset,
            sample_rate_hz=self.config.sample_rate_hz))
        self._primed = False
        self._last_output = 0.0
        self._valid_count = 0
        self._fluid_temperature_k: float | None = None

    @property
    def fluid_temperature_k(self) -> float | None:
        """Last tracked fluid temperature [K] (None before first read)."""
        return self._fluid_temperature_k

    def _track_fluid_temperature(self, telemetry: LoopTelemetry) -> None:
        cfg = self.config
        if self._valid_count % cfg.temperature_update_every == 0:
            rt = self.controller.read_reference_resistance(telemetry)
            if rt is not None:
                estimate = self.calibration.fluid_temperature_from_rt(rt)
                # Plausibility window for potable water; a reading outside
                # it means the bridge was mid-transient — keep the old one.
                if 274.0 < estimate < 325.0:
                    self._fluid_temperature_k = estimate
        self._valid_count += 1

    def update(self, telemetry: LoopTelemetry) -> float:
        """Process one loop tick; returns the current flow estimate [m/s].

        Invalid samples (pulsed off-phase / blanking) leave the estimate
        frozen at its last value.
        """
        if not telemetry.sample_valid:
            return self._last_output
        g = self.controller.conductance_from_supplies(
            telemetry.supply_a_v, telemetry.supply_b_v)
        fluid_t = None
        if self.config.temperature_compensation:
            self._track_fluid_temperature(telemetry)
            fluid_t = self._fluid_temperature_k
        speed = self.calibration.speed_from_conductance(
            g, fluid_temperature_k=fluid_t)
        if not self._primed:
            # Avoid the long IIR tail from a zero initial state.
            self._iir.reset(speed)
            self._primed = True
        magnitude = self._iir.step(speed)
        sign = 1.0
        if self.config.use_direction:
            claimed = self.direction.update(telemetry.supply_a_v, telemetry.supply_b_v)
            sign = float(claimed) if claimed != 0 else 1.0
        self._last_output = sign * magnitude
        return self._last_output

    @property
    def value(self) -> float:
        """Last flow estimate [m/s] (signed)."""
        return self._last_output

    def reset(self) -> None:
        """Clear filter and direction state."""
        self._iir.reset()
        self.direction.reset()
        self._primed = False
        self._last_output = 0.0
        self._valid_count = 0
        self._fluid_temperature_k = None

    def response_time_s(self, fraction: float = 0.05) -> float:
        """Settling time of the output filter to within ``fraction``."""
        return self._iir.settling_time_s(fraction)
