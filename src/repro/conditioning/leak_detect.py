"""Distribution-network leak detection (the paper's §6 application).

"The presented measurement system ... can be widely diffused all over
the water distribution channels: allowing also any malfunction behavior
(e.g. water loss in tube), more usual in peripheral part of the
networks, to be immediately localized and isolated."

A :class:`NetworkSegmentMonitor` pairs two monitoring points bounding a
pipe segment; in a leak-free segment the (area-scaled) flow entering
equals the flow leaving.  A CUSUM detector on the balance residual
flags persistent mismatch and reports the segment — the "immediately
localized" behaviour the paper envisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LeakEvent", "CusumDetector", "NetworkSegmentMonitor", "LeakDetector"]


@dataclass(frozen=True)
class LeakEvent:
    """A confirmed leak alarm.

    Attributes
    ----------
    segment:
        Name of the pipe segment bounded by the two meters.
    time_s:
        Detection timestamp.
    estimated_loss_mps:
        Mean inflow-outflow speed imbalance at detection [m/s].
    """

    segment: str
    time_s: float
    estimated_loss_mps: float


class CusumDetector:
    """One-sided CUSUM change detector on a residual stream.

    S_k = max(0, S_{k-1} + (x_k - drift)); alarm when S_k > threshold.
    Classical choice for small persistent shifts buried in noise — a
    slow leak is exactly that.
    """

    def __init__(self, drift: float, threshold: float) -> None:
        if drift < 0.0 or threshold <= 0.0:
            raise ConfigurationError("drift must be >= 0 and threshold > 0")
        self.drift = drift
        self.threshold = threshold
        self._s = 0.0

    @property
    def statistic(self) -> float:
        """Current CUSUM value."""
        return self._s

    def update(self, residual: float) -> bool:
        """Push one residual; returns True when the alarm fires."""
        self._s = max(0.0, self._s + residual - self.drift)
        return self._s > self.threshold

    def update_block(self, residuals: np.ndarray) -> float:
        """Push a whole residual block at once; returns the block's peak statistic.

        Equivalent to calling :meth:`update` on every element in order
        (the recurrence ``S_k = max(0, S_{k-1} + x_k)`` has the closed
        form ``S_k = P_k - min(S_0', running-min of P)`` with
        ``P_k = S_0 + cumsum(x)``), but vectorized so streaming
        consumers can score thousands of samples per call.
        """
        x = np.asarray(residuals, dtype=np.float64).ravel() - self.drift
        if x.size == 0:
            return self._s
        prefix = self._s + np.cumsum(x)
        floor = np.minimum(np.minimum.accumulate(prefix), 0.0)
        block = prefix - floor
        self._s = float(block[-1])
        return float(block.max())

    def reset(self) -> None:
        """Re-arm after an alarm was handled."""
        self._s = 0.0


@dataclass
class NetworkSegmentMonitor:
    """Mass balance over one pipe segment between two meters.

    Attributes
    ----------
    name:
        Segment identifier.
    area_ratio:
        Outlet pipe area / inlet pipe area (speed continuity scaling);
        1.0 for a constant-diameter segment.
    drift_mps / threshold_mps_s:
        CUSUM tuning in speed units: ``drift_mps`` is the tolerated
        standing imbalance (meter noise + legitimate draw-off),
        ``threshold_mps_s`` the integrated excess that raises an alarm.
    """

    name: str
    area_ratio: float = 1.0
    drift_mps: float = 0.01
    threshold_mps_s: float = 2.0
    #: Commissioning baseline: the standing imbalance of this segment's
    #: meter pair (calibration bias mismatch), subtracted before CUSUM.
    baseline_mps: float = 0.0
    #: Proportional part of the commissioning baseline: gain mismatch
    #: between the pair scales with flow, so it is stored as a fraction
    #: of the inlet reading.
    baseline_ratio: float = 0.0

    def __post_init__(self) -> None:
        if self.area_ratio <= 0.0:
            raise ConfigurationError("area ratio must be positive")
        # Drift is handled per-update in time units so any snapshot
        # cadence integrates consistently (m/s * s accumulates).
        self._cusum = CusumDetector(0.0, self.threshold_mps_s)
        self._imbalance_history: list[float] = []

    def update(self, inlet_speed_mps: float, outlet_speed_mps: float,
               dt_s: float) -> bool:
        """Push one synchronous meter pair; True when a leak is confirmed."""
        if dt_s <= 0.0:
            raise ConfigurationError("dt must be positive")
        imbalance = (inlet_speed_mps - outlet_speed_mps * self.area_ratio
                     - self.baseline_mps
                     - self.baseline_ratio * inlet_speed_mps)
        self._imbalance_history.append(imbalance)
        if len(self._imbalance_history) > 1000:
            del self._imbalance_history[0]
        return self._cusum.update((imbalance - self.drift_mps) * dt_s)

    def set_baseline(self, baseline_mps: float = 0.0,
                     baseline_ratio: float = 0.0) -> None:
        """Store the commissioning baseline and re-arm the detector.

        ``baseline_ratio`` captures gain mismatch between the meter pair
        (scales with flow); ``baseline_mps`` any residual offset.
        """
        self.baseline_mps = baseline_mps
        self.baseline_ratio = baseline_ratio
        self.reset()

    def mean_imbalance_mps(self, window: int = 200) -> float:
        """Recent mean inflow-outflow imbalance [m/s]."""
        if not self._imbalance_history:
            return 0.0
        return float(np.mean(self._imbalance_history[-window:]))

    def reset(self) -> None:
        """Re-arm the detector."""
        self._cusum.reset()
        self._imbalance_history.clear()


class LeakDetector:
    """Network-level supervisor over many segments."""

    def __init__(self) -> None:
        self._segments: dict[str, NetworkSegmentMonitor] = {}
        self._events: list[LeakEvent] = []
        self._time_s = 0.0

    def add_segment(self, segment: NetworkSegmentMonitor) -> None:
        """Register a segment; names must be unique."""
        if segment.name in self._segments:
            raise ConfigurationError(f"duplicate segment {segment.name!r}")
        self._segments[segment.name] = segment

    @property
    def segments(self) -> tuple[str, ...]:
        """Registered segment names."""
        return tuple(self._segments)

    def segment(self, name: str) -> NetworkSegmentMonitor:
        """Access one segment monitor (commissioning, inspection)."""
        try:
            return self._segments[name]
        except KeyError:
            raise ConfigurationError(f"unknown segment {name!r}") from None

    @property
    def events(self) -> tuple[LeakEvent, ...]:
        """All alarms raised so far."""
        return tuple(self._events)

    def update(self, readings: dict[str, tuple[float, float]], dt_s: float) -> list[LeakEvent]:
        """Push one synchronous snapshot of all meters.

        Parameters
        ----------
        readings:
            ``{segment_name: (inlet_speed_mps, outlet_speed_mps)}``.
        dt_s:
            Snapshot interval.

        Returns
        -------
        list
            New :class:`LeakEvent` alarms from this snapshot.
        """
        self._time_s += dt_s
        new_events = []
        for name, (v_in, v_out) in readings.items():
            try:
                segment = self._segments[name]
            except KeyError:
                raise ConfigurationError(f"unknown segment {name!r}") from None
            if segment.update(v_in, v_out, dt_s):
                # Estimate the loss from the recent window only — the
                # long history includes the healthy pre-leak period.
                event = LeakEvent(
                    segment=name,
                    time_s=self._time_s,
                    estimated_loss_mps=segment.mean_imbalance_mps(window=20),
                )
                self._events.append(event)
                new_events.append(event)
                segment.reset()
        return new_events
