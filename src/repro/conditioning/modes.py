"""Anemometer operating modes: constant temperature / current / power.

§2: "The anemometer principle features three main different operating
modes: constant current, constant power, or constant temperature.  The
former two operating modes feature simple circuit implementation while
the latter one maintains a fixed value of the sensing resistor thus
achieving more robustness respect to changes of the temperature of the
fluid itself."

Experiment E9 quantifies that claim: each mode measures the same flow
while the water temperature drifts, and only CT stays calibrated.

The CC/CP firmware estimates the wire temperature from its resistance
(midpoint voltage digitised on a spare ISIF channel) but must *assume*
a fluid temperature — that assumption is exactly their ambient
sensitivity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.conditioning.cta import CTAConfig, CTAController
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import FlowConditions, MAFSensor

__all__ = [
    "ModeMeasurement",
    "OperatingMode",
    "ConstantTemperatureMode",
    "ConstantCurrentMode",
    "ConstantPowerMode",
]


@dataclass(frozen=True)
class ModeMeasurement:
    """What a mode's firmware extracts from one settled measurement.

    Attributes
    ----------
    conductance_w_per_k:
        The King's-law observable G = P / ΔT_est, as the firmware
        believes it (including its ΔT estimation error).
    heater_power_w:
        Electrical power delivered to the heater (firmware estimate).
    overtemperature_est_k:
        ΔT as estimated by the firmware.
    supply_v:
        Bridge supply at equilibrium.
    """

    conductance_w_per_k: float
    heater_power_w: float
    overtemperature_est_k: float
    supply_v: float


class OperatingMode(ABC):
    """Shared interface: settle under conditions, return the observable."""

    name: str = "abstract"

    @abstractmethod
    def measure(self, conditions: FlowConditions, settle_s: float = 0.5) -> ModeMeasurement:
        """Run the mode's loop until settled and report the observable."""


class ConstantTemperatureMode(OperatingMode):
    """CT: the paper's choice — the CTA loop holds ΔT by construction.

    The bridge's reference arm tracks the fluid temperature, so the
    firmware's ΔT estimate equals the setpoint with no fluid-temperature
    assumption at all.
    """

    name = "constant-temperature"

    def __init__(self, sensor: MAFSensor, platform: ISIFPlatform,
                 config: CTAConfig | None = None) -> None:
        self.controller = CTAController(sensor, platform, config)

    def measure(self, conditions: FlowConditions, settle_s: float = 0.5) -> ModeMeasurement:
        tel = self.controller.settle(conditions, settle_s)
        u = 0.5 * (tel.supply_a_v + tel.supply_b_v)
        d_t = self.controller.config.overtemperature_k
        p = self.controller.balance_heater_power_w(u)
        return ModeMeasurement(
            conductance_w_per_k=p / d_t,
            heater_power_w=p,
            overtemperature_est_k=d_t,
            supply_v=u,
        )


class _ResistanceReadingMode(OperatingMode):
    """Shared plumbing for CC/CP: drive bridge A, read Rh from the midpoint.

    The heater midpoint is digitised on ISIF channel 3 (unity gain), so
    the resistance estimate carries realistic ADC noise.  The fluid
    temperature is *assumed* (``assumed_fluid_k``), which is the modes'
    documented weakness.
    """

    def __init__(self, sensor: MAFSensor, platform: ISIFPlatform,
                 assumed_fluid_k: float = 288.15) -> None:
        self.sensor = sensor
        self.platform = platform
        self.assumed_fluid_k = assumed_fluid_k
        self._u = 1.0
        # The midpoint is a large (volt-level) signal: program channel 3
        # to unity gain through its registers, as a driver would.
        midpoint_channel = platform.channels[3]
        midpoint_channel.registers.reg("CTRL").write_field("GAIN", 0)
        midpoint_channel.apply_registers()

    def _read_heater_ohm(self, supply_v: float, midpoint_v: float) -> float:
        """Firmware Rh estimate from supply and digitised midpoint."""
        if supply_v <= midpoint_v or midpoint_v <= 0.0:
            return self.sensor.config.heater_nominal_ohm
        r_s = self.sensor.bridge_a.r_series_ohm
        return r_s * midpoint_v / (supply_v - midpoint_v)

    def _wire_temperature_k(self, rh_ohm: float) -> float:
        """Datasheet inversion of eq. (1) — nominal R0 and alpha."""
        cfg = self.sensor.config
        alpha = self.sensor.heater_a.material.tcr_per_k
        r0 = cfg.heater_nominal_ohm
        return self.sensor.heater_a.reference_temperature_k + (rh_ohm / r0 - 1.0) / alpha

    def _settle(self, conditions: FlowConditions, settle_s: float,
                update_supply) -> tuple[float, float]:
        """Iterate the per-tick supply law; returns (u, rh_est)."""
        if settle_s <= 0.0:
            raise ConfigurationError("settle time must be positive")
        dt = self.platform.dt_s
        steps = max(1, int(round(settle_s / dt)))
        rh_est = self.sensor.config.heater_nominal_ohm
        # Relaxed update: the digitised midpoint lags the supply (channel
        # LPF), so jumping straight to the algebraic target oscillates.
        # A small gain makes the software loop unconditionally stable.
        relax = 0.05
        for _ in range(steps):
            readout = self.sensor.step(dt, self._u, 0.0, conditions)
            v_mid, _ = self.sensor.bridge_a.midpoint_voltages(
                self._u, readout.heater_a_resistance_ohm,
                readout.reference_resistance_ohm)
            v_mid_dig = self.platform.channels[3].acquire(v_mid)
            rh_est = self._read_heater_ohm(self._u, v_mid_dig)
            target = float(np.clip(update_supply(rh_est), 0.0, 5.0))
            self._u += relax * (target - self._u)
        return self._u, rh_est

    def _report(self, u: float, rh_est: float) -> ModeMeasurement:
        r_s = self.sensor.bridge_a.r_series_ohm
        i = u / (r_s + rh_est)
        p = i * i * rh_est
        d_t_est = max(self._wire_temperature_k(rh_est) - self.assumed_fluid_k, 0.05)
        return ModeMeasurement(
            conductance_w_per_k=p / d_t_est,
            heater_power_w=p,
            overtemperature_est_k=d_t_est,
            supply_v=u,
        )


class ConstantCurrentMode(_ResistanceReadingMode):
    """CC: hold the heater branch current; the wire temperature floats."""

    name = "constant-current"

    def __init__(self, sensor: MAFSensor, platform: ISIFPlatform,
                 current_a: float = 0.020,
                 assumed_fluid_k: float = 288.15) -> None:
        super().__init__(sensor, platform, assumed_fluid_k)
        if current_a <= 0.0:
            raise ConfigurationError("drive current must be positive")
        self.current_a = current_a

    def measure(self, conditions: FlowConditions, settle_s: float = 0.5) -> ModeMeasurement:
        r_s = self.sensor.bridge_a.r_series_ohm
        u, rh = self._settle(
            conditions, settle_s,
            update_supply=lambda rh_est: self.current_a * (r_s + rh_est))
        return self._report(u, rh)


class ConstantPowerMode(_ResistanceReadingMode):
    """CP: hold the heater dissipation; the wire temperature floats."""

    name = "constant-power"

    def __init__(self, sensor: MAFSensor, platform: ISIFPlatform,
                 power_w: float = 0.030,
                 assumed_fluid_k: float = 288.15) -> None:
        super().__init__(sensor, platform, assumed_fluid_k)
        if power_w <= 0.0:
            raise ConfigurationError("drive power must be positive")
        self.power_w = power_w

    def measure(self, conditions: FlowConditions, settle_s: float = 0.5) -> ModeMeasurement:
        r_s = self.sensor.bridge_a.r_series_ohm

        def supply_for_power(rh_est: float) -> float:
            return float(np.sqrt(self.power_w * (r_s + rh_est) ** 2 / max(rh_est, 1.0)))

        u, rh = self._settle(conditions, settle_s, update_supply=supply_for_power)
        return self._report(u, rh)
