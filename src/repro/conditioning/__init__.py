"""The paper's core contribution: hot-wire conditioning firmware on ISIF.

Constant-temperature closed loop (bridge → AFE → ΣΔ → decimate → LPF →
reference subtraction → PI → DAC → bridge supply), pulsed-drive bubble
mitigation, King's-law calibration against a reference meter, flow and
direction estimation, and the water-network leak detection application
sketched in the paper's conclusions.
"""

from repro.conditioning.drive import DriveScheme, ContinuousDrive, PulsedDrive
from repro.conditioning.cta import CTAController, CTAConfig, LoopTelemetry
from repro.conditioning.modes import (
    OperatingMode,
    ConstantTemperatureMode,
    ConstantCurrentMode,
    ConstantPowerMode,
)
from repro.conditioning.calibration import FlowCalibration, CalibrationProcedure
from repro.conditioning.flow_estimator import FlowEstimator, EstimatorConfig
from repro.conditioning.direction import DirectionDetector, DirectionConfig
from repro.conditioning.monitor import WaterFlowMonitor, FlowMeasurement, MonitorConfig
from repro.conditioning.leak_detect import LeakDetector, NetworkSegmentMonitor, LeakEvent
from repro.conditioning.telemetry import TelemetryChannel, TelemetryFrame, encode_frame, decode_frame, FrameError
from repro.conditioning.eeprom_image import store_calibration, load_calibration
from repro.conditioning.field_node import FieldNode, FieldNodeConfig, CycleReport
from repro.conditioning.diagnostics import HealthStatus, ZeroFlowDriftMonitor, LoopHealthMonitor
from repro.conditioning.autotune import RelayAutotuner, RelayResult
from repro.conditioning.purge import PurgeController, PurgeConfig
from repro.conditioning.totaliser import VolumeTotaliser

__all__ = [
    "DriveScheme",
    "ContinuousDrive",
    "PulsedDrive",
    "CTAController",
    "CTAConfig",
    "LoopTelemetry",
    "OperatingMode",
    "ConstantTemperatureMode",
    "ConstantCurrentMode",
    "ConstantPowerMode",
    "FlowCalibration",
    "CalibrationProcedure",
    "FlowEstimator",
    "EstimatorConfig",
    "DirectionDetector",
    "DirectionConfig",
    "WaterFlowMonitor",
    "FlowMeasurement",
    "MonitorConfig",
    "LeakDetector",
    "NetworkSegmentMonitor",
    "LeakEvent",
    "TelemetryChannel",
    "TelemetryFrame",
    "encode_frame",
    "decode_frame",
    "FrameError",
    "store_calibration",
    "load_calibration",
    "FieldNode",
    "FieldNodeConfig",
    "CycleReport",
    "HealthStatus",
    "ZeroFlowDriftMonitor",
    "LoopHealthMonitor",
    "RelayAutotuner",
    "RelayResult",
    "PurgeController",
    "PurgeConfig",
    "VolumeTotaliser",
]
