"""Command-line interface: drive the simulated instrument end to end.

    python -m repro selftest
    python -m repro calibrate --out cal.json [--seed N] [--fast]
    python -m repro measure --cal cal.json --speed-cmps 120 [--duration 10]
    python -m repro sweep --cal cal.json --levels 0,50,100,250
    python -m repro fleet --n-monitors 8 --workers 4 [--numerics fast]
                          [--out traces.npz]
    python -m repro fleet --spec fleet.json [--workers 4]
    python -m repro fleet --checkpoint-dir ckpt/ [--resume]
    python -m repro campaign --duration 6 \
                             --scenarios baseline,tank_leak,mains_burst
    python -m repro campaign --spec campaign.json [--out summary.json]
    python -m repro campaign --checkpoint-dir ckpt/ [--resume]
    python -m repro serve --clients 8 --n-monitors 2 [--tick-steps 500]
                          [--http-port 8765] [--sample-every 0.5]
                          [--hold-open 20]
    python -m repro top --url http://127.0.0.1:8765 [--interval 1] [--once]
    python -m repro store inspect --dir store/ [--json]
    python -m repro store evict --dir store/ [--kind calibration] [--key K]

The CLI mirrors how a bench operator would use the real instrument:
power-on self-test, a calibration campaign against the reference meter
(saved as a JSON EEPROM image), then measurements against the stored
calibration.  ``fleet`` runs a whole fleet of monitors at once through
the batched runtime, optionally sharded across worker processes
(``--workers``); the traces are bit-identical for any worker count.
With ``--spec`` the fleet comes from a JSON :class:`FleetSpec` image
instead of ``--n-monitors``/``--seed``, and a structurally mixed spec
sub-batches per config group (bit-identical per rig to running its
group alone).  ``campaign`` runs a scenario campaign — demand-profile
base load plus injected events (leaks, bursts, freezes, scaling
episodes) — over a scenario-tagged FleetSpec and prints the per-window
``run.*`` summary deltas.
``serve`` spins up the resident streaming service in-process and drives
it with concurrent clients — the asyncio demo of the ``repro.connect``
path, with every client's stream bit-identical to a standalone run.
With ``--http-port`` it also publishes the live observability plane
(``/metrics``, ``/health``, ``/ready``, ``/snapshot``; see
``docs/observability.md``), and ``top`` renders a live terminal
dashboard — per-cohort throughput, tick-latency percentiles and the
worst-health rigs — from those endpoints.

Durability (see ``docs/durability.md``): ``fleet`` and ``campaign``
accept ``--checkpoint-dir`` to snapshot progress after every engine
window and ``--resume`` to continue a killed run bit-identically from
its checkpoint; ``store`` inspects or evicts the on-disk artifact
store that ``--checkpoint-dir`` (and the ``REPRO_STORE`` environment
variable) layer under the in-process calibration cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.conditioning.monitor import WaterFlowMonitor
from repro.errors import ReproError
from repro.isif.platform import ISIFPlatform
from repro.observability import (enable as _enable_observability,
                                 export_jsonl, export_prometheus,
                                 get_profiler, get_registry)
from repro.runtime.kernels import NUMERICS_MODES
from repro.sensor.maf import FlowConditions
from repro.station.scenarios import build_calibrated_monitor

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hot-wire MEMS water-flow monitor (DATE 2008) simulator")
    parser.add_argument(
        "--metrics-out", type=Path, default=None, metavar="PATH",
        help="enable observability and write the metrics snapshot here "
             "after the command (.prom -> Prometheus text format, "
             "anything else -> JSON lines)")
    parser.add_argument(
        "--profile-out", type=Path, default=None, metavar="PATH",
        help="enable the per-stage kernel profiler and write its JSON "
             "report here after the command (stages: kernel.plan, "
             "kernel.ar1_block, kernel.film, kernel.chunk_loop; merged "
             "across workers for sharded fleet runs)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("selftest", help="ISIF platform power-on self-test")

    cal = sub.add_parser("calibrate",
                         help="run the calibration campaign, save JSON image")
    cal.add_argument("--out", type=Path, required=True,
                     help="output JSON path")
    cal.add_argument("--seed", type=int, default=42, help="die/noise seed")
    cal.add_argument("--fast", action="store_true",
                     help="short settle windows (demo quality)")

    meas = sub.add_parser("measure",
                          help="measure a steady line with a stored calibration")
    meas.add_argument("--cal", type=Path, required=True,
                      help="calibration JSON from 'calibrate'")
    meas.add_argument("--speed-cmps", type=float, required=True,
                      help="true line speed to simulate [cm/s]")
    meas.add_argument("--duration", type=float, default=10.0,
                      help="measurement duration [s]")
    meas.add_argument("--seed", type=int, default=42, help="die/noise seed")

    swp = sub.add_parser("sweep", help="measure a list of speed levels")
    swp.add_argument("--cal", type=Path, required=True)
    swp.add_argument("--levels", type=str, required=True,
                     help="comma-separated speeds [cm/s]")
    swp.add_argument("--dwell", type=float, default=8.0,
                     help="seconds per level")
    swp.add_argument("--seed", type=int, default=42)

    rec = sub.add_parser("record",
                         help="run a staircase campaign, save traces (.npz)")
    rec.add_argument("--out", type=Path, required=True,
                     help="output .npz path")
    rec.add_argument("--levels", type=str, default="0,50,100,175,250",
                     help="comma-separated speeds [cm/s]")
    rec.add_argument("--dwell", type=float, default=8.0)
    rec.add_argument("--seed", type=int, default=42)

    flt = sub.add_parser(
        "fleet",
        help="run a fleet through the batched runtime, optionally sharded")
    flt.add_argument("--spec", type=Path, default=None, metavar="PATH",
                     help="JSON FleetSpec image (FleetSpec.to_dict); a "
                          "mixed spec sub-batches per config group. "
                          "Mutually exclusive with --n-monitors/--seed")
    flt.add_argument("--n-monitors", type=int, default=None,
                     help="fleet size (default 4; ignored with --spec)")
    flt.add_argument("--workers", type=int, default=1,
                     help="worker processes; >1 shards the fleet across a "
                          "process pool with bit-identical results "
                          "(default 1 = serial)")
    flt.add_argument("--backend", choices=["spawn", "shm"],
                     default="spawn",
                     help="parallel backend for --workers >1: 'spawn' "
                          "uses per-run worker processes, 'shm' the "
                          "persistent zero-copy shared-memory pool "
                          "(bit-identical results; default spawn)")
    flt.add_argument("--levels", type=str, default="0,50,120",
                     help="comma-separated staircase speeds [cm/s]")
    flt.add_argument("--dwell", type=float, default=4.0,
                     help="seconds per staircase level")
    flt.add_argument("--seed", type=int, default=None,
                     help="session seed (default 42; ignored with --spec "
                          "-- the spec carries its own seed)")
    flt.add_argument("--numerics", choices=list(NUMERICS_MODES),
                     default="exact",
                     help="kernel numerics mode: 'exact' is bit-identical "
                          "to the scalar reference path, 'fast' uses "
                          "vectorized transcendentals (<=1e-9 relative "
                          "error; default exact)")
    flt.add_argument("--out", type=Path, default=None,
                     help="optional .npz path for the fleet traces")
    flt.add_argument("--checkpoint-dir", type=Path, default=None,
                     metavar="DIR",
                     help="checkpoint the run after every engine window "
                          "under DIR (works with any --workers/--backend) "
                          "and layer a disk-backed calibration store "
                          "under the in-process cache")
    flt.add_argument("--resume", action="store_true",
                     help="continue from the checkpoint left in "
                          "--checkpoint-dir by a killed run "
                          "(bit-identical to an uninterrupted run)")

    cmp = sub.add_parser(
        "campaign",
        help="run a scenario campaign (demand base load + injected events)")
    cmp.add_argument("--spec", type=Path, default=None, metavar="PATH",
                     help="JSON FleetSpec image with scenario tags; "
                          "mutually exclusive with --scenarios/"
                          "--n-per-scenario/--seed")
    cmp.add_argument("--duration", type=float, default=6.0,
                     help="campaign horizon [s] (default 6.0)")
    cmp.add_argument("--scenarios", type=str,
                     default="baseline,tank_leak,mains_burst",
                     help="comma-separated builtin scenario names "
                          "(default baseline,tank_leak,mains_burst)")
    cmp.add_argument("--n-per-scenario", type=int, default=1,
                     help="monitors per scenario entry (default 1)")
    cmp.add_argument("--seed", type=int, default=42, help="fleet seed")
    cmp.add_argument("--demand", choices=("household", "station"),
                     default="household",
                     help="base-load demand generator (default household)")
    cmp.add_argument("--out", type=Path, default=None,
                     help="optional JSON path for the campaign summary")
    cmp.add_argument("--checkpoint-dir", type=Path, default=None,
                     metavar="DIR",
                     help="checkpoint campaign progress after every engine "
                          "window under DIR")
    cmp.add_argument("--resume", action="store_true",
                     help="continue from the checkpoint left in "
                          "--checkpoint-dir by a killed campaign "
                          "(bit-identical summary)")

    srv = sub.add_parser(
        "serve",
        help="run the streaming fleet service with concurrent demo clients")
    srv.add_argument("--clients", type=int, default=4,
                     help="concurrent client sessions to attach (default 4)")
    srv.add_argument("--n-monitors", type=int, default=1,
                     help="fleet size per client (default 1)")
    srv.add_argument("--levels", type=str, default="0,50,120",
                     help="comma-separated staircase speeds [cm/s]")
    srv.add_argument("--dwell", type=float, default=2.0,
                     help="seconds per staircase level")
    srv.add_argument("--seed", type=int, default=42,
                     help="base seed; client i uses seed + i")
    srv.add_argument("--tick-steps", type=int, default=1000,
                     help="engine samples per cohort tick (the streaming "
                          "granularity; default 1000)")
    srv.add_argument("--max-pending", type=int, default=8,
                     help="per-client snapshot queue bound (default 8)")
    srv.add_argument("--http-port", type=int, default=None,
                     help="serve the live observability plane (/metrics, "
                          "/health, /ready, /snapshot) on this port "
                          "(0 picks a free one); implies a 0.5 s sampler")
    srv.add_argument("--http-host", type=str, default="127.0.0.1",
                     help="bind address for --http-port "
                          "(default 127.0.0.1)")
    srv.add_argument("--sample-every", type=float, default=None,
                     help="snapshot-pipeline cadence in seconds "
                          "(default 0.5 when --http-port is given)")
    srv.add_argument("--hold-open", type=float, default=0.0,
                     help="keep the service (and HTTP plane) up this many "
                          "seconds after the demo clients complete, so "
                          "scrapers can read the final state")

    top = sub.add_parser(
        "top",
        help="live dashboard over a serve --http-port observability plane")
    top.add_argument("--url", type=str, required=True,
                     help="base URL of the live plane "
                          "(e.g. http://127.0.0.1:8765)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between redraws (default 1)")
    top.add_argument("--frames", type=int, default=0,
                     help="stop after this many frames (0 = until ^C)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (CI-friendly)")
    top.add_argument("--last", type=int, default=5,
                     help="ring-buffer samples per frame (default 5)")

    sto = sub.add_parser(
        "store",
        help="inspect or evict the on-disk artifact store")
    sto.add_argument("action", choices=("inspect", "evict"),
                     help="'inspect' lists published artifacts, 'evict' "
                          "removes them")
    sto.add_argument("--dir", type=Path, required=True, dest="store_dir",
                     metavar="DIR", help="store root directory")
    sto.add_argument("--kind", type=str, default=None,
                     help="restrict to one artifact kind "
                          "(e.g. calibration)")
    sto.add_argument("--key", type=str, default=None,
                     help="single artifact key (evict only; requires "
                          "--kind)")
    sto.add_argument("--json", action="store_true",
                     help="inspect: print machine-readable JSON instead "
                          "of the table")
    return parser


def _cmd_selftest(_args: argparse.Namespace) -> int:
    platform = ISIFPlatform.for_anemometer()
    report = platform.self_test()
    print(f"tone: {report['tone_hz']:.2f} Hz")
    print(f"injected amplitude : {report['injected_amplitude_v'] * 1e3:.1f} mV")
    print(f"measured amplitude : {report['measured_amplitude_v'] * 1e3:.1f} mV")
    print(f"amplitude error    : {report['amplitude_error'] * 100:.2f} %")
    ok = report["amplitude_error"] < 0.10
    print("SELF-TEST " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


def _cmd_calibrate(args: argparse.Namespace) -> int:
    print(f"running the calibration campaign (seed {args.seed}) ...")
    setup = build_calibrated_monitor(seed=args.seed, fast=args.fast,
                                     use_pulsed_drive=False)
    image = {
        "format": "anemos-cal/2",
        **setup.calibration.to_dict(),
        "monitor": setup.monitor.config.to_dict(),
        "sensor": setup.monitor.sensor.config.to_dict(),
    }
    args.out.write_text(json.dumps(image, indent=2))
    print(f"calibration written to {args.out}")
    print(f"  A = {image['coeff_a'] * 1e3:.4f} mW/K, "
          f"B = {image['coeff_b'] * 1e3:.4f} mW/K (m/s)^-n, "
          f"n = {image['exponent']:.3f}")
    print(f"  residual {image['rms_residual_mps'] * 100:.2f} cm/s rms")
    return 0


def _load_monitor(cal_path: Path, seed: int) -> WaterFlowMonitor:
    return WaterFlowMonitor.from_calibration_file(cal_path, seed=seed)


def _cmd_measure(args: argparse.Namespace) -> int:
    monitor = _load_monitor(args.cal, args.seed)
    conditions = FlowConditions(speed_mps=args.speed_cmps * 1e-2)
    measurement = monitor.measure(conditions, args.duration)
    print(f"true speed     : {args.speed_cmps:.2f} cm/s")
    print(f"measured speed : {measurement.speed_cmps:.2f} cm/s")
    print(f"direction      : "
          f"{'forward' if measurement.direction >= 0 else 'reverse'}")
    print(f"bubble coverage: {measurement.bubble_coverage * 100:.2f} %")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        levels = [float(x) for x in args.levels.split(",") if x.strip()]
    except ValueError:
        print("error: --levels must be comma-separated numbers",
              file=sys.stderr)
        return 2
    if not levels:
        print("error: no levels given", file=sys.stderr)
        return 2
    monitor = _load_monitor(args.cal, args.seed)
    print(f"{'true [cm/s]':>12}  {'measured [cm/s]':>16}  {'error [cm/s]':>13}")
    for level in levels:
        m = monitor.measure(FlowConditions(speed_mps=level * 1e-2), args.dwell)
        print(f"{level:12.1f}  {m.speed_cmps:16.2f}  "
              f"{m.speed_cmps - level:13.2f}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    try:
        levels = [float(x) for x in args.levels.split(",") if x.strip()]
    except ValueError:
        print("error: --levels must be comma-separated numbers",
              file=sys.stderr)
        return 2
    if not levels:
        print("error: no levels given", file=sys.stderr)
        return 2
    from repro.station.profiles import staircase
    print(f"calibrating and running the staircase {levels} cm/s ...")
    setup = build_calibrated_monitor(seed=args.seed, fast=True,
                                     use_pulsed_drive=False)
    record = setup.rig.run(staircase(levels, dwell_s=args.dwell),
                           record_every_n=20)
    record.save(args.out)
    print(f"{len(record)} samples written to {args.out} "
          f"(traces: {', '.join(record.FIELDS)})")
    return 0


def _load_fleet_spec(path: Path):
    from repro.runtime import FleetSpec
    return FleetSpec.from_dict(json.loads(path.read_text()))


def _cmd_fleet(args: argparse.Namespace) -> int:
    try:
        levels = [float(x) for x in args.levels.split(",") if x.strip()]
    except ValueError:
        print("error: --levels must be comma-separated numbers",
              file=sys.stderr)
        return 2
    if not levels:
        print("error: no levels given", file=sys.stderr)
        return 2
    if args.spec is not None and (args.n_monitors is not None
                                  or args.seed is not None):
        print("error: --spec carries the fleet size and seed; do not "
              "combine it with --n-monitors/--seed", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    import time

    from repro.runtime import FleetSpec, Session
    from repro.station.profiles import staircase
    if args.spec is not None:
        spec = _load_fleet_spec(args.spec)
        desc = (f"fleet spec {args.spec} ({spec.n_monitors} monitors, "
                f"{len(spec.rigs)} entries, seed {spec.seed})")
    else:
        n_monitors = 4 if args.n_monitors is None else args.n_monitors
        if n_monitors < 1:
            print("error: --n-monitors must be >= 1", file=sys.stderr)
            return 2
        spec = FleetSpec.homogeneous(
            n_monitors, seed=42 if args.seed is None else args.seed,
            use_pulsed_drive=False, fast_calibration=True)
        desc = f"fleet of {n_monitors} monitors"
    profile = staircase(levels, dwell_s=args.dwell)
    print(f"{desc}, {args.workers} worker(s) [{args.backend}], "
          f"staircase {levels} cm/s, numerics={args.numerics} ...")
    if args.checkpoint_dir is not None:
        print(f"checkpointing to {args.checkpoint_dir}"
              + (" (resuming)" if args.resume else ""))
    with Session(fleet=spec, checkpoint_dir=args.checkpoint_dir) as session:
        session.calibrate()
        t0 = time.perf_counter()
        result = session.run(profile, workers=args.workers,
                             numerics=args.numerics, resume=args.resume,
                             backend=args.backend)
        elapsed = time.perf_counter() - t0
    samples = int(profile.duration_s * 1000.0) * spec.n_monitors
    print(f"ran {profile.duration_s:.1f} s x {result.n_monitors} monitors "
          f"in {elapsed:.2f} s wall "
          f"({samples / max(elapsed, 1e-9) / 1e3:.0f} ksamples/s)")
    final = result.measured_mps[:, -1] * 100.0
    print(f"final measured speeds: "
          + ", ".join(f"{v:.1f}" for v in final.tolist()) + " cm/s")
    if args.out is not None:
        result.save(args.out)
        print(f"{len(result)} ticks x {result.n_monitors} monitors "
              f"written to {args.out}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.runtime import FleetSpec, RigSpec
    from repro.station.campaign import SCENARIO_NAMES, run_campaign
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.spec is not None:
        spec = _load_fleet_spec(args.spec)
    else:
        names = [x.strip() for x in args.scenarios.split(",") if x.strip()]
        if not names:
            print("error: no scenarios given", file=sys.stderr)
            return 2
        unknown = sorted(set(names) - set(SCENARIO_NAMES))
        if unknown:
            print(f"error: unknown scenarios {unknown}; "
                  f"builtins are {list(SCENARIO_NAMES)}", file=sys.stderr)
            return 2
        if args.n_per_scenario < 1:
            print("error: --n-per-scenario must be >= 1", file=sys.stderr)
            return 2
        spec = FleetSpec(
            rigs=tuple(RigSpec(count=args.n_per_scenario,
                               scenario=None if name == "baseline" else name,
                               use_pulsed_drive=False, fast_calibration=True)
                       for name in names),
            seed=args.seed)
    print(f"campaign: {spec.n_monitors} monitors, "
          f"{len(spec.rigs)} entries, {args.duration:.1f} s, "
          f"{args.demand} demand ...")
    if args.checkpoint_dir is not None:
        print(f"checkpointing to {args.checkpoint_dir}"
              + (" (resuming)" if args.resume else ""))
    report = run_campaign(spec, duration_s=args.duration, demand=args.demand,
                          checkpoint_dir=args.checkpoint_dir,
                          resume=args.resume)
    for group in report.groups:
        print(f"\nscenario {group['scenario']!r}  "
              f"config {group['config_key']}  "
              f"positions {list(group['positions'])}")
        print(f"  {'window [s]':>16}  {'events':<24}  "
              f"{'d speed [cm/s]':>14}  {'d press [kPa]':>13}")
        for window in group["windows"]:
            span = f"{window['start_s']:.2f}-{window['end_s']:.2f}"
            active = ",".join(window["active"]) or "-"
            d_speed = window["deltas"]["run.measured_mps"] * 100.0
            d_press = window["deltas"]["run.pressure_pa"] / 1e3
            print(f"  {span:>16}  {active:<24}  "
                  f"{d_speed:>14.2f}  {d_press:>13.2f}")
    if report.days:
        print(f"\n{'day':>4}  {'measured [cm/s]':>15}  {'pressure [kPa]':>14}")
        for day in report.days:
            means = day["means"]
            print(f"{day['day']:>4}  "
                  f"{means['run.measured_mps'] * 100.0:>15.2f}  "
                  f"{means['run.pressure_pa'] / 1e3:>14.2f}")
    if args.out is not None:
        args.out.write_text(json.dumps(report.summary(), indent=2) + "\n")
        print(f"\ncampaign summary written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        levels = [float(x) for x in args.levels.split(",") if x.strip()]
    except ValueError:
        print("error: --levels must be comma-separated numbers",
              file=sys.stderr)
        return 2
    if not levels:
        print("error: no levels given", file=sys.stderr)
        return 2
    if args.clients < 1:
        print("error: --clients must be >= 1", file=sys.stderr)
        return 2
    if args.n_monitors < 1:
        print("error: --n-monitors must be >= 1", file=sys.stderr)
        return 2
    import asyncio
    import time

    from repro.service import FleetService
    from repro.station.profiles import staircase
    profile = staircase(levels, dwell_s=args.dwell)
    if args.http_port is not None:
        # The live plane serves /metrics from the default registry, so
        # turn the instrumentation on for the whole serve run.
        _enable_observability()
    print(f"serving {args.clients} client(s) x {args.n_monitors} monitor(s), "
          f"staircase {levels} cm/s, tick={args.tick_steps} steps ...")

    async def drive():
        async with FleetService(tick_steps=args.tick_steps,
                                max_pending=args.max_pending,
                                http_port=args.http_port,
                                http_host=args.http_host,
                                sample_every_s=args.sample_every) as service:
            if service.http_url is not None:
                print(f"live observability plane at {service.http_url} "
                      f"(/metrics /health /ready /snapshot)")
            clients = [
                await service.attach(profile, n_monitors=args.n_monitors,
                                     seed=args.seed + i,
                                     use_pulsed_drive=False,
                                     fast_calibration=True)
                for i in range(args.clients)
            ]

            async def consume(client):
                windows = 0
                async for _snap in client.snapshots():
                    windows += 1
                return windows, await client.result()

            streamed = await asyncio.gather(*(consume(c) for c in clients))
            stats = service.stats()
            done_t = time.perf_counter()
            if args.hold_open > 0:
                print(f"holding the service open for {args.hold_open:.0f} s "
                      f"(scrape away) ...", flush=True)
                await asyncio.sleep(args.hold_open)
            return clients, streamed, stats, done_t

    t0 = time.perf_counter()
    clients, streamed, stats, done_t = asyncio.run(drive())
    elapsed = done_t - t0
    print(f"{'client':>8}  {'group':>5}  {'seed':>5}  {'windows':>7}  "
          f"{'final [cm/s]':>12}")
    for client, (windows, result) in zip(clients, streamed):
        final = float(result.measured_mps[0, -1]) * 100.0
        print(f"{client.client_id:>8}  {client.group_id:>5}  "
              f"{client.seed:>5}  {windows:>7}  {final:>12.1f}")
    samples = sum(c.total_steps * c.n_monitors for c in clients)
    print(f"{stats['ticks']} engine ticks, {stats['snapshots']} snapshots, "
          f"{stats['completed']} clients completed in {elapsed:.2f} s wall "
          f"({samples / max(elapsed, 1e-9) / 1e3:.0f} ksamples/s)")
    return 0 if stats["completed"] == args.clients else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.observability.live.top import run_top
    if args.interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 2
    if args.last < 1:
        print("error: --last must be >= 1", file=sys.stderr)
        return 2
    return run_top(args.url, interval=args.interval, frames=args.frames,
                   once=args.once, last=args.last)


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore
    store = ArtifactStore(args.store_dir)
    if args.action == "inspect":
        entries = store.inspect()
        if args.kind is not None:
            entries = [e for e in entries if e["kind"] == args.kind]
        if args.key is not None:
            entries = [e for e in entries if e["key"] == args.key]
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        if not entries:
            print(f"store {args.store_dir}: no artifacts")
            return 0
        print(f"{'kind':<16}  {'key':<18}  {'bytes':>10}")
        for entry in entries:
            print(f"{entry['kind']:<16}  {entry['key']:<18}  "
                  f"{entry['bytes']:>10}")
        total = sum(e["bytes"] for e in entries)
        print(f"{len(entries)} artifact(s), {total} bytes")
        return 0
    if args.key is not None and args.kind is None:
        print("error: --key requires --kind", file=sys.stderr)
        return 2
    removed = store.evict(kind=args.kind, key=args.key)
    print(f"evicted {removed} artifact(s) from {args.store_dir}")
    return 0


_COMMANDS = {
    "selftest": _cmd_selftest,
    "calibrate": _cmd_calibrate,
    "measure": _cmd_measure,
    "sweep": _cmd_sweep,
    "record": _cmd_record,
    "fleet": _cmd_fleet,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "store": _cmd_store,
}


def _write_metrics(path: Path) -> None:
    registry = get_registry()
    if path.suffix == ".prom":
        path.write_text(export_prometheus(registry))
    else:
        path.write_text(export_jsonl(registry))
    print(f"metrics written to {path} ({len(registry.names())} series)")


def _write_profile(path: Path) -> None:
    report = get_profiler().report()
    path.write_text(json.dumps({"stages": report}, indent=2) + "\n")
    print(f"profile written to {path} ({len(report)} stages)")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.metrics_out is not None:
        _enable_observability()
    profiling = args.profile_out is not None
    if profiling:
        get_profiler().enabled = True
    try:
        code = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if profiling:
            # Back to the opt-in default so in-process callers (tests,
            # notebooks) do not keep paying the timing hooks.
            get_profiler().enabled = False
    if args.metrics_out is not None:
        _write_metrics(args.metrics_out)
    if profiling:
        _write_profile(args.profile_out)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
