"""Time-vectorized inner-loop kernels for the batch engine.

The chunk loop of :mod:`repro.runtime.batch` advances the whole fleet
one sample at a time; everything in this module exists to lift work out
of that per-sample loop:

- :func:`plan_chunk` precomputes the *time axis* of a chunk — profile
  setpoints, the shared-line first-order plant trajectory, the
  turbulence-OU coefficients and the drive-scheme energise schedule —
  so the per-sample loop reads plain floats instead of calling
  ``Profile.setpoints`` / ``DriveScheme.tick`` and stepping the plant
  per tick.
- :func:`ar1_block` / :func:`relax_block` run the linear recurrences
  that do not feed back into the control loop (turbulence OU, AFE
  flicker, backside-conductance OU, the Promag reference lag) for a
  whole chunk at once, returning ``(trajectory, final_state)``.
- :func:`film_conductance` evaluates the film-property correlations
  over the fleet with array arithmetic instead of per-element Python
  calls into :func:`repro.physics.water.film_properties_scalar`.
- :func:`exp_exact` / :func:`pow_exact` are the libm-elementwise
  transcendentals of the bit-exact path; fast mode swaps them for
  ``np.exp`` / ``np.power``.

Two numerics modes, selected by the :class:`Numerics` policy (or the
equivalent ``numerics="exact" | "fast"`` string accepted by every run
surface):

``exact`` (default)
    Only transformations that are provably bit-identical to the scalar
    reference loop: elementary IEEE-754 float64 operations (``+ - * /
    sqrt min max``) commute between numpy arrays and Python scalars
    when the association order is mirrored, recurrences keep their
    per-step form, and every transcendental whose implementation is
    *not* correctly rounded (``exp``, ``pow``) is evaluated elementwise
    through libm exactly as the scalar code would.  The golden traces
    under ``tests/golden/`` pin this contract byte for byte.

``fast``
    The same structure, but transcendentals go through numpy's
    vectorized ``exp`` / ``power`` (SIMD, last-ulp differences from
    libm) and the per-generator gaussian draws are pooled into block
    draws.  RNG *consumption* is unchanged — every generator produces
    the identical stream — so the two modes diverge only by sub-ulp
    transcendental rounding; ``tests/test_kernels.py`` holds fast-mode
    traces within 1e-9 relative error of exact on every recorded field,
    and ``tests/golden/fast_engine.npz`` pins a reference trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import repeat

import numpy as np

from repro.errors import ConfigurationError
from repro.units import CELSIUS_OFFSET

__all__ = [
    "NUMERICS_MODES",
    "PROFILE_STAGES",
    "Numerics",
    "resolve_numerics",
    "exp_exact",
    "pow_exact",
    "pow10_exact",
    "film_conductance",
    "ar1_block",
    "relax_block",
    "ChunkPlan",
    "plan_chunk",
]

#: The supported numerics modes, in documentation order.
NUMERICS_MODES = ("exact", "fast")

#: Stage names the batch engine times when the opt-in profiler is on
#: (see :mod:`repro.observability.profile`): chunk planning
#: (:func:`plan_chunk` — ``kernel.plan``), the time-blocked trajectory
#: kernels (``kernel.ar1_block``), the per-sample water-film kernel
#: accumulated per chunk (``kernel.film``), and the whole recurrent
#: per-sample loop (``kernel.chunk_loop``).
PROFILE_STAGES = ("kernel.plan", "kernel.ar1_block", "kernel.film",
                  "kernel.chunk_loop")


def resolve_numerics(value) -> str:
    """Normalize a ``numerics=`` knob to one of :data:`NUMERICS_MODES`.

    Accepts the mode string or a :class:`Numerics` policy.

    Raises
    ------
    ConfigurationError
        With ``reason == "numerics"`` for anything else.
    """
    if isinstance(value, Numerics):
        return value.mode
    if value not in NUMERICS_MODES:
        raise ConfigurationError(
            f"unknown numerics {value!r}; use "
            + " or ".join(repr(m) for m in NUMERICS_MODES),
            reason="numerics")
    return value


@dataclass(frozen=True)
class Numerics:
    """Numerics policy for the vectorized runtime.

    Attributes
    ----------
    mode:
        ``"exact"`` (bit-identical to the scalar reference loop, the
        default) or ``"fast"`` (vectorized transcendentals, within
        1e-9 relative error of exact).
    """

    mode: str = "exact"

    def __post_init__(self) -> None:
        if self.mode not in NUMERICS_MODES:
            raise ConfigurationError(
                f"unknown numerics {self.mode!r}; use "
                + " or ".join(repr(m) for m in NUMERICS_MODES),
                reason="numerics")

    @property
    def fast(self) -> bool:
        """True when the fast-numerics kernels are selected."""
        return self.mode == "fast"

    def to_dict(self) -> dict:
        """JSON-safe image; inverse of :meth:`from_dict`."""
        return {"mode": self.mode}

    @classmethod
    def from_dict(cls, data: dict) -> "Numerics":
        """Restore from :meth:`to_dict` output (validators re-run)."""
        if "mode" not in data:
            raise ConfigurationError(
                "numerics image missing 'mode'", reason="numerics")
        return cls(mode=data["mode"])


# -- elementwise transcendentals ---------------------------------------------


def exp_exact(arg: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp`` (libm), bit-identical to the scalar path.

    ``fromiter(map(...))`` is the fastest pure-Python build for small
    arrays: no intermediate list, no per-item type probing.
    """
    return np.fromiter(map(math.exp, arg.ravel().tolist()),
                       np.float64, count=arg.size).reshape(arg.shape)


def pow_exact(base: np.ndarray, exponent) -> np.ndarray:
    """Elementwise Python-float ``**``, bit-identical to the scalar path.

    ``exponent`` may be a scalar or an array broadcastable to ``base``.
    ``pow(b, e)`` and ``b ** e`` are the same C implementation, so the
    ``map`` forms below carry the scalar path's bits.
    """
    flat = base.ravel().tolist()
    if np.ndim(exponent) == 0:
        it = map(pow, flat, repeat(float(exponent)))
    else:
        it = map(pow, flat,
                 np.broadcast_to(exponent, base.shape).ravel().tolist())
    return np.fromiter(it, np.float64, count=base.size).reshape(base.shape)


def pow10_exact(arg: np.ndarray) -> np.ndarray:
    """Elementwise ``10.0 ** x`` through C-double pow (libm).

    ``math.pow`` and ``float.__pow__`` call the same C ``pow`` for
    float operands, so this carries the scalar path's bits; the
    ``math.pow`` form benches fastest under ``map``.
    """
    return np.fromiter(map(math.pow, repeat(10.0), arg.ravel().tolist()),
                       np.float64, count=arg.size).reshape(arg.shape)


# -- fused per-step physics kernels ------------------------------------------

#: Joint Horner tables for the Kell density numerator (rows 0-1) and the
#: specific-heat polynomial (rows 2-3), evaluated over ``t_c`` stacked
#: twice.  Each level computes ``c_i + t_c * acc`` — bitwise the nested
#: form of the separate polynomials, because broadcasting a per-row
#: coefficient does not change the elementwise float ops.  The specific
#: heat has one level fewer, so its rows start at ``0.0``: the first
#: level then yields ``c + t_c * 0.0 == c`` exactly (``±0.0`` absorbs
#: into a non-zero constant).
_RHOCP_START = np.array([[-280.54253e-12], [-280.54253e-12], [0.0], [0.0]])
_RHOCP_LEVELS = (
    np.array([[105.56302e-9], [105.56302e-9],
              [3.40034965e-6], [3.40034965e-6]]),
    np.array([[-46.170461e-6], [-46.170461e-6],
              [-8.32342657e-4], [-8.32342657e-4]]),
    np.array([[-7.9870401e-3], [-7.9870401e-3],
              [7.96622960e-2], [7.96622960e-2]]),
    np.array([[16.945176], [16.945176],
              [-3.04860723], [-3.04860723]]),
    np.array([[999.83952], [999.83952],
              [4216.92378], [4216.92378]]),
)

#: Scratch buffers for the stacked ``t_c`` of the joint Horner pass,
#: keyed by fleet shape (the engine calls with one shape for its whole
#: life, so this holds one or two small arrays).
_TC_STACK: dict = {}

#: Scalar constants of the film correlations pre-boxed as 0-d arrays:
#: a 0-d ufunc operand skips the per-dispatch Python-float boxing and
#: carries the identical float64 value, so results stay bitwise.
_F_CELSIUS = np.asarray(CELSIUS_OFFSET)
_F_K0, _F_K1, _F_K2 = np.asarray(-0.5752), np.asarray(6.397e-3), \
    np.asarray(8.151e-6)
_F_VOGEL_NUM, _F_VOGEL_OFF = np.asarray(247.8), np.asarray(140.0)
_F_MU_SCALE = np.asarray(2.414e-5)
_F_ONE, _F_DEN_SLOPE = np.asarray(1.0), np.asarray(16.879850e-3)
_F_NU_FORCED, _F_NU_FREE = np.asarray(0.57), np.asarray(0.42)
_F_PI = np.asarray(math.pi)


def film_conductance(v_eff, film_t: np.ndarray, diameter: float,
                     length: float, fast: bool = False) -> np.ndarray:
    """Clean-film conductance over the fleet (forced + natural mix).

    Vectorized form of the per-element loop over
    :func:`repro.physics.water.film_properties_scalar` plus the
    Nusselt correlation: the polynomial correlations run as array
    arithmetic (bit-identical — only ``+ - * /``), and the two
    non-correctly-rounded transcendentals (``10**x`` in the Vogel
    viscosity, ``Pr**n`` in the Nusselt fit) go through libm
    elementwise in exact mode or ``np.power`` in fast mode.
    """
    t = film_t
    # Range guard on the cheap path: one tolist round-trip + Python
    # min/max instead of two ufunc reductions.  The failure path
    # recomputes the mask so the raise condition (and message) match
    # the scalar reference exactly, including the all-NaN case where
    # no ordered comparison fires either way.
    t_flat = t.ravel().tolist()
    if not (min(t_flat) > 250.0 and max(t_flat) < 450.0):
        bad_mask = (t <= 250.0) | (t >= 450.0)
        if np.any(bad_mask):
            bad = float(t[bad_mask].ravel()[0])
            raise ConfigurationError(
                f"film temperature {bad} K outside liquid range — "
                f"Celsius passed as K?")
    t_c = t - _F_CELSIUS
    k = _F_K0 + _F_K1 * t - _F_K2 * t * t
    vogel = _F_VOGEL_NUM / (t - _F_VOGEL_OFF)
    if fast:
        mu = _F_MU_SCALE * np.power(10.0, vogel)
    else:
        mu = _F_MU_SCALE * pow10_exact(vogel)
    if t_c.ndim == 2 and t_c.shape[0] == 2:
        # Density numerator and specific heat share one joint Horner
        # pass over t_c stacked twice (see _RHOCP_LEVELS): identical
        # elementwise ops, seven fewer ufunc dispatches per call.
        stacked = _TC_STACK.get(t_c.shape)
        if stacked is None:
            stacked = np.empty((4, t_c.shape[1]))
            _TC_STACK[t_c.shape] = stacked
        stacked[:2] = t_c
        stacked[2:] = t_c
        acc = _RHOCP_START
        for coeff in _RHOCP_LEVELS:
            acc = coeff + stacked * acc
        rho = acc[0:2] / (_F_ONE + _F_DEN_SLOPE * t_c)
        cp = acc[2:4]
    else:
        rho = (
            999.83952
            + t_c * (16.945176
                     + t_c * (-7.9870401e-3
                              + t_c * (-46.170461e-6
                                       + t_c * (105.56302e-9
                                                - 280.54253e-12 * t_c))))
        ) / (1.0 + 16.879850e-3 * t_c)
        cp = (
            4216.92378
            + t_c * (-3.04860723
                     + t_c * (7.96622960e-2
                              + t_c * (-8.32342657e-4
                                       + 3.40034965e-6 * t_c)))
        )
    nu = mu / rho
    pr = cp * mu / k
    re = v_eff * diameter / nu
    if fast:
        pr20, pr33 = np.power(pr, 0.20), np.power(pr, 0.33)
    else:
        # One tolist round-trip feeds both exponents; ``pow`` under
        # ``map`` is the scalar path's ``**`` without loop overhead.
        pr_flat = pr.ravel().tolist()
        size, shape = pr.size, pr.shape
        pr20 = np.fromiter(map(pow, pr_flat, repeat(0.20)),
                           np.float64, count=size).reshape(shape)
        pr33 = np.fromiter(map(pow, pr_flat, repeat(0.33)),
                           np.float64, count=size).reshape(shape)
    nusselt = _F_NU_FREE * pr20 + _F_NU_FORCED * pr33 * np.sqrt(re)
    return nusselt * k * _F_PI * length


# -- time-blocked recurrence kernels -----------------------------------------


def ar1_block(state: np.ndarray, rho, noise: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
    """Run ``x <- x * rho + noise[k]`` over a chunk; trajectory out.

    ``rho`` is a scalar (AFE flicker leak, backside OU) or a ``(c,)``
    array of per-step coefficients (the speed-dependent turbulence OU).
    The recurrence keeps its per-step multiply-add association, so the
    trajectory is bit-identical to stepping inside the sample loop.

    Returns ``(trajectory, final_state)`` with ``trajectory[k]`` the
    post-update state at step ``k``.
    """
    out = np.empty_like(noise)
    x = state
    if np.ndim(rho) == 0:
        for k, w in enumerate(noise):
            x = x * rho + w
            out[k] = x
    else:
        for k, (r, w) in enumerate(zip(rho.tolist(), noise)):
            x = x * r + w
            out[k] = x
    return out, x


def relax_block(state: np.ndarray, alpha, target: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """Run ``x <- x + alpha * (target[k] - x)`` over a chunk.

    The first-order relaxation used by the Promag reference lag.
    Returns ``(trajectory, final_state)``.
    """
    out = np.empty_like(target)
    x = state
    for k, tgt in enumerate(target):
        x = x + alpha * (tgt - x)
        out[k] = x
    return out, x


# -- the chunk plan ----------------------------------------------------------


@dataclass
class ChunkPlan:
    """Precomputed time axis of one chunk (everything loop-invariant).

    All per-step scalars are Python floats / bools in plain lists (the
    inner loop indexes them far more often than numpy scalars would
    pay for); the per-step *array* inputs derived from them are built
    by the engine with one vectorized call each.

    Attributes
    ----------
    bulk_speed / bulk_pressure / bulk_temp:
        Shared-line plant state after each step's first-order update.
    line_time:
        Accumulated line time after each step.
    v_mag:
        ``abs(bulk_speed)`` per step (feeds the OU coefficient).
    rho_ou / ou_sqrt:
        Turbulence-OU decay ``exp(-dt/tau)`` and the matching
        ``sqrt(1 - rho^2)`` noise gain, per step.
    energise / control_active / sample_valid:
        The drive scheme's decisions, one tick per step.
    """

    bulk_speed: np.ndarray
    bulk_pressure: list = field(repr=False)
    bulk_temp: list = field(repr=False)
    line_time: list = field(repr=False)
    v_mag: np.ndarray = field(repr=False)
    rho_ou: np.ndarray = field(repr=False)
    ou_sqrt: np.ndarray = field(repr=False)
    energise: list = field(repr=False)
    control_active: list = field(repr=False)
    sample_valid: list = field(repr=False)


def plan_chunk(profile, drive, dt: float, start_step: int, c: int, *,
               speed: float, pressure: float, temperature: float,
               time_s: float, a_speed: float, a_press: float, a_temp: float,
               turb_length: float, turb_min_speed: float,
               fast: bool = False) -> ChunkPlan:
    """Precompute one chunk's setpoints, plant trajectory and schedule.

    Advances the shared-line plant (``x <- x + a * (set - x)``, the
    exact scalar recurrence of the per-sample loop), accumulates line
    time, evaluates the turbulence-OU coefficients, and ticks ``drive``
    once per step — all outside the per-sample loop.  The caller seeds
    the plant state (``speed`` / ``pressure`` / ``temperature`` /
    ``time_s``) and carries the returned trajectory tails forward to
    the next chunk.
    """
    bulk_v = np.empty(c)
    v_mag = np.empty(c)
    bulk_p: list[float] = []
    bulk_t: list[float] = []
    times: list[float] = []
    rho_arg = np.empty(c)
    setpoints = profile.setpoints
    for k in range(c):
        v_set, p_set, t_set = setpoints((start_step + k) * dt)
        speed = speed + a_speed * (v_set - speed)
        pressure = pressure + a_press * (p_set - pressure)
        temperature = temperature + a_temp * (t_set - temperature)
        time_s = time_s + dt
        mag = abs(speed)
        bulk_v[k] = speed
        v_mag[k] = mag
        bulk_p.append(pressure)
        bulk_t.append(temperature)
        times.append(time_s)
        rho_arg[k] = -dt / (turb_length / max(mag, turb_min_speed))
    # The drive has no coupling to the profile, so ticking it as one
    # block after the plant loop is order-equivalent; built-in schemes
    # override tick_block with allocation-free loops.
    tick_block = getattr(drive, "tick_block", None)
    if tick_block is not None:
        energise, control, valid = tick_block(dt, c)
    else:
        energise, control, valid = [], [], []
        tick = drive.tick
        for _ in range(c):
            dec = tick(dt)
            energise.append(dec.energise)
            control.append(dec.control_active)
            valid.append(dec.sample_valid)
    if fast:
        rho_ou = np.exp(rho_arg)
    else:
        rho_ou = np.fromiter(map(math.exp, rho_arg.tolist()),
                             np.float64, count=c)
    ou_sqrt = np.sqrt(1.0 - rho_ou * rho_ou)
    return ChunkPlan(
        bulk_speed=bulk_v, bulk_pressure=bulk_p, bulk_temp=bulk_t,
        line_time=times, v_mag=v_mag, rho_ou=rho_ou, ou_sqrt=ou_sqrt,
        energise=energise, control_active=control, sample_valid=valid)
