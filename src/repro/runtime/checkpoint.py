"""Bit-exact engine checkpoints: durable runs that survive process death.

A checkpoint is the *live engine object* — rigs, every RNG stream
(``numpy.random.Generator`` state pickles exactly), thermal/filter/PI
state, the decimation phase and the absolute step ``offset`` — wrapped
in a versioned header and written atomically.  Restoring it and calling
``advance`` continues the run **bit-identically** to one that was never
interrupted: the PR 6 ``advance/offset`` contract guarantees that a run
sliced into windows at any offsets equals the uninterrupted run, and
pickle round-trips the inter-window state exactly (the golden
``*_resume`` archives and ``tests/test_checkpoint_properties.py`` pin
this for every engine kind).

Engine kinds and what gets snapshotted:

- ``"scalar"`` — a :class:`~repro.station.rig.TestRig` (its monitor,
  line and reference carry all state; :attr:`TestRig.offset` carries
  the cut point).
- ``"batch"`` — a :class:`~repro.runtime.batch.BatchEngine` (vectorized
  fleet state plus the rigs its RNG streams alias).
- ``"sharded"`` — a :class:`~repro.runtime.parallel.ShardedEngine`
  (between windows each shard's live engine is a pickled blob held in
  the parent, so the parent object alone is the complete run).
- ``"mixed"`` — a :class:`~repro.runtime.mixed.MixedEngine` (per-group
  engines plus the interleave map).

:func:`run_durable` is the turnkey loop built on top: advance in
windows, checkpoint after each, resume from the artifact after a crash
— used by ``Session(checkpoint_dir=...)`` and the CLI.  Campaign- and
service-level recovery (:func:`repro.station.campaign.run_campaign`,
:func:`repro.service.recover_cohorts`) layer their own bookkeeping over
:func:`save_checkpoint` / :func:`load_checkpoint`.

Failures raise :class:`~repro.errors.CheckpointError` with a
machine-readable ``reason``: ``"missing"``, ``"corrupt"``,
``"version"``, ``"kind"`` or ``"mismatch"`` (see the class docs).
Writes land on the opt-in ``checkpoint.writes`` counter and
``checkpoint.write_s`` histogram; loads on ``checkpoint.loads``.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CheckpointError, ConfigurationError
from repro.observability import get_registry
from repro.runtime.batch import BatchEngine
from repro.runtime.kernels import resolve_numerics
from repro.runtime.mixed import MixedEngine
from repro.runtime.parallel import ShardedEngine
from repro.runtime.result import RunResult
from repro.station.profiles import Profile
from repro.station.rig import TestRig
from repro.store import canonical_key

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint",
           "run_durable", "engine_kind", "CHECKPOINT_FORMAT_VERSION"]

#: On-disk checkpoint format version; bumped on incompatible changes.
CHECKPOINT_FORMAT_VERSION = 1

#: Header magic identifying a checkpoint artifact.
_MAGIC = "repro-checkpoint"

#: Engine kind dispatch, most specific type first (a ShardedEngine is
#: not a BatchEngine, but keep the order defensive anyway).
_KINDS: tuple[tuple[str, type], ...] = (
    ("mixed", MixedEngine),
    ("sharded", ShardedEngine),
    ("batch", BatchEngine),
    ("scalar", TestRig),
)


def engine_kind(engine) -> str:
    """The checkpoint kind slug for an engine (or rig) instance.

    Raises
    ------
    CheckpointError
        If the object is not one of the checkpointable kinds
        (``reason="kind"``).
    """
    for kind, cls in _KINDS:
        if isinstance(engine, cls):
            return kind
    raise CheckpointError(
        f"cannot checkpoint a {type(engine).__name__}; expected one of "
        f"{[cls.__name__ for _, cls in _KINDS]}", reason="kind")


@dataclass
class Checkpoint:
    """One restored checkpoint artifact.

    Attributes
    ----------
    version:
        Format version the artifact was written with.
    kind:
        Engine kind slug (``"scalar"``/``"batch"``/``"sharded"``/
        ``"mixed"``).
    offset:
        Absolute step of the next tick at snapshot time (the cut
        point).
    meta:
        Caller-supplied bookkeeping saved alongside the engine
        (fingerprints, accumulated windows, ...); ``{}`` if none.
    engine:
        The live engine object, ready for ``advance``.
    """

    version: int
    kind: str
    offset: int
    meta: dict
    engine: object


def _atomic_write(path: Path, blob: bytes) -> None:
    """Publish ``blob`` at ``path`` via write-then-rename (atomic)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".tmp-{os.getpid()}-{id(blob):x}-{path.name}"
    try:
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_checkpoint(engine, path, *, meta: dict | None = None) -> Path:
    """Snapshot a live engine (or scalar rig) to a checkpoint artifact.

    The engine keeps running afterwards — saving only pickles it.  The
    write is atomic (write-then-rename), so a crash mid-save leaves the
    previous checkpoint intact, and a concurrent reader can never see a
    torn artifact.

    Parameters
    ----------
    engine:
        A :class:`TestRig`, :class:`BatchEngine`, :class:`ShardedEngine`
        or :class:`MixedEngine` between ``advance`` windows.
    path:
        Destination file.
    meta:
        Optional JSON-able/pickle-able bookkeeping to store alongside
        (returned verbatim by :func:`load_checkpoint`).

    Raises
    ------
    CheckpointError
        ``reason="kind"`` for a non-checkpointable object;
        ``reason="checkpoint"`` if the engine fails to pickle.
    """
    t0 = time.perf_counter()
    path = Path(path)
    kind = engine_kind(engine)
    record = {
        "magic": _MAGIC,
        "version": CHECKPOINT_FORMAT_VERSION,
        "kind": kind,
        "offset": int(engine.offset),
        "meta": dict(meta or {}),
        "engine": engine,
    }
    try:
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"{kind} engine failed to pickle: {exc}") from exc
    _atomic_write(path, blob)
    registry = get_registry()
    if registry.enabled:
        registry.counter("checkpoint.writes").inc()
        registry.histogram(
            "checkpoint.write_s",
            "checkpoint serialization + publish wall time").observe(
            time.perf_counter() - t0)
    return path


def load_checkpoint(path, *, expect_kind: str | None = None) -> Checkpoint:
    """Restore a checkpoint written by :func:`save_checkpoint`.

    Parameters
    ----------
    path:
        Checkpoint file.
    expect_kind:
        When given, the artifact must hold this engine kind.

    Raises
    ------
    CheckpointError
        ``reason="missing"`` if there is no artifact at ``path``;
        ``reason="corrupt"`` if it is not a valid checkpoint;
        ``reason="version"`` for an incompatible format version;
        ``reason="kind"`` on an ``expect_kind`` mismatch.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(
            f"no checkpoint at {path}", reason="missing") from None
    try:
        record = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path} failed to deserialize: {exc}",
            reason="corrupt") from exc
    if not isinstance(record, dict) or record.get("magic") != _MAGIC:
        raise CheckpointError(
            f"{path} is not a repro checkpoint", reason="corrupt")
    if record["version"] != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {record['version']}; "
            f"this library reads version {CHECKPOINT_FORMAT_VERSION}",
            reason="version")
    if expect_kind is not None and record["kind"] != expect_kind:
        raise CheckpointError(
            f"checkpoint {path} holds a {record['kind']} engine, "
            f"expected {expect_kind}", reason="kind")
    registry = get_registry()
    if registry.enabled:
        registry.counter("checkpoint.loads").inc()
    return Checkpoint(version=record["version"], kind=record["kind"],
                      offset=record["offset"], meta=record["meta"],
                      engine=record["engine"])


def _run_fingerprint(profile: Profile, total_steps: int, n_monitors: int,
                     record_every_n: int, numerics: str) -> str:
    """Canonical hash of everything a resumed run must agree on."""
    return canonical_key({
        "profile_type": type(profile).__name__,
        "segments": [(s.duration_s, s.speed_mps, s.pressure_pa,
                      s.temperature_k, s.interpolate)
                     for s in profile.segments],
        "total_steps": total_steps,
        "n_monitors": n_monitors,
        "record_every_n": record_every_n,
        "numerics": numerics,
    })


def run_durable(rigs: list[TestRig], profile: Profile, *,
                checkpoint_path, record_every_n: int = 20,
                window_steps: int = 1000, resume: bool = False,
                chunk_size: int = 1024, numerics: str = "exact",
                workers: int | None = None, backend: str = "spawn",
                ) -> RunResult:
    """Run a fleet with per-window checkpoints; resume after a crash.

    The fleet runs as a :class:`MixedEngine` (whose single-group path
    is byte-identical to a plain :class:`BatchEngine`), advanced in
    ``window_steps`` slices; after each window the live engine and the
    accumulated window results are checkpointed at ``checkpoint_path``.
    If the process dies, calling again with ``resume=True`` picks up at
    the last completed window and the final :class:`RunResult` is
    bit-identical to an uninterrupted run.  On success the checkpoint
    is deleted.

    Parameters
    ----------
    rigs:
        The fleet (heterogeneous fleets welcome).
    profile:
        Setpoint schedule; its length fixes the total step count.
    checkpoint_path:
        Artifact location for the per-window snapshots.
    record_every_n / chunk_size / numerics:
        As for the engines.
    window_steps:
        Checkpoint cadence in loop ticks.
    resume:
        Continue from an existing checkpoint instead of starting fresh.
        The checkpoint's run fingerprint (profile, fleet size, cadence,
        numerics) must match this call's.
    workers / backend:
        Parallelize each window across worker processes (see
        :class:`MixedEngine`); any worker count and either backend
        (``"spawn"`` / ``"shm"``) is bit-identical to the serial run,
        so the run fingerprint deliberately excludes both and a
        checkpoint taken under any parallel configuration resumes
        cleanly (the restored engine continues with the configuration
        it was checkpointed with).  Checkpointing an shm engine dumps
        its pool-resident shard state back into owned blobs; resume
        re-loads them into the pool on the next window.

    Raises
    ------
    CheckpointError
        ``reason="missing"`` when resuming without a checkpoint;
        ``reason="mismatch"`` when the checkpoint belongs to a
        different run configuration.
    ConfigurationError
        On invalid knobs or an empty profile.
    """
    if window_steps < 1:
        raise ConfigurationError("window_steps must be >= 1")
    if record_every_n < 1:
        raise ConfigurationError("record_every_n must be >= 1")
    if not rigs:
        raise ConfigurationError("run_durable needs at least one rig")
    checkpoint_path = Path(checkpoint_path)
    numerics = resolve_numerics(numerics)
    dt = rigs[0].monitor.platform.dt_s
    total = int(round(profile.duration_s / dt))
    if total < 1:
        raise ConfigurationError("profile shorter than one loop tick")
    fingerprint = _run_fingerprint(profile, total, len(rigs),
                                   record_every_n, numerics)
    if resume:
        ckpt = load_checkpoint(checkpoint_path)
        if ckpt.meta.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint {checkpoint_path} was taken under a different "
                f"run configuration (profile/fleet/cadence/numerics); "
                f"refusing to resume", reason="mismatch")
        engine = ckpt.engine
        windows: list[RunResult] = list(ckpt.meta["windows"])
        done = int(ckpt.offset)
    else:
        engine = MixedEngine(list(rigs), chunk_size=chunk_size,
                             numerics=numerics, workers=workers,
                             backend=backend)
        windows = []
        done = 0
    try:
        while done < total:
            budget = min(window_steps, total - done)
            windows.append(engine.advance(profile, budget,
                                          record_every_n=record_every_n))
            done += budget
            if done < total:
                save_checkpoint(engine, checkpoint_path,
                                meta={"fingerprint": fingerprint,
                                      "windows": windows})
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    result = RunResult.concat(windows, axis="time")
    checkpoint_path.unlink(missing_ok=True)
    return result
