"""Chunk-vectorized batch engine: N monitors × K samples per call.

This is the fleet-scale hot path.  It advances N structurally identical
:class:`~repro.station.rig.TestRig` instances in lock-step with numpy
array math, replacing the per-sample Python loops of
``conditioning/cta.py`` / ``conditioning/monitor.py`` /
``station/rig.py`` while reproducing their arithmetic *bit for bit*:

- Elementary float64 operations (+, -, *, /, sqrt, clip) are IEEE-754
  identical between numpy arrays and Python scalars when the association
  order of the scalar code is mirrored, so every expression here copies
  the source association exactly.
- Transcendentals whose argument varies per step (the heater exponential
  update, the film-property correlations, King's-law inversion) are
  evaluated elementwise with ``math``/python-float arithmetic — numpy's
  SIMD ``exp``/``pow`` may differ from libm in the last ulp on arrays.
  Constants hoisted out of the loop reuse the original source expression
  (including whether it used ``math.exp`` or ``np.exp``).
- Random draws are pre-drawn per chunk from the *live* generators of the
  rigs' components.  ``Generator.standard_normal(k)`` produces the same
  stream as ``k`` sequential ``normal()`` calls, and interleaved
  consumers of one generator (the AFE's flicker+white pair) deinterleave
  a ``2k`` block.  Data-dependent draws (bubble churn noise) stay lazy
  scalar draws from each bubble model's own generator.
- The per-sample loop itself only runs the genuinely recurrent chain:
  :mod:`repro.runtime.kernels` precomputes each chunk's time axis
  (profile setpoints, shared-line plant, drive schedule) and runs every
  feed-forward stochastic trajectory (turbulence OU, AFE flicker,
  backside OU, Promag lag) as a time-blocked kernel.  ``numerics="fast"``
  additionally swaps the libm transcendentals for numpy's vectorized
  ``exp``/``power`` (within 1e-9 relative error, identical RNG streams).

The engine *consumes* the rigs passed to it: their RNG streams advance,
the first rig's drive scheme is ticked, and every platform scheduler is
bulk-advanced.  Treat the rigs as spent after :meth:`BatchEngine.run`;
for repeatable runs build fresh rigs (see :class:`repro.runtime.Session`).

Fleets must be *structurally homogeneous* (same configs modulo seeds);
per-monitor diversity enters only through realized component values
(resistor tolerances, DAC mismatch, calibration constants, housing
state, noise streams).  Heterogeneous fleets are refused with
:class:`~repro.errors.ConfigurationError` (``reason="heterogeneous"``,
naming the offending config-group keys) — route them through
:class:`repro.runtime.mixed.MixedEngine`, which sub-batches per config
group and merges bit-identically, or describe the fleet with a
:class:`repro.runtime.FleetSpec` and let :func:`run_batch` dispatch.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace

import numpy as np

from repro.errors import ConfigurationError, SensorFault
from repro.observability import get_profiler, get_registry, get_tracer
from repro.baselines.promag import Promag50
from repro.conditioning.drive import ContinuousDrive, PulsedDrive
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaAdc
from repro.physics.convection import NATURAL_CONVECTION_FLOOR
from repro.physics.water import boiling_temperature
from repro.runtime.kernels import (ar1_block, exp_exact, film_conductance,
                                   plan_chunk, pow_exact, relax_block,
                                   resolve_numerics)
from repro.runtime.result import RunResult
from repro.station.profiles import Profile
from repro.station.rig import TestRig

__all__ = ["BatchEngine", "run_batch"]


def _require(condition: bool, message: str) -> None:
    """Raise ConfigurationError with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


#: Back-compat alias: the exact-mode elementwise exponential now lives in
#: :mod:`repro.runtime.kernels`.
_vexp = exp_exact


class BatchEngine:
    """Vectorized lock-step executor for a homogeneous fleet of rigs.

    Parameters
    ----------
    rigs:
        Structurally identical test rigs (same configs modulo seeds).
        They are consumed: RNG streams, the lead rig's drive phase and
        all schedulers advance as the engine runs.
    chunk_size:
        Samples per noise pre-draw block (memory/locality trade-off).
    numerics:
        ``"exact"`` (default) keeps every transcendental on the libm
        scalar path and stays bit-identical to the scalar rigs;
        ``"fast"`` switches the chunk kernels to numpy's vectorized
        ``exp``/``power`` (within 1e-9 relative error of exact, same
        RNG streams).  A :class:`repro.runtime.kernels.Numerics`
        policy is also accepted.

    Raises
    ------
    ConfigurationError
        If the fleet is empty, heterogeneous, or uses a feature the
        vectorized path does not reproduce bit-exactly (bit-true ΣΔ ADC,
        strict AFE, non-zero DAC settling, temperature compensation,
        fixed-point output IIR, non-water medium, zero turbulence floor,
        or a non-Promag50 reference meter); with ``reason="numerics"``
        for an unknown numerics mode.
    SensorFault
        If any sensor is already failed.
    """

    def __init__(self, rigs: list[TestRig], chunk_size: int = 1024,
                 numerics: str = "exact") -> None:
        _require(len(rigs) > 0, "batch engine needs at least one rig")
        _require(chunk_size >= 1, "chunk_size must be >= 1")
        self._rigs = list(rigs)
        self._chunk = int(chunk_size)
        self._n = len(self._rigs)
        self._numerics = resolve_numerics(numerics)
        self._fast = self._numerics == "fast"
        self._validate()
        self._extract()

    @property
    def numerics(self) -> str:
        """The resolved numerics mode (``"exact"`` or ``"fast"``)."""
        return self._numerics

    # -- fleet homogeneity ---------------------------------------------------

    def _validate(self) -> None:
        """Refuse fleets the vectorized path cannot reproduce bit-exactly."""
        rigs = self._rigs
        if len(rigs) > 1:
            # Lead with one structured check so a mixed fleet gets a
            # diagnosable error naming its config groups, not whichever
            # pairwise mismatch below happens to trip first.
            from repro.runtime.mixed import fleet_groups  # lazy: mixed imports us
            try:
                groups = fleet_groups(rigs)
            except Exception:
                groups = {}  # fall through to the precise checks below
            if len(groups) > 1:
                raise ConfigurationError(
                    "fleet is heterogeneous: config groups "
                    f"{sorted(groups)} cannot share one BatchEngine; use "
                    "repro.runtime.MixedEngine (or a FleetSpec via "
                    "run_batch/Session) to sub-batch per group",
                    reason="heterogeneous")
        mon0 = rigs[0].monitor
        sen0 = mon0.sensor
        cfg0 = replace(sen0.config, seed=0)
        _require(sen0.config.medium == "water",
                 "batch engine supports medium='water' only")
        _require(not mon0.config.temperature_compensation,
                 "temperature compensation is not vectorized; use the scalar path")
        for rig in rigs:
            mon = rig.monitor
            sen = mon.sensor
            if sen.failed is not None:
                raise SensorFault(sen.failed)
            _require(replace(sen.config, seed=0) == cfg0,
                     "fleet sensors must share one MAFConfig (modulo seed)")
            _require(mon.config == mon0.config,
                     "fleet monitors must share one MonitorConfig")
            _require(mon.controller.config == mon0.controller.config,
                     "fleet controllers must share one CTAConfig")
            _require(mon.platform.loop_rate_hz == mon0.platform.loop_rate_hz,
                     "fleet platforms must share one loop rate")
            est = mon.estimator
            _require(not est.config.temperature_compensation,
                     "temperature compensation is not vectorized")
            _require(est.config.use_direction == mon0.estimator.config.use_direction,
                     "fleet estimators must agree on use_direction")
            _require(est._primed == mon0.estimator._primed,
                     "fleet estimators must share priming state")
        # Drive schemes: one shared phase, realized by ticking rig 0's.
        drive0 = mon0.controller.drive
        for rig in rigs[1:]:
            drive = rig.monitor.controller.drive
            _require(type(drive) is type(drive0),
                     "fleet drives must share one scheme")
            if isinstance(drive0, PulsedDrive):
                _require((drive.period_s, drive.duty, drive.blanking_s, drive._t)
                         == (drive0.period_s, drive0.duty, drive0.blanking_s,
                             drive0._t),
                         "fleet pulsed drives must share timing and phase")
            else:
                _require(isinstance(drive0, ContinuousDrive),
                         "unknown drive scheme")
        # Platform channels and DACs.
        ch0 = mon0.platform.channels[0]
        afe_cfg0 = ch0.config.afe
        _require(afe_cfg0.mode.name == "INSTRUMENT",
                 "batch engine supports INSTRUMENT readout only")
        _require(not afe_cfg0.strict, "strict AFE mode is not vectorized")
        coeffs0 = ch0.anti_alias._coeffs
        for rig in rigs:
            plat = rig.monitor.platform
            for ch in plat.channels[:2]:
                _require(ch.config.afe == afe_cfg0,
                         "fleet channels must share one AFEConfig")
                _require(not ch.config.bit_true_adc
                         and isinstance(ch.adc, BehavioralAdc)
                         and not isinstance(ch.adc, SigmaDeltaAdc),
                         "bit-true sigma-delta ADC is not vectorized")
                _require(ch.anti_alias._coeffs == coeffs0,
                         "fleet anti-alias filters must share coefficients")
                _require(ch.digital_lpf.qformat is None,
                         "fixed-point digital LPF is not vectorized")
                _require(ch.digital_lpf.alpha
                         == mon0.platform.channels[0].digital_lpf.alpha,
                         "fleet digital LPFs must share alpha")
                adc0 = mon0.platform.channels[0].adc
                _require((ch.adc._thermal_rms_v, ch.adc._lsb_v,
                          ch.adc._min_code, ch.adc._max_code)
                         == (adc0._thermal_rms_v, adc0._lsb_v,
                             adc0._min_code, adc0._max_code),
                         "fleet ADCs must share noise and scale")
            for dac in (plat.supply_dac_a, plat.supply_dac_b):
                _require(not dac.settling_time_s,
                         "DAC settling dynamics are not vectorized")
                _require(dac.lsb_v == mon0.platform.supply_dac_a.lsb_v
                         and dac.max_code == mon0.platform.supply_dac_a.max_code,
                         "fleet supply DACs must share scale")
        # PI controllers.
        pi0 = mon0.controller.pi_a
        for rig in rigs:
            for pi in (rig.monitor.controller.pi_a, rig.monitor.controller.pi_b):
                _require(pi.config == pi0.config,
                         "fleet PI controllers must share one PIConfig")
        # Water line: shared bulk plant, per-monitor turbulence stream.
        line0 = rigs[0].line
        lcfg0 = replace(line0.config, seed=0)
        ncfg0 = line0._noise.config
        for rig in rigs:
            line = rig.line
            _require(replace(line.config, seed=0) == lcfg0,
                     "fleet lines must share one LineConfig (modulo seed)")
            ncfg = line._noise.config
            _require((ncfg.floor_mps, ncfg.integral_length_m, ncfg.min_speed_mps)
                     == (ncfg0.floor_mps, ncfg0.integral_length_m,
                         ncfg0.min_speed_mps),
                     "fleet turbulence must share floor/length/min-speed")
            _require(ncfg.floor_mps > 0.0,
                     "turbulence floor must be positive (the OU stream must "
                     "draw every step for lock-step batching)")
            _require((line._speed, line._pressure, line._temperature,
                      line._time_s)
                     == (line0._speed, line0._pressure, line0._temperature,
                         line0._time_s),
                     "fleet lines must start from one shared bulk state")
        # Reference meters.
        ref0 = rigs[0].reference
        for rig in rigs:
            ref = rig.reference
            _require(type(ref) is Promag50,
                     "batch engine supports the Promag50 reference only")
            _require((ref.full_scale_mps, ref.accuracy_of_reading,
                      ref.resolution_fraction_fs, ref.response_time_s)
                     == (ref0.full_scale_mps, ref0.accuracy_of_reading,
                         ref0.resolution_fraction_fs, ref0.response_time_s),
                     "fleet reference meters must share parameters")
        # Resistor materials / bridge series resistance.
        h0 = sen0.heater_a
        r0 = sen0.reference
        for rig in rigs:
            sen = rig.monitor.sensor
            for heater in (sen.heater_a, sen.heater_b):
                _require((heater.material.tcr_per_k,
                          heater.reference_temperature_k)
                         == (h0.material.tcr_per_k, h0.reference_temperature_k),
                         "fleet heaters must share material and T_ref")
            _require((sen.reference.material.tcr_per_k,
                      sen.reference.reference_temperature_k,
                      sen.reference.nominal_ohm)
                     == (r0.material.tcr_per_k, r0.reference_temperature_k,
                         r0.nominal_ohm),
                     "fleet references must share material, T_ref and nominal")
            _require(sen.bridge_a.r_series_ohm == sen0.bridge_a.r_series_ohm
                     and sen.bridge_b.r_series_ohm == sen0.bridge_a.r_series_ohm,
                     "fleet bridges must share the series resistance")

    # -- state extraction ----------------------------------------------------

    def _extract(self) -> None:
        """Copy fleet state into (2, N)/(N,) arrays and hoist constants."""
        rigs = self._rigs
        n = self._n
        self._offset = 0
        mon0 = rigs[0].monitor
        sen0 = mon0.sensor
        cfg = sen0.config
        dt = mon0.platform.dt_s
        self._dt = dt
        self._drive = mon0.controller.drive

        def per_rig(fn):
            return np.array([fn(r) for r in rigs])

        def per_bridge(fn_a, fn_b):
            return np.array([[fn_a(r) for r in rigs], [fn_b(r) for r in rigs]])

        # Water line (shared bulk plant, per-monitor OU fluctuation).
        line0 = rigs[0].line
        lcfg = line0.config
        self._bulk_speed = np.float64(line0._speed)
        self._bulk_pressure = np.float64(line0._pressure)
        self._bulk_temp = np.float64(line0._temperature)
        self._line_time = float(line0._time_s)
        self._a_speed = 1.0 - np.exp(-dt / lcfg.speed_tau_s)
        self._a_press = 1.0 - np.exp(-dt / lcfg.pressure_tau_s)
        self._a_temp = 1.0 - np.exp(-dt / lcfg.temperature_tau_s)
        self._turb_intensity = per_rig(lambda r: r.line._noise.config.intensity)
        self._turb_floor = line0._noise.config.floor_mps
        self._turb_length = line0._noise.config.integral_length_m
        self._turb_min_speed = line0._noise.config.min_speed_mps
        self._x_ou = per_rig(lambda r: float(r.line._noise._ou._x))
        self._line_rngs = [r.line._noise._ou._rng for r in rigs]

        # Supply DACs: code quantization + per-instance mismatch tables.
        dac0 = mon0.platform.supply_dac_a
        self._dac_lsb = dac0.lsb_v
        self._dac_max_code = dac0.max_code
        self._lev_a = np.stack(
            [r.monitor.platform.supply_dac_a._levels_v for r in rigs])
        self._lev_b = np.stack(
            [r.monitor.platform.supply_dac_b._levels_v for r in rigs])
        self._iota = np.arange(n)
        # On a non-energised drive tick every command is 0 V, which
        # quantizes to code 0 on every DAC — the supply pair is this
        # precomputed column, no quantization work needed.
        self._ua_off = np.stack([self._lev_a[:, 0], self._lev_b[:, 0]])

        # Sensor: thermal state, realized resistances, degradation.
        self._t_h = per_bridge(lambda r: float(r.monitor.sensor._t_a),
                               lambda r: float(r.monitor.sensor._t_b))
        self._t_mem = per_rig(lambda r: float(r.monitor.sensor._t_membrane))
        self._t_ref = per_rig(lambda r: float(r.monitor.sensor._t_reference))
        self._h_r0 = per_bridge(lambda r: r.monitor.sensor.heater_a.r0_ohm,
                                lambda r: r.monitor.sensor.heater_b.r0_ohm)
        self._ref_r0 = per_rig(lambda r: r.monitor.sensor.reference.r0_ohm)
        self._tcr_h = sen0.heater_a.material.tcr_per_k
        self._tref_h = sen0.heater_a.reference_temperature_k
        self._tcr_ref = sen0.reference.material.tcr_per_k
        self._tref_ref = sen0.reference.reference_temperature_k
        self._r_trim = per_bridge(lambda r: r.monitor.sensor.bridge_a.r_trim_ohm,
                                  lambda r: r.monitor.sensor.bridge_b.r_trim_ohm)
        self._r_series = sen0.bridge_a.r_series_ohm
        self._leak = per_rig(
            lambda r: r.monitor.sensor.housing.leakage_conductance_s())
        self._leak_mask = self._leak == 0.0
        self._leak_zero = bool(self._leak_mask.all())
        self._min_rating = min(
            r.monitor.sensor.housing.pressure_rating_pa for r in rigs)
        self._burst_pressure = cfg.membrane.burst_pressure_pa
        self._alpha_ref = 1.0 - math.exp(-dt / cfg.reference_lag_s)
        self._geom_d = cfg.geometry.diameter_m
        self._geom_L = cfg.geometry.length_m
        self._wake2 = cfg.wake_peak_coupling * 2.0
        self._wake_peak_speed = cfg.wake_peak_speed_mps
        # Membrane-derived thermal constants (per monitor, config-equal).
        self._g_lat = per_rig(lambda r: r.monitor.sensor._g_lateral)
        self._g_back_half = per_rig(lambda r: r.monitor.sensor._g_backside)
        self._heater_cap = per_rig(lambda r: r.monitor.sensor._heater_capacity)
        mem_cap = per_rig(lambda r: r.monitor.sensor._membrane_capacity)
        self._lat_total = cfg.membrane.lateral_conductance_w_per_k
        self._g_rim_total = 2.0 * self._g_lat + self._lat_total
        self._rho_m = np.array([
            math.exp(-dt * g_rim / c)
            for g_rim, c in zip(self._g_rim_total.tolist(), mem_cap.tolist())])
        # Degradation models.
        self._enable_fouling = cfg.enable_fouling
        self._enable_bubbles = cfg.enable_bubbles
        self._r_foul = per_bridge(
            lambda r: r.monitor.sensor.fouling_a.thermal_resistance_k_per_w(
                r.monitor.sensor.wetted_area_m2()),
            lambda r: r.monitor.sensor.fouling_b.thermal_resistance_k_per_w(
                r.monitor.sensor.wetted_area_m2()))
        bub = cfg.bubble_config
        self._bub_nucleation = bub.nucleation_superheat_k
        self._bub_growth = bub.growth_rate_per_k_s
        self._bub_base_detach = bub.base_detach_per_s
        self._bub_shear_detach = bub.shear_detach_per_mps_s
        self._bub_idle_detach = bub.idle_detach_per_s
        self._bub_vapor_frac = bub.vapor_conductance_fraction
        self._bub_noise_frac = bub.noise_fraction
        # Gate threshold: ``active = (s > 1) & (s > nucleation)`` is
        # elementwise ``s > max(1, nucleation)``, so one comparison
        # against this decides whether the bubble section can have any
        # effect at all (given zero coverage).
        self._bub_thresh = max(1.0, self._bub_nucleation)
        self._sqrt_dtc = math.sqrt(min(1.0, 0.01 / dt))
        self._cov = per_bridge(lambda r: r.monitor.sensor.bubbles_a._coverage,
                               lambda r: r.monitor.sensor.bubbles_b._coverage)
        self._bubble_rngs = [[r.monitor.sensor.bubbles_a._rng for r in rigs],
                             [r.monitor.sensor.bubbles_b._rng for r in rigs]]
        # Backside OU (flooded cavity only; organic fill never draws).
        bs0 = sen0._backside_noise
        self._bs_sigma = bs0.sigma
        self._bs_rho = math.exp(-dt / bs0.tau_s)
        self._bs_scale = bs0.sigma * math.sqrt(1.0 - self._bs_rho * self._bs_rho)
        self._x_bs = per_rig(lambda r: float(r.monitor.sensor._backside_noise._x))
        self._bs_rngs = [r.monitor.sensor._backside_noise._rng for r in rigs]

        # Acquisition chain (channels 0/1 = bridges A/B).
        ch0 = mon0.platform.channels[0]
        afe_cfg = ch0.config.afe
        self._gain = afe_cfg.gain
        self._rail = afe_cfg.rail_v
        self._residual_offset = afe_cfg.offset_v - afe_cfg.offset_trim_v
        self._alpha_bw = 1.0 - math.exp(-2.0 * math.pi * afe_cfg.bandwidth_hz * dt)
        nyquist = 0.5 / dt
        self._white_rms = afe_cfg.noise_density_v_per_rthz * math.sqrt(nyquist)
        self._afe_leak = math.exp(
            -2.0 * math.pi * afe_cfg.flicker_corner_hz * dt * 0.1)
        flicker_rms = afe_cfg.noise_density_v_per_rthz * math.sqrt(
            max(math.log(max(afe_cfg.flicker_corner_hz, 1e-3) / 1e-3), 0.0))
        self._flicker_scale = flicker_rms * math.sqrt(
            max(1.0 - self._afe_leak * self._afe_leak, 0.0))
        self._afe_state = per_bridge(
            lambda r: r.monitor.platform.channels[0].afe._state_v,
            lambda r: r.monitor.platform.channels[1].afe._state_v)
        self._flick = per_bridge(
            lambda r: r.monitor.platform.channels[0].afe._flicker_v,
            lambda r: r.monitor.platform.channels[1].afe._flicker_v)
        self._afe_rngs = [[r.monitor.platform.channels[0].afe._rng for r in rigs],
                          [r.monitor.platform.channels[1].afe._rng for r in rigs]]
        self._aa_coeffs = list(ch0.anti_alias._coeffs)
        self._aa_state = [
            [per_bridge(
                lambda r, s=si, j=sj: r.monitor.platform.channels[0]
                .anti_alias._state[s][j],
                lambda r, s=si, j=sj: r.monitor.platform.channels[1]
                .anti_alias._state[s][j])
             for sj in (0, 1)]
            for si in range(len(self._aa_coeffs))]
        adc0 = ch0.adc
        self._adc_thermal = adc0._thermal_rms_v
        self._adc_lsb = adc0._lsb_v
        self._adc_min = adc0._min_code
        self._adc_max = adc0._max_code
        self._adc_rngs = [[r.monitor.platform.channels[0].adc._rng for r in rigs],
                          [r.monitor.platform.channels[1].adc._rng for r in rigs]]
        self._alpha_lpf = ch0.digital_lpf.alpha
        self._y_lpf = per_bridge(
            lambda r: r.monitor.platform.channels[0].digital_lpf._y_f,
            lambda r: r.monitor.platform.channels[1].digital_lpf._y_f)

        # PI controllers (fixed-point codes or float, per shared PIConfig).
        pi0 = mon0.controller.pi_a
        pic = pi0.config
        self._qformat = pic.qformat
        if self._qformat is not None:
            q = self._qformat
            self._q_scale = q.scale
            self._q_min_int = q.min_int
            self._q_max_int = q.max_int
            self._q_half = 1 << (q.frac_bits - 1)
            self._q_shift = q.frac_bits
            self._kp_code = pi0._kp_code
            self._ki_dt_code = pi0._ki_dt_code
            self._pi_min_code = pi0._min_code
            self._pi_max_code = pi0._max_code
            for rig in rigs:
                for pi in (rig.monitor.controller.pi_a,
                           rig.monitor.controller.pi_b):
                    _require((pi._kp_code, pi._ki_dt_code, pi._min_code,
                              pi._max_code)
                             == (self._kp_code, self._ki_dt_code,
                                 self._pi_min_code, self._pi_max_code),
                             "fleet PI code tables must agree")
            self._pi_int = per_bridge(
                lambda r: r.monitor.controller.pi_a._int_code,
                lambda r: r.monitor.controller.pi_b._int_code).astype(np.int64)
        else:
            self._pi_kp = pic.kp
            self._pi_ki = pic.ki
            self._pi_dt = pic.dt_s
            self._pi_out_min = pic.out_min
            self._pi_out_max = pic.out_max
            self._pi_int_f = per_bridge(
                lambda r: r.monitor.controller.pi_a._integral,
                lambda r: r.monitor.controller.pi_b._integral)
        self._pi_sat = per_bridge(
            lambda r: r.monitor.controller.pi_a._saturated_sign,
            lambda r: r.monitor.controller.pi_b._saturated_sign).astype(np.int64)
        self._u = per_bridge(lambda r: r.monitor.controller._u_a,
                             lambda r: r.monitor.controller._u_b)

        # Estimator: King's-law inversion + output IIR + direction logic.
        est0 = mon0.estimator
        nominal = sen0.reference.nominal_ohm
        # Firmware quirk preserved: balance power uses bridge A's trim and
        # the *nominal* reference resistance for both supplies.
        self._rh_star = np.array([
            (self._r_series * nominal) / rt for rt in self._r_trim[0].tolist()])
        self._bp_denom = (self._r_series + self._rh_star) ** 2
        self._overtemp = mon0.controller.config.overtemperature_k
        self._coeff_a = per_rig(lambda r: r.monitor.estimator.calibration.law.coeff_a)
        self._coeff_b = per_rig(lambda r: r.monitor.estimator.calibration.law.coeff_b)
        self._inv_exp = per_rig(
            lambda r: 1.0 / r.monitor.estimator.calibration.law.exponent)
        self._alpha_iir = est0._iir.alpha
        self._y_iir = per_rig(lambda r: r.monitor.estimator._iir._y_f)
        self._primed = est0._primed
        self._last_output = per_rig(lambda r: float(r.monitor.estimator._last_output))
        self._use_direction = est0.config.use_direction
        self._dir_offset = per_rig(
            lambda r: r.monitor.estimator.direction.config.offset)
        self._dir_threshold = est0.direction.config.threshold
        self._dir_hysteresis = est0.direction.config.hysteresis
        self._alpha_dir = est0.direction._filter.alpha
        self._y_dir = per_rig(lambda r: r.monitor.estimator.direction._filter._y_f)
        self._dir = per_rig(
            lambda r: r.monitor.estimator.direction._direction).astype(np.int64)

        # Promag 50 reference meters.
        ref0 = rigs[0].reference
        self._pm_alpha = 1.0 - np.exp(-dt / ref0.response_time_s)
        self._pm_noise = ref0.resolution_fraction_fs * ref0.full_scale_mps
        self._pm_gain = per_rig(lambda r: r.reference._gain)
        self._pm_state = per_rig(lambda r: r.reference._state)
        self._pm_rngs = [r.reference._rng for r in rigs]

    # -- per-step kernels ----------------------------------------------------

    def _film_conductance(self, v_eff: np.ndarray, film_t: np.ndarray) -> np.ndarray:
        """Clean-film conductance (2, N) via the film kernel.

        Delegates to :func:`repro.runtime.kernels.film_conductance`,
        which vectorizes the polynomial correlations and keeps the
        transcendentals on libm in exact mode (bit-identical to the old
        per-element loop over ``film_properties_scalar``).
        """
        return film_conductance(v_eff, film_t, self._geom_d, self._geom_L,
                                fast=self._fast)

    def _qmul(self, code: int, arr: np.ndarray) -> np.ndarray:
        """Vector Q-format saturating multiply (round-half-up shift)."""
        product = code * arr
        rounded = (product + self._q_half) >> self._q_shift
        return np.minimum(np.maximum(rounded, self._q_min_int),
                          self._q_max_int)

    # -- main loop -----------------------------------------------------------

    @property
    def offset(self) -> int:
        """Samples already advanced (the absolute step of the next tick).

        Starts at 0 and grows with every :meth:`run` / :meth:`advance`
        call; profile setpoints and the ``record_every_n`` decimation
        phase are both evaluated at this absolute step index, so a run
        split across several :meth:`advance` calls lands on the same
        recorded ticks as one uninterrupted :meth:`run`.
        """
        return self._offset

    def run(self, profile: Profile, record_every_n: int = 20) -> RunResult:
        """Execute a profile over the whole fleet; decimated traces out.

        Mirrors :meth:`repro.station.rig.TestRig.run` sample for sample;
        with identical seeds the returned traces are bit-identical to N
        scalar rig runs.

        Raises
        ------
        ConfigurationError
            On an empty profile or non-positive decimation.
        SensorFault
            On membrane burst or housing overpressure (any monitor —
            the fleet shares the line, so all see the event together).
        """
        dt = self._dt
        steps = int(round(profile.duration_s / dt))
        if steps < 1:
            raise ConfigurationError("profile shorter than one loop tick")
        return self.advance(profile, steps, record_every_n)

    def advance(self, profile: Profile, steps: int,
                record_every_n: int = 20) -> RunResult:
        """Advance ``steps`` samples from the current :attr:`offset`.

        The incremental form of :meth:`run`: repeated calls walk the
        same profile clock forward, and because every engine recurrence
        carries its state per step (plant, OU trajectories, RNG
        streams, drive phase), a run sliced into arbitrary ``advance``
        windows is *bit-identical* to one uninterrupted :meth:`run` of
        the total horizon — this is the contract the streaming fleet
        service (:mod:`repro.service`) builds on.  The returned
        :class:`RunResult` holds only the window's recorded ticks
        (possibly zero of them when ``steps`` is shorter than the
        decimation stride); stitch windows with
        :meth:`RunResult.concat_time`.

        Raises
        ------
        ConfigurationError
            On a non-positive step count or decimation, or if every
            rig has been :meth:`drop`-ped.
        SensorFault
            On membrane burst or housing overpressure.
        """
        if record_every_n < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        if steps < 1:
            raise ConfigurationError("advance needs at least one step")
        if self._n < 1:
            raise ConfigurationError("every rig was dropped from the engine")
        registry = get_registry()
        if registry.enabled:
            start = time.perf_counter()
            with get_tracer().span("batch.run", n_monitors=self._n,
                                   steps=steps):
                result = self._run(profile, steps, record_every_n)
            registry.histogram("runtime.advance.wall_s").observe(
                time.perf_counter() - start)
            registry.counter("runtime.advance.windows").inc()
            return result
        with get_tracer().span("batch.run", n_monitors=self._n, steps=steps):
            return self._run(profile, steps, record_every_n)

    def drop(self, indices: list[int]) -> None:
        """Remove monitors from the fleet between advances.

        All per-monitor state (thermal, filters, PI, RNG streams,
        calibration constants) is sliced down to the survivors, whose
        positions shift left to fill the gaps.  Because every
        cross-monitor interaction in the engine is either elementwise
        or a branch whose both arms are elementwise-identical, and each
        monitor draws from its own generators, the survivors' traces
        stay *bit-identical* to a fleet that never contained the
        dropped rigs — this is what lets the streaming service detach
        one client without perturbing the rest.  The shared drive phase
        and line plant stay on the engine even if rig 0 leaves (they
        are engine-global clocks, not per-rig state).

        Raises
        ------
        ConfigurationError
            On an out-of-range or duplicated index.
        """
        drop_set = set()
        for j in indices:
            j = int(j)
            if not 0 <= j < self._n:
                raise ConfigurationError(
                    f"drop index {j} out of range for fleet of {self._n}")
            if j in drop_set:
                raise ConfigurationError(f"drop index {j} given twice")
            drop_set.add(j)
        if not drop_set:
            return
        keep = [j for j in range(self._n) if j not in drop_set]

        for name in ("_turb_intensity", "_x_ou", "_t_mem", "_t_ref",
                     "_ref_r0", "_leak", "_leak_mask", "_g_lat",
                     "_g_back_half", "_heater_cap", "_g_rim_total",
                     "_rho_m", "_x_bs", "_rh_star", "_bp_denom",
                     "_coeff_a", "_coeff_b", "_inv_exp", "_y_iir",
                     "_last_output", "_dir_offset", "_y_dir", "_dir",
                     "_pm_gain", "_pm_state",
                     "_t_h", "_h_r0", "_r_trim", "_r_foul", "_cov",
                     "_afe_state", "_flick", "_y_lpf", "_pi_sat", "_u"):
            setattr(self, name, getattr(self, name)[..., keep])
        if self._qformat is not None:
            self._pi_int = self._pi_int[..., keep]
        else:
            self._pi_int_f = self._pi_int_f[..., keep]
        self._aa_state = [[st[..., keep] for st in stage]
                          for stage in self._aa_state]
        self._lev_a = self._lev_a[keep]
        self._lev_b = self._lev_b[keep]
        for name in ("_line_rngs", "_bs_rngs", "_pm_rngs"):
            row = getattr(self, name)
            setattr(self, name, [row[j] for j in keep])
        for name in ("_bubble_rngs", "_afe_rngs", "_adc_rngs"):
            rows = getattr(self, name)
            setattr(self, name, [[row[j] for j in keep] for row in rows])

        self._rigs = [self._rigs[j] for j in keep]
        self._n = len(keep)
        self._iota = np.arange(self._n)
        self._ua_off = np.stack([self._lev_a[:, 0], self._lev_b[:, 0]])
        self._leak_zero = bool(self._leak_mask.all())
        self._min_rating = min(
            (r.monitor.sensor.housing.pressure_rating_pa
             for r in self._rigs), default=math.inf)

    def _run(self, profile: Profile, steps: int,
             record_every_n: int) -> RunResult:
        """The instrumented main loop behind :meth:`run`.

        Each chunk is advanced in three phases: :func:`plan_chunk`
        precomputes the time axis (setpoints, shared-line plant, drive
        schedule, OU coefficients), the time-blocked kernels run every
        feed-forward trajectory (line OU, AFE flicker, backside OU,
        Promag lag) and per-sample noise array for the whole chunk, and
        only the genuinely recurrent chain (reference/heater/membrane
        thermals, AFE state, filters, PI, estimator) stays in the
        per-sample loop.
        """
        dt = self._dt
        n = self._n
        fast = self._fast
        # Per-chunk instrumentation: one branch when disabled, one
        # perf_counter pair + histogram/counter update per chunk (never
        # per sample) when enabled.
        registry = get_registry()
        tracer = get_tracer()
        observing = registry.enabled
        if observing:
            registry.gauge("runtime.batch.fleet_size").set(n)
            registry.gauge("runtime.kernel.fast").set(1.0 if fast else 0.0)
            chunk_hist = registry.histogram(
                "runtime.batch.chunk_s", "per-chunk advance latency")
            plan_hist = registry.histogram(
                "runtime.kernel.plan_s",
                "per-chunk planning + trajectory-kernel latency")
            loop_hist = registry.histogram(
                "runtime.kernel.loop_s",
                "per-chunk recurrent-loop latency")
            planned_counter = registry.counter(
                "runtime.kernel.planned_samples",
                "samples whose time axis was precomputed")
            samples_counter = registry.counter(
                "runtime.batch.samples", "monitor-samples advanced")
            chunks_counter = registry.counter("runtime.batch.chunks")
            run_start = time.perf_counter()
        # Per-stage profiling (kernel.plan / kernel.ar1_block /
        # kernel.film / kernel.chunk_loop): strictly opt-in — one bool
        # check per hook while disabled — because the film hook sits in
        # the per-sample loop and a live profiler costs two clock reads
        # per sample.
        profiler = get_profiler()
        profiling = profiler.enabled
        if profiling:
            perf_counter, process_time = time.perf_counter, time.process_time
            run_stages: dict[str, dict] = {}

            def note(stage: str, wall: float, cpu: float,
                     calls: int = 1) -> None:
                # Feed the process profiler and the run-local report the
                # result carries (RunResult.profile()).
                profiler.add(stage, wall, cpu, calls)
                totals = run_stages.setdefault(
                    stage, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0})
                totals["calls"] += calls
                totals["wall_s"] += wall
                totals["cpu_s"] += cpu
        t_buf: list[float] = []
        v_true: list[np.ndarray] = []
        v_ref: list[np.ndarray] = []
        v_meas: list[np.ndarray] = []
        direction: list[np.ndarray] = []
        pressure: list[np.ndarray] = []
        temperature: list[np.ndarray] = []
        coverage: list[np.ndarray] = []

        # Read-only constants hoisted out of the hot loop.  Scalar
        # constants that feed ufuncs become 0-d arrays: a 0-d operand
        # skips the per-call Python-float boxing (~0.2 us per dispatch
        # at fleet size) and the ufunc sees the identical float64
        # value, so results stay bitwise.  Values consumed by Python
        # branches (guards, flags) stay native scalars.
        as0 = np.asarray
        lev_a, lev_b, iota = self._lev_a, self._lev_b, self._iota
        dac_lsb, dac_max = as0(self._dac_lsb), as0(self._dac_max_code)
        burst_p, min_rating = self._burst_pressure, self._min_rating
        ref_r0, tcr_ref = as0(self._ref_r0), as0(self._tcr_ref)
        tref_ref = as0(self._tref_ref)
        r_trim, r_series = self._r_trim, as0(self._r_series)
        alpha_ref = as0(self._alpha_ref)
        h_r0, tcr_h = as0(self._h_r0), as0(self._tcr_h)
        tref_h = as0(self._tref_h)
        g_lat, rho_m = as0(self._g_lat), as0(self._rho_m)
        g_rim, lat_total = as0(self._g_rim_total), self._lat_total
        heater_cap = as0(self._heater_cap)
        ndt = as0(-dt)
        leak, leak_mask = self._leak, self._leak_mask
        leak_zero = self._leak_zero
        gain = as0(self._gain)
        residual_offset = as0(self._residual_offset)
        alpha_bw, rail = as0(self._alpha_bw), as0(self._rail)
        neg_rail = as0(-self._rail)
        aa_coeffs, aa_state = self._aa_coeffs, self._aa_state
        adc_lsb = as0(self._adc_lsb)
        adc_min, adc_max = as0(self._adc_min), as0(self._adc_max)
        alpha_lpf = as0(self._alpha_lpf)
        geom_d, geom_L = as0(self._geom_d), as0(self._geom_L)
        enable_fouling, r_foul = self._enable_fouling, as0(self._r_foul)
        enable_bubbles = self._enable_bubbles
        bub_thresh = as0(self._bub_thresh)
        bs_on = self._bs_sigma > 0.0
        ua_off = self._ua_off
        # Shared literal constants of the loop body, pre-boxed once.
        f_zero, f_one, f_half = as0(0.0), as0(1.0), as0(0.5)
        f_thirty, g_floor = as0(30.0), as0(1e-6)
        i_zero, i_one, i_neg = as0(0), as0(1), as0(-1)
        # Off-duty ticks with an exactly-zero DAC column drive no power
        # anywhere: every ``ua``-proportional term collapses to +0.0,
        # which is absorbed bitwise by the finite positive terms it is
        # added to.  ``off_zero`` gates the algebraic shortcuts below.
        off_zero = not ua_off.any()
        # ``(diff + residual_offset) * gain`` with diff == +0.0, kept in
        # the original association so -0.0 offsets flush to +0.0 exactly
        # as the live expression does.
        ro_gain = (0.0 + self._residual_offset) * self._gain
        pi_quant = self._qformat is not None
        if pi_quant:
            q_scale = as0(self._q_scale)
            q_min_int, q_max_int = as0(self._q_min_int), as0(self._q_max_int)
            kp_code, ki_dt_code = self._kp_code, self._ki_dt_code
            pi_min_code = as0(self._pi_min_code)
            pi_max_code = as0(self._pi_max_code)
            qmul = self._qmul
        else:
            pi_kp, pi_ki = as0(self._pi_kp), as0(self._pi_ki)
            pi_dt = as0(self._pi_dt)
            pi_out_min = as0(self._pi_out_min)
            pi_out_max = as0(self._pi_out_max)
        rh_star, bp_denom = self._rh_star, self._bp_denom
        overtemp = as0(self._overtemp)
        coeff_a, coeff_b, inv_exp = self._coeff_a, self._coeff_b, self._inv_exp
        alpha_iir = as0(self._alpha_iir)
        use_direction = self._use_direction
        dir_offset, alpha_dir = self._dir_offset, as0(self._alpha_dir)
        # The hysteresis thresholds of the direction comparator, in all
        # four signed forms the loop compares against (same additions
        # and exact negations as the inline expressions).
        dir_thr = as0(self._dir_threshold)
        neg_thr = as0(-self._dir_threshold)
        thr_hi = as0(self._dir_threshold + self._dir_hysteresis)
        neg_thr_hi = as0(-(self._dir_threshold + self._dir_hysteresis))
        pm_noise = self._pm_noise
        # Single anti-alias stage is the common configuration; unpack it
        # once so the hot loop skips the zip machinery.
        single_stage = len(aa_coeffs) == 1
        if single_stage:
            aab0, aab1, aab2, _aa0, aaa1, aaa2 = (
                as0(v) for v in aa_coeffs[0])
            aast = aa_state[0]
        # Hot-loop callables bound to locals (skips the global/attr
        # lookups per dispatch); the numerics mode picks the
        # transcendental kernels once instead of branching per step.
        np_min, np_max, np_where = np.minimum, np.maximum, np.where
        np_add, np_abs, np_sign = np.add, np.abs, np.sign
        np_trunc, np_copysign = np.trunc, np.copysign
        np_floor, np_int64 = np.floor, np.int64
        vexp = np.exp if fast else exp_exact
        vpow = np.power if fast else pow_exact
        film = film_conductance

        # Recurrent state mirrored into locals for the loop and written
        # back after the chunk loop.  The fault paths (guard raises)
        # leave the attribute mirrors stale, which is safe: a raised run
        # spends the engine, so they are never re-read.
        u = self._u
        t_ref, t_h, t_mem = self._t_ref, self._t_h, self._t_mem
        cov = self._cov
        afe_state, y_lpf = self._afe_state, self._y_lpf
        pi_sat = self._pi_sat
        if pi_quant:
            pi_int = self._pi_int
        else:
            pi_int_f = self._pi_int_f
        y_iir, primed = self._y_iir, self._primed
        y_dir, dir_state = self._y_dir, self._dir
        last_output = self._last_output

        # Scratch buffers reused every step: each is fully overwritten
        # before use and never stored across steps.  ``t_f0`` is the
        # 0-d box for the per-step fluid temperature — refilled each
        # tick, read by several ufuncs, never aliased into results.
        ua_buf = np.empty((2, n))
        t_in_buf = np.empty((2, n))
        t_f0 = np.empty(())

        # Operating-point resistances carried across steps: step k's
        # post-step values are bitwise step k+1's pre-step values (same
        # formula, same state), so each is computed once, not twice.
        rt = ref_r0 * (1.0 + tcr_ref * (t_ref - tref_ref))
        rh = h_r0 * (1.0 + tcr_h * (t_h - tref_h))
        rh_eff = rh if leak_zero else np.where(
            leak_mask, rh, 1.0 / (1.0 / rh + leak))
        if not bs_on:
            g_back = self._g_back_half * 1.0
        cov_nonzero = bool((cov > 0.0).any())

        # Steps are absolute indices on the engine clock: the profile
        # setpoints, the drive phase and the decimation condition all
        # see ``start + k``, so an advance window resumes exactly where
        # the previous one stopped.
        start0 = self._offset
        end = start0 + steps
        for start in range(start0, end, self._chunk):
            c = min(self._chunk, end - start)
            if observing:
                chunk_start = time.perf_counter()
            with tracer.span("kernel.plan", samples=c, fast=fast):
                if profiling:
                    prof_w, prof_c = perf_counter(), process_time()
                # Time axis: setpoints, shared plant, drive schedule, OU
                # coefficients — everything loop-invariant per step.
                plan = plan_chunk(
                    profile, self._drive, dt, start, c,
                    speed=float(self._bulk_speed),
                    pressure=float(self._bulk_pressure),
                    temperature=float(self._bulk_temp),
                    time_s=float(self._line_time),
                    a_speed=float(self._a_speed),
                    a_press=float(self._a_press),
                    a_temp=float(self._a_temp),
                    turb_length=self._turb_length,
                    turb_min_speed=self._turb_min_speed,
                    fast=fast)
                if profiling:
                    now_w, now_c = perf_counter(), process_time()
                    note("kernel.plan", now_w - prof_w, now_c - prof_c)
                bulk_v = plan.bulk_speed

                # Pre-draw this chunk's gaussian blocks from the live
                # streams (identical consumption in both numerics modes).
                xi_line = np.stack(
                    [rng.standard_normal(c) for rng in self._line_rngs])
                if bs_on:
                    xi_bs = np.stack(
                        [rng.standard_normal(c) for rng in self._bs_rngs])
                afe_blocks = [
                    np.stack([rng.standard_normal(2 * c) for rng in row])
                    for row in self._afe_rngs]
                xi_flick = np.stack([blk[:, 0::2] for blk in afe_blocks])
                xi_white = np.stack([blk[:, 1::2] for blk in afe_blocks])
                xi_adc = np.stack(
                    [np.stack([rng.standard_normal(c) for rng in row])
                     for row in self._adc_rngs])
                xi_pm = np.stack(
                    [rng.standard_normal(c) for rng in self._pm_rngs])

                # Time-blocked trajectory kernels: every feed-forward
                # stochastic process runs for the whole chunk at once.
                # The profiling stage covers the whole region (AR(1)
                # recurrences, relaxation kernel, and their elementwise
                # input prep) under the name "kernel.ar1_block".
                if profiling:
                    prof_w, prof_c = perf_counter(), process_time()
                sigma_ou = (self._turb_intensity * plan.v_mag[:, None]
                            + self._turb_floor)
                x_ou_traj, self._x_ou = ar1_block(
                    self._x_ou, plan.rho_ou,
                    (sigma_ou * plan.ou_sqrt[:, None]) * xi_line.T)
                v_local_all = bulk_v[:, None] + x_ou_traj
                absv_all = np.abs(v_local_all)
                x_wake = absv_all / self._wake_peak_speed
                coupling_all = self._wake2 * x_wake / (1.0 + x_wake * x_wake)
                fwd_all = v_local_all >= 0.0
                # One reduction per chunk buys a branch-free inlet-
                # temperature path for fully-forward chunks (the common
                # case away from zero crossings).
                fwd_chunk = bool(fwd_all.all())
                v_eff_all = np.maximum(absv_all, NATURAL_CONVECTION_FLOOR)
                if enable_bubbles:
                    detach_all = (self._bub_base_detach
                                  + self._bub_shear_detach * absv_all)
                flick_traj, self._flick = ar1_block(
                    self._flick, self._afe_leak,
                    self._flicker_scale * np.moveaxis(xi_flick, 2, 0))
                noise_gain_all = (self._white_rms * np.moveaxis(xi_white, 2, 0)
                                  + flick_traj) * gain
                if bs_on:
                    bs_traj, self._x_bs = ar1_block(
                        self._x_bs, self._bs_rho, self._bs_scale * xi_bs.T)
                    g_back_all = self._g_back_half * np.maximum(
                        1.0 + bs_traj, 0.1)
                adc_noise_all = self._adc_thermal * np.moveaxis(xi_adc, 2, 0)
                pm_traj, self._pm_state = relax_block(
                    self._pm_state, self._pm_alpha,
                    bulk_v[:, None] * self._pm_gain)
                if not bs_on:
                    # With a constant backside conductance the
                    # ``g_back * t_fluid`` term of the heater ambient is
                    # a per-chunk outer product (same elementwise mul).
                    gbtf_all = np.array(plan.bulk_temp)[:, None] * g_back
                if profiling:
                    now_w, now_c = perf_counter(), process_time()
                    note("kernel.ar1_block", now_w - prof_w, now_c - prof_c)
            if observing:
                plan_end = time.perf_counter()
                plan_hist.observe(plan_end - chunk_start)
                planned_counter.inc(c)

            energise = plan.energise
            control_active = plan.control_active
            sample_valid = plan.sample_valid
            bulk_p = plan.bulk_pressure
            bulk_t = plan.bulk_temp
            line_t = plan.line_time

            if profiling:
                loop_w, loop_c = perf_counter(), process_time()
                film_w = film_c = 0.0
                film_n = 0
            for k in range(c):
                i = start + k
                p_line = bulk_p[k]
                t_fluid = bulk_t[k]
                t_f0[()] = t_fluid

                # Supply DACs: quantize + mismatch table — but only when
                # the drive energises the bridges; on off ticks every
                # command quantizes to code 0 and the pair is the
                # precomputed column-0 levels.
                on = energise[k]
                live = on or not off_zero
                if on:
                    # floor-then-clamp equals clamp-then-int-truncate
                    # for this non-negative, integral-bounds clamp, so
                    # the explicit floor dispatch is dropped.
                    codes = np_min(
                        np_max(u / dac_lsb + f_half, f_zero),
                        dac_max).astype(np_int64)
                    ua = ua_buf
                    ua[0] = lev_a[iota, codes[0]]
                    ua[1] = lev_b[iota, codes[1]]
                else:
                    ua = ua_off

                # Sensor guards (shared line pressure).
                if p_line > burst_p:
                    raise SensorFault(
                        f"membrane burst at {float(p_line) / 1e5:.2f} bar "
                        f"(rating {burst_p / 1e5:.2f} bar)")
                if p_line < 0.0:
                    raise ConfigurationError("pressure must be non-negative")
                if p_line > min_rating:
                    raise SensorFault(
                        f"housing rated {min_rating / 1e5:.1f} bar "
                        f"failed at {float(p_line) / 1e5:.1f} bar")

                # Reference resistor: lagged tracking + self-heating
                # bias (``rt`` carries the pre-step resistance).  The
                # two bridge branches are computed rows-joint — the
                # elementwise values, and the a-then-b order of the
                # power sum, match the per-row form exactly.  With a
                # zero supply the reference power is exactly +0.0 and
                # the target collapses to the fluid temperature.
                if live:
                    i_r = ua / (r_trim + rt)
                    p_r = i_r * i_r * rt
                    p_ref = p_r[0] + p_r[1]
                    t_ref_target = t_f0 + f_thirty * p_ref
                    t_ref = t_ref + alpha_ref * (t_ref_target - t_ref)
                else:
                    t_ref = t_ref + alpha_ref * (t_f0 - t_ref)
                rt = ref_r0 * (f_one + tcr_ref * (t_ref - tref_ref))

                # Wake coupling → inlet temperatures (old heater temps).
                # ``warm`` is the rows-joint form of the per-row
                # coupling * max(t_h - t_fluid, 0) products (elementwise
                # identical); when the whole chunk flows forward the
                # wheres collapse to a fill and a single add.
                coupling = coupling_all[k]
                dth = t_h - t_f0
                t_in = t_in_buf
                if fwd_chunk:
                    # Only the upstream wake row is consumed; the add
                    # lands straight in the buffer row (same ufunc).
                    t_in[0] = t_fluid
                    np_add(t_f0,
                           coupling * np_max(dth[0], f_zero),
                           out=t_in[1])
                else:
                    warm = coupling * np_max(dth, f_zero)
                    fwd = fwd_all[k]
                    t_in[0] = np_where(fwd, t_fluid, t_fluid + warm[1])
                    t_in[1] = np_where(fwd, t_fluid + warm[0], t_fluid)

                # Clean film conductance at the film temperature.
                film_t = f_half * (t_h + t_f0)
                if profiling:
                    film_t0w, film_t0c = perf_counter(), process_time()
                g = film(v_eff_all[k], film_t,
                         geom_d, geom_L, fast=fast)
                if profiling:
                    film_w += perf_counter() - film_t0w
                    film_c += process_time() - film_t0c
                    film_n += 1

                # Fouling: deposit resistance in series with the film.
                if enable_fouling:
                    g = f_one / (f_one / g + r_foul)

                # Bubbles: coverage dynamics + multiplicative churn noise.
                # With zero coverage and no element past the nucleation
                # gate the whole section is the identity (growth and dc
                # are exactly 0.0, factor and noise exactly 1.0, and
                # ``g * 1.0`` is bitwise ``g``), so it is skipped; the
                # gate comparison reproduces ``active.any()`` exactly
                # because ``(s > 1) & (s > nuc)`` is ``s > max(1, nuc)``
                # elementwise.  No RNG draw is skipped: churn noise only
                # draws where coverage is already positive.
                if enable_bubbles and (
                        cov_nonzero or (dth > bub_thresh).any()):
                    superheat = dth
                    powered = superheat > 1.0
                    active = powered & (superheat > self._bub_nucleation)
                    growth = np.where(
                        active,
                        self._bub_growth * (superheat - self._bub_nucleation),
                        0.0)
                    if active.any():
                        p_abs = p_line + 101_325.0
                        t_boil = float(boiling_temperature(
                            max(float(p_abs), 5_000.0)))
                        growth = growth + np.where(
                            active & (t_h >= t_boil),
                            10.0 * self._bub_growth * (t_h - t_boil + 1.0),
                            0.0)
                    detach = np.where(powered, detach_all[k],
                                      detach_all[k] + self._bub_idle_detach)
                    dc = growth * (1.0 - cov) - detach * cov
                    cov = np.minimum(
                        np.maximum(cov + dc * dt, 0.0), 0.999)
                    factor = 1.0 - cov * (1.0 - self._bub_vapor_frac)
                    noise = np.ones((2, n))
                    if np.any(cov > 0.0):
                        for h in (0, 1):
                            row = cov[h]
                            for m in range(n):
                                cvg = float(row[m])
                                if cvg > 0.0:
                                    sig = self._bub_noise_frac * cvg
                                    noise[h, m] = 1.0 + sig * float(
                                        self._bubble_rngs[h][m].normal()
                                    ) * self._sqrt_dtc
                    g = g * (factor * noise)
                    cov_nonzero = bool((cov > 0.0).any())
                g = np_max(g, g_floor)

                # Backside conductance fluctuation (flooded cavity only;
                # the OU trajectory is precomputed per chunk).
                if bs_on:
                    g_back = g_back_all[k]
                    gbtf = g_back * t_fluid
                else:
                    gbtf = gbtf_all[k]

                # Heater powers at the pre-step operating point (``rh``
                # and ``rh_eff`` carry the pre-step resistances).  A
                # zero supply dissipates exactly +0.0, which the finite
                # positive conduction terms absorb bitwise.
                rh_old = rh
                g_total = g + g_lat + g_back
                if live:
                    branch_i = ua / (r_series + rh_eff)
                    if leak_zero:
                        i_h = branch_i
                    else:
                        i_h = np_where(leak_mask, branch_i,
                                       branch_i * rh_eff / rh_old)
                    p_h = i_h * i_h * rh_old
                    t_inf = (p_h + g * t_in + g_lat * t_mem
                             + gbtf) / g_total
                else:
                    t_inf = (g * t_in + g_lat * t_mem + gbtf) / g_total
                arg = ndt * g_total / heater_cap
                rho_h = vexp(arg)
                t_h = t_inf + (t_h - t_inf) * rho_h

                # Membrane rim update (new heater temps).
                t_rim_inf = (g_lat * (t_h[0] + t_h[1])
                             + lat_total * t_fluid) / g_rim
                t_mem = t_rim_inf + (t_mem - t_rim_inf) * rho_m

                # Bridge readout at the post-step operating point.
                rh = h_r0 * (f_one + tcr_h * (t_h - tref_h))
                if leak_zero:
                    rh_eff = rh
                else:
                    rh_eff = np_where(leak_mask, rh,
                                      f_one / (f_one / rh + leak))
                # AFE: gain + offset, precomputed 1/f + white noise,
                # bandwidth, rails.  With a zero supply both bridge
                # mid-points read exactly +0.0, so the offset-and-gain
                # term is the precomputed ``ro_gain``.
                if live:
                    v_meas_mid = ua * rh_eff / (r_series + rh_eff)
                    v_ref_mid = ua * rt / (r_trim + rt)
                    diff = v_meas_mid - v_ref_mid
                    noisy = (diff + residual_offset) * gain \
                        + noise_gain_all[k]
                else:
                    noisy = ro_gain + noise_gain_all[k]
                afe_state = afe_state + alpha_bw * (noisy - afe_state)
                afe_state = np_min(np_max(afe_state, neg_rail), rail)

                # Anti-alias biquads (direct-form II transposed).
                y = afe_state
                if single_stage:
                    out = aab0 * y + aast[0]
                    aast[0] = aab1 * y - aaa1 * out + aast[1]
                    aast[1] = aab2 * y - aaa2 * out
                    y = out
                else:
                    for (b0, b1, b2, _a0, a1, a2), st in zip(
                            aa_coeffs, aa_state):
                        out = b0 * y + st[0]
                        st[0] = b1 * y - a1 * out + st[1]
                        st[1] = b2 * y - a2 * out
                        y = out

                # Behavioural ADC: thermal noise, round-to-nearest, clamp.
                noisy_adc = y + adc_noise_all[k]
                # copysign(0.5, x) equals where(x >= 0, 0.5, -0.5) up
                # to the sign of a zero input, and a ±0.0 code washes
                # out of the LPF identically, so the quantized output
                # is unchanged with one dispatch fewer.
                q_codes = np_min(np_max(
                    np_trunc(noisy_adc / adc_lsb
                             + np_copysign(f_half, noisy_adc)),
                    adc_min), adc_max)
                volts = q_codes * adc_lsb

                # Digital one-pole LPF, then input-referred error.
                y_lpf = y_lpf + alpha_lpf * (volts - y_lpf)
                err = -(y_lpf / gain)

                # PI control (gated by the drive scheme).
                if control_active[k]:
                    if pi_quant:
                        err_code = np_min(np_max(
                            np_floor(err * q_scale + f_half),
                            q_min_int), q_max_int).astype(np_int64)
                        err_sign = np_sign(err_code)
                        cond = (pi_sat == i_zero) | (err_sign != pi_sat)
                        inc = qmul(ki_dt_code, err_code)
                        int_new = np_where(
                            cond,
                            np_min(np_max(pi_int + inc, q_min_int),
                                   q_max_int),
                            pi_int)
                        p_term = qmul(kp_code, err_code)
                        raw = int_new + p_term
                        out_code = np_min(np_max(
                            raw, pi_min_code), pi_max_code)
                        pi_sat = np_where(
                            raw > pi_max_code, i_one,
                            np_where(raw < pi_min_code, i_neg, i_zero))
                        abs_p = np_abs(p_term)
                        pi_int = np_min(
                            np_max(int_new, pi_min_code - abs_p),
                            pi_max_code + abs_p)
                        u = out_code / q_scale
                    else:
                        cond = (pi_sat == i_zero) | (np_sign(err) != pi_sat)
                        pi_int_f = np_where(
                            cond,
                            pi_int_f + pi_ki * err * pi_dt,
                            pi_int_f)
                        raw = pi_kp * err + pi_int_f
                        u = np_min(np_max(
                            raw, pi_out_min), pi_out_max)
                        pi_sat = np_where(
                            raw > pi_out_max, i_one,
                            np_where(raw < pi_out_min, i_neg, i_zero))
                        pi_int_f = np_min(np_max(
                            pi_int_f,
                            pi_out_min - pi_kp * np_abs(err)),
                            pi_out_max + pi_kp * np_abs(err))

                # Flow estimator (valid samples only; otherwise hold).
                if sample_valid[k]:
                    bp_a = u[0] ** 2 * rh_star / bp_denom
                    bp_b = u[1] ** 2 * rh_star / bp_denom
                    g_cond = f_half * (bp_a + bp_b) / overtemp
                    excess = np_max(g_cond - coeff_a, f_zero)
                    base = excess / coeff_b
                    speed = vpow(base, inv_exp)
                    if not primed:
                        y_iir = speed.copy()
                        primed = True
                    y_iir = y_iir + alpha_iir * (speed - y_iir)
                    if use_direction:
                        pa = u[0] * u[0]
                        pb = u[1] * u[1]
                        total = pa + pb
                        tz = total <= f_zero
                        asym = np_where(
                            tz, f_zero,
                            (pa - pb) / np_where(tz, f_one, total))
                        x_dir = asym - dir_offset
                        y_dir = y_dir + alpha_dir * (x_dir - y_dir)
                        d = y_dir
                        dirs = dir_state
                        dir_state = np_where(
                            (dirs == i_zero) & (d > dir_thr), i_one,
                            np_where(
                                (dirs == i_zero) & (d < neg_thr), i_neg,
                                np_where(
                                    (dirs == i_one)
                                    & (d < neg_thr_hi), i_neg,
                                    np_where(
                                        (dirs == i_neg)
                                        & (d > thr_hi), i_one,
                                        dirs))))
                        sign = np_where(dir_state != i_zero,
                                        dir_state.astype(float), f_one)
                    else:
                        sign = 1.0
                    last_output = sign * y_iir

                if i % record_every_n == 0:
                    # The Promag 50 trajectory was precomputed by the
                    # relaxation kernel; the reading (state + resolution
                    # noise) only exists at recorded ticks.
                    t_buf.append(line_t[k])
                    v_true.append(np.full(n, float(bulk_v[k])))
                    v_ref.append(pm_traj[k] + pm_noise * xi_pm[:, k])
                    v_meas.append(last_output.copy())
                    direction.append(dir_state.copy())
                    pressure.append(np.full(n, float(p_line)))
                    temperature.append(np.full(n, float(t_fluid)))
                    coverage.append(np.maximum(cov[0], cov[1]))

            if profiling:
                now_w, now_c = perf_counter(), process_time()
                note("kernel.chunk_loop", now_w - loop_w, now_c - loop_c)
                if film_n:
                    # One accumulate per chunk: the per-sample timings
                    # were summed locally to keep the profiler dict
                    # lookups out of the hot loop.
                    note("kernel.film", film_w, film_c, calls=film_n)

            # Carry the shared-line plant into the next chunk's plan.
            self._bulk_speed = float(bulk_v[c - 1])
            self._bulk_pressure = bulk_p[c - 1]
            self._bulk_temp = bulk_t[c - 1]
            self._line_time = line_t[c - 1]

            if observing:
                now = time.perf_counter()
                loop_hist.observe(now - plan_end)
                chunk_hist.observe(now - chunk_start)
                samples_counter.inc(c * n)
                chunks_counter.inc()

        # Publish the local state mirrors back to the engine attributes.
        self._u = u
        self._t_ref, self._t_h, self._t_mem = t_ref, t_h, t_mem
        self._cov = cov
        self._afe_state, self._y_lpf = afe_state, y_lpf
        self._pi_sat = pi_sat
        if pi_quant:
            self._pi_int = pi_int
        else:
            self._pi_int_f = pi_int_f
        self._y_iir, self._primed = y_iir, primed
        self._y_dir, self._dir = y_dir, dir_state
        self._last_output = last_output

        if observing:
            elapsed = time.perf_counter() - run_start
            if elapsed > 0.0:
                registry.gauge("runtime.batch.samples_per_s").set(
                    steps * n / elapsed)

        for rig in self._rigs:
            rig.monitor.platform.scheduler.bulk_tick(steps)

        self._offset = end

        if t_buf:
            result = RunResult(
                time_s=np.array(t_buf),
                true_speed_mps=np.stack(v_true, axis=1),
                reference_mps=np.stack(v_ref, axis=1),
                measured_mps=np.stack(v_meas, axis=1),
                direction=np.stack(direction, axis=1),
                pressure_pa=np.stack(pressure, axis=1),
                temperature_k=np.stack(temperature, axis=1),
                bubble_coverage=np.stack(coverage, axis=1),
            )
        else:
            # A window shorter than the decimation stride can record
            # zero ticks; the state still advanced, so hand back an
            # empty-but-well-shaped result the caller can concat.
            empty = np.empty((n, 0))
            result = RunResult(
                time_s=np.empty(0),
                true_speed_mps=empty,
                reference_mps=empty.copy(),
                measured_mps=empty.copy(),
                direction=np.empty((n, 0), dtype=np.int64),
                pressure_pa=empty.copy(),
                temperature_k=empty.copy(),
                bubble_coverage=empty.copy(),
            )
        if profiling:
            result.attach_profile(run_stages)
        return result


def run_batch(rigs, profile: Profile,
              record_every_n: int = 20, chunk_size: int = 1024,
              workers: int | None = None,
              numerics: str = "exact",
              backend: str = "spawn") -> RunResult:
    """One-shot convenience: build the right engine and run it.

    ``rigs`` is either a rig list or a
    :class:`repro.runtime.FleetSpec` (materialized here, seeds and
    all).  A structurally heterogeneous fleet is routed through
    :class:`repro.runtime.mixed.MixedEngine` — per-config-group
    sub-batching, results interleaved back into caller order
    bit-identically; a homogeneous fleet takes the classic
    :class:`BatchEngine` path.  With ``workers > 1`` the fleet (or each
    config group) is partitioned across worker processes by
    :class:`repro.runtime.parallel.ShardedEngine`, whose merged result
    is bit-identical to the serial path; ``backend`` selects how those
    workers run (``"spawn"`` per-run processes, or ``"shm"`` — the
    persistent zero-copy pool of :mod:`repro.runtime.shm`).
    ``numerics`` selects the kernel mode (``"exact"`` — the default,
    bit-identical — or ``"fast"``) on whichever engine runs.

    The rigs are consumed (see the module docstring); build fresh rigs
    for repeat runs or use :class:`repro.runtime.Session`, which
    re-materializes monitors from cached calibrations.

    Raises
    ------
    ConfigurationError
        If a :class:`FleetSpec` carries scenarios (those belong to
        :func:`repro.station.run_campaign`), plus everything the
        engines refuse.
    """
    if not isinstance(rigs, list):
        # Duck-typed FleetSpec path (lazy import: spec.py imports parallel,
        # which imports this module).
        from repro.runtime.spec import FleetSpec
        if isinstance(rigs, FleetSpec):
            if rigs.has_scenarios:
                raise ConfigurationError(
                    "this FleetSpec carries scenarios; run it with "
                    "repro.station.run_campaign, which owns event "
                    "injection")
            rigs = rigs.materialize()
        else:
            rigs = list(rigs)
    from repro.runtime.mixed import MixedEngine, fleet_groups
    if len(rigs) > 1 and len(fleet_groups(rigs)) > 1:
        return MixedEngine(rigs, chunk_size=chunk_size,
                           numerics=numerics).run(
            profile, record_every_n=record_every_n, workers=workers,
            backend=backend)
    if workers is not None and workers != 1:
        # Imported lazily: parallel.py itself imports this module.
        from repro.runtime.parallel import ShardedEngine
        return ShardedEngine(rigs, workers=workers, chunk_size=chunk_size,
                             numerics=numerics, backend=backend).run(
            profile, record_every_n=record_every_n)
    return BatchEngine(rigs, chunk_size=chunk_size, numerics=numerics).run(
        profile, record_every_n=record_every_n)
