"""Chunk-vectorized batch engine: N monitors × K samples per call.

This is the fleet-scale hot path.  It advances N structurally identical
:class:`~repro.station.rig.TestRig` instances in lock-step with numpy
array math, replacing the per-sample Python loops of
``conditioning/cta.py`` / ``conditioning/monitor.py`` /
``station/rig.py`` while reproducing their arithmetic *bit for bit*:

- Elementary float64 operations (+, -, *, /, sqrt, clip) are IEEE-754
  identical between numpy arrays and Python scalars when the association
  order of the scalar code is mirrored, so every expression here copies
  the source association exactly.
- Transcendentals whose argument varies per step (the heater exponential
  update, the film-property correlations, King's-law inversion) are
  evaluated elementwise with ``math``/python-float arithmetic — numpy's
  SIMD ``exp``/``pow`` may differ from libm in the last ulp on arrays.
  Constants hoisted out of the loop reuse the original source expression
  (including whether it used ``math.exp`` or ``np.exp``).
- Random draws are pre-drawn per chunk from the *live* generators of the
  rigs' components.  ``Generator.standard_normal(k)`` produces the same
  stream as ``k`` sequential ``normal()`` calls, and interleaved
  consumers of one generator (the AFE's flicker+white pair) deinterleave
  a ``2k`` block.  Data-dependent draws (bubble churn noise) stay lazy
  scalar draws from each bubble model's own generator.

The engine *consumes* the rigs passed to it: their RNG streams advance,
the first rig's drive scheme is ticked, and every platform scheduler is
bulk-advanced.  Treat the rigs as spent after :meth:`BatchEngine.run`;
for repeatable runs build fresh rigs (see :class:`repro.runtime.Session`).

Fleets must be *structurally homogeneous* (same configs modulo seeds);
per-monitor diversity enters only through realized component values
(resistor tolerances, DAC mismatch, calibration constants, housing
state, noise streams).  Heterogeneous fleets are refused with
:class:`~repro.errors.ConfigurationError` rather than silently
mis-simulated.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace

import numpy as np

from repro.errors import ConfigurationError, SensorFault
from repro.observability import get_registry, get_tracer
from repro.baselines.promag import Promag50
from repro.conditioning.drive import ContinuousDrive, PulsedDrive
from repro.isif.sigma_delta import BehavioralAdc, SigmaDeltaAdc
from repro.physics.convection import NATURAL_CONVECTION_FLOOR
from repro.physics.water import boiling_temperature, film_properties_scalar
from repro.runtime.result import RunResult
from repro.station.profiles import Profile
from repro.station.rig import TestRig

__all__ = ["BatchEngine", "run_batch"]


def _require(condition: bool, message: str) -> None:
    """Raise ConfigurationError with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def _vexp(arg: np.ndarray) -> np.ndarray:
    """Elementwise ``math.exp`` (libm), bit-identical to the scalar path."""
    flat = arg.ravel()
    out = np.array([math.exp(x) for x in flat.tolist()])
    return out.reshape(arg.shape)


class BatchEngine:
    """Vectorized lock-step executor for a homogeneous fleet of rigs.

    Parameters
    ----------
    rigs:
        Structurally identical test rigs (same configs modulo seeds).
        They are consumed: RNG streams, the lead rig's drive phase and
        all schedulers advance as the engine runs.
    chunk_size:
        Samples per noise pre-draw block (memory/locality trade-off).

    Raises
    ------
    ConfigurationError
        If the fleet is empty, heterogeneous, or uses a feature the
        vectorized path does not reproduce bit-exactly (bit-true ΣΔ ADC,
        strict AFE, non-zero DAC settling, temperature compensation,
        fixed-point output IIR, non-water medium, zero turbulence floor,
        or a non-Promag50 reference meter).
    SensorFault
        If any sensor is already failed.
    """

    def __init__(self, rigs: list[TestRig], chunk_size: int = 1024) -> None:
        _require(len(rigs) > 0, "batch engine needs at least one rig")
        _require(chunk_size >= 1, "chunk_size must be >= 1")
        self._rigs = list(rigs)
        self._chunk = int(chunk_size)
        self._n = len(self._rigs)
        self._validate()
        self._extract()

    # -- fleet homogeneity ---------------------------------------------------

    def _validate(self) -> None:
        """Refuse fleets the vectorized path cannot reproduce bit-exactly."""
        rigs = self._rigs
        mon0 = rigs[0].monitor
        sen0 = mon0.sensor
        cfg0 = replace(sen0.config, seed=0)
        _require(sen0.config.medium == "water",
                 "batch engine supports medium='water' only")
        _require(not mon0.config.temperature_compensation,
                 "temperature compensation is not vectorized; use the scalar path")
        for rig in rigs:
            mon = rig.monitor
            sen = mon.sensor
            if sen.failed is not None:
                raise SensorFault(sen.failed)
            _require(replace(sen.config, seed=0) == cfg0,
                     "fleet sensors must share one MAFConfig (modulo seed)")
            _require(mon.config == mon0.config,
                     "fleet monitors must share one MonitorConfig")
            _require(mon.controller.config == mon0.controller.config,
                     "fleet controllers must share one CTAConfig")
            _require(mon.platform.loop_rate_hz == mon0.platform.loop_rate_hz,
                     "fleet platforms must share one loop rate")
            est = mon.estimator
            _require(not est.config.temperature_compensation,
                     "temperature compensation is not vectorized")
            _require(est.config.use_direction == mon0.estimator.config.use_direction,
                     "fleet estimators must agree on use_direction")
            _require(est._primed == mon0.estimator._primed,
                     "fleet estimators must share priming state")
        # Drive schemes: one shared phase, realized by ticking rig 0's.
        drive0 = mon0.controller.drive
        for rig in rigs[1:]:
            drive = rig.monitor.controller.drive
            _require(type(drive) is type(drive0),
                     "fleet drives must share one scheme")
            if isinstance(drive0, PulsedDrive):
                _require((drive.period_s, drive.duty, drive.blanking_s, drive._t)
                         == (drive0.period_s, drive0.duty, drive0.blanking_s,
                             drive0._t),
                         "fleet pulsed drives must share timing and phase")
            else:
                _require(isinstance(drive0, ContinuousDrive),
                         "unknown drive scheme")
        # Platform channels and DACs.
        ch0 = mon0.platform.channels[0]
        afe_cfg0 = ch0.config.afe
        _require(afe_cfg0.mode.name == "INSTRUMENT",
                 "batch engine supports INSTRUMENT readout only")
        _require(not afe_cfg0.strict, "strict AFE mode is not vectorized")
        coeffs0 = ch0.anti_alias._coeffs
        for rig in rigs:
            plat = rig.monitor.platform
            for ch in plat.channels[:2]:
                _require(ch.config.afe == afe_cfg0,
                         "fleet channels must share one AFEConfig")
                _require(not ch.config.bit_true_adc
                         and isinstance(ch.adc, BehavioralAdc)
                         and not isinstance(ch.adc, SigmaDeltaAdc),
                         "bit-true sigma-delta ADC is not vectorized")
                _require(ch.anti_alias._coeffs == coeffs0,
                         "fleet anti-alias filters must share coefficients")
                _require(ch.digital_lpf.qformat is None,
                         "fixed-point digital LPF is not vectorized")
                _require(ch.digital_lpf.alpha
                         == mon0.platform.channels[0].digital_lpf.alpha,
                         "fleet digital LPFs must share alpha")
                adc0 = mon0.platform.channels[0].adc
                _require((ch.adc._thermal_rms_v, ch.adc._lsb_v,
                          ch.adc._min_code, ch.adc._max_code)
                         == (adc0._thermal_rms_v, adc0._lsb_v,
                             adc0._min_code, adc0._max_code),
                         "fleet ADCs must share noise and scale")
            for dac in (plat.supply_dac_a, plat.supply_dac_b):
                _require(not dac.settling_time_s,
                         "DAC settling dynamics are not vectorized")
                _require(dac.lsb_v == mon0.platform.supply_dac_a.lsb_v
                         and dac.max_code == mon0.platform.supply_dac_a.max_code,
                         "fleet supply DACs must share scale")
        # PI controllers.
        pi0 = mon0.controller.pi_a
        for rig in rigs:
            for pi in (rig.monitor.controller.pi_a, rig.monitor.controller.pi_b):
                _require(pi.config == pi0.config,
                         "fleet PI controllers must share one PIConfig")
        # Water line: shared bulk plant, per-monitor turbulence stream.
        line0 = rigs[0].line
        lcfg0 = replace(line0.config, seed=0)
        ncfg0 = line0._noise.config
        for rig in rigs:
            line = rig.line
            _require(replace(line.config, seed=0) == lcfg0,
                     "fleet lines must share one LineConfig (modulo seed)")
            ncfg = line._noise.config
            _require((ncfg.floor_mps, ncfg.integral_length_m, ncfg.min_speed_mps)
                     == (ncfg0.floor_mps, ncfg0.integral_length_m,
                         ncfg0.min_speed_mps),
                     "fleet turbulence must share floor/length/min-speed")
            _require(ncfg.floor_mps > 0.0,
                     "turbulence floor must be positive (the OU stream must "
                     "draw every step for lock-step batching)")
            _require((line._speed, line._pressure, line._temperature,
                      line._time_s)
                     == (line0._speed, line0._pressure, line0._temperature,
                         line0._time_s),
                     "fleet lines must start from one shared bulk state")
        # Reference meters.
        ref0 = rigs[0].reference
        for rig in rigs:
            ref = rig.reference
            _require(type(ref) is Promag50,
                     "batch engine supports the Promag50 reference only")
            _require((ref.full_scale_mps, ref.accuracy_of_reading,
                      ref.resolution_fraction_fs, ref.response_time_s)
                     == (ref0.full_scale_mps, ref0.accuracy_of_reading,
                         ref0.resolution_fraction_fs, ref0.response_time_s),
                     "fleet reference meters must share parameters")
        # Resistor materials / bridge series resistance.
        h0 = sen0.heater_a
        r0 = sen0.reference
        for rig in rigs:
            sen = rig.monitor.sensor
            for heater in (sen.heater_a, sen.heater_b):
                _require((heater.material.tcr_per_k,
                          heater.reference_temperature_k)
                         == (h0.material.tcr_per_k, h0.reference_temperature_k),
                         "fleet heaters must share material and T_ref")
            _require((sen.reference.material.tcr_per_k,
                      sen.reference.reference_temperature_k,
                      sen.reference.nominal_ohm)
                     == (r0.material.tcr_per_k, r0.reference_temperature_k,
                         r0.nominal_ohm),
                     "fleet references must share material, T_ref and nominal")
            _require(sen.bridge_a.r_series_ohm == sen0.bridge_a.r_series_ohm
                     and sen.bridge_b.r_series_ohm == sen0.bridge_a.r_series_ohm,
                     "fleet bridges must share the series resistance")

    # -- state extraction ----------------------------------------------------

    def _extract(self) -> None:
        """Copy fleet state into (2, N)/(N,) arrays and hoist constants."""
        rigs = self._rigs
        n = self._n
        mon0 = rigs[0].monitor
        sen0 = mon0.sensor
        cfg = sen0.config
        dt = mon0.platform.dt_s
        self._dt = dt
        self._drive = mon0.controller.drive

        def per_rig(fn):
            return np.array([fn(r) for r in rigs])

        def per_bridge(fn_a, fn_b):
            return np.array([[fn_a(r) for r in rigs], [fn_b(r) for r in rigs]])

        # Water line (shared bulk plant, per-monitor OU fluctuation).
        line0 = rigs[0].line
        lcfg = line0.config
        self._bulk_speed = np.float64(line0._speed)
        self._bulk_pressure = np.float64(line0._pressure)
        self._bulk_temp = np.float64(line0._temperature)
        self._line_time = float(line0._time_s)
        self._a_speed = 1.0 - np.exp(-dt / lcfg.speed_tau_s)
        self._a_press = 1.0 - np.exp(-dt / lcfg.pressure_tau_s)
        self._a_temp = 1.0 - np.exp(-dt / lcfg.temperature_tau_s)
        self._turb_intensity = per_rig(lambda r: r.line._noise.config.intensity)
        self._turb_floor = line0._noise.config.floor_mps
        self._turb_length = line0._noise.config.integral_length_m
        self._turb_min_speed = line0._noise.config.min_speed_mps
        self._x_ou = per_rig(lambda r: float(r.line._noise._ou._x))
        self._line_rngs = [r.line._noise._ou._rng for r in rigs]

        # Supply DACs: code quantization + per-instance mismatch tables.
        dac0 = mon0.platform.supply_dac_a
        self._dac_lsb = dac0.lsb_v
        self._dac_max_code = dac0.max_code
        self._lev_a = np.stack(
            [r.monitor.platform.supply_dac_a._levels_v for r in rigs])
        self._lev_b = np.stack(
            [r.monitor.platform.supply_dac_b._levels_v for r in rigs])
        self._iota = np.arange(n)

        # Sensor: thermal state, realized resistances, degradation.
        self._t_h = per_bridge(lambda r: float(r.monitor.sensor._t_a),
                               lambda r: float(r.monitor.sensor._t_b))
        self._t_mem = per_rig(lambda r: float(r.monitor.sensor._t_membrane))
        self._t_ref = per_rig(lambda r: float(r.monitor.sensor._t_reference))
        self._h_r0 = per_bridge(lambda r: r.monitor.sensor.heater_a.r0_ohm,
                                lambda r: r.monitor.sensor.heater_b.r0_ohm)
        self._ref_r0 = per_rig(lambda r: r.monitor.sensor.reference.r0_ohm)
        self._tcr_h = sen0.heater_a.material.tcr_per_k
        self._tref_h = sen0.heater_a.reference_temperature_k
        self._tcr_ref = sen0.reference.material.tcr_per_k
        self._tref_ref = sen0.reference.reference_temperature_k
        self._r_trim = per_bridge(lambda r: r.monitor.sensor.bridge_a.r_trim_ohm,
                                  lambda r: r.monitor.sensor.bridge_b.r_trim_ohm)
        self._r_series = sen0.bridge_a.r_series_ohm
        self._leak = per_rig(
            lambda r: r.monitor.sensor.housing.leakage_conductance_s())
        self._min_rating = min(
            r.monitor.sensor.housing.pressure_rating_pa for r in rigs)
        self._burst_pressure = cfg.membrane.burst_pressure_pa
        self._alpha_ref = 1.0 - math.exp(-dt / cfg.reference_lag_s)
        self._geom_d = cfg.geometry.diameter_m
        self._geom_L = cfg.geometry.length_m
        self._wake2 = cfg.wake_peak_coupling * 2.0
        self._wake_peak_speed = cfg.wake_peak_speed_mps
        # Membrane-derived thermal constants (per monitor, config-equal).
        self._g_lat = per_rig(lambda r: r.monitor.sensor._g_lateral)
        self._g_back_half = per_rig(lambda r: r.monitor.sensor._g_backside)
        self._heater_cap = per_rig(lambda r: r.monitor.sensor._heater_capacity)
        mem_cap = per_rig(lambda r: r.monitor.sensor._membrane_capacity)
        self._lat_total = cfg.membrane.lateral_conductance_w_per_k
        self._g_rim_total = 2.0 * self._g_lat + self._lat_total
        self._rho_m = np.array([
            math.exp(-dt * g_rim / c)
            for g_rim, c in zip(self._g_rim_total.tolist(), mem_cap.tolist())])
        # Degradation models.
        self._enable_fouling = cfg.enable_fouling
        self._enable_bubbles = cfg.enable_bubbles
        self._r_foul = per_bridge(
            lambda r: r.monitor.sensor.fouling_a.thermal_resistance_k_per_w(
                r.monitor.sensor.wetted_area_m2()),
            lambda r: r.monitor.sensor.fouling_b.thermal_resistance_k_per_w(
                r.monitor.sensor.wetted_area_m2()))
        bub = cfg.bubble_config
        self._bub_nucleation = bub.nucleation_superheat_k
        self._bub_growth = bub.growth_rate_per_k_s
        self._bub_base_detach = bub.base_detach_per_s
        self._bub_shear_detach = bub.shear_detach_per_mps_s
        self._bub_idle_detach = bub.idle_detach_per_s
        self._bub_vapor_frac = bub.vapor_conductance_fraction
        self._bub_noise_frac = bub.noise_fraction
        self._sqrt_dtc = math.sqrt(min(1.0, 0.01 / dt))
        self._cov = per_bridge(lambda r: r.monitor.sensor.bubbles_a._coverage,
                               lambda r: r.monitor.sensor.bubbles_b._coverage)
        self._bubble_rngs = [[r.monitor.sensor.bubbles_a._rng for r in rigs],
                             [r.monitor.sensor.bubbles_b._rng for r in rigs]]
        # Backside OU (flooded cavity only; organic fill never draws).
        bs0 = sen0._backside_noise
        self._bs_sigma = bs0.sigma
        self._bs_rho = math.exp(-dt / bs0.tau_s)
        self._bs_scale = bs0.sigma * math.sqrt(1.0 - self._bs_rho * self._bs_rho)
        self._x_bs = per_rig(lambda r: float(r.monitor.sensor._backside_noise._x))
        self._bs_rngs = [r.monitor.sensor._backside_noise._rng for r in rigs]

        # Acquisition chain (channels 0/1 = bridges A/B).
        ch0 = mon0.platform.channels[0]
        afe_cfg = ch0.config.afe
        self._gain = afe_cfg.gain
        self._rail = afe_cfg.rail_v
        self._residual_offset = afe_cfg.offset_v - afe_cfg.offset_trim_v
        self._alpha_bw = 1.0 - math.exp(-2.0 * math.pi * afe_cfg.bandwidth_hz * dt)
        nyquist = 0.5 / dt
        self._white_rms = afe_cfg.noise_density_v_per_rthz * math.sqrt(nyquist)
        self._afe_leak = math.exp(
            -2.0 * math.pi * afe_cfg.flicker_corner_hz * dt * 0.1)
        flicker_rms = afe_cfg.noise_density_v_per_rthz * math.sqrt(
            max(math.log(max(afe_cfg.flicker_corner_hz, 1e-3) / 1e-3), 0.0))
        self._flicker_scale = flicker_rms * math.sqrt(
            max(1.0 - self._afe_leak * self._afe_leak, 0.0))
        self._afe_state = per_bridge(
            lambda r: r.monitor.platform.channels[0].afe._state_v,
            lambda r: r.monitor.platform.channels[1].afe._state_v)
        self._flick = per_bridge(
            lambda r: r.monitor.platform.channels[0].afe._flicker_v,
            lambda r: r.monitor.platform.channels[1].afe._flicker_v)
        self._afe_rngs = [[r.monitor.platform.channels[0].afe._rng for r in rigs],
                          [r.monitor.platform.channels[1].afe._rng for r in rigs]]
        self._aa_coeffs = list(ch0.anti_alias._coeffs)
        self._aa_state = [
            [per_bridge(
                lambda r, s=si, j=sj: r.monitor.platform.channels[0]
                .anti_alias._state[s][j],
                lambda r, s=si, j=sj: r.monitor.platform.channels[1]
                .anti_alias._state[s][j])
             for sj in (0, 1)]
            for si in range(len(self._aa_coeffs))]
        adc0 = ch0.adc
        self._adc_thermal = adc0._thermal_rms_v
        self._adc_lsb = adc0._lsb_v
        self._adc_min = adc0._min_code
        self._adc_max = adc0._max_code
        self._adc_rngs = [[r.monitor.platform.channels[0].adc._rng for r in rigs],
                          [r.monitor.platform.channels[1].adc._rng for r in rigs]]
        self._alpha_lpf = ch0.digital_lpf.alpha
        self._y_lpf = per_bridge(
            lambda r: r.monitor.platform.channels[0].digital_lpf._y_f,
            lambda r: r.monitor.platform.channels[1].digital_lpf._y_f)

        # PI controllers (fixed-point codes or float, per shared PIConfig).
        pi0 = mon0.controller.pi_a
        pic = pi0.config
        self._qformat = pic.qformat
        if self._qformat is not None:
            q = self._qformat
            self._q_scale = q.scale
            self._q_min_int = q.min_int
            self._q_max_int = q.max_int
            self._q_half = 1 << (q.frac_bits - 1)
            self._q_shift = q.frac_bits
            self._kp_code = pi0._kp_code
            self._ki_dt_code = pi0._ki_dt_code
            self._pi_min_code = pi0._min_code
            self._pi_max_code = pi0._max_code
            for rig in rigs:
                for pi in (rig.monitor.controller.pi_a,
                           rig.monitor.controller.pi_b):
                    _require((pi._kp_code, pi._ki_dt_code, pi._min_code,
                              pi._max_code)
                             == (self._kp_code, self._ki_dt_code,
                                 self._pi_min_code, self._pi_max_code),
                             "fleet PI code tables must agree")
            self._pi_int = per_bridge(
                lambda r: r.monitor.controller.pi_a._int_code,
                lambda r: r.monitor.controller.pi_b._int_code).astype(np.int64)
        else:
            self._pi_kp = pic.kp
            self._pi_ki = pic.ki
            self._pi_dt = pic.dt_s
            self._pi_out_min = pic.out_min
            self._pi_out_max = pic.out_max
            self._pi_int_f = per_bridge(
                lambda r: r.monitor.controller.pi_a._integral,
                lambda r: r.monitor.controller.pi_b._integral)
        self._pi_sat = per_bridge(
            lambda r: r.monitor.controller.pi_a._saturated_sign,
            lambda r: r.monitor.controller.pi_b._saturated_sign).astype(np.int64)
        self._u = per_bridge(lambda r: r.monitor.controller._u_a,
                             lambda r: r.monitor.controller._u_b)

        # Estimator: King's-law inversion + output IIR + direction logic.
        est0 = mon0.estimator
        nominal = sen0.reference.nominal_ohm
        # Firmware quirk preserved: balance power uses bridge A's trim and
        # the *nominal* reference resistance for both supplies.
        self._rh_star = np.array([
            (self._r_series * nominal) / rt for rt in self._r_trim[0].tolist()])
        self._bp_denom = (self._r_series + self._rh_star) ** 2
        self._overtemp = mon0.controller.config.overtemperature_k
        self._coeff_a = per_rig(lambda r: r.monitor.estimator.calibration.law.coeff_a)
        self._coeff_b = per_rig(lambda r: r.monitor.estimator.calibration.law.coeff_b)
        self._inv_exp = per_rig(
            lambda r: 1.0 / r.monitor.estimator.calibration.law.exponent)
        self._alpha_iir = est0._iir.alpha
        self._y_iir = per_rig(lambda r: r.monitor.estimator._iir._y_f)
        self._primed = est0._primed
        self._last_output = per_rig(lambda r: float(r.monitor.estimator._last_output))
        self._use_direction = est0.config.use_direction
        self._dir_offset = per_rig(
            lambda r: r.monitor.estimator.direction.config.offset)
        self._dir_threshold = est0.direction.config.threshold
        self._dir_hysteresis = est0.direction.config.hysteresis
        self._alpha_dir = est0.direction._filter.alpha
        self._y_dir = per_rig(lambda r: r.monitor.estimator.direction._filter._y_f)
        self._dir = per_rig(
            lambda r: r.monitor.estimator.direction._direction).astype(np.int64)

        # Promag 50 reference meters.
        ref0 = rigs[0].reference
        self._pm_alpha = 1.0 - np.exp(-dt / ref0.response_time_s)
        self._pm_noise = ref0.resolution_fraction_fs * ref0.full_scale_mps
        self._pm_gain = per_rig(lambda r: r.reference._gain)
        self._pm_state = per_rig(lambda r: r.reference._state)
        self._pm_rngs = [r.reference._rng for r in rigs]

    # -- per-step kernels ----------------------------------------------------

    def _film_conductance(self, v_eff: np.ndarray, film_t: np.ndarray) -> np.ndarray:
        """Clean-film conductance (2, N), elementwise scalar correlations."""
        d = self._geom_d
        length = self._geom_L
        v_flat = np.broadcast_to(v_eff, film_t.shape).ravel().tolist()
        t_flat = film_t.ravel().tolist()
        out = np.empty(len(t_flat))
        for j, (v, t) in enumerate(zip(v_flat, t_flat)):
            k, nu_visc, pr = film_properties_scalar(t)
            re = v * d / nu_visc
            nusselt = 0.42 * pr**0.20 + 0.57 * pr**0.33 * math.sqrt(re)
            out[j] = nusselt * k * math.pi * length
        return out.reshape(film_t.shape)

    def _qmul(self, code: int, arr: np.ndarray) -> np.ndarray:
        """Vector Q-format saturating multiply (round-half-up shift)."""
        product = code * arr
        rounded = (product + self._q_half) >> self._q_shift
        return np.clip(rounded, self._q_min_int, self._q_max_int)

    # -- main loop -----------------------------------------------------------

    def run(self, profile: Profile, record_every_n: int = 20) -> RunResult:
        """Execute a profile over the whole fleet; decimated traces out.

        Mirrors :meth:`repro.station.rig.TestRig.run` sample for sample;
        with identical seeds the returned traces are bit-identical to N
        scalar rig runs.

        Raises
        ------
        ConfigurationError
            On an empty profile or non-positive decimation.
        SensorFault
            On membrane burst or housing overpressure (any monitor —
            the fleet shares the line, so all see the event together).
        """
        if record_every_n < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        dt = self._dt
        steps = int(round(profile.duration_s / dt))
        if steps < 1:
            raise ConfigurationError("profile shorter than one loop tick")
        with get_tracer().span("batch.run", n_monitors=self._n, steps=steps):
            return self._run(profile, steps, record_every_n)

    def _run(self, profile: Profile, steps: int,
             record_every_n: int) -> RunResult:
        """The instrumented main loop behind :meth:`run`."""
        dt = self._dt
        n = self._n
        # Per-chunk instrumentation: one branch when disabled, one
        # perf_counter pair + histogram/counter update per chunk (never
        # per sample) when enabled.
        registry = get_registry()
        observing = registry.enabled
        if observing:
            registry.gauge("runtime.batch.fleet_size").set(n)
            chunk_hist = registry.histogram(
                "runtime.batch.chunk_s", "per-chunk advance latency")
            samples_counter = registry.counter(
                "runtime.batch.samples", "monitor-samples advanced")
            chunks_counter = registry.counter("runtime.batch.chunks")
            run_start = time.perf_counter()
        t_buf: list[float] = []
        v_true: list[np.ndarray] = []
        v_ref: list[np.ndarray] = []
        v_meas: list[np.ndarray] = []
        direction: list[np.ndarray] = []
        pressure: list[np.ndarray] = []
        temperature: list[np.ndarray] = []
        coverage: list[np.ndarray] = []

        for start in range(0, steps, self._chunk):
            c = min(self._chunk, steps - start)
            if observing:
                chunk_start = time.perf_counter()
            # Pre-draw this chunk's gaussian blocks from the live streams.
            xi_line = np.stack([rng.standard_normal(c) for rng in self._line_rngs])
            if self._bs_sigma > 0.0:
                xi_bs = np.stack([rng.standard_normal(c) for rng in self._bs_rngs])
            afe_blocks = [np.stack([rng.standard_normal(2 * c) for rng in row])
                          for row in self._afe_rngs]
            xi_flick = np.stack([blk[:, 0::2] for blk in afe_blocks])
            xi_white = np.stack([blk[:, 1::2] for blk in afe_blocks])
            xi_adc = np.stack([np.stack([rng.standard_normal(c) for rng in row])
                               for row in self._adc_rngs])
            xi_pm = np.stack([rng.standard_normal(c) for rng in self._pm_rngs])

            for k in range(c):
                i = start + k
                v_set, p_set, t_set = profile.setpoints(i * dt)

                # Water line: shared first-order plant + per-monitor OU.
                self._bulk_speed = self._bulk_speed + self._a_speed * (
                    v_set - self._bulk_speed)
                self._bulk_pressure = self._bulk_pressure + self._a_press * (
                    p_set - self._bulk_pressure)
                self._bulk_temp = self._bulk_temp + self._a_temp * (
                    t_set - self._bulk_temp)
                v_mag = abs(self._bulk_speed)
                sigma_ou = self._turb_intensity * v_mag + self._turb_floor
                tau_ou = self._turb_length / max(v_mag, self._turb_min_speed)
                rho_ou = math.exp(-dt / tau_ou)
                self._x_ou = self._x_ou * rho_ou + (
                    sigma_ou * math.sqrt(1.0 - rho_ou * rho_ou)) * xi_line[:, k]
                v_local = self._bulk_speed + self._x_ou
                self._line_time += dt
                p_line = self._bulk_pressure
                t_fluid = self._bulk_temp

                # Drive decision (one shared scheme, realized on rig 0's).
                dec = self._drive.tick(dt)
                u_cmd = self._u if dec.energise else np.zeros((2, n))

                # Supply DACs: quantize, then per-instance mismatch table.
                codes = np.clip(np.floor(u_cmd / self._dac_lsb + 0.5),
                                0, self._dac_max_code).astype(np.int64)
                ua = np.empty((2, n))
                ua[0] = self._lev_a[self._iota, codes[0]]
                ua[1] = self._lev_b[self._iota, codes[1]]

                # Sensor guards (shared line pressure).
                if p_line > self._burst_pressure:
                    raise SensorFault(
                        f"membrane burst at {float(p_line) / 1e5:.2f} bar "
                        f"(rating {self._burst_pressure / 1e5:.2f} bar)")
                if p_line < 0.0:
                    raise ConfigurationError("pressure must be non-negative")
                if p_line > self._min_rating:
                    raise SensorFault(
                        f"housing rated {self._min_rating / 1e5:.1f} bar "
                        f"failed at {float(p_line) / 1e5:.1f} bar")

                # Reference resistor: lagged tracking + self-heating bias.
                rt_old = self._ref_r0 * (1.0 + self._tcr_ref * (
                    self._t_ref - self._tref_ref))
                i_ra = ua[0] / (self._r_trim[0] + rt_old)
                i_rb = ua[1] / (self._r_trim[1] + rt_old)
                p_ref = i_ra * i_ra * rt_old + i_rb * i_rb * rt_old
                t_ref_target = t_fluid + 30.0 * p_ref
                self._t_ref = self._t_ref + self._alpha_ref * (
                    t_ref_target - self._t_ref)
                rt_new = self._ref_r0 * (1.0 + self._tcr_ref * (
                    self._t_ref - self._tref_ref))

                # Wake coupling → inlet temperatures (old heater temps).
                absv = np.abs(v_local)
                x_wake = absv / self._wake_peak_speed
                coupling = self._wake2 * x_wake / (1.0 + x_wake * x_wake)
                fwd = v_local >= 0.0
                warm_from_a = coupling * np.maximum(self._t_h[0] - t_fluid, 0.0)
                warm_from_b = coupling * np.maximum(self._t_h[1] - t_fluid, 0.0)
                t_in = np.empty((2, n))
                t_in[0] = np.where(fwd, t_fluid, t_fluid + warm_from_b)
                t_in[1] = np.where(fwd, t_fluid + warm_from_a, t_fluid)

                # Clean film conductance at the film temperature.
                film_t = 0.5 * (self._t_h + t_fluid)
                v_eff = np.maximum(absv, NATURAL_CONVECTION_FLOOR)
                g = self._film_conductance(v_eff, film_t)

                # Fouling: deposit resistance in series with the film.
                if self._enable_fouling:
                    g = 1.0 / (1.0 / g + self._r_foul)

                # Bubbles: coverage dynamics + multiplicative churn noise.
                if self._enable_bubbles:
                    superheat = self._t_h - t_fluid
                    powered = superheat > 1.0
                    active = powered & (superheat > self._bub_nucleation)
                    growth = np.where(
                        active,
                        self._bub_growth * (superheat - self._bub_nucleation),
                        0.0)
                    if active.any():
                        p_abs = p_line + 101_325.0
                        t_boil = float(boiling_temperature(
                            max(float(p_abs), 5_000.0)))
                        growth = growth + np.where(
                            active & (self._t_h >= t_boil),
                            10.0 * self._bub_growth * (self._t_h - t_boil + 1.0),
                            0.0)
                    detach = self._bub_base_detach + self._bub_shear_detach * absv
                    detach = np.where(powered, detach,
                                      detach + self._bub_idle_detach)
                    dc = growth * (1.0 - self._cov) - detach * self._cov
                    self._cov = np.minimum(
                        np.maximum(self._cov + dc * dt, 0.0), 0.999)
                    factor = 1.0 - self._cov * (1.0 - self._bub_vapor_frac)
                    noise = np.ones((2, n))
                    if np.any(self._cov > 0.0):
                        for h in (0, 1):
                            row = self._cov[h]
                            for m in range(n):
                                cvg = float(row[m])
                                if cvg > 0.0:
                                    sig = self._bub_noise_frac * cvg
                                    noise[h, m] = 1.0 + sig * float(
                                        self._bubble_rngs[h][m].normal()
                                    ) * self._sqrt_dtc
                    g = g * (factor * noise)
                g = np.maximum(g, 1e-6)

                # Backside conductance fluctuation (flooded cavity only).
                if self._bs_sigma > 0.0:
                    self._x_bs = self._x_bs * self._bs_rho + (
                        self._bs_scale * xi_bs[:, k])
                    backside_factor = 1.0 + self._x_bs
                    g_back = self._g_back_half * np.maximum(backside_factor, 0.1)
                else:
                    g_back = self._g_back_half * 1.0

                # Heater powers at the pre-step operating point.
                rh_old = self._h_r0 * (1.0 + self._tcr_h * (
                    self._t_h - self._tref_h))
                rh_eff = np.where(self._leak == 0.0, rh_old,
                                  1.0 / (1.0 / rh_old + self._leak))
                branch_i = ua / (self._r_series + rh_eff)
                i_h = np.where(self._leak == 0.0, branch_i,
                               branch_i * rh_eff / rh_old)
                p_h = i_h * i_h * rh_old

                # Exact exponential heater update (old membrane temp).
                g_total = g + self._g_lat + g_back
                t_inf = (p_h + g * t_in + self._g_lat * self._t_mem
                         + g_back * t_fluid) / g_total
                rho_h = _vexp(-dt * g_total / self._heater_cap)
                self._t_h = t_inf + (self._t_h - t_inf) * rho_h

                # Membrane rim update (new heater temps).
                t_rim_inf = (self._g_lat * (self._t_h[0] + self._t_h[1])
                             + self._lat_total * t_fluid) / self._g_rim_total
                self._t_mem = t_rim_inf + (self._t_mem - t_rim_inf) * self._rho_m

                # Bridge readout at the post-step operating point.
                rh_new = self._h_r0 * (1.0 + self._tcr_h * (
                    self._t_h - self._tref_h))
                rh_eff_new = np.where(self._leak == 0.0, rh_new,
                                      1.0 / (1.0 / rh_new + self._leak))
                v_meas_mid = ua * rh_eff_new / (self._r_series + rh_eff_new)
                v_ref_mid = ua * rt_new / (self._r_trim + rt_new)
                diff = v_meas_mid - v_ref_mid

                # AFE: gain + offset, 1/f + white noise, bandwidth, rails.
                ideal = (diff + self._residual_offset) * self._gain
                self._flick = self._flick * self._afe_leak + (
                    self._flicker_scale * xi_flick[:, :, k])
                sample_noise = self._white_rms * xi_white[:, :, k] + self._flick
                noisy = ideal + sample_noise * self._gain
                self._afe_state = self._afe_state + self._alpha_bw * (
                    noisy - self._afe_state)
                self._afe_state = np.clip(self._afe_state, -self._rail, self._rail)

                # Anti-alias biquads (direct-form II transposed).
                y = self._afe_state
                for (b0, b1, b2, _a0, a1, a2), st in zip(self._aa_coeffs,
                                                         self._aa_state):
                    out = b0 * y + st[0]
                    st[0] = b1 * y - a1 * out + st[1]
                    st[1] = b2 * y - a2 * out
                    y = out

                # Behavioural ADC: thermal noise, round-to-nearest, clamp.
                noisy_adc = y + self._adc_thermal * xi_adc[:, :, k]
                q_codes = np.clip(
                    np.trunc(noisy_adc / self._adc_lsb
                             + np.where(noisy_adc >= 0.0, 0.5, -0.5)),
                    self._adc_min, self._adc_max)
                volts = q_codes * self._adc_lsb

                # Digital one-pole LPF, then input-referred error.
                self._y_lpf = self._y_lpf + self._alpha_lpf * (volts - self._y_lpf)
                err = -(self._y_lpf / self._gain)

                # PI control (gated by the drive scheme).
                if dec.control_active:
                    if self._qformat is not None:
                        err_code = np.clip(
                            np.floor(err * self._q_scale + 0.5),
                            self._q_min_int, self._q_max_int).astype(np.int64)
                        err_sign = np.sign(err_code)
                        cond = (self._pi_sat == 0) | (err_sign != self._pi_sat)
                        inc = self._qmul(self._ki_dt_code, err_code)
                        int_new = np.where(
                            cond,
                            np.clip(self._pi_int + inc,
                                    self._q_min_int, self._q_max_int),
                            self._pi_int)
                        p_term = self._qmul(self._kp_code, err_code)
                        raw = int_new + p_term
                        out_code = np.clip(raw, self._pi_min_code,
                                           self._pi_max_code)
                        self._pi_sat = np.where(
                            raw > self._pi_max_code, 1,
                            np.where(raw < self._pi_min_code, -1, 0))
                        abs_p = np.abs(p_term)
                        self._pi_int = np.minimum(
                            np.maximum(int_new, self._pi_min_code - abs_p),
                            self._pi_max_code + abs_p)
                        self._u = out_code / self._q_scale
                    else:
                        cond = (self._pi_sat == 0) | (
                            np.sign(err) != self._pi_sat)
                        self._pi_int_f = np.where(
                            cond,
                            self._pi_int_f + self._pi_ki * err * self._pi_dt,
                            self._pi_int_f)
                        raw = self._pi_kp * err + self._pi_int_f
                        self._u = np.clip(raw, self._pi_out_min, self._pi_out_max)
                        self._pi_sat = np.where(
                            raw > self._pi_out_max, 1,
                            np.where(raw < self._pi_out_min, -1, 0))
                        self._pi_int_f = np.clip(
                            self._pi_int_f,
                            self._pi_out_min - self._pi_kp * np.abs(err),
                            self._pi_out_max + self._pi_kp * np.abs(err))

                # Flow estimator (valid samples only; otherwise hold).
                if dec.sample_valid:
                    bp_a = self._u[0] ** 2 * self._rh_star / self._bp_denom
                    bp_b = self._u[1] ** 2 * self._rh_star / self._bp_denom
                    g_cond = 0.5 * (bp_a + bp_b) / self._overtemp
                    excess = np.maximum(g_cond - self._coeff_a, 0.0)
                    speed = np.array([
                        (e / b) ** p for e, b, p in zip(
                            excess.tolist(), self._coeff_b.tolist(),
                            self._inv_exp.tolist())])
                    if not self._primed:
                        self._y_iir = speed.copy()
                        self._primed = True
                    self._y_iir = self._y_iir + self._alpha_iir * (
                        speed - self._y_iir)
                    if self._use_direction:
                        pa = self._u[0] * self._u[0]
                        pb = self._u[1] * self._u[1]
                        total = pa + pb
                        asym = np.where(
                            total <= 0.0, 0.0,
                            (pa - pb) / np.where(total <= 0.0, 1.0, total))
                        x_dir = asym - self._dir_offset
                        self._y_dir = self._y_dir + self._alpha_dir * (
                            x_dir - self._y_dir)
                        d = self._y_dir
                        thr = self._dir_threshold
                        hyst = self._dir_hysteresis
                        dirs = self._dir
                        self._dir = np.where(
                            (dirs == 0) & (d > thr), 1,
                            np.where(
                                (dirs == 0) & (d < -thr), -1,
                                np.where(
                                    (dirs == 1) & (d < -(thr + hyst)), -1,
                                    np.where(
                                        (dirs == -1) & (d > thr + hyst), 1,
                                        dirs))))
                        sign = np.where(self._dir != 0,
                                        self._dir.astype(float), 1.0)
                    else:
                        sign = 1.0
                    self._last_output = sign * self._y_iir

                # Promag 50 reference (reads the bulk speed).
                self._pm_state = self._pm_state + self._pm_alpha * (
                    self._bulk_speed * self._pm_gain - self._pm_state)
                pm_reading = self._pm_state + self._pm_noise * xi_pm[:, k]

                if i % record_every_n == 0:
                    t_buf.append(self._line_time)
                    v_true.append(np.full(n, float(self._bulk_speed)))
                    v_ref.append(pm_reading.copy())
                    v_meas.append(self._last_output.copy())
                    direction.append(self._dir.copy())
                    pressure.append(np.full(n, float(self._bulk_pressure)))
                    temperature.append(np.full(n, float(self._bulk_temp)))
                    coverage.append(np.maximum(self._cov[0], self._cov[1]))

            if observing:
                chunk_hist.observe(time.perf_counter() - chunk_start)
                samples_counter.inc(c * n)
                chunks_counter.inc()

        if observing:
            elapsed = time.perf_counter() - run_start
            if elapsed > 0.0:
                registry.gauge("runtime.batch.samples_per_s").set(
                    steps * n / elapsed)

        for rig in self._rigs:
            rig.monitor.platform.scheduler.bulk_tick(steps)

        return RunResult(
            time_s=np.array(t_buf),
            true_speed_mps=np.stack(v_true, axis=1),
            reference_mps=np.stack(v_ref, axis=1),
            measured_mps=np.stack(v_meas, axis=1),
            direction=np.stack(direction, axis=1),
            pressure_pa=np.stack(pressure, axis=1),
            temperature_k=np.stack(temperature, axis=1),
            bubble_coverage=np.stack(coverage, axis=1),
        )


def run_batch(rigs: list[TestRig], profile: Profile,
              record_every_n: int = 20, chunk_size: int = 1024,
              workers: int | None = None) -> RunResult:
    """One-shot convenience: build an engine and run it.

    With ``workers`` left at None (or 1) this builds a serial
    :class:`BatchEngine`; with ``workers > 1`` the fleet is partitioned
    across worker processes by :class:`repro.runtime.parallel.ShardedEngine`,
    whose merged result is bit-identical to the serial path.

    The rigs are consumed (see the module docstring); build fresh rigs
    for repeat runs or use :class:`repro.runtime.Session`, which
    re-materializes monitors from cached calibrations.
    """
    if workers is not None and workers != 1:
        # Imported lazily: parallel.py itself imports this module.
        from repro.runtime.parallel import ShardedEngine
        return ShardedEngine(rigs, workers=workers,
                             chunk_size=chunk_size).run(
            profile, record_every_n=record_every_n)
    return BatchEngine(rigs, chunk_size=chunk_size).run(
        profile, record_every_n=record_every_n)
