"""Process-parallel sharded fleet execution with deterministic parity.

The batch engine (:mod:`repro.runtime.batch`) vectorizes within one
process; this module shards a fleet **across** worker processes while
keeping the result bit-identical to the serial path:

- The fleet is partitioned into contiguous shards
  (:func:`partition_monitors`).  Per-monitor randomness lives entirely
  inside each rig (its seeds were spawned with
  ``numpy.random.SeedSequence.spawn`` at build time — see
  :func:`spawn_monitor_seeds` and ``Session.open``), so moving a rig to
  another process moves its noise streams with it, untouched.
- The shared line plant is deterministic given the profile (no fleet
  RNG), and the batch engine validates that every rig starts from the
  same bulk state, so each shard re-derives the identical line
  trajectory independently.
- Each shard runs in its own single-process
  ``concurrent.futures.ProcessPoolExecutor`` worker, which builds a
  :class:`~repro.runtime.batch.BatchEngine` over its pickled rigs and
  sends back the shard's ``(N_shard, M)`` trace block.
- Blocks are merged in shard order with :meth:`RunResult.concat`;
  worker scheduling order cannot reorder rows.

The parity contract is therefore *exact*: for any shard count and any
worker interleaving, ``ShardedEngine.run`` returns the same bits as
``BatchEngine.run`` on the whole fleet (``tests/test_parallel_parity.py``
asserts this for shard counts 1, 2, 3 and N).

Failure semantics: a worker crash, an unpicklable payload or a hung
worker triggers a bounded re-submission of just that shard on a fresh
worker (``max_retries`` times), then a serial in-process fallback, so a
sharded run degrades to the serial engine rather than failing.
Deterministic simulation errors (:class:`~repro.errors.ReproError`,
e.g. a membrane burst) are re-raised immediately — retrying cannot
change physics.  ``shard.retries`` / ``shard.fallbacks`` counters and
per-shard wall-time histograms flow through the opt-in
:mod:`repro.observability` registry.

Telemetry does not die with the workers: when any observability sink is
enabled in the parent, each worker runs under fresh sinks bracketed by
:func:`repro.observability.remote.install_worker_telemetry` /
``harvest_worker_telemetry``, wraps its engine run in a
``shard.worker`` span nested (via the propagated
:class:`~repro.observability.tracer.TraceContext`) under the parent's
``shard.run`` span, and ships a
:class:`~repro.observability.remote.TelemetryHarvest` back with its
trace block.  The parent merges harvests in shard order, so worker
``runtime.*``/``kernel.*``/``profile.*`` metrics, spans and events land
in the parent registry exactly once — only *successful* attempts
harvest, so retries cannot double-count, and fallback shards already
run in-process under the parent sinks directly.

A fault hook for tests: set ``REPRO_SHARD_FAULT`` to
``crash:<shard>``, ``hang:<shard>``, ``raise:<shard>`` or
``crash-once:<shard>:<marker-dir>`` to make that shard's worker die,
hang, raise, or die exactly once (the marker directory persists the
"already tripped" bit across retried worker processes).

Windowed execution (:meth:`ShardedEngine.advance`) keeps the same
parity contract across checkpoint cut points: each shard's
:class:`BatchEngine` lives between windows as a pickled blob in the
parent, rides to a worker for each window and comes home re-pickled
with its advanced state, so any slicing of a run into windows is
bit-identical to the uninterrupted run — and the whole engine (blobs
included) is itself picklable, which is what
:func:`repro.runtime.checkpoint.save_checkpoint` relies on.

Everything above describes the default ``backend="spawn"``.  With
``backend="shm"`` the same partition, seeds and merge order ride the
zero-copy runtime of :mod:`repro.runtime.shm` instead: shard engines
are loaded **once** into a persistent worker pool and advanced in
place by small commands, trace blocks land in parent-owned shared
memory, and the merge is :meth:`RunResult.from_shared
<repro.runtime.result.RunResult.from_shared>` pointer assembly.  The
parity contract is identical — same bits for any worker count — but
the failure semantics differ for *windowed* runs: a pool worker that
dies mid-sequence takes its shard's live state with it, so
:meth:`advance` raises :class:`~repro.runtime.shm.PoolWorkerError`
instead of silently degrading (durable runs recover through their last
checkpoint; one-shot :meth:`run` still falls back to the serial
engine, whose state lives in the parent).  Checkpointing an shm engine
dumps the pool-resident shard engines back into pickled blobs
(:meth:`__getstate__`), so a checkpoint holds owned bytes, never pool
references; resume re-loads the blobs into whatever pool exists then.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.observability import (get_event_log, get_profiler, get_registry,
                                 get_tracer)
from repro.observability.remote import (TelemetryHarvest, TelemetryRequest,
                                        harvest_worker_telemetry,
                                        install_worker_telemetry,
                                        merge_harvest)
from repro.runtime.batch import BatchEngine
from repro.runtime.kernels import resolve_numerics
from repro.runtime.result import RunResult
from repro.runtime.shm import (PoolWorkerError, SharedBlock, empty_result,
                               existing_pool, get_pool, next_engine_id,
                               recorded_ticks, resolve_backend,
                               write_block_rows)
from repro.station.profiles import Profile
from repro.station.rig import TestRig

__all__ = ["ShardedEngine", "partition_monitors", "spawn_monitor_seeds",
           "resolve_workers", "FAULT_ENV"]

#: Environment variable consulted by the worker entrypoint to inject
#: faults (test hook): ``crash:<i>``, ``hang:<i>``, ``raise:<i>`` or
#: ``crash-once:<i>:<marker-dir>``.
FAULT_ENV = "REPRO_SHARD_FAULT"


def resolve_workers(workers: int | None, n_monitors: int) -> int:
    """Resolve a ``workers=`` knob to an effective worker count.

    ``None`` means "use the machine": ``os.cpu_count()``.  The result is
    always clamped to the fleet size — a shard needs at least one rig.

    Raises
    ------
    ConfigurationError
        If ``workers`` is given and not a positive integer.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError("workers must be a positive integer")
    return min(workers, int(n_monitors))


def partition_monitors(n_monitors: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous balanced partition of ``range(n_monitors)``.

    Returns ``[(start, stop), ...]`` half-open slices, one per shard, in
    fleet order.  Sizes differ by at most one (larger shards first), the
    slices are disjoint and cover every index exactly once, and the
    partition depends only on ``(n_monitors, n_shards)`` — never on
    scheduling — so the merged result layout is deterministic.

    Raises
    ------
    ConfigurationError
        On a non-positive fleet size or shard count, or more shards
        than monitors.
    """
    if n_monitors < 1:
        raise ConfigurationError("need at least one monitor to partition")
    if not 1 <= n_shards <= n_monitors:
        raise ConfigurationError(
            f"shard count must be in 1..{n_monitors}, got {n_shards}")
    base, extra = divmod(n_monitors, n_shards)
    bounds = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def spawn_monitor_seeds(seed: int, n_monitors: int) -> list[int]:
    """Per-monitor seeds spawned from one session seed.

    The same ``SeedSequence.spawn`` derivation ``Session.open`` uses:
    child streams are statistically independent, and the list depends
    only on ``(seed, n_monitors)`` — *not* on how the fleet is later
    sharded — which is what makes shard-count-invariant runs possible.
    """
    children = np.random.SeedSequence(int(seed)).spawn(int(n_monitors))
    return [int(child.generate_state(1)[0]) for child in children]


def _maybe_inject_fault(shard_index: int) -> None:
    """Honour the ``REPRO_SHARD_FAULT`` test hook in a worker process."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    parts = spec.split(":")
    mode, target = parts[0], int(parts[1])
    if target != shard_index:
        return
    if mode == "crash":
        os._exit(3)  # hard death: the parent sees a broken pool
    elif mode == "hang":
        time.sleep(3600.0)
    elif mode == "raise":
        raise RuntimeError(f"injected worker fault on shard {shard_index}")
    elif mode == "crash-once":
        marker = Path(parts[2]) / f"shard{shard_index}.tripped"
        if not marker.exists():
            marker.touch()
            os._exit(3)


def _run_shard(shard_index: int, rigs: list[TestRig], profile: Profile,
               record_every_n: int, chunk_size: int,
               numerics: str = "exact",
               telemetry: TelemetryRequest | None = None,
               ) -> tuple[int, RunResult, TelemetryHarvest | None]:
    """Worker entrypoint: advance one shard and return its trace block.

    Runs in a worker process on *pickled copies* of the shard's rigs,
    builds a fresh :class:`BatchEngine` over them (in the parent's
    numerics mode), and returns the ``(N_shard, M)`` block tagged with
    the shard index so the parent can merge blocks in fleet order
    regardless of completion order.

    With a ``telemetry`` request the run executes under fresh
    observability sinks (the fork start method would otherwise leak the
    parent's registry contents into the harvest), inside a
    ``shard.worker`` span nested under the parent's propagated trace
    context, and the collected :class:`TelemetryHarvest` rides home as
    the third tuple element.  Telemetry only ships on success: a
    crashed, hung or raising attempt returns nothing, so retried shards
    cannot double-count.
    """
    _maybe_inject_fault(shard_index)
    previous = (install_worker_telemetry(telemetry)
                if telemetry is not None else None)
    harvest = None
    try:
        engine = BatchEngine(rigs, chunk_size=chunk_size, numerics=numerics)
        with get_tracer().span("shard.worker", shard=shard_index,
                               n_monitors=len(rigs)):
            block = engine.run(profile, record_every_n=record_every_n)
    finally:
        if previous is not None:
            harvest = harvest_worker_telemetry(previous)
    return shard_index, block, harvest


def _advance_shard(shard_index: int, blob: bytes, profile: Profile,
                   steps: int, record_every_n: int,
                   telemetry: TelemetryRequest | None = None,
                   ) -> tuple[int, RunResult, bytes, TelemetryHarvest | None]:
    """Worker entrypoint: advance one pickled shard engine by a window.

    The blob is the shard's live :class:`BatchEngine` (rigs, RNG
    streams, decimation phase and all) as pickled by the parent after
    the previous window; it is advanced ``steps`` samples and shipped
    home re-pickled together with the window's trace block, tagged with
    the shard index for in-order merging.  Pickle round-trips the
    engine state exactly, so windowing introduces no drift.

    Telemetry handling mirrors :func:`_run_shard`: with a request the
    window runs under fresh worker sinks inside a ``shard.worker``
    span, and the harvest only ships on success.
    """
    _maybe_inject_fault(shard_index)
    previous = (install_worker_telemetry(telemetry)
                if telemetry is not None else None)
    harvest = None
    try:
        engine = pickle.loads(blob)
        with get_tracer().span("shard.worker", shard=shard_index,
                               steps=steps):
            block = engine.advance(profile, steps,
                                   record_every_n=record_every_n)
        new_blob = pickle.dumps(engine, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if previous is not None:
            harvest = harvest_worker_telemetry(previous)
    return shard_index, block, new_blob, harvest


def _terminate(executor: ProcessPoolExecutor) -> None:
    """Tear an executor down hard (its worker may be hung or dead)."""
    processes = list(getattr(executor, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        except Exception:
            pass
    executor.shutdown(wait=False, cancel_futures=True)


class ShardedEngine:
    """Run a homogeneous fleet sharded across worker processes.

    Parameters
    ----------
    rigs:
        Structurally identical test rigs (the :class:`BatchEngine`
        homogeneity rules apply; they are validated up front in the
        parent).  Treat them as spent after :meth:`run`, exactly like
        rigs handed to a :class:`BatchEngine`.
    workers:
        Worker process count; ``None`` uses ``os.cpu_count()``.  The
        effective shard count is ``min(workers, len(rigs))``; a resolved
        count of 1 runs serially in-process (no executor at all).
    chunk_size:
        Per-worker batch-engine noise pre-draw block length.
    max_retries:
        Re-submissions allowed per shard after an infrastructure
        failure (crash / hang / pickling error) before that shard falls
        back to the serial in-process engine.
    timeout_s:
        Per-shard wall-clock budget measured from submission; ``None``
        disables the watchdog.  A timed-out worker is killed, not
        abandoned.
    numerics:
        Kernel numerics mode for every shard engine (``"exact"``, the
        default, or ``"fast"``); a :class:`~repro.runtime.kernels.Numerics`
        policy is accepted too.  Shard-count invariance holds per mode:
        every worker runs the same kernels the serial engine would.
    backend:
        ``"spawn"`` (the default) runs each shard on per-run
        single-worker executors; ``"shm"`` runs shards on the
        persistent zero-copy pool of :mod:`repro.runtime.shm` (see the
        module docstring for how the failure semantics differ).  Both
        are bit-identical to serial for any worker count.

    Raises
    ------
    ConfigurationError
        From the fleet homogeneity validation, or on invalid knobs
        (``reason="numerics"`` for an unknown numerics mode,
        ``reason="backend"`` for an unknown backend).
    """

    def __init__(self, rigs: list[TestRig], workers: int | None = None,
                 chunk_size: int = 1024, max_retries: int = 1,
                 timeout_s: float | None = None,
                 numerics: str = "exact", backend: str = "spawn") -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if timeout_s is not None and timeout_s <= 0.0:
            raise ConfigurationError("timeout_s must be positive")
        self._rigs = list(rigs)
        self._numerics = resolve_numerics(numerics)
        self._backend = resolve_backend(backend)
        # Validate homogeneity (and every BatchEngine precondition) in
        # the parent, before any process is spawned: construction only
        # reads rig state, it does not consume the rigs.
        BatchEngine(self._rigs, chunk_size=chunk_size,
                    numerics=self._numerics)
        self._chunk = int(chunk_size)
        self._workers = resolve_workers(workers, len(self._rigs))
        self._max_retries = int(max_retries)
        self._timeout_s = timeout_s
        self._offset = 0
        self._ran = False
        self._closed = False
        self._bounds: list[tuple[int, int]] | None = None
        self._blobs: list[bytes] | None = None
        # shm-backend state: pool engine ids (worker i holds engine
        # _eids[i]), live shard sizes (drop-aware), and blobs restored
        # from a checkpoint awaiting re-load into the pool.
        self._eids: list[int] | None = None
        self._sizes: list[int] | None = None
        self._pending_blobs: list[bytes] | None = None

    @property
    def workers(self) -> int:
        """Resolved worker/shard count (``min(workers, len(rigs))``)."""
        return self._workers

    @property
    def offset(self) -> int:
        """Samples already advanced (the absolute step of the next tick).

        Zero on a fresh engine; grows with every :meth:`advance`
        window.  The PR 6 contract: a run sliced into ``advance``
        windows at any offsets is bit-identical to one uninterrupted
        :meth:`run` — this property marks the cut point a checkpoint
        captures.
        """
        return self._offset

    @property
    def numerics(self) -> str:
        """The resolved numerics mode shared by every shard engine."""
        return self._numerics

    @property
    def backend(self) -> str:
        """The resolved parallel backend (``"spawn"`` or ``"shm"``)."""
        return self._backend

    def run(self, profile: Profile, record_every_n: int = 20) -> RunResult:
        """Execute a profile over the sharded fleet; merged traces out.

        Bit-identical to ``BatchEngine(rigs).run(profile, ...)`` for any
        shard count and any worker completion order.  Worker failures
        degrade through retry to a serial in-process fallback; the run
        only raises for deterministic simulation errors (or if the
        serial fallback itself fails).

        Raises
        ------
        ConfigurationError
            On an empty profile or non-positive decimation.
        SensorFault
            On membrane burst or housing overpressure, exactly as the
            serial engine would.
        """
        if record_every_n < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        self._require_open()
        if self._offset:
            raise ConfigurationError(
                "this engine was advanced in windows; continue with "
                "advance() instead of run()")
        steps = int(round(profile.duration_s /
                          self._rigs[0].monitor.platform.dt_s))
        if steps < 1:
            raise ConfigurationError("profile shorter than one loop tick")
        self._ran = True
        if self._workers == 1:
            # One shard: the serial engine *is* the sharded run.
            return BatchEngine(self._rigs, chunk_size=self._chunk,
                               numerics=self._numerics).run(
                profile, record_every_n=record_every_n)
        if self._backend == "shm":
            with get_tracer().span("shm.run", n_monitors=len(self._rigs),
                                   workers=self._workers):
                result, fell_back = self._run_shm(profile, record_every_n,
                                                  steps)
        else:
            with get_tracer().span("shard.run", n_monitors=len(self._rigs),
                                   workers=self._workers):
                result, fell_back = self._run_sharded(profile,
                                                      record_every_n)
        # Mirror the serial engine's scheduler accounting on the parent
        # rigs (worker-side copies advanced their own, then died).
        # Fallback shards already ran in-process on the parent rigs.
        ticked_serially = {id(rig) for start, stop in fell_back
                           for rig in self._rigs[start:stop]}
        for rig in self._rigs:
            if id(rig) not in ticked_serially:
                rig.monitor.platform.scheduler.bulk_tick(steps)
        return result

    def advance(self, profile: Profile, steps: int,
                record_every_n: int = 20) -> RunResult:
        """Advance ``steps`` samples across the sharded fleet; one
        window's merged traces out.

        The windowed counterpart of :meth:`run` and the sharded
        implementation of the PR 6 ``advance/offset`` contract:
        consecutive windows concatenated time-wise are bit-identical to
        one uninterrupted run, for any window boundaries and any worker
        scheduling.  On the first call each shard's rigs are folded
        into a pickled :class:`BatchEngine` blob; every window ships
        each blob to a fresh single-process worker and stores the
        advanced blob it sends back, so between windows the complete
        run state lives in the parent — ready to be checkpointed by
        pickling this engine.

        A worker that dies, hangs or fails to pickle degrades that
        shard's window to an in-process advance of the same blob
        (``shard.fallbacks`` counts these); deterministic simulation
        errors re-raise immediately, exactly as in :meth:`run`.

        Raises
        ------
        ConfigurationError
            On non-positive ``steps``/``record_every_n``, or if
            :meth:`run` already consumed the fleet.
        SensorFault
            On membrane burst or housing overpressure, exactly as the
            serial engine would.
        """
        if steps < 1:
            raise ConfigurationError("advance needs at least one step")
        if record_every_n < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        self._require_open()
        if self._ran:
            raise ConfigurationError(
                "this engine's fleet was consumed by run(); build a "
                "fresh ShardedEngine to advance in windows")
        if not self._rigs:
            raise ConfigurationError("every rig was dropped; nothing to "
                                     "advance")
        if self._backend == "shm":
            with get_tracer().span("shm.advance",
                                   n_monitors=len(self._rigs),
                                   workers=self._workers, steps=steps):
                window = self._advance_shm(profile, steps, record_every_n)
            for rig in self._rigs:
                rig.monitor.platform.scheduler.bulk_tick(steps)
            self._offset += steps
            return window
        if self._blobs is None:
            self._bounds = partition_monitors(len(self._rigs), self._workers)
            self._sizes = [stop - start for start, stop in self._bounds]
            self._blobs = [
                pickle.dumps(
                    BatchEngine(self._rigs[start:stop],
                                chunk_size=self._chunk,
                                numerics=self._numerics),
                    protocol=pickle.HIGHEST_PROTOCOL)
                for start, stop in self._bounds
            ]
        with get_tracer().span("shard.advance", n_monitors=len(self._rigs),
                               workers=self._workers, steps=steps):
            window = self._advance_window(profile, steps, record_every_n)
        # Mirror the serial engine's scheduler accounting on the parent
        # rigs (the live state advanced inside the blobs).
        for rig in self._rigs:
            rig.monitor.platform.scheduler.bulk_tick(steps)
        self._offset += steps
        return window

    def _advance_window(self, profile: Profile, steps: int,
                        record_every_n: int) -> RunResult:
        """Ship every shard blob out for one window, collect in order.

        One single-process executor per shard, submitted concurrently;
        infrastructure failures degrade that shard to an in-process
        advance of the same blob (the blob is only replaced by a
        *successful* attempt, so a fallback resumes from exactly the
        state the failed worker started with).
        """
        registry = get_registry()
        tracer = get_tracer()
        event_log = get_event_log()
        profiler = get_profiler()
        observing = registry.enabled
        collecting = (observing or tracer.enabled or event_log.enabled
                      or profiler.enabled)
        telemetry = (TelemetryRequest(trace_context=tracer.current_context(),
                                      profile=profiler.enabled)
                     if collecting else None)
        n_shards = len(self._blobs)
        executors: dict[int, ProcessPoolExecutor] = {}
        futures: dict[int, object] = {}
        results: dict[int, RunResult] = {}
        harvests: dict[int, TelemetryHarvest] = {}
        fallback: list[int] = []
        try:
            for i in range(n_shards):
                executors[i] = ProcessPoolExecutor(max_workers=1)
                futures[i] = executors[i].submit(
                    _advance_shard, i, self._blobs[i], profile, steps,
                    record_every_n, telemetry)
            for i in range(n_shards):
                try:
                    index, block, new_blob, harvest = futures[i].result(
                        timeout=self._timeout_s)
                    results[index] = block
                    self._blobs[index] = new_blob
                    if harvest is not None:
                        harvests[index] = harvest
                    executors.pop(i).shutdown(wait=True)
                except ReproError:
                    raise
                except Exception:
                    _terminate(executors.pop(i))
                    fallback.append(i)
        finally:
            for executor in executors.values():
                _terminate(executor)
        for i in fallback:
            if observing:
                registry.counter(
                    "shard.fallbacks",
                    "shards degraded to the serial in-process "
                    "engine").inc()
            engine = pickle.loads(self._blobs[i])
            results[i] = engine.advance(profile, steps,
                                        record_every_n=record_every_n)
            self._blobs[i] = pickle.dumps(
                engine, protocol=pickle.HIGHEST_PROTOCOL)
        for i in range(n_shards):
            harvest = harvests.get(i)
            if harvest is not None:
                merge_harvest(harvest, registry=registry, tracer=tracer,
                              event_log=event_log, profiler=profiler)
        return RunResult.concat([results[i] for i in range(n_shards)])

    def _run_sharded(
            self, profile: Profile, record_every_n: int,
    ) -> tuple[RunResult, list[tuple[int, int]]]:
        """Submit shards, collect blocks, retry/fallback, merge.

        Returns the merged result plus the ``(start, stop)`` bounds of
        every shard that degraded to the in-process fallback (those
        parent rigs were consumed — and scheduler-ticked — serially).
        """
        registry = get_registry()
        tracer = get_tracer()
        event_log = get_event_log()
        profiler = get_profiler()
        observing = registry.enabled
        # Ask workers to collect telemetry when *any* parent sink is on
        # (each sink re-gates itself at merge time); the trace context
        # captured here is the live "shard.run" span, so worker spans
        # nest under it.
        collecting = (observing or tracer.enabled or event_log.enabled
                      or profiler.enabled)
        telemetry = (TelemetryRequest(trace_context=tracer.current_context(),
                                      profile=profiler.enabled)
                     if collecting else None)
        bounds = partition_monitors(len(self._rigs), self._workers)
        if observing:
            registry.gauge("shard.workers").set(self._workers)
            registry.counter("shard.runs").inc()
            worker_hist = registry.histogram(
                "shard.worker_s", "per-shard worker wall time")

        executors: dict[int, ProcessPoolExecutor] = {}
        futures: dict[int, object] = {}
        deadlines: dict[int, float | None] = {}
        started: dict[int, float] = {}
        attempts = {i: 0 for i in range(len(bounds))}
        results: dict[int, RunResult] = {}
        harvests: dict[int, TelemetryHarvest] = {}
        fallback: list[int] = []

        def launch(i: int) -> None:
            # One single-process executor per shard: a crashed or hung
            # worker cannot contaminate its siblings' futures.
            start, stop = bounds[i]
            executors[i] = ProcessPoolExecutor(max_workers=1)
            futures[i] = executors[i].submit(
                _run_shard, i, self._rigs[start:stop], profile,
                record_every_n, self._chunk, self._numerics, telemetry)
            started[i] = time.perf_counter()
            deadlines[i] = (None if self._timeout_s is None
                            else started[i] + self._timeout_s)

        try:
            queue = list(range(len(bounds)))
            for i in queue:
                launch(i)
            cursor = 0
            while cursor < len(queue):
                i = queue[cursor]
                cursor += 1
                deadline = deadlines[i]
                timeout = (None if deadline is None
                           else max(0.0, deadline - time.perf_counter()))
                try:
                    index, block, harvest = futures[i].result(timeout=timeout)
                    results[index] = block
                    if harvest is not None:
                        harvests[index] = harvest
                    if observing:
                        worker_hist.observe(
                            time.perf_counter() - started[i])
                    # The worker already returned; reap it promptly so
                    # no executor lingers into interpreter shutdown.
                    executors.pop(i).shutdown(wait=True)
                except ReproError:
                    # Deterministic simulation outcome (membrane burst,
                    # bad profile, ...): identical on every retry.
                    raise
                except Exception:
                    # Infrastructure failure: timeout, dead worker
                    # (BrokenProcessPool), pickling error, injected
                    # fault — retry on a fresh worker, then fall back.
                    _terminate(executors.pop(i))
                    attempts[i] += 1
                    if attempts[i] <= self._max_retries:
                        if observing:
                            registry.counter(
                                "shard.retries",
                                "shard re-submissions after worker "
                                "failure").inc()
                        launch(i)
                        queue.append(i)
                    else:
                        fallback.append(i)
        finally:
            for executor in executors.values():
                _terminate(executor)

        for i in fallback:
            if observing:
                registry.counter(
                    "shard.fallbacks",
                    "shards degraded to the serial in-process "
                    "engine").inc()
            start, stop = bounds[i]
            results[i] = BatchEngine(
                self._rigs[start:stop], chunk_size=self._chunk,
                numerics=self._numerics).run(
                profile, record_every_n=record_every_n)

        # Fold worker telemetry home in shard-index order — completion
        # order must not leak into the merged registry (determinism).
        # Fallback shards have no harvest: they already ran in-process
        # under the parent sinks.
        for i in range(len(bounds)):
            harvest = harvests.get(i)
            if harvest is not None:
                merge_harvest(harvest, registry=registry, tracer=tracer,
                              event_log=event_log, profiler=profiler)

        merged = RunResult.concat([results[i] for i in range(len(bounds))])
        return merged, [bounds[i] for i in fallback]

    # -- the shm backend -----------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "this engine is closed; build a fresh ShardedEngine")

    def _telemetry_request(self):
        """Worker telemetry request when any parent sink is on (or None)."""
        tracer = get_tracer()
        profiler = get_profiler()
        collecting = (get_registry().enabled or tracer.enabled
                      or get_event_log().enabled or profiler.enabled)
        if not collecting:
            return None
        return TelemetryRequest(trace_context=tracer.current_context(),
                                profile=profiler.enabled)

    @staticmethod
    def _check_replies(replies: dict[int, tuple]) -> dict[int, object]:
        """Split pool replies into payloads; raise on any failure.

        Deterministic :class:`~repro.errors.ReproError` re-raises
        as itself (lowest shard first — merge order, not completion
        order); any infrastructure failure raises
        :class:`~repro.runtime.shm.PoolWorkerError`.
        """
        payloads: dict[int, object] = {}
        infra: tuple[int, Exception] | None = None
        for index in sorted(replies):
            status, payload, _ = replies[index]
            if status == "ok":
                payloads[index] = payload
            elif isinstance(payload, ReproError):
                raise payload
            elif infra is None:
                infra = (index, payload)
        if infra is not None:
            index, exc = infra
            raise PoolWorkerError(
                f"shm pool worker for shard {index} failed: {exc}") from exc
        return payloads

    def _shard_starts(self) -> list[int]:
        """Row offsets of each live shard in the merged fleet layout."""
        starts, cursor = [], 0
        for size in self._sizes:
            starts.append(cursor)
            cursor += size
        return starts

    def _load_shm(self) -> None:
        """Load each shard's engine into the persistent pool, once.

        Fresh engines are pickled from the parent rigs; an engine
        restored from a checkpoint re-loads its dumped blobs instead
        (``_pending_blobs``), resuming bit-exactly from the cut point.
        """
        if self._eids is not None:
            return
        if self._sizes is None:
            self._bounds = partition_monitors(len(self._rigs), self._workers)
            self._sizes = [stop - start for start, stop in self._bounds]
        if self._pending_blobs is not None:
            blobs, self._pending_blobs = self._pending_blobs, None
        else:
            blobs = [
                pickle.dumps(
                    BatchEngine(self._rigs[start:stop],
                                chunk_size=self._chunk,
                                numerics=self._numerics),
                    protocol=pickle.HIGHEST_PROTOCOL)
                for start, stop in self._bounds
            ]
        pool = get_pool(len(blobs))
        eids = [next_engine_id() for _ in blobs]
        replies = pool.call_many(
            {i: ("load", eids[i], blobs[i]) for i in range(len(blobs))},
            timeout=self._timeout_s)
        self._check_replies(replies)
        self._eids = eids
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "shm.loads",
                "shard engines loaded into the pool").inc(len(eids))

    def _advance_messages(self, profile: Profile, steps: int,
                          record_every_n: int, eids: list[int],
                          block: SharedBlock | None, n_ticks: int,
                          telemetry) -> dict[int, tuple]:
        """Build one advance command per shard (shard 0 writes time)."""
        starts = self._shard_starts()
        messages = {}
        for i, eid in enumerate(eids):
            spec = {
                "shard": i,
                "profile": profile,
                "steps": steps,
                "record_every_n": record_every_n,
                "shm_name": None if block is None else block.name,
                "n_total": len(self._rigs),
                "n_ticks": n_ticks,
                "row_start": starts[i],
                "write_time": i == 0,
                "telemetry": telemetry,
            }
            messages[i] = ("advance", eid, spec)
        return messages

    def _merge_shm_harvests(self, replies: dict[int, tuple]) -> None:
        """Fold worker telemetry home in shard order (as spawn does)."""
        registry = get_registry()
        tracer = get_tracer()
        event_log = get_event_log()
        profiler = get_profiler()
        for index in sorted(replies):
            status, _, harvest = replies[index]
            if status == "ok" and harvest is not None:
                merge_harvest(harvest, registry=registry, tracer=tracer,
                              event_log=event_log, profiler=profiler)

    @staticmethod
    def _attach_pool_profiles(result: RunResult,
                              profiles: dict[int, dict]) -> RunResult:
        """Sum per-shard profile reports onto the merged result.

        The spawn backend gets this for free from ``RunResult.concat``;
        the zero-copy merge never sees the shard blocks, so the reports
        ride the command replies instead and are folded here.
        """
        stages: dict[str, dict] = {}
        for index in sorted(profiles):
            for name, values in (profiles[index] or {}).items():
                totals = stages.setdefault(
                    name, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0})
                totals["calls"] += int(values.get("calls", 0))
                totals["wall_s"] += float(values.get("wall_s", 0.0))
                totals["cpu_s"] += float(values.get("cpu_s", 0.0))
        if stages:
            result.attach_profile(stages)
        return result

    def _assemble(self, block: SharedBlock | None, n_ticks: int,
                  alloc_s: float) -> RunResult:
        """Zero-copy merge: views over the block, pinned to its life."""
        registry = get_registry()
        if block is None:
            return empty_result(len(self._rigs))
        t0 = time.perf_counter()
        result = RunResult.from_shared(block.buf, len(self._rigs), n_ticks,
                                       keepalive=block)
        if registry.enabled:
            registry.histogram(
                "shm.attach_s",
                "per-window shared-block allocate + view assembly "
                "time").observe(alloc_s + (time.perf_counter() - t0))
            registry.counter("shm.windows",
                             "windows merged zero-copy").inc()
            registry.counter("shm.bytes",
                             "bytes of traces shared, not copied").inc(
                RunResult.shared_layout(len(self._rigs), n_ticks)[1])
        return result

    def _advance_shm(self, profile: Profile, steps: int,
                     record_every_n: int) -> RunResult:
        """One window on the pool: advance commands, zero-copy merge.

        No per-shard fallback here: between windows the live state is
        pool-resident, so a dead worker means the shard's state is gone
        — the window raises :class:`~repro.runtime.shm.PoolWorkerError`
        and a durable caller resumes from its last checkpoint.
        """
        self._load_shm()
        n_ticks = recorded_ticks(self._offset, steps, record_every_n)
        telemetry = self._telemetry_request()
        block = None
        alloc_s = 0.0
        if n_ticks:
            t0 = time.perf_counter()
            block = SharedBlock(
                RunResult.shared_layout(len(self._rigs), n_ticks)[1])
            alloc_s = time.perf_counter() - t0
        pool = get_pool(len(self._eids))
        try:
            replies = pool.call_many(
                self._advance_messages(profile, steps, record_every_n,
                                       self._eids, block, n_ticks,
                                       telemetry),
                timeout=self._timeout_s)
            payloads = self._check_replies(replies)
        except BaseException:
            if block is not None:
                block.close()
            raise
        self._merge_shm_harvests(replies)
        result = self._assemble(block, n_ticks, alloc_s)
        return self._attach_pool_profiles(
            result, {i: payloads[i]["profile"] for i in payloads})

    def _run_shm(self, profile: Profile, record_every_n: int, steps: int,
                 ) -> tuple[RunResult, list[tuple[int, int]]]:
        """One-shot run on the pool, with serial fallback per shard.

        Unlike :meth:`_advance_shm`, the parent rigs still hold the
        whole fleet state here, so a shard whose load or advance fails
        on infrastructure degrades to the serial in-process engine
        (``shard.fallbacks`` counts it) and writes its rows into the
        same shared block — the merged result is identical either way.
        """
        registry = get_registry()
        observing = registry.enabled
        telemetry = self._telemetry_request()
        bounds = partition_monitors(len(self._rigs), self._workers)
        self._bounds = bounds
        self._sizes = [stop - start for start, stop in bounds]
        if observing:
            registry.gauge("shard.workers").set(self._workers)
            registry.counter("shard.runs").inc()
        n_ticks = recorded_ticks(0, steps, record_every_n)
        alloc_s = 0.0
        block = None
        if n_ticks:
            t0 = time.perf_counter()
            block = SharedBlock(
                RunResult.shared_layout(len(self._rigs), n_ticks)[1])
            alloc_s = time.perf_counter() - t0
        pool = get_pool(len(bounds))
        eids = [next_engine_id() for _ in bounds]
        blobs = {
            i: pickle.dumps(
                BatchEngine(self._rigs[start:stop], chunk_size=self._chunk,
                            numerics=self._numerics),
                protocol=pickle.HIGHEST_PROTOCOL)
            for i, (start, stop) in enumerate(bounds)
        }
        fallback: list[int] = []
        try:
            loaded = pool.call_many(
                {i: ("load", eids[i], blobs[i]) for i in blobs},
                timeout=self._timeout_s)
            for i in sorted(loaded):
                if loaded[i][0] != "ok":
                    if isinstance(loaded[i][1], ReproError):
                        raise loaded[i][1]
                    fallback.append(i)
            live = [i for i in range(len(bounds)) if i not in fallback]
            messages = self._advance_messages(
                profile, steps, record_every_n, eids, block, n_ticks,
                telemetry)
            replies = pool.call_many(
                {i: messages[i] for i in live}, timeout=self._timeout_s)
            profiles: dict[int, dict] = {}
            for i in sorted(replies):
                if replies[i][0] != "ok":
                    if isinstance(replies[i][1], ReproError):
                        raise replies[i][1]
                    fallback.append(i)
                else:
                    profiles[i] = replies[i][1]["profile"]
            for i in sorted(fallback):
                if observing:
                    registry.counter(
                        "shard.fallbacks",
                        "shards degraded to the serial in-process "
                        "engine").inc()
                start, stop = bounds[i]
                part = BatchEngine(
                    self._rigs[start:stop], chunk_size=self._chunk,
                    numerics=self._numerics).run(
                    profile, record_every_n=record_every_n)
                profiles[i] = part.profile()
                if block is not None:
                    write_block_rows(block.buf, part, len(self._rigs),
                                     n_ticks, start, write_time=i == 0)
            self._merge_shm_harvests(replies)
            result = self._attach_pool_profiles(
                self._assemble(block, n_ticks, alloc_s), profiles)
        except BaseException:
            if block is not None:
                block.close()
            raise
        finally:
            # The run consumed the fleet: evict the pool-resident
            # engines (best-effort — dead workers have nothing loaded).
            pool.call_many({i: ("unload", eids[i]) for i in range(len(eids))},
                           timeout=self._timeout_s, spawn_missing=False)
        return result, [bounds[i] for i in fallback]

    # -- fleet surgery and lifecycle -----------------------------------------

    def drop(self, indices) -> None:
        """Permanently remove monitors from the live windowed fleet.

        The sharded counterpart of :meth:`BatchEngine.drop
        <repro.runtime.batch.BatchEngine.drop>`, routing each global
        index to its shard: spawn blobs are unpickled, dropped and
        re-pickled; shm shards receive a ``drop`` command (their
        engines mutate in place inside the pool).  Shards emptied
        entirely are retired.  Indices are engine-local fleet rows, as
        everywhere else; later windows simply omit the dropped rows.

        Raises
        ------
        ConfigurationError
            On out-of-range or duplicate indices, after :meth:`run`
            consumed the fleet, or on a closed engine.
        """
        self._require_open()
        if self._ran:
            raise ConfigurationError(
                "this engine's fleet was consumed by run(); nothing "
                "left to drop")
        wanted = [int(i) for i in indices]
        drop = sorted(set(wanted))
        if len(drop) != len(wanted):
            raise ConfigurationError("duplicate drop indices")
        for i in drop:
            if not 0 <= i < len(self._rigs):
                raise ConfigurationError(
                    f"drop index {i} out of range [0, {len(self._rigs)})")
        if not drop:
            return
        if self._sizes is not None:
            # Live shards exist: route global rows to (shard, local).
            starts = self._shard_starts()
            per_shard: dict[int, list[int]] = {}
            for row in drop:
                shard = 0
                while (shard + 1 < len(starts)
                       and row >= starts[shard + 1]):
                    shard += 1
                per_shard.setdefault(shard, []).append(row - starts[shard])
            if self._eids is not None:
                pool = get_pool(len(self._eids))
                replies = pool.call_many(
                    {shard: ("drop", self._eids[shard], local)
                     for shard, local in per_shard.items()},
                    timeout=self._timeout_s)
                self._check_replies(replies)
            elif self._blobs is not None:
                for shard, local in per_shard.items():
                    engine = pickle.loads(self._blobs[shard])
                    engine.drop(local)
                    self._blobs[shard] = pickle.dumps(
                        engine, protocol=pickle.HIGHEST_PROTOCOL)
            for shard, local in per_shard.items():
                self._sizes[shard] -= len(local)
            empty = [s for s, size in enumerate(self._sizes) if size == 0]
            if empty:
                if self._eids is not None:
                    pool.call_many(
                        {s: ("unload", self._eids[s]) for s in empty},
                        timeout=self._timeout_s, spawn_missing=False)
                for s in reversed(empty):
                    del self._sizes[s]
                    if self._eids is not None:
                        del self._eids[s]
                    if self._blobs is not None:
                        del self._blobs[s]
        keep = [i for i in range(len(self._rigs)) if i not in set(drop)]
        self._rigs = [self._rigs[i] for i in keep]
        self._workers = min(self._workers, max(1, len(self._rigs)))

    def close(self) -> None:
        """Release pool-resident state deterministically (idempotent).

        Evicts this engine's shard engines from the shm pool (the pool
        itself is shared and stays up — ``Session.close`` or
        :func:`repro.runtime.shm.shutdown_pool` owns its lifetime).  A
        closed engine refuses further runs.  Safe to call on any
        backend; spawn engines hold no external state.
        """
        if self._closed:
            return
        self._closed = True
        eids, self._eids = self._eids, None
        if eids:
            pool = existing_pool()
            if pool is not None:
                pool.call_many(
                    {i: ("unload", eid) for i, eid in enumerate(eids)},
                    timeout=5.0, spawn_missing=False)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _dump_blobs(self) -> list[bytes]:
        """Dump pool-resident shard engines back into pickled blobs."""
        pool = get_pool(len(self._eids))
        replies = pool.call_many(
            {i: ("dump", eid) for i, eid in enumerate(self._eids)},
            timeout=self._timeout_s)
        payloads = self._check_replies(replies)
        return [payloads[i] for i in range(len(self._eids))]

    def __getstate__(self):
        """Pickle an shm engine as owned bytes, never pool references.

        A spawn engine pickles as-is (its window state already lives in
        ``_blobs``).  An shm engine with pool-resident shards dumps
        them into ``_pending_blobs`` first — this is what lets
        :func:`repro.runtime.checkpoint.save_checkpoint` capture a
        running shm engine; unpickling re-loads the blobs into the
        pool on the next window.
        """
        state = dict(self.__dict__)
        if self._eids is not None:
            state["_pending_blobs"] = self._dump_blobs()
            state["_eids"] = None
        return state
