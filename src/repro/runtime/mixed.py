"""Heterogeneous fleets: config-equivalence grouping and the MixedEngine.

The vectorized :class:`~repro.runtime.batch.BatchEngine` requires a
*structurally homogeneous* fleet — every rig the same configs modulo
seeds.  City-scale deployments are not homogeneous: meters differ in
loop rate knobs, overtemperature, drive scheme, housing class.  This
module lifts the restriction without touching the hot path:

- :func:`config_group_key` condenses everything the batch engine's
  homogeneity validation compares into one canonical hash (built from
  the configs' ``to_dict`` forms with seeds zeroed, plus the handful of
  instance-level clocks the engine also checks);
- :func:`fleet_groups` partitions an arbitrary rig list into
  config-equivalence groups by that key, preserving caller order
  inside each group;
- :class:`MixedEngine` runs each group on its own ``BatchEngine`` and
  interleaves the blocks back into caller order with the
  permutation-aware :meth:`RunResult.concat
  <repro.runtime.result.RunResult.concat>` — so every rig's trace is
  *bit-identical* to running its config group alone, while the caller
  keeps one flat fleet index.

Per-rig diversity *within* a group (resistor tolerances, calibration
constants, housing state, noise streams) rides along exactly as it
always did; only structural differences split groups.  Groups must
still share one loop rate and line clock, because the merged result
needs a single time base.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

from repro.errors import ConfigurationError
from repro.conditioning.drive import PulsedDrive
from repro.runtime.batch import BatchEngine
from repro.runtime.result import RunResult
from repro.station.profiles import Profile
from repro.station.rig import TestRig

__all__ = ["MixedEngine", "config_group_key", "fleet_groups"]


def config_group_key(rig: TestRig) -> str:
    """Canonical config-equivalence key of one rig (a short hex hash).

    Two rigs with equal keys can share one
    :class:`~repro.runtime.batch.BatchEngine`: the key covers every
    quantity the engine's homogeneity validation compares — the sensor
    / monitor / controller configs (``to_dict`` with seeds zeroed), the
    platform loop rate and channel configuration, drive scheme and
    phase, PI configs, the shared line plant (config modulo seed, the
    turbulence floor/length/min-speed, bulk start state), the reference
    meter parameters, and the resistor materials.  Realized per-rig
    values (trims, calibration constants, housing state, turbulence
    intensity, noise streams) are deliberately *excluded*: they are the
    in-group diversity the engine already carries per monitor.
    """
    mon = rig.monitor
    sen = mon.sensor
    ctrl = mon.controller
    est = mon.estimator
    plat = mon.platform
    line = rig.line
    ref = rig.reference
    drive = ctrl.drive
    drive_sig: list = [type(drive).__name__]
    if isinstance(drive, PulsedDrive):
        drive_sig += [drive.period_s, drive.duty, drive.blanking_s,
                      drive._t]
    channels = []
    for ch in plat.channels[:2]:
        channels.append([
            repr(ch.config.afe),
            bool(ch.config.bit_true_adc),
            type(ch.adc).__name__,
            repr(ch.anti_alias._coeffs),
            ch.digital_lpf.alpha,
            repr(ch.digital_lpf.qformat),
            ch.adc._thermal_rms_v, ch.adc._lsb_v,
            ch.adc._min_code, ch.adc._max_code,
        ])
    dacs = [[dac.settling_time_s, dac.lsb_v, dac.max_code]
            for dac in (plat.supply_dac_a, plat.supply_dac_b)]
    noise = line._noise.config
    payload = [
        replace(sen.config, seed=0).to_dict(),
        mon.config.to_dict(),
        ctrl.config.to_dict(),
        plat.loop_rate_hz,
        [bool(est.config.use_direction),
         bool(est.config.temperature_compensation), bool(est._primed)],
        drive_sig,
        channels,
        dacs,
        [repr(ctrl.pi_a.config), repr(ctrl.pi_b.config)],
        [repr(replace(line.config, seed=0)),
         noise.floor_mps, noise.integral_length_m, noise.min_speed_mps,
         line._speed, line._pressure, line._temperature, line._time_s],
        [type(ref).__name__,
         getattr(ref, "full_scale_mps", None),
         getattr(ref, "accuracy_of_reading", None),
         getattr(ref, "resolution_fraction_fs", None),
         getattr(ref, "response_time_s", None)],
        [[h.material.tcr_per_k, h.reference_temperature_k]
         for h in (sen.heater_a, sen.heater_b)],
        [sen.reference.material.tcr_per_k,
         sen.reference.reference_temperature_k, sen.reference.nominal_ohm],
        [sen.bridge_a.r_series_ohm, sen.bridge_b.r_series_ohm],
    ]
    blob = json.dumps(payload, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def fleet_groups(rigs: list[TestRig]) -> dict[str, list[int]]:
    """Partition a rig list into config-equivalence groups.

    Returns an ordered mapping of :func:`config_group_key` to the
    caller indices carrying that key, in first-occurrence order; the
    indices inside each group keep caller order.  A homogeneous fleet
    yields exactly one group.

    Raises
    ------
    ConfigurationError
        If the list is empty.
    """
    if not rigs:
        raise ConfigurationError("need at least one rig to group")
    groups: dict[str, list[int]] = {}
    for i, rig in enumerate(rigs):
        groups.setdefault(config_group_key(rig), []).append(i)
    return groups


class _MixGroup:
    """One config-equivalence group inside a :class:`MixedEngine`."""

    __slots__ = ("key", "positions", "rigs", "engine", "dt", "line_time")

    def __init__(self, key: str, positions: list[int], rigs: list[TestRig],
                 chunk_size: int, numerics: str, workers: int | None,
                 backend: str) -> None:
        self.key = key
        self.positions = positions
        self.rigs = rigs
        # The probe validates homogeneity and pins the group's time
        # base either way; it becomes the engine on the serial path.
        probe = BatchEngine(rigs, chunk_size=chunk_size, numerics=numerics)
        self.dt = probe._dt
        self.line_time = probe._line_time
        effective = 0 if workers is None else min(int(workers), len(rigs))
        if effective > 1:
            from repro.runtime.parallel import ShardedEngine
            self.engine = ShardedEngine(rigs, workers=effective,
                                        chunk_size=chunk_size,
                                        numerics=numerics, backend=backend)
        else:
            self.engine = probe


class MixedEngine:
    """Group-by-config sub-batching over an arbitrary rig list.

    Partitions the fleet with :func:`fleet_groups`, runs each group on
    its own :class:`~repro.runtime.batch.BatchEngine`, and interleaves
    the group blocks back into caller order with the permutation-aware
    fleet-axis :meth:`RunResult.concat
    <repro.runtime.result.RunResult.concat>`.  Every rig's trace is
    bit-identical to running its config group alone; row ``i`` of every
    result is caller rig ``i``.  The merged result carries per-row
    :meth:`~repro.runtime.result.RunResult.provenance` of
    ``(group_key, row_in_group)`` pairs.

    The incremental surface mirrors ``BatchEngine`` (:meth:`advance`,
    :meth:`drop`, :attr:`offset`), so the streaming fleet service can
    host mixed cohorts on exactly the contract it already leans on.
    Like the batch engine, a mixed engine *consumes* its rigs.

    Parameters
    ----------
    rigs:
        Any rig list; structural diversity is handled by grouping.
        Groups must share one loop rate and line clock (the merged
        result needs a single time base).
    chunk_size / numerics:
        Forwarded to every group's ``BatchEngine``.
    workers / backend:
        With ``workers > 1`` each group large enough to shard runs on
        its own :class:`~repro.runtime.parallel.ShardedEngine`
        (``min(workers, group size)`` shards, on the given backend —
        ``"spawn"`` or ``"shm"``), *including* the incremental
        :meth:`advance`/:meth:`drop` surface — this is how the fleet
        service and durable runs parallelize cohort ticks.  Groups of
        one rig stay on a plain ``BatchEngine``.  Bit-identical either
        way.

    Raises
    ------
    ConfigurationError
        If the fleet is empty, a group trips the batch engine's own
        validation, or the groups do not share a loop rate / line
        start state (``reason="heterogeneous"``).
    """

    def __init__(self, rigs: list[TestRig], chunk_size: int = 1024,
                 numerics: str = "exact", workers: int | None = None,
                 backend: str = "spawn") -> None:
        grouped = fleet_groups(rigs)
        self._workers = None if workers is None else int(workers)
        self._backend = backend
        self._groups = [
            _MixGroup(key, positions, [rigs[i] for i in positions],
                      chunk_size, numerics, self._workers, backend)
            for key, positions in grouped.items()
        ]
        self._n = len(rigs)
        self._chunk = int(chunk_size)
        self._numerics = self._groups[0].engine.numerics
        self._offset = 0
        self._spent = False
        g0 = self._groups[0]
        for g in self._groups[1:]:
            if g.dt != g0.dt:
                raise ConfigurationError(
                    f"config groups {g0.key} and {g.key} differ in loop "
                    f"rate; a mixed fleet needs one shared time base",
                    reason="heterogeneous")
            if g.line_time != g0.line_time:
                raise ConfigurationError(
                    f"config groups {g0.key} and {g.key} differ in line "
                    f"start time; a mixed fleet needs one shared clock",
                    reason="heterogeneous")

    # -- introspection -------------------------------------------------------

    @property
    def n_monitors(self) -> int:
        """Rigs currently in the fleet (caller rows of every result)."""
        return self._n

    @property
    def numerics(self) -> str:
        """The resolved numerics mode shared by every group engine."""
        return self._numerics

    @property
    def groups(self) -> list[tuple[str, tuple[int, ...]]]:
        """``(group_key, caller_positions)`` per config group, in
        first-occurrence order — the partition provenance."""
        return [(g.key, tuple(g.positions)) for g in self._groups]

    @property
    def group_keys(self) -> list[str]:
        """Each caller row's config-group key, in caller order."""
        keys = [""] * self._n
        for g in self._groups:
            for pos in g.positions:
                keys[pos] = g.key
        return keys

    @property
    def offset(self) -> int:
        """Samples already advanced (shared by every group engine)."""
        return self._offset

    # -- execution -----------------------------------------------------------

    def _merge(self, blocks: list[RunResult]) -> RunResult:
        """Interleave group blocks back into caller order."""
        if len(self._groups) == 1 and \
                self._groups[0].positions == list(range(self._n)):
            # Identity layout: the single group *is* the fleet — hand
            # its block through untouched (byte-identical fast path).
            block = blocks[0]
            block._provenance = [(self._groups[0].key, r)
                                 for r in range(block.n_monitors)]
            return block
        merged = RunResult.concat(
            blocks, axis="fleet",
            indices=[g.positions for g in self._groups])
        merged._provenance = [
            (self._groups[p].key, r) for p, r in merged.provenance()]
        return merged

    def run(self, profile: Profile, record_every_n: int = 20,
            workers: int | None = None,
            backend: str = "spawn") -> RunResult:
        """Execute a profile over the whole mixed fleet.

        With ``workers`` left at None (or 1) every group advances on
        the engine it was built with — serial ``BatchEngine`` groups by
        default, sharded groups if the constructor fixed ``workers``.
        Passing ``workers > 1`` *here* is the legacy one-shot spelling:
        each group is sharded within itself on a fresh
        :class:`~repro.runtime.parallel.ShardedEngine` (capped at the
        group size, on ``backend``), and the engine is consumed —
        further :meth:`run`/:meth:`advance` calls are refused.  Every
        path is bit-identical for any worker count.

        Raises
        ------
        ConfigurationError
            On an empty profile, non-positive decimation, a consumed
            engine, or a one-shot ``workers`` on an engine whose
            workers were already fixed at construction.
        SensorFault
            Propagated from any group (membrane burst, overpressure).
        """
        if workers is None or workers == 1:
            dt = self._groups[0].dt if self._groups else 1.0
            steps = int(round(profile.duration_s / dt))
            if steps < 1:
                raise ConfigurationError("profile shorter than one loop tick")
            return self.advance(profile, steps, record_every_n)
        if self._workers is not None and self._workers != 1:
            raise ConfigurationError(
                "workers were fixed at construction; run() without a "
                "workers override")
        self._require_live()
        from repro.runtime.parallel import ShardedEngine
        self._spent = True
        blocks = [
            ShardedEngine(g.rigs, workers=min(int(workers), len(g.rigs)),
                          chunk_size=self._chunk,
                          numerics=self._numerics, backend=backend).run(
                profile, record_every_n=record_every_n)
            for g in self._groups
        ]
        return self._merge(blocks)

    def advance(self, profile: Profile, steps: int,
                record_every_n: int = 20) -> RunResult:
        """Advance every group ``steps`` samples from :attr:`offset`.

        The incremental form of :meth:`run`, mirroring
        :meth:`BatchEngine.advance
        <repro.runtime.batch.BatchEngine.advance>`: the same absolute
        step offsets, the same bit-exact window-slicing contract, with
        the window interleaved back into caller order.

        Raises
        ------
        ConfigurationError
            On a non-positive step count or decimation, a consumed
            engine, or if every rig has been :meth:`drop`-ped.
        SensorFault
            Propagated from any group.
        """
        self._require_live()
        if not self._groups:
            raise ConfigurationError("every rig was dropped from the engine")
        blocks = [g.engine.advance(profile, steps, record_every_n)
                  for g in self._groups]
        self._offset = self._groups[0].engine.offset
        return self._merge(blocks)

    def drop(self, indices: list[int]) -> None:
        """Remove caller rows from the fleet between advances.

        Each index is routed to its group's
        :meth:`BatchEngine.drop <repro.runtime.batch.BatchEngine.drop>`
        (survivor bits untouched); surviving caller positions shift
        left to fill the gaps, exactly as a flat engine's would, and
        emptied groups are discarded.

        Raises
        ------
        ConfigurationError
            On an out-of-range or duplicated index, or a consumed
            engine.
        """
        self._require_live()
        drop_set = set()
        for j in indices:
            j = int(j)
            if not 0 <= j < self._n:
                raise ConfigurationError(
                    f"drop index {j} out of range for fleet of {self._n}")
            if j in drop_set:
                raise ConfigurationError(f"drop index {j} given twice")
            drop_set.add(j)
        if not drop_set:
            return
        keep = [j for j in range(self._n) if j not in drop_set]
        remap = {old: new for new, old in enumerate(keep)}
        survivors = []
        for g in self._groups:
            local = [r for r, pos in enumerate(g.positions)
                     if pos in drop_set]
            if local:
                g.engine.drop(local)
                g.rigs = [rig for r, rig in enumerate(g.rigs)
                          if r not in set(local)]
            g.positions = [remap[pos] for pos in g.positions
                           if pos in remap]
            if g.positions:
                survivors.append(g)
        self._groups = survivors
        self._n = len(keep)

    def close(self) -> None:
        """Release group engines that hold external state (idempotent).

        Sharded groups evict their pool-resident shard engines
        (:meth:`ShardedEngine.close
        <repro.runtime.parallel.ShardedEngine.close>`); serial groups
        have nothing to release.  The fleet service calls this when a
        cohort finishes, fails or is discarded.
        """
        for g in self._groups:
            close = getattr(g.engine, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "MixedEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_live(self) -> None:
        """Refuse use after the one-shot workers path consumed the rigs."""
        if self._spent:
            raise ConfigurationError(
                "this MixedEngine was consumed by a workers run; build a "
                "fresh one (or use repro.runtime.Session, which "
                "re-materializes rigs per run)")
