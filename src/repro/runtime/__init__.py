"""Batched fleet runtime: vectorized engine + session lifecycle.

``repro.runtime`` is the fleet-scale front door of the reproduction:

- :class:`Session` / :class:`MonitorHandle` — the
  ``open() -> calibrate() -> run(profile) -> close()`` lifecycle that
  owns N calibrated monitoring points,
- :class:`BatchEngine` / :func:`run_batch` — the chunk-vectorized
  engine advancing N monitors x K samples per call, bit-identical to
  the scalar loops it replaces,
- :class:`ShardedEngine` (:mod:`repro.runtime.parallel`) — the same
  fleet partitioned across worker processes, bit-identical to the
  serial engine for any shard count, with bounded retry and serial
  fallback on worker failure,
- :class:`ShmPool` / :func:`get_pool` / :func:`shutdown_pool`
  (:mod:`repro.runtime.shm`) — the persistent worker pool and
  shared-memory trace buffers behind ``backend="shm"``: engines load
  once, stay pool-resident across windows, and shard rows merge
  zero-copy via :meth:`RunResult.from_shared` (see
  ``docs/performance.md``),
- :class:`RunResult` — stacked ``(N, M)`` traces with scalar
  ``RigRecord`` rehydration and shard-block concatenation,
- :class:`MixedEngine` (:mod:`repro.runtime.mixed`) — group-by-config
  sub-batching for *structurally heterogeneous* fleets: rigs are
  partitioned into config-equivalence groups (:func:`config_group_key`
  / :func:`fleet_groups`), each group runs on its own ``BatchEngine``,
  and the blocks interleave back into caller order bit-identically,
- :class:`FleetSpec` / :class:`RigSpec` (:mod:`repro.runtime.spec`) —
  the one declarative fleet description (per-rig config + count + seed
  + scenario) accepted by ``run_batch``, ``Session``,
  ``characterize_meter_pool``, the service facade and the CLI,
- :class:`Numerics` (:mod:`repro.runtime.kernels`) — the numerics
  policy behind the unified ``numerics="exact" | "fast"`` knob every
  run surface accepts (see ``docs/performance.md``),
- :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`run_durable` (:mod:`repro.runtime.checkpoint`) — bit-exact
  engine checkpoints and the windowed durable-run loop behind
  ``Session(checkpoint_dir=...)`` (see ``docs/durability.md``).

The scalar classes (`TestRig`, `CTAController`, ...) remain the
reference implementation; the parity tests hold all three paths to
bit-identical outputs on shared seeds.
"""

from repro.runtime.batch import BatchEngine, run_batch
from repro.runtime.checkpoint import (CHECKPOINT_FORMAT_VERSION, Checkpoint,
                                      engine_kind, load_checkpoint,
                                      run_durable, save_checkpoint)
from repro.runtime.kernels import NUMERICS_MODES, Numerics, resolve_numerics
from repro.runtime.mixed import MixedEngine, config_group_key, fleet_groups
from repro.runtime.parallel import (ShardedEngine, partition_monitors,
                                    resolve_workers, spawn_monitor_seeds)
from repro.runtime.result import RunResult
from repro.runtime.session import MonitorHandle, Session
from repro.runtime.shm import (BACKENDS, PoolWorkerError, ShmPool, get_pool,
                               resolve_backend, shutdown_pool)
from repro.runtime.spec import FleetSpec, RigSpec

__all__ = ["BatchEngine", "run_batch", "RunResult", "Session",
           "MonitorHandle", "ShardedEngine", "partition_monitors",
           "resolve_workers", "spawn_monitor_seeds",
           "BACKENDS", "PoolWorkerError", "ShmPool", "get_pool",
           "resolve_backend", "shutdown_pool",
           "MixedEngine", "config_group_key", "fleet_groups",
           "FleetSpec", "RigSpec",
           "NUMERICS_MODES", "Numerics", "resolve_numerics",
           "Checkpoint", "save_checkpoint", "load_checkpoint",
           "run_durable", "engine_kind", "CHECKPOINT_FORMAT_VERSION"]
