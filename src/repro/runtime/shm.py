"""Zero-copy shared-memory parallel runtime: the persistent worker pool.

The spawn backend (:mod:`repro.runtime.parallel`) pays a process fork,
a module import and a full engine pickle round-trip per shard *per
window*, and merges shards by shipping whole trace arrays back through
the executor pipe.  For small fleets and short windows that overhead
dominates — the 1-CPU throughput bench records 0.31x against serial.
This module removes both costs:

- :class:`ShmPool` keeps a **persistent pool of worker processes**
  alive across runs and windows.  A worker receives a shard's pickled
  :class:`~repro.runtime.batch.BatchEngine` exactly once (``load``) and
  afterwards only small ``advance`` commands — the spawn, import and
  engine-pickle costs are amortized over the whole run instead of being
  paid per window.
- Trace output rides **shared memory**: the parent allocates one
  :class:`multiprocessing.shared_memory.SharedMemory` block per window
  (:class:`SharedBlock`), sized by :meth:`RunResult.shared_layout
  <repro.runtime.result.RunResult.shared_layout>`; each worker writes
  its shard's rows in place, and the merge is
  :meth:`RunResult.from_shared
  <repro.runtime.result.RunResult.from_shared>` — pointer assembly over
  the block, not array copies.

Determinism is untouched: workers advance the *same* pickled engines
the spawn backend would, over the same SeedSequence-partitioned rigs,
so the shm backend is bit-identical to the serial engine for any worker
count (``tests/test_shm_parity.py`` holds it to the same golden
archives as every other path).

Ownership and lifetime:

- The parent owns every block.  A block created for a window is handed
  to the merged :class:`RunResult` as its ``keepalive``; when the
  result is garbage-collected the block is closed and unlinked
  (``weakref.finalize``), so traces live exactly as long as their
  result.  Pickling such a result copies the arrays out — a checkpoint
  of shm-backed windows holds owned arrays, never segment references.
- Workers attach blocks by name only for the duration of one write.
  On Python < 3.13 (no ``track=False``) the attachment is explicitly
  unregistered from the resource tracker, so worker exits cannot log
  spurious leaked-segment warnings.
- The process-global pool (:func:`get_pool` / :func:`shutdown_pool`)
  is torn down by ``Session.close()`` after an shm run, and by an
  ``atexit`` hook as a backstop; :class:`ShmPool` is also a context
  manager for callers that want scoped workers.

Observability: ``shm.pool.workers`` gauge, ``shm.pool.spawns`` /
``shm.loads`` / ``shm.windows`` / ``shm.bytes`` counters and the
``shm.attach_s`` histogram (per-window block allocate + view assembly —
the zero-copy overhead the X4 bench bounds), plus ``shm.run`` /
``shm.advance`` parent spans and a ``shm.worker`` span inside each
worker command (harvested over the command pipe exactly like the spawn
backend's ``shard.worker`` spans).
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import pickle
import threading
import time
import weakref
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.observability import get_registry, get_tracer
from repro.observability.remote import (harvest_worker_telemetry,
                                        install_worker_telemetry)
from repro.runtime.result import RunResult

__all__ = ["BACKENDS", "resolve_backend", "recorded_ticks", "SharedBlock",
           "ShmPool", "PoolWorkerError", "get_pool", "shutdown_pool"]

#: Parallel backends understood by every ``backend=`` knob.
BACKENDS = ("spawn", "shm")

#: Engine ids are process-global so independent engines can share the
#: pool (a FleetService cohort next to a Session run) without clashing.
_ENGINE_IDS = itertools.count(1)


class PoolWorkerError(RuntimeError):
    """A pool worker died, hung or answered garbage (infrastructure).

    Deterministic simulation errors (:class:`~repro.errors.ReproError`)
    are *never* wrapped in this — they come back as themselves.
    """


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` knob (``"spawn"`` or ``"shm"``).

    Raises
    ------
    ConfigurationError
        ``reason="backend"`` on an unknown backend name.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown parallel backend {backend!r}; use "
            + " or ".join(repr(b) for b in BACKENDS), reason="backend")
    return backend


def next_engine_id() -> int:
    """A fresh pool-wide engine id (monotonic per process)."""
    return next(_ENGINE_IDS)


def recorded_ticks(offset: int, steps: int, record_every_n: int) -> int:
    """Ticks the decimation records over ``[offset, offset + steps)``.

    The engines record the absolute step indices divisible by
    ``record_every_n`` (the PR 6 windowing contract); this mirrors that
    rule so the parent can size a shared trace block *before* any
    worker runs — the block must fit the window exactly.
    """
    if steps < 1 or record_every_n < 1:
        raise ConfigurationError("steps and record_every_n must be >= 1")
    end = offset + steps
    first = -(-offset // record_every_n) * record_every_n
    if first >= end:
        return 0
    return (end - 1 - first) // record_every_n + 1


def empty_result(n_monitors: int) -> RunResult:
    """An ``(N, 0)`` zero-tick result (window shorter than the stride)."""
    empty = np.empty((n_monitors, 0))
    return RunResult(
        time_s=np.empty(0),
        true_speed_mps=empty,
        reference_mps=empty.copy(),
        measured_mps=empty.copy(),
        direction=np.empty((n_monitors, 0), dtype=np.int64),
        pressure_pa=empty.copy(),
        temperature_k=empty.copy(),
        bubble_coverage=empty.copy(),
    )


# -- shared blocks -----------------------------------------------------------


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    """Unlink then close a parent-owned segment (finalizer body).

    Unlink comes first: it is an OS-level name removal that cannot fail
    on exports, so the segment never outlives its owner in the
    namespace.  If a stray trace view still references the mapping,
    ``close`` raises ``BufferError`` — the map then simply lives until
    the view dies (the data stays valid), with nothing left to leak.
    """
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    try:
        segment.close()
    except BufferError:
        # A trace view still references the mapping (common at
        # interpreter exit, where finalizers outrun result refs).
        # Drop our handles instead: the mmap dies with its last view,
        # the fd closes now, and ``SharedMemory.__del__`` sees an
        # already-closed object instead of re-raising.
        segment._buf = None
        segment._mmap = None
        if segment._fd >= 0:
            try:
                os.close(segment._fd)
            except OSError:
                pass
            segment._fd = -1


def _detached_block() -> None:
    """Pickle placeholder: a block never travels between processes."""
    return None


class SharedBlock:
    """One parent-owned shared-memory segment with deterministic cleanup.

    Created by the parent to hold a window's traces; workers attach by
    :attr:`name` and write their rows in place.  The block is freed
    (closed *and* unlinked) when the last reference dies — typically
    the :class:`~repro.runtime.result.RunResult` holding it as a
    keepalive — or eagerly via :meth:`close`.  Pickling a block yields
    ``None``: results detach into owned arrays when serialized, so a
    checkpoint can never smuggle a segment reference across processes.
    """

    def __init__(self, size: int) -> None:
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(1, int(size)))
        self._finalizer = weakref.finalize(
            self, _release_segment, self._segment)

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._segment.name

    @property
    def size(self) -> int:
        """Mapped size in bytes (>= the requested size)."""
        return self._segment.size

    @property
    def buf(self):
        """The segment's writable memoryview."""
        return self._segment.buf

    def close(self) -> None:
        """Free the segment now (idempotent)."""
        self._finalizer()

    def __reduce__(self):
        return (_detached_block, ())


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker ownership.

    Python 3.13+ has ``track=False`` for exactly this; on older
    interpreters every attach is *registered* with a resource tracker
    as if this process owned the segment.  Compensating afterwards is
    a trap either way: which tracker received the registration depends
    on whether one was already running when this worker forked — a
    worker sharing the parent's tracker must NOT unregister (it would
    strip the parent's own create-registration), while a worker that
    lazily started its own tracker must (or that tracker warns about
    "leaked" segments the parent already unlinked).  So instead of
    guessing, suppress the registration at the source: the attach runs
    with ``resource_tracker.register`` stubbed out, and no tracker
    anywhere ever thinks a worker owns the block.  The pool's command
    loop is single-threaded, so the brief patch cannot race.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def write_block_rows(buf, block: RunResult, n_total: int, n_ticks: int,
                     row_start: int, write_time: bool) -> None:
    """Write one shard's trace block into a shared buffer, in place.

    Used by pool workers (their half of the zero-copy contract) and by
    the parent when a shard degrades to the serial fallback.  ``block``
    must hold exactly ``n_ticks`` recorded ticks — the buffer was sized
    by :func:`recorded_ticks` before the window ran.
    """
    if len(block) != n_ticks:
        raise PoolWorkerError(
            f"shard recorded {len(block)} ticks, expected {n_ticks}")
    offsets, _ = RunResult.shared_layout(n_total, n_ticks)
    if write_time:
        view = np.frombuffer(buf, dtype=np.float64, count=n_ticks,
                             offset=offsets["time_s"])
        view[:] = np.asarray(block.time_s)
    rows = block.n_monitors
    for name in RunResult.STACKED_FIELDS:
        dtype = np.int64 if name == "direction" else np.float64
        view = np.frombuffer(buf, dtype=dtype, count=n_total * n_ticks,
                             offset=offsets[name]).reshape(n_total, n_ticks)
        view[row_start:row_start + rows] = np.asarray(getattr(block, name))


# -- the worker command loop -------------------------------------------------


def _handle(engines: dict, msg: tuple) -> tuple:
    """Execute one pool command; returns ``("ok", payload, harvest)``."""
    op = msg[0]
    if op == "ping":
        return ("ok", os.getpid(), None)
    if op == "load":
        _, eid, blob = msg
        engines[eid] = pickle.loads(blob)
        return ("ok", None, None)
    if op == "dump":
        _, eid = msg
        return ("ok", pickle.dumps(engines[eid],
                                   protocol=pickle.HIGHEST_PROTOCOL), None)
    if op == "drop":
        _, eid, local = msg
        engines[eid].drop(local)
        return ("ok", None, None)
    if op == "unload":
        _, eid = msg
        engines.pop(eid, None)
        return ("ok", None, None)
    if op == "advance":
        _, eid, spec = msg
        # The same fault hook the spawn workers honour, so the failure
        # tests can kill/hang/raise a specific shm shard too.
        from repro.runtime.parallel import _maybe_inject_fault
        _maybe_inject_fault(spec["shard"])
        telemetry = spec["telemetry"]
        previous = (install_worker_telemetry(telemetry)
                    if telemetry is not None else None)
        harvest = None
        try:
            engine = engines[eid]
            with get_tracer().span("shm.worker", shard=spec["shard"],
                                   steps=spec["steps"]):
                block = engine.advance(spec["profile"], spec["steps"],
                                       record_every_n=spec["record_every_n"])
            if spec["shm_name"] is not None:
                segment = _attach_segment(spec["shm_name"])
                try:
                    write_block_rows(segment.buf, block, spec["n_total"],
                                     spec["n_ticks"], spec["row_start"],
                                     spec["write_time"])
                finally:
                    segment.close()
            elif len(block):
                raise PoolWorkerError(
                    f"shard recorded {len(block)} ticks into no buffer")
        finally:
            if previous is not None:
                harvest = harvest_worker_telemetry(previous)
        # Traces travel through the block; the reply carries only the
        # tick count and the shard's per-stage profile report (the
        # spawn backend ships the latter on its result blocks, so the
        # zero-copy path must not lose it).
        return ("ok", {"ticks": len(block), "profile": block.profile()},
                harvest)
    raise PoolWorkerError(f"unknown pool op {op!r}")


def _worker_main(conn) -> None:
    """A pool worker: hold engines, answer commands until ``close``.

    Engines live here between windows — that is the whole point: after
    one ``load`` the parent only ever sends small advance commands.
    Every reply is ``("ok", payload, harvest)`` or
    ``("error", exception, None)``; deterministic
    :class:`~repro.errors.ReproError` travels back as itself, anything
    else is stringified if it fails to pickle.
    """
    engines: dict = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "close":
            break
        try:
            reply = _handle(engines, msg)
        except BaseException as exc:  # noqa: BLE001 — must answer
            try:
                pickle.dumps(exc)
                reply = ("error", exc, None)
            except Exception:
                reply = ("error",
                         PoolWorkerError(f"{type(exc).__name__}: {exc}"),
                         None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# -- the pool ----------------------------------------------------------------


class _Worker:
    """One pool slot: a live process and its command pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ShmPool:
    """A persistent pool of engine-hosting worker processes.

    Workers are spawned lazily by :meth:`ensure` and reused until
    :meth:`close` — a run's second window (or a session's second run)
    pays no process start-up at all.  The pool is index-addressed:
    shard ``i`` of an engine talks to worker ``i``; several engines may
    share the pool (distinct engine ids keep their state apart inside
    each worker).

    The command cycle is synchronous per call: :meth:`call_many` sends
    every message, then collects every reply — the workers compute
    their shards concurrently in between.  A worker that dies or times
    out is terminated and its slot cleared (respawned on the next
    ``ensure``); its failure comes back as an ``("error", exc, None)``
    reply, never as a raised exception, so callers own per-shard
    degradation policy.
    """

    def __init__(self, context=None) -> None:
        self._ctx = context if context is not None \
            else multiprocessing.get_context()
        self._workers: list[_Worker | None] = []
        self._lock = threading.Lock()
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran (a closed pool never respawns)."""
        return self._closed

    @property
    def size(self) -> int:
        """Live worker count."""
        with self._lock:
            return sum(1 for w in self._workers if w is not None)

    def ensure(self, n: int) -> None:
        """Grow the pool to at least ``n`` live workers.

        Raises
        ------
        ConfigurationError
            On a non-positive count or a closed pool.
        """
        if n < 1:
            raise ConfigurationError("pool needs at least one worker")
        with self._lock:
            self._ensure(n)

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(target=_worker_main, args=(child_conn,),
                                    daemon=True, name="repro-shm-worker")
        process.start()
        child_conn.close()
        registry = get_registry()
        if registry.enabled:
            registry.counter("shm.pool.spawns",
                             "pool worker processes started").inc()
        return _Worker(process, parent_conn)

    def _ensure(self, n: int) -> None:
        if self._closed:
            raise ConfigurationError("this worker pool is closed")
        while len(self._workers) < n:
            self._workers.append(None)
        for i in range(n):
            if self._workers[i] is None:
                self._workers[i] = self._spawn()
        registry = get_registry()
        if registry.enabled:
            registry.gauge("shm.pool.workers").set(
                sum(1 for w in self._workers if w is not None))

    def _kill(self, index: int) -> None:
        worker = self._workers[index]
        if worker is None:
            return
        self._workers[index] = None
        try:
            worker.conn.close()
        except Exception:
            pass
        try:
            worker.process.terminate()
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
        except Exception:
            pass

    def call_many(self, messages: dict[int, tuple],
                  timeout: float | None = None,
                  spawn_missing: bool = True) -> dict[int, tuple]:
        """One command cycle: send all messages, collect all replies.

        ``messages`` maps worker index to command tuple.  Replies map
        the same indices to ``("ok", payload, harvest)`` or
        ``("error", exc, None)``.  With ``spawn_missing=False`` dead
        slots are not respawned (used by best-effort teardown: there is
        nothing to unload from a worker that no longer exists).
        """
        if not messages:
            return {}
        out: dict[int, tuple] = {}
        with self._lock:
            if spawn_missing:
                self._ensure(max(messages) + 1)
            elif len(self._workers) <= max(messages):
                self._workers.extend(
                    [None] * (max(messages) + 1 - len(self._workers)))
            live: dict[int, _Worker] = {}
            for index in sorted(messages):
                worker = self._workers[index]
                if worker is None:
                    out[index] = ("error",
                                  PoolWorkerError(f"worker {index} is gone"),
                                  None)
                    continue
                try:
                    worker.conn.send(messages[index])
                    live[index] = worker
                except Exception as exc:
                    self._kill(index)
                    out[index] = ("error", exc, None)
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            for index, worker in live.items():
                try:
                    if deadline is not None:
                        remaining = max(0.0, deadline - time.monotonic())
                        if not worker.conn.poll(remaining):
                            raise PoolWorkerError(
                                f"pool worker {index} timed out")
                    out[index] = worker.conn.recv()
                except Exception as exc:
                    self._kill(index)
                    out[index] = ("error", exc, None)
        return out

    def call(self, index: int, message: tuple,
             timeout: float | None = None) -> tuple:
        """Single-worker :meth:`call_many` convenience."""
        return self.call_many({index: message}, timeout=timeout)[index]

    def close(self) -> None:
        """Stop every worker deterministically (idempotent).

        Sends ``close``, joins, escalates to terminate/kill on a
        stuck worker, and closes the pipes — nothing is left for
        interpreter teardown to warn about.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = [w for w in self._workers if w is not None]
            self._workers = []
        for worker in workers:
            try:
                worker.conn.send(("close",))
            except Exception:
                pass
        for worker in workers:
            try:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
            except Exception:
                pass
            try:
                worker.conn.close()
            except Exception:
                pass
        registry = get_registry()
        if registry.enabled:
            registry.gauge("shm.pool.workers").set(0)

    def __enter__(self) -> "ShmPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- the process-global pool -------------------------------------------------

_POOL: ShmPool | None = None
_POOL_LOCK = threading.Lock()


def get_pool(workers: int | None = None) -> ShmPool:
    """The process-global pool, created on first use.

    With ``workers`` given the pool is grown to at least that many live
    workers.  A pool torn down by :func:`shutdown_pool` (or
    ``Session.close``) is transparently replaced on the next call.
    """
    global _POOL
    with _POOL_LOCK:
        if _POOL is None or _POOL.closed:
            _POOL = ShmPool()
        pool = _POOL
    if workers is not None:
        pool.ensure(workers)
    return pool


def existing_pool() -> ShmPool | None:
    """The live process-global pool, or None — never creates one."""
    with _POOL_LOCK:
        if _POOL is not None and not _POOL.closed:
            return _POOL
        return None


def shutdown_pool() -> None:
    """Tear the process-global pool down (idempotent).

    ``Session.close()`` calls this after an shm-backed run; an
    ``atexit`` hook calls it as a backstop so bare-engine users cannot
    leak worker processes past interpreter shutdown.
    """
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.close()


atexit.register(shutdown_pool)
