"""Session lifecycle for fleet-scale monitor simulation.

A :class:`Session` owns N calibrated monitoring points and runs line
profiles over all of them at once, through either the vectorized batch
engine (default) or the scalar reference path.  The lifecycle is
explicit::

    with Session(n_monitors=16, seed=2024) as session:   # -> open()
        session.calibrate()
        result = session.run(staircase([0, 50, 100], dwell_s=4.0))
    # leaving the block -> close()

``run`` may be called any number of times: each call re-materializes
the rigs from the per-monitor seeds (cheap after the first build thanks
to the calibration cache in :mod:`repro.station.scenarios`), so every
run starts from the same freshly-built state and a batch run is
bit-identical to the scalar run with the same seeds.  Calling a stage
out of order raises :class:`~repro.errors.SessionError`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SessionError
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.monitor import WaterFlowMonitor
from repro.runtime.batch import BatchEngine
from repro.runtime.result import RunResult
from repro.station.profiles import Profile
from repro.station.rig import TestRig
from repro.station.scenarios import build_calibrated_monitor

__all__ = ["Session", "MonitorHandle"]


@dataclass
class MonitorHandle:
    """One monitoring point owned by a session.

    Attributes
    ----------
    index:
        Position in the fleet (row index in every RunResult).
    seed:
        Instance seed spawned from the session seed; determines die
        tolerances, calibration and every noise stream.
    monitor / rig / calibration:
        The most recently materialized monitor, its rig, and the fitted
        calibration.  Re-materialized (same seed, same values) on every
        :meth:`Session.run`.
    """

    index: int
    seed: int
    monitor: WaterFlowMonitor
    rig: TestRig
    calibration: FlowCalibration


class Session:
    """N calibrated monitors with an open/calibrate/run/close lifecycle.

    Parameters
    ----------
    n_monitors:
        Fleet size.
    seed:
        Session seed; per-monitor seeds are spawned from it with
        :class:`numpy.random.SeedSequence`, so fleets with different
        sizes share the leading monitors' realizations.
    loop_rate_hz / overtemperature_k / output_bandwidth_hz /
    use_pulsed_drive / calibration_speeds_cmps / fast_calibration:
        Forwarded to :func:`repro.station.scenarios.build_calibrated_monitor`.
    use_cache:
        Reuse cached calibrations for repeat builds (default True).
    chunk_size:
        Batch-engine noise pre-draw block length.
    """

    def __init__(self, n_monitors: int = 1, seed: int = 42, *,
                 loop_rate_hz: float = 1000.0,
                 overtemperature_k: float = 5.0,
                 output_bandwidth_hz: float = 0.1,
                 use_pulsed_drive: bool = True,
                 calibration_speeds_cmps: list[float] | None = None,
                 fast_calibration: bool = False,
                 use_cache: bool = True,
                 chunk_size: int = 1024) -> None:
        if n_monitors < 1:
            raise ConfigurationError("session needs at least one monitor")
        self.n_monitors = int(n_monitors)
        self.seed = int(seed)
        self._build_kwargs = dict(
            loop_rate_hz=loop_rate_hz,
            overtemperature_k=overtemperature_k,
            output_bandwidth_hz=output_bandwidth_hz,
            use_pulsed_drive=use_pulsed_drive,
            calibration_speeds_cmps=calibration_speeds_cmps,
            fast=fast_calibration,
            use_cache=use_cache,
        )
        self._chunk = int(chunk_size)
        self._state = "new"
        self._seeds: list[int] = []
        self._handles: list[MonitorHandle] = []

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle stage: ``new``, ``open``, ``calibrated`` or ``closed``."""
        return self._state

    def _expect(self, *states: str) -> None:
        if self._state not in states:
            raise SessionError(
                f"session is {self._state!r}; this call requires "
                f"{' or '.join(repr(s) for s in states)}")

    def open(self) -> "Session":
        """Spawn the per-monitor seed stream; must be called first."""
        self._expect("new")
        children = np.random.SeedSequence(self.seed).spawn(self.n_monitors)
        self._seeds = [int(child.generate_state(1)[0]) for child in children]
        self._state = "open"
        return self

    def calibrate(self) -> list[MonitorHandle]:
        """Build and calibrate every monitor; returns the fleet handles.

        The first calibration per seed runs the full §4 campaign; repeat
        materializations hit the calibration cache.
        """
        self._expect("open")
        self._handles = self._materialize()
        self._state = "calibrated"
        return self._handles

    def run(self, profile: Profile, engine: str = "batch",
            record_every_n: int = 20) -> RunResult:
        """Run a line profile over the fleet; decimated traces out.

        ``engine="batch"`` uses the vectorized :class:`BatchEngine`;
        ``engine="scalar"`` runs each rig through the per-sample
        reference path and stacks the records.  Both start from freshly
        materialized rigs, so with the same seeds the two engines return
        bit-identical traces.
        """
        self._expect("calibrated")
        if engine not in ("batch", "scalar"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; use 'batch' or 'scalar'")
        self._handles = self._materialize()
        rigs = [handle.rig for handle in self._handles]
        if engine == "batch":
            return BatchEngine(rigs, chunk_size=self._chunk).run(
                profile, record_every_n=record_every_n)
        return RunResult.from_records(
            [rig.run(profile, record_every_n=record_every_n) for rig in rigs])

    def close(self) -> None:
        """End the session; any further stage call raises SessionError."""
        self._state = "closed"
        self._handles = []

    # -- conveniences --------------------------------------------------------

    @property
    def monitors(self) -> list[MonitorHandle]:
        """The fleet handles (valid after :meth:`calibrate`)."""
        self._expect("calibrated")
        return list(self._handles)

    def __enter__(self) -> "Session":
        if self._state == "new":
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _materialize(self) -> list[MonitorHandle]:
        return [
            MonitorHandle(index=i, seed=s,
                          monitor=setup.monitor, rig=setup.rig,
                          calibration=setup.calibration)
            for i, s in enumerate(self._seeds)
            for setup in (build_calibrated_monitor(seed=s,
                                                   **self._build_kwargs),)
        ]
