"""Session lifecycle for fleet-scale monitor simulation.

A :class:`Session` owns N calibrated monitoring points and runs line
profiles over all of them at once, through either the vectorized batch
engine (default) or the scalar reference path.  The lifecycle is
explicit::

    with Session(n_monitors=16, seed=2024) as session:   # -> open()
        session.calibrate()
        result = session.run(staircase([0, 50, 100], dwell_s=4.0))
    # leaving the block -> close()

``run`` may be called any number of times: each call re-materializes
the rigs from the per-monitor seeds (cheap after the first build thanks
to the calibration cache in :mod:`repro.station.scenarios`), so every
run starts from the same freshly-built state and a batch run is
bit-identical to the scalar run with the same seeds.  Calling a stage
out of order raises :class:`~repro.errors.SessionError`.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from repro.errors import ConfigurationError, SessionError
from repro.observability import (get_event_log, get_profiler,
                                 get_registry, get_tracer)
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.monitor import WaterFlowMonitor
from repro.runtime.batch import BatchEngine
from repro.runtime.kernels import resolve_numerics
from repro.runtime.result import RunResult
from repro.runtime.spec import FleetSpec, warn_once
from repro.station.profiles import Profile
from repro.station.rig import TestRig
from repro.station.scenarios import build_calibrated_monitor, \
    calibration_cache_stats

__all__ = ["Session", "MonitorHandle", "resolve_record_every_n"]


def resolve_record_every_n(dt_s: float, snapshot_s: float | None,
                           record_every_n: int | None,
                           default: int = 20) -> int:
    """Resolve the unified ``snapshot_s`` cadence to a decimation count.

    ``snapshot_s`` (seconds between recorded points) and the legacy
    ``record_every_n`` (loop ticks between recorded points) are two
    spellings of one knob; passing both is ambiguous and refused.

    Raises
    ------
    ConfigurationError
        If both are given, or ``snapshot_s`` is not positive.
    """
    if snapshot_s is not None and record_every_n is not None:
        raise ConfigurationError(
            "pass snapshot_s or record_every_n, not both")
    if snapshot_s is not None:
        if snapshot_s <= 0.0:
            raise ConfigurationError("snapshot_s must be positive")
        return max(1, int(round(snapshot_s / dt_s)))
    if record_every_n is not None:
        return int(record_every_n)
    return default


@dataclass
class MonitorHandle:
    """One monitoring point owned by a session.

    Attributes
    ----------
    index:
        Position in the fleet (row index in every RunResult).
    seed:
        Instance seed spawned from the session seed; determines die
        tolerances, calibration and every noise stream.
    monitor / rig / calibration:
        The most recently materialized monitor, its rig, and the fitted
        calibration.  Re-materialized (same seed, same values) on every
        :meth:`Session.run`.
    """

    index: int
    seed: int
    monitor: WaterFlowMonitor
    rig: TestRig
    calibration: FlowCalibration


class Session:
    """N calibrated monitors with an open/calibrate/run/close lifecycle.

    Parameters
    ----------
    fleet:
        A :class:`~repro.runtime.FleetSpec` describing the fleet —
        possibly *mixed* (entries with different build configurations);
        :meth:`run` sub-batches a mixed fleet per config group through
        :class:`repro.runtime.mixed.MixedEngine`, bit-identical per rig
        to running its group alone.  Mutually exclusive with every
        other fleet-shape argument below; scenario-bearing specs are
        refused (events belong to :func:`repro.station.run_campaign`).
    n_monitors:
        Fleet size (classic homogeneous spelling; default 1).
    seed:
        Session seed; per-monitor seeds are spawned from it with
        :class:`numpy.random.SeedSequence`, so fleets with different
        sizes share the leading monitors' realizations (default 42).
    loop_rate_hz / overtemperature_k / output_bandwidth_hz /
    use_pulsed_drive / calibration_speeds_cmps / fast_calibration /
    use_cache:
        Forwarded to
        :func:`repro.station.scenarios.build_calibrated_monitor`.

        .. deprecated:: 1.2
            Per-call build kwargs are deprecated (removed in 2.0) —
            describe the build in a
            :class:`~repro.runtime.FleetSpec` and pass ``fleet=``.
            They warn once per process and keep working bit-identically
            (``Session(fleet=FleetSpec.homogeneous(n, seed, **build))``
            is the same fleet).
    chunk_size:
        Batch-engine noise pre-draw block length.
    checkpoint_dir:
        Durability root for this session (default None: no disk
        artifacts).  Enables two things: calibrations persist in (and
        materialize from) a :class:`repro.store.ArtifactStore` under
        ``<checkpoint_dir>/store``, so a fresh process skips the §4
        campaign with bit-identical outputs; and serial batch
        :meth:`run` calls advance in checkpointed windows
        (:func:`repro.runtime.checkpoint.run_durable`) that a crashed
        process can pick up with ``run(..., resume=True)`` —
        bit-identical to the uninterrupted run.
    """

    def __init__(self, n_monitors: int | None = None,
                 seed: int | None = None, *,
                 fleet: FleetSpec | None = None,
                 loop_rate_hz: float | None = None,
                 overtemperature_k: float | None = None,
                 output_bandwidth_hz: float | None = None,
                 use_pulsed_drive: bool | None = None,
                 calibration_speeds_cmps: list[float] | None = None,
                 fast_calibration: bool | None = None,
                 use_cache: bool | None = None,
                 chunk_size: int = 1024,
                 checkpoint_dir=None) -> None:
        build = dict(
            loop_rate_hz=loop_rate_hz,
            overtemperature_k=overtemperature_k,
            output_bandwidth_hz=output_bandwidth_hz,
            use_pulsed_drive=use_pulsed_drive,
            calibration_speeds_cmps=calibration_speeds_cmps,
            fast_calibration=fast_calibration,
            use_cache=use_cache,
        )
        explicit = {k: v for k, v in build.items() if v is not None}
        if fleet is not None:
            if n_monitors is not None or seed is not None or explicit:
                raise ConfigurationError(
                    "fleet= fully describes the fleet; do not combine it "
                    "with n_monitors/seed or per-call build kwargs")
            if fleet.has_scenarios:
                raise ConfigurationError(
                    "this FleetSpec carries scenarios; run it with "
                    "repro.station.run_campaign, which owns event "
                    "injection")
            self._fleet = fleet
        else:
            if explicit:
                warn_once(
                    "session-build-kwargs",
                    "per-call build kwargs on Session "
                    f"({', '.join(sorted(explicit))}) are deprecated and "
                    "will be removed in repro 2.0; describe the fleet "
                    "with repro.runtime.FleetSpec and pass "
                    "Session(fleet=...)")
            n = 1 if n_monitors is None else int(n_monitors)
            if n < 1:
                raise ConfigurationError(
                    "session needs at least one monitor")
            self._fleet = FleetSpec.homogeneous(
                n, seed=42 if seed is None else int(seed), **explicit)
        self.n_monitors = self._fleet.n_monitors
        self.seed = int(self._fleet.seed)
        self._build_kwargs = self._fleet.rigs[0].build_kwargs()
        self._chunk = int(chunk_size)
        self._state = "new"
        self._seeds: list[int] = []
        self._handles: list[MonitorHandle] = []
        self._dt = self._fleet.dt_s
        self._timings: dict[str, float] = {}
        self._runs = 0
        self._used_shm = False
        if checkpoint_dir is not None:
            from pathlib import Path

            from repro.store import ArtifactStore
            self._checkpoint_dir = Path(checkpoint_dir)
            self._store = ArtifactStore(self._checkpoint_dir / "store")
        else:
            self._checkpoint_dir = None
            self._store = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle stage: ``new``, ``open``, ``calibrated`` or ``closed``."""
        return self._state

    def _expect(self, *states: str) -> None:
        if self._state not in states:
            raise SessionError(
                f"session is {self._state!r}; this call requires "
                f"{' or '.join(repr(s) for s in states)}")

    def open(self) -> "Session":
        """Spawn the per-monitor seed stream; must be called first."""
        self._expect("new")
        t0 = time.perf_counter()
        with get_tracer().span("session.open", n_monitors=self.n_monitors):
            self._seeds = self._fleet.monitor_seeds()
            self._state = "open"
        self._timings["open_s"] = time.perf_counter() - t0
        get_event_log().emit("session.state", state="open",
                             n_monitors=self.n_monitors, seed=self.seed)
        return self

    def calibrate(self) -> list[MonitorHandle]:
        """Build and calibrate every monitor; returns the fleet handles.

        The first calibration per seed runs the full §4 campaign; repeat
        materializations hit the calibration cache.
        """
        self._expect("open")
        t0 = time.perf_counter()
        with get_tracer().span("session.calibrate",
                               n_monitors=self.n_monitors):
            self._handles = self._materialize()
            self._state = "calibrated"
        self._timings["calibrate_s"] = time.perf_counter() - t0
        get_event_log().emit("session.state", state="calibrated",
                             n_monitors=self.n_monitors)
        return self._handles

    def run(self, profile: Profile, *args,
            snapshot_s: float | None = None,
            collect: str = "result",
            engine: str = "batch",
            workers: int | None = None,
            numerics: str = "exact",
            record_every_n: int | None = None,
            resume: bool = False,
            backend: str = "spawn") -> RunResult | dict:
        """Run a line profile over the fleet; decimated traces out.

        This is the unified run surface (shared with
        :meth:`repro.station.rig.TestRig.run` and
        :meth:`repro.station.fleet.MonitoredNetwork.run`): everything
        after ``profile`` is keyword-only.

        Parameters
        ----------
        profile:
            Line profile to execute.
        snapshot_s:
            Seconds between recorded points (the unified cadence knob).
            Mutually exclusive with the legacy ``record_every_n``
            (loop ticks between points, default 20).
        collect:
            ``"result"`` returns the :class:`RunResult`; ``"summary"``
            returns ``RunResult.summary()`` (pooled statistics keyed by
            registry metric names).
        engine:
            ``"batch"`` uses the vectorized :class:`BatchEngine` — or,
            when the session's :class:`~repro.runtime.FleetSpec` is
            structurally mixed, the per-config-group
            :class:`repro.runtime.mixed.MixedEngine` (bit-identical per
            rig to running its group alone); ``"scalar"`` runs each rig
            through the per-sample reference path and stacks the
            records.  Both start from freshly materialized rigs, so
            with the same seeds the engines return bit-identical
            traces.
        workers:
            With ``engine="batch"`` and ``workers > 1`` the fleet is
            partitioned across that many worker processes by
            :class:`repro.runtime.parallel.ShardedEngine`; the merged
            result is bit-identical to the serial batch path for any
            worker count.  ``None`` (default) and 1 stay serial and
            in-process.  Refused for ``engine="scalar"``.
        numerics:
            Kernel numerics mode for the batch engines: ``"exact"``
            (default, bit-identical to the scalar reference path) or
            ``"fast"`` (vectorized transcendentals, ≤1e-9 relative
            error; see :mod:`repro.runtime.kernels`).  A
            :class:`~repro.runtime.kernels.Numerics` policy is accepted
            too.  Refused (``reason="numerics"``) for
            ``engine="scalar"`` with ``"fast"`` — the scalar reference
            path *is* the exact contract and has no fast kernels.
        resume:
            Continue this run from the checkpoint a previous (crashed)
            process left under the session's ``checkpoint_dir``.
            Requires a checkpointed session with a batch run; the
            resumed result is bit-identical to an uninterrupted one.
            The checkpoint records the engine configuration, so
            ``workers``/``backend`` overrides are refused on resume —
            the restored engine keeps the shape it started with.
        backend:
            Parallel backend for ``workers > 1``: ``"spawn"`` (the
            default; per-run worker processes) or ``"shm"`` (the
            persistent zero-copy pool of :mod:`repro.runtime.shm` —
            see "Choosing a parallel backend" in
            ``docs/performance.md``).  Bit-identical either way.
            ``Session.close`` tears the shm pool down after a session
            that used it.

        .. deprecated:: 1.1
            Positional ``engine`` / ``record_every_n`` still work but
            emit :class:`FutureWarning`; pass them by keyword.  The
            positional forms will be removed in 2.0.
        """
        if args:
            warnings.warn(
                "positional engine/record_every_n are deprecated and will "
                "be removed in repro 2.0; Session.run is keyword-only "
                "after profile — pass engine=.../record_every_n=... "
                "(or snapshot_s=...)",
                FutureWarning, stacklevel=2)
            if len(args) > 2:
                raise ConfigurationError(
                    f"Session.run takes at most profile, engine, "
                    f"record_every_n positionally (got {1 + len(args)})")
            engine = args[0]
            if len(args) == 2:
                record_every_n = args[1]
        self._expect("calibrated")
        if engine not in ("batch", "scalar"):
            raise ConfigurationError(
                f"unknown engine {engine!r}; use 'batch' or 'scalar'")
        if collect not in ("result", "summary"):
            raise ConfigurationError(
                f"unknown collect {collect!r}; use 'result' or 'summary'")
        if workers is not None and workers != 1 and engine != "batch":
            raise ConfigurationError(
                "workers > 1 requires engine='batch' (the scalar "
                "reference path is serial by construction)")
        mode = resolve_numerics(numerics)
        if mode != "exact" and engine != "batch":
            raise ConfigurationError(
                "numerics='fast' requires engine='batch' (the scalar "
                "reference path is the exact contract itself)",
                reason="numerics")
        from repro.runtime.shm import resolve_backend
        backend = resolve_backend(backend)
        every = resolve_record_every_n(self._dt, snapshot_s, record_every_n)
        if every < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        durable = (self._checkpoint_dir is not None and engine == "batch")
        if resume and not durable:
            raise ConfigurationError(
                "resume=True needs a checkpointed batch run: a "
                "Session(checkpoint_dir=...) with engine='batch'")
        if resume and (workers not in (None, 1) or backend != "spawn"):
            raise ConfigurationError(
                "resume=True continues the engine configuration recorded "
                "in the checkpoint; workers/backend overrides don't apply "
                "to a resumed run — rerun without them")
        if workers is not None and workers != 1 and backend == "shm":
            self._used_shm = True
        t0 = time.perf_counter()
        with get_tracer().span("session.run", engine=engine,
                               numerics=mode,
                               n_monitors=self.n_monitors):
            self._handles = self._materialize()
            rigs = [handle.rig for handle in self._handles]
            mixed = False
            if engine == "batch" and len(self._fleet.rigs) > 1:
                # A multi-entry spec may be structurally mixed; group on
                # the materialized rigs (entries that differ only in
                # realized values still share one BatchEngine).
                from repro.runtime.mixed import MixedEngine, fleet_groups
                mixed = len(fleet_groups(rigs)) > 1
            if durable:
                from repro.runtime.checkpoint import run_durable
                result = run_durable(
                    rigs, profile, record_every_n=every,
                    checkpoint_path=(self._checkpoint_dir /
                                     f"run-{self._runs}.ckpt"),
                    resume=resume, chunk_size=self._chunk, numerics=mode,
                    workers=workers, backend=backend)
            elif mixed:
                result = MixedEngine(
                    rigs, chunk_size=self._chunk, numerics=mode).run(
                    profile, record_every_n=every, workers=workers,
                    backend=backend)
            elif engine == "batch" and workers is not None and workers != 1:
                from repro.runtime.parallel import ShardedEngine
                result = ShardedEngine(
                    rigs, workers=workers, chunk_size=self._chunk,
                    numerics=mode, backend=backend).run(
                    profile, record_every_n=every)
            elif engine == "batch":
                result = BatchEngine(rigs, chunk_size=self._chunk,
                                     numerics=mode).run(
                    profile, record_every_n=every)
            else:
                result = RunResult.from_records(
                    [rig.run(profile, record_every_n=every) for rig in rigs])
        elapsed = time.perf_counter() - t0
        self._timings["run_s"] = elapsed
        self._runs += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("runtime.session.runs").inc()
            registry.histogram("runtime.session.run_s").observe(elapsed)
            for name, stats in result.summary().items():
                registry.gauge(f"{name}.mean").set(stats["mean"])
        get_event_log().emit("session.run", engine=engine,
                             n_monitors=self.n_monitors,
                             duration_s=profile.duration_s)
        if collect == "summary":
            return result.summary()
        return result

    def stats(self) -> dict:
        """Session-level observability snapshot (always available).

        Returns lifecycle timings measured by the session itself, the
        calibration-LRU statistics, and — when observability is enabled
        — the process-wide metrics snapshot under ``"metrics"`` and the
        per-stage profiler report under ``"profile"`` (empty unless the
        profiler was enabled; merged worker stages included for sharded
        runs).
        """
        registry = get_registry()
        return {
            "state": self._state,
            "n_monitors": self.n_monitors,
            "seed": self.seed,
            "runs": self._runs,
            "timings_s": dict(self._timings),
            "calibration_cache": calibration_cache_stats(),
            "store": self._store.stats() if self._store is not None else {},
            "metrics": registry.snapshot() if registry.enabled else {},
            "profile": get_profiler().report(),
        }

    def close(self) -> None:
        """End the session; any further stage call raises SessionError.

        A session that ran on the shm backend also tears the
        process-global worker pool down here — deterministic teardown
        inside the session lifecycle, not at interpreter exit, so
        ``-W error`` runs see no atexit-ordering warnings.
        """
        self._state = "closed"
        self._handles = []
        if self._used_shm:
            from repro.runtime.shm import shutdown_pool
            shutdown_pool()
            self._used_shm = False
        get_event_log().emit("session.state", state="closed",
                             n_monitors=self.n_monitors)

    # -- conveniences --------------------------------------------------------

    @property
    def monitors(self) -> list[MonitorHandle]:
        """The fleet handles (valid after :meth:`calibrate`)."""
        self._expect("calibrated")
        return list(self._handles)

    def __enter__(self) -> "Session":
        if self._state == "new":
            self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _materialize(self) -> list[MonitorHandle]:
        """Build fresh handles from the per-position seeds and specs.

        A checkpointed session passes its artifact store down, so the
        first materialization in a fresh process restores persisted
        calibrations instead of re-running campaigns.
        """
        return [
            MonitorHandle(index=i, seed=s,
                          monitor=setup.monitor, rig=setup.rig,
                          calibration=setup.calibration)
            for i, (s, entry) in enumerate(zip(self._seeds,
                                               self._fleet.flat()))
            for setup in (build_calibrated_monitor(seed=s,
                                                   store=self._store,
                                                   **entry.build_kwargs()),)
        ]
