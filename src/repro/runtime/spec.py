"""One declarative fleet description: :class:`FleetSpec` / :class:`RigSpec`.

Before this module, every fleet-facing surface grew its own spelling of
"N monitors built like *this*": ``characterize_meter_pool(n_meters=...)``,
``Session(n_monitors=..., loop_rate_hz=..., ...)``, per-call build
kwargs on ``run_batch`` and the service ``attach``.  A :class:`FleetSpec`
replaces all of them: an ordered tuple of :class:`RigSpec` entries, each
carrying a per-rig build configuration, a replication ``count``, an
optional explicit ``seed`` and an optional scenario tag — accepted
uniformly by :func:`repro.runtime.run_batch`,
:class:`repro.runtime.Session`,
:func:`repro.station.characterize_meter_pool`, the service facade
(:func:`repro.run` / :func:`repro.connect`), the CLI, and
:func:`repro.station.run_campaign`.

Seed derivation is bit-compatible with the classic ``Session`` plumbing:
the fleet seed spawns one :class:`numpy.random.SeedSequence` child per
position in caller order, and a rig entry with an explicit ``seed``
re-derives its own positions from that seed instead.  A homogeneous
one-entry spec therefore reproduces ``Session(n_monitors=n, seed=s)``
exactly, monitor for monitor.

Scenario tags (a builtin scenario name or a
:class:`repro.station.campaign.ScenarioSpec`) are carried verbatim;
only :func:`repro.station.run_campaign` consumes them — plain run
surfaces refuse scenario-bearing specs rather than silently ignoring
the events.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FleetSpec", "RigSpec"]

#: Deprecation shims that have already fired this process (warn-once
#: bookkeeping; tests clear this set between cases).
_WARNED: set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``message`` as a FutureWarning once per process per ``key``.

    The PR-6 escalation pattern: deprecated surfaces warn exactly once,
    name their replacement, and state the 2.0 removal.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, FutureWarning, stacklevel=stacklevel)


def _scenario_to_json(scenario):
    """JSON-safe form of a scenario tag (name string or spec dict)."""
    if scenario is None or isinstance(scenario, str):
        return scenario
    to_dict = getattr(scenario, "to_dict", None)
    if to_dict is not None:
        return to_dict()
    return getattr(scenario, "name", repr(scenario))


def _scenario_from_json(payload):
    """Inverse of :func:`_scenario_to_json` (dicts become ScenarioSpec)."""
    if payload is None or isinstance(payload, str):
        return payload
    # Lazy: campaign lives in repro.station; importing it here at module
    # level would be a spec -> station -> runtime cycle.
    from repro.station.campaign import ScenarioSpec
    return ScenarioSpec.from_dict(payload)


@dataclass(frozen=True)
class RigSpec:
    """One fleet entry: a build configuration replicated ``count`` times.

    Parameters
    ----------
    count:
        How many monitors to build from this entry (>= 1).
    seed:
        Optional explicit seed for this entry; its monitors' seeds are
        spawned from it instead of the fleet seed, so an entry can be
        pinned independently of its position.
    scenario:
        Optional scenario tag — a builtin scenario name (see
        :data:`repro.station.campaign.SCENARIO_NAMES`) or a
        :class:`repro.station.campaign.ScenarioSpec`.  Consumed only by
        :func:`repro.station.run_campaign`.
    loop_rate_hz / overtemperature_k / output_bandwidth_hz /
    use_pulsed_drive / calibration_speeds_cmps / fast_calibration /
    use_cache:
        Forwarded to
        :func:`repro.station.scenarios.build_calibrated_monitor`,
        mirroring the classic :class:`~repro.runtime.Session` knobs.
    """

    count: int = 1
    seed: int | None = None
    scenario: object | None = None
    loop_rate_hz: float = 1000.0
    overtemperature_k: float = 5.0
    output_bandwidth_hz: float = 0.1
    use_pulsed_drive: bool = True
    calibration_speeds_cmps: tuple[float, ...] | None = None
    fast_calibration: bool = False
    use_cache: bool = True

    def __post_init__(self) -> None:
        """Validate the count and freeze the calibration-speed list."""
        if self.count < 1:
            raise ConfigurationError("RigSpec.count must be >= 1")
        if self.calibration_speeds_cmps is not None:
            object.__setattr__(self, "calibration_speeds_cmps",
                               tuple(float(v)
                                     for v in self.calibration_speeds_cmps))

    def build_kwargs(self) -> dict:
        """Keyword arguments for ``build_calibrated_monitor`` (sans seed)."""
        speeds = self.calibration_speeds_cmps
        return dict(
            loop_rate_hz=self.loop_rate_hz,
            overtemperature_k=self.overtemperature_k,
            output_bandwidth_hz=self.output_bandwidth_hz,
            use_pulsed_drive=self.use_pulsed_drive,
            calibration_speeds_cmps=list(speeds) if speeds else None,
            fast=self.fast_calibration,
            use_cache=self.use_cache,
        )

    def to_dict(self) -> dict:
        """JSON-safe dict form (round-trips through :meth:`from_dict`)."""
        speeds = self.calibration_speeds_cmps
        return {
            "count": self.count,
            "seed": self.seed,
            "scenario": _scenario_to_json(self.scenario),
            "loop_rate_hz": self.loop_rate_hz,
            "overtemperature_k": self.overtemperature_k,
            "output_bandwidth_hz": self.output_bandwidth_hz,
            "use_pulsed_drive": self.use_pulsed_drive,
            "calibration_speeds_cmps":
                list(speeds) if speeds is not None else None,
            "fast_calibration": self.fast_calibration,
            "use_cache": self.use_cache,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RigSpec":
        """Rebuild a RigSpec from its :meth:`to_dict` form."""
        data = dict(payload)
        data["scenario"] = _scenario_from_json(data.get("scenario"))
        return cls(**data)


@dataclass(frozen=True)
class FleetSpec:
    """An ordered, seeded description of a (possibly mixed) fleet.

    Attributes
    ----------
    rigs:
        The fleet entries in caller order; positions expand entry by
        entry (entry 0's monitors first).
    seed:
        Fleet seed; per-position seeds are spawned from it exactly as
        ``Session(n_monitors=..., seed=...)`` spawns them, so a
        one-entry default spec is bit-compatible with the classic
        session fleet.
    """

    rigs: tuple[RigSpec, ...] = field(default_factory=tuple)
    seed: int = 42

    def __post_init__(self) -> None:
        """Normalize the entry sequence and refuse an empty fleet."""
        entries = tuple(self.rigs)
        if not entries:
            raise ConfigurationError("FleetSpec needs at least one RigSpec")
        for entry in entries:
            if not isinstance(entry, RigSpec):
                raise ConfigurationError(
                    f"FleetSpec.rigs entries must be RigSpec, got "
                    f"{type(entry).__name__}")
        object.__setattr__(self, "rigs", entries)

    @classmethod
    def homogeneous(cls, n_monitors: int = 1, seed: int = 42,
                    **rig_kwargs) -> "FleetSpec":
        """One-entry spec: ``n_monitors`` copies of a single build.

        ``rig_kwargs`` are :class:`RigSpec` build fields
        (``loop_rate_hz``, ``overtemperature_k``, ``use_pulsed_drive``,
        ``fast_calibration``, ...).  The classic
        ``Session(n_monitors=n, seed=s, **build)`` spelled as a spec.
        """
        if n_monitors < 1:
            raise ConfigurationError("fleet needs at least one monitor")
        return cls(rigs=(RigSpec(count=int(n_monitors), **rig_kwargs),),
                   seed=int(seed))

    # -- introspection -------------------------------------------------------

    @property
    def n_monitors(self) -> int:
        """Total fleet size (sum of entry counts)."""
        return sum(entry.count for entry in self.rigs)

    @property
    def has_scenarios(self) -> bool:
        """True if any entry carries a scenario tag."""
        return any(entry.scenario is not None for entry in self.rigs)

    @property
    def loop_rate_hz(self) -> float:
        """The shared loop rate; mixed loop rates are refused.

        Raises
        ------
        ConfigurationError
            (``reason="heterogeneous"``) if entries disagree — one
            result needs one time base.
        """
        rates = {entry.loop_rate_hz for entry in self.rigs}
        if len(rates) > 1:
            raise ConfigurationError(
                f"fleet mixes loop rates {sorted(rates)}; one run needs "
                f"one shared time base", reason="heterogeneous")
        return next(iter(rates))

    @property
    def dt_s(self) -> float:
        """The shared loop tick in seconds (see :attr:`loop_rate_hz`)."""
        return 1.0 / float(self.loop_rate_hz)

    def flat(self) -> list[RigSpec]:
        """Per-position entry list (entry ``i`` repeated ``count`` times)."""
        out: list[RigSpec] = []
        for entry in self.rigs:
            out.extend([entry] * entry.count)
        return out

    def scenarios(self) -> list[object | None]:
        """Per-position scenario tags (None where an entry has none)."""
        return [entry.scenario for entry in self.flat()]

    def monitor_seeds(self) -> list[int]:
        """Per-position monitor seeds, bit-compatible with ``Session``.

        The fleet seed spawns one SeedSequence child per position in
        caller order; entries with an explicit ``seed`` then re-derive
        their own positions from that seed (one child per copy), so
        pinned entries are independent of their position in the fleet.
        """
        total = self.n_monitors
        children = np.random.SeedSequence(int(self.seed)).spawn(total)
        seeds = [int(child.generate_state(1)[0]) for child in children]
        pos = 0
        for entry in self.rigs:
            if entry.seed is not None:
                own = np.random.SeedSequence(int(entry.seed)).spawn(
                    entry.count)
                seeds[pos:pos + entry.count] = [
                    int(child.generate_state(1)[0]) for child in own]
            pos += entry.count
        return seeds

    # -- materialization -----------------------------------------------------

    def materialize(self, seeds: list[int] | None = None) -> list:
        """Build the fleet's rigs (one calibrated rig per position).

        ``seeds`` overrides the derived :meth:`monitor_seeds` (the
        Session re-materialization path passes its own spawned list).
        Scenario tags are *not* consumed here — the rigs come back
        plain; event injection belongs to
        :func:`repro.station.run_campaign`.
        """
        # Lazy: station.scenarios pulls in the calibration stack; spec
        # stays importable without it at module-import time.
        from repro.station.scenarios import build_calibrated_monitor
        if seeds is None:
            seeds = self.monitor_seeds()
        if len(seeds) != self.n_monitors:
            raise ConfigurationError(
                f"seed list has {len(seeds)} entries for a fleet of "
                f"{self.n_monitors}")
        return [
            build_calibrated_monitor(seed=s, **entry.build_kwargs()).rig
            for entry, s in zip(self.flat(), seeds)
        ]

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict form (round-trips through :meth:`from_dict`)."""
        return {"seed": self.seed,
                "rigs": [entry.to_dict() for entry in self.rigs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetSpec":
        """Rebuild a FleetSpec from its :meth:`to_dict` form."""
        return cls(rigs=tuple(RigSpec.from_dict(entry)
                              for entry in payload.get("rigs", ())),
                   seed=int(payload.get("seed", 42)))

    def without_scenarios(self) -> "FleetSpec":
        """A copy with every scenario tag stripped (plain-run form)."""
        return FleetSpec(rigs=tuple(replace(entry, scenario=None)
                                    for entry in self.rigs),
                         seed=self.seed)
