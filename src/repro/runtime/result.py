"""Batched run results: the fleet-wide counterpart of ``RigRecord``.

A :class:`RunResult` holds the decimated traces of N monitors advanced
in lock-step by the batch engine (or assembled from N scalar rig runs).
Time is shared across the fleet — every monitor sees the same line
profile — while the per-monitor traces are stacked ``(N, M)`` arrays.
``trace(i)`` rehydrates a plain :class:`~repro.station.rig.RigRecord`
so all existing single-monitor analysis keeps working.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.station.rig import RigRecord

__all__ = ["RunResult", "SummaryDict"]

#: Namespace prefix aligning summary keys with the metrics registry
#: (``run.measured_mps`` matches the ``run.measured_mps.mean`` gauge the
#: session publishes after an instrumented run).
_SUMMARY_PREFIX = "run."


class SummaryDict(dict):
    """Summary statistics keyed by registry metric names (``run.<field>``).

    Legacy bare-field keys (``"measured_mps"``) still resolve — with a
    :class:`FutureWarning` — so existing analysis code keeps working
    while it migrates to the namespaced keys.  The bare aliases will be
    removed in 2.0.
    """

    def __missing__(self, key):
        alias = _SUMMARY_PREFIX + str(key)
        if dict.__contains__(self, alias):
            warnings.warn(
                f"summary key {key!r} is deprecated and will stop "
                f"resolving in repro 2.0; use {alias!r}",
                FutureWarning, stacklevel=2)
            return dict.__getitem__(self, alias)
        raise KeyError(key)

    def __contains__(self, key):
        return (dict.__contains__(self, key)
                or dict.__contains__(self, _SUMMARY_PREFIX + str(key)))

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default


@dataclass
class RunResult:
    """Decimated traces for a fleet of N monitors over M record ticks.

    ``time_s`` is a shared ``(M,)`` vector; every other trace is an
    ``(N, M)`` array whose row ``i`` belongs to monitor ``i``.
    """

    time_s: np.ndarray
    true_speed_mps: np.ndarray
    reference_mps: np.ndarray
    measured_mps: np.ndarray
    direction: np.ndarray
    pressure_pa: np.ndarray
    temperature_k: np.ndarray
    bubble_coverage: np.ndarray

    #: Stacked per-monitor traces, in RigRecord field order.
    STACKED_FIELDS = ("true_speed_mps", "reference_mps", "measured_mps",
                      "direction", "pressure_pa", "temperature_k",
                      "bubble_coverage")

    def __post_init__(self) -> None:
        """Validate that the stacked traces agree in shape."""
        m = len(self.time_s)
        for name in self.STACKED_FIELDS:
            arr = getattr(self, name)
            if arr.ndim != 2 or arr.shape[1] != m:
                raise ConfigurationError(
                    f"trace {name!r} must be (N, {m}), got {arr.shape}")

    def __len__(self) -> int:
        return int(self.time_s.shape[0])

    @property
    def n_monitors(self) -> int:
        """Number of monitors (rows) in the result."""
        return int(self.measured_mps.shape[0])

    def trace(self, index: int) -> RigRecord:
        """Extract monitor ``index`` as a scalar-compatible RigRecord."""
        if not 0 <= index < self.n_monitors:
            raise ConfigurationError(
                f"monitor index {index} out of range [0, {self.n_monitors})")
        return RigRecord(
            time_s=self.time_s.copy(),
            **{name: getattr(self, name)[index].copy()
               for name in self.STACKED_FIELDS},
        )

    def records(self) -> list[RigRecord]:
        """All monitors as a list of RigRecords (convenience)."""
        return [self.trace(i) for i in range(self.n_monitors)]

    def attach_profile(self, stages: dict) -> "RunResult":
        """Attach a per-stage profiling report (returns self).

        ``stages`` maps stage name to ``{calls, wall_s, cpu_s}`` (see
        :mod:`repro.observability.profile`).  The report lives on the
        instance only — it pickles with the result (so worker blocks
        carry theirs home) but is *not* a trace field: ``save``/``load``
        archives and equality stay byte-identical with or without it.
        """
        self._profile = {name: dict(values)
                         for name, values in stages.items()}
        return self

    def profile(self) -> dict:
        """The attached per-stage report (``{}`` for unprofiled runs)."""
        return {name: dict(values)
                for name, values in getattr(self, "_profile", {}).items()}

    def summary(self, monitor: int | None = None) -> SummaryDict:
        """Per-trace mean/std/min/max statistics.

        Keys are registry metric names (``run.<field>``); the legacy
        bare-field keys keep resolving through :class:`SummaryDict`
        with a :class:`FutureWarning`.  With ``monitor`` given,
        statistics for that monitor's traces (the values of
        ``trace(monitor).summary()``); otherwise the statistics are
        pooled across the whole fleet.
        """
        if monitor is not None:
            return SummaryDict({
                _SUMMARY_PREFIX + name: stats
                for name, stats in self.trace(monitor).summary().items()
            })
        out = SummaryDict()
        for name in ("time_s",) + self.STACKED_FIELDS:
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.size == 0:
                stats = {k: float("nan") for k in ("mean", "std", "min", "max")}
            else:
                stats = {
                    "mean": float(arr.mean()),
                    "std": float(arr.std()),
                    "min": float(arr.min()),
                    "max": float(arr.max()),
                }
            out[_SUMMARY_PREFIX + name] = stats
        return out

    def to_csv(self, path) -> None:
        """Export as CSV: ``time_s`` plus ``<field>_m<i>`` columns."""
        names = ["time_s"]
        cols = [np.asarray(self.time_s, dtype=float)]
        for name in self.STACKED_FIELDS:
            arr = np.asarray(getattr(self, name), dtype=float)
            for i in range(self.n_monitors):
                names.append(f"{name}_m{i}")
                cols.append(arr[i])
        np.savetxt(path, np.column_stack(cols), delimiter=",",
                   header=",".join(names), comments="")

    def save(self, path) -> None:
        """Persist all traces to an ``.npz`` archive."""
        np.savez_compressed(path, **{
            name: getattr(self, name)
            for name in ("time_s",) + self.STACKED_FIELDS
        })

    @classmethod
    def load(cls, path) -> "RunResult":
        """Restore a result written by :meth:`save`.

        Raises
        ------
        ConfigurationError
            If the archive is missing any expected trace.
        """
        fields = ("time_s",) + cls.STACKED_FIELDS
        with np.load(path) as data:
            missing = [name for name in fields if name not in data]
            if missing:
                raise ConfigurationError(
                    f"run archive missing traces {missing}")
            return cls(**{name: data[name] for name in fields})

    def provenance(self) -> list[tuple]:
        """Per-row source labels attached by a permutation-aware merge.

        A :meth:`concat` over the fleet axis with explicit ``indices``
        records, for each destination row, the ``(part, row)`` pair it
        came from (the :class:`~repro.runtime.mixed.MixedEngine`
        relabels ``part`` with the group's config key).  Like the
        profile report this lives on the instance only: archives and
        equality stay byte-identical with or without it.  Returns
        ``[]`` when no provenance was attached.
        """
        return list(getattr(self, "_provenance", []))

    @staticmethod
    def _merge_profiles(merged: "RunResult",
                        parts: list["RunResult"]) -> "RunResult":
        """Sum the parts' per-stage profile reports onto ``merged``."""
        stages: dict[str, dict] = {}
        for part in parts:
            for name, values in part.profile().items():
                totals = stages.setdefault(
                    name, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0})
                totals["calls"] += int(values.get("calls", 0))
                totals["wall_s"] += float(values.get("wall_s", 0.0))
                totals["cpu_s"] += float(values.get("cpu_s", 0.0))
        if stages:
            merged.attach_profile(stages)
        return merged

    @classmethod
    def concat(cls, parts: list["RunResult"], axis: str = "fleet",
               indices: list[list[int]] | None = None) -> "RunResult":
        """The one merge entry point, over the fleet or the time axis.

        ``axis="fleet"`` stacks blocks row-wise (monitor axis 0) — the
        merge step of the sharded runtime, where each worker returns the
        ``(N_shard, M)`` block for its contiguous slice of the fleet and
        list order restores the serial layout.  With ``indices`` the
        merge is *permutation-aware*: ``indices[p][r]`` is the
        destination row of part ``p``'s row ``r``, the index lists must
        jointly be a permutation of ``range(total_rows)``, and the
        merged result carries per-row :meth:`provenance` — this is how
        the :class:`~repro.runtime.mixed.MixedEngine` interleaves
        config-group blocks back into caller order.

        ``axis="time"`` joins windows of one run end to end (time
        axis 1) — the stitch step of the streaming service, where each
        :meth:`BatchEngine.advance <repro.runtime.batch.BatchEngine.advance>`
        window hands back the ticks it recorded and joining them in
        advance order restores the uninterrupted run exactly.
        Zero-tick windows contribute nothing and are legal anywhere.
        :meth:`concat_time` is a thin alias for this spelling.

        Raises
        ------
        ConfigurationError
            If the list is empty or the axis is unknown; for
            ``"fleet"``, if the time bases are not bit-identical or
            ``indices`` is not a valid permutation cover; for
            ``"time"``, if the windows disagree on fleet size or time
            does not increase strictly across boundaries (``indices``
            is refused — rows never permute across windows).
        """
        if axis == "time":
            if indices is not None:
                raise ConfigurationError(
                    "indices apply to the fleet axis only")
            return cls._concat_time(parts)
        if axis != "fleet":
            raise ConfigurationError(
                f"unknown concat axis {axis!r}; use 'fleet' or 'time'")
        if not parts:
            raise ConfigurationError("need at least one block to concatenate")
        time_s = np.asarray(parts[0].time_s)
        for part in parts[1:]:
            if not np.array_equal(np.asarray(part.time_s), time_s):
                raise ConfigurationError(
                    "blocks must share an identical time base")
        if indices is None:
            merged = cls(
                time_s=time_s.copy(),
                **{name: np.concatenate(
                    [np.asarray(getattr(p, name)) for p in parts], axis=0)
                   for name in cls.STACKED_FIELDS},
            )
            return cls._merge_profiles(merged, parts)
        if len(indices) != len(parts):
            raise ConfigurationError(
                f"need one index list per block "
                f"({len(parts)} blocks, {len(indices)} lists)")
        total = sum(p.n_monitors for p in parts)
        seen: set[int] = set()
        for part, rows in zip(parts, indices):
            if len(rows) != part.n_monitors:
                raise ConfigurationError(
                    f"index list length {len(rows)} does not match the "
                    f"block's {part.n_monitors} monitors")
            for j in rows:
                j = int(j)
                if not 0 <= j < total:
                    raise ConfigurationError(
                        f"destination row {j} out of range [0, {total})")
                if j in seen:
                    raise ConfigurationError(
                        f"destination row {j} assigned twice")
                seen.add(j)
        fields = {}
        for name in cls.STACKED_FIELDS:
            first = np.asarray(getattr(parts[0], name))
            out = np.empty((total,) + first.shape[1:], dtype=first.dtype)
            for part, rows in zip(parts, indices):
                out[np.asarray(rows, dtype=int)] = \
                    np.asarray(getattr(part, name))
            fields[name] = out
        merged = cls(time_s=time_s.copy(), **fields)
        provenance: list[tuple] = [()] * total
        for p, rows in enumerate(indices):
            for r, j in enumerate(rows):
                provenance[int(j)] = (p, r)
        merged._provenance = provenance
        return cls._merge_profiles(merged, parts)

    @classmethod
    def _concat_time(cls, parts: list["RunResult"]) -> "RunResult":
        """The time-axis merge behind ``concat(axis="time")``."""
        if not parts:
            raise ConfigurationError("need at least one window to concatenate")
        n = parts[0].n_monitors
        last_t = None
        for part in parts:
            if part.n_monitors != n:
                raise ConfigurationError(
                    "windows must share one fleet size")
            if len(part) == 0:
                continue
            if last_t is not None and float(part.time_s[0]) <= last_t:
                raise ConfigurationError(
                    "windows must be in increasing time order")
            last_t = float(part.time_s[-1])
        merged = cls(
            time_s=np.concatenate([np.asarray(p.time_s) for p in parts]),
            **{name: np.concatenate(
                [np.asarray(getattr(p, name)) for p in parts], axis=1)
               for name in cls.STACKED_FIELDS},
        )
        return cls._merge_profiles(merged, parts)

    @classmethod
    def concat_time(cls, parts: list["RunResult"]) -> "RunResult":
        """Thin alias for ``concat(parts, axis="time")`` (kept for
        existing callers; :meth:`concat` is the documented entry
        point)."""
        return cls.concat(parts, axis="time")

    @classmethod
    def shared_layout(cls, n_monitors: int,
                      n_ticks: int) -> tuple[dict[str, int], int]:
        """Byte layout of one result in a flat shared buffer.

        Returns ``(offsets, total_bytes)``: ``time_s`` first, then each
        stacked field as a contiguous row-major ``(N, M)`` block.  Every
        trace element is 8 bytes (float64, ``direction`` int64), so the
        layout is a pure function of the shape — the parent sizes a
        :class:`~repro.runtime.shm.SharedBlock` from it before any
        worker runs, and workers recompute identical offsets from the
        same ``(N, M)``.
        """
        offsets = {"time_s": 0}
        cursor = n_ticks * 8
        for name in cls.STACKED_FIELDS:
            offsets[name] = cursor
            cursor += n_monitors * n_ticks * 8
        return offsets, cursor

    @classmethod
    def from_shared(cls, buffer, n_monitors: int, n_ticks: int,
                    keepalive=None) -> "RunResult":
        """Assemble a result as zero-copy views over a shared buffer.

        The merge step of the shm backend: after every worker has
        written its shard's rows into the block laid out by
        :meth:`shared_layout`, this builds the fleet result by pointer
        assembly — ``np.frombuffer`` views, no array copies.  The views
        are **read-only**: traces are immutable after merge, so a
        caller can never corrupt one monitor's rows through another's
        result.  ``keepalive`` (the owning
        :class:`~repro.runtime.shm.SharedBlock`) is pinned on the
        instance so the segment outlives its views; pickling the result
        copies the arrays out and drops the pin, so serialized results
        (checkpoints, worker replies) hold owned arrays, never segment
        references.
        """
        offsets, total = cls.shared_layout(n_monitors, n_ticks)
        if len(buffer) < total:
            raise ConfigurationError(
                f"shared buffer holds {len(buffer)} bytes; layout "
                f"({n_monitors}, {n_ticks}) needs {total}")
        fields = {}
        for name in ("time_s",) + cls.STACKED_FIELDS:
            dtype = np.int64 if name == "direction" else np.float64
            if name == "time_s":
                view = np.frombuffer(buffer, dtype=dtype, count=n_ticks,
                                     offset=offsets[name])
            else:
                view = np.frombuffer(
                    buffer, dtype=dtype, count=n_monitors * n_ticks,
                    offset=offsets[name]).reshape(n_monitors, n_ticks)
            view.flags.writeable = False
            fields[name] = view
        result = cls(**fields)
        result._shm = keepalive
        return result

    def __getstate__(self):
        """Pickle shm-backed results as owned arrays (detached).

        ``np.frombuffer`` views pickle by value anyway; this just makes
        the detach explicit and drops the segment keepalive so nothing
        shared-memory-shaped ever rides a checkpoint or a pipe.
        """
        state = dict(self.__dict__)
        if state.get("_shm") is not None:
            state = {key: (np.array(value) if isinstance(value, np.ndarray)
                           else value)
                     for key, value in state.items()}
        state.pop("_shm", None)
        return state

    @classmethod
    def from_records(cls, records: list[RigRecord]) -> "RunResult":
        """Stack N scalar RigRecords (identical time bases) into a result.

        Raises
        ------
        ConfigurationError
            If the list is empty or the time vectors disagree.
        """
        if not records:
            raise ConfigurationError("need at least one record to stack")
        time_s = np.asarray(records[0].time_s)
        for rec in records[1:]:
            if len(rec) != len(records[0]) or not np.array_equal(
                    np.asarray(rec.time_s), time_s):
                raise ConfigurationError(
                    "records must share an identical time base")
        return cls(
            time_s=time_s.copy(),
            **{name: np.stack([np.asarray(getattr(r, name))
                               for r in records])
               for name in cls.STACKED_FIELDS},
        )


# Single-source marker asserted by tests/test_api_quality.py: the legacy
# window-stitch spelling is a thin alias of concat(axis="time"), not a
# second implementation.
RunResult.concat_time.__func__._alias_of = "concat"
