"""Unit conversions and physical constants.

The library works in SI units internally (m, s, K, Pa, Ω, V, W).  The
paper quotes flow speed in cm/s, pressure in bar and temperature in °C;
these helpers convert at the public-API boundary so that conversions are
explicit and greppable instead of scattered magic factors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CELSIUS_OFFSET",
    "STANDARD_ATMOSPHERE_PA",
    "GRAVITY",
    "BOLTZMANN",
    "cmps_to_mps",
    "mps_to_cmps",
    "bar_to_pa",
    "pa_to_bar",
    "celsius_to_kelvin",
    "kelvin_to_celsius",
    "lpm_to_mps",
    "mps_to_lpm",
]

#: Offset between the Celsius and Kelvin scales.
CELSIUS_OFFSET = 273.15

#: Standard atmospheric pressure [Pa].
STANDARD_ATMOSPHERE_PA = 101_325.0

#: Standard gravitational acceleration [m/s^2].
GRAVITY = 9.80665

#: Boltzmann constant [J/K] — used for Johnson noise of the sensing resistors.
BOLTZMANN = 1.380649e-23


def cmps_to_mps(v_cmps):
    """Convert flow speed from cm/s (paper unit) to m/s (internal unit)."""
    return np.asarray(v_cmps, dtype=float) * 1e-2


def mps_to_cmps(v_mps):
    """Convert flow speed from m/s (internal unit) to cm/s (paper unit)."""
    return np.asarray(v_mps, dtype=float) * 1e2


def bar_to_pa(p_bar):
    """Convert gauge/absolute pressure from bar to Pa."""
    return np.asarray(p_bar, dtype=float) * 1e5


def pa_to_bar(p_pa):
    """Convert gauge/absolute pressure from Pa to bar."""
    return np.asarray(p_pa, dtype=float) * 1e-5


def celsius_to_kelvin(t_c):
    """Convert a temperature from °C to K."""
    return np.asarray(t_c, dtype=float) + CELSIUS_OFFSET


def kelvin_to_celsius(t_k):
    """Convert a temperature from K to °C."""
    return np.asarray(t_k, dtype=float) - CELSIUS_OFFSET


def lpm_to_mps(q_lpm, pipe_diameter_m: float):
    """Convert a volumetric flow [liters/minute] to mean speed [m/s].

    Parameters
    ----------
    q_lpm:
        Volumetric flow rate in liters per minute.
    pipe_diameter_m:
        Inner diameter of the pipe in meters.
    """
    area = np.pi * (pipe_diameter_m / 2.0) ** 2
    q_m3s = np.asarray(q_lpm, dtype=float) * 1e-3 / 60.0
    return q_m3s / area


def mps_to_lpm(v_mps, pipe_diameter_m: float):
    """Convert a mean pipe speed [m/s] to volumetric flow [liters/minute]."""
    area = np.pi * (pipe_diameter_m / 2.0) ** 2
    q_m3s = np.asarray(v_mps, dtype=float) * area
    return q_m3s * 60.0 * 1e3
