"""Bounded per-client snapshot streams with error-bypass delivery.

Each attached client owns one :class:`SnapshotStream`: the service tick
loop pushes :class:`Snapshot` windows in, the client's async iterator
pulls them out.  The queue is *bounded* — the producer checks
:attr:`SnapshotStream.has_space` before advancing the shared engine and
stalls the whole group when any member is full — so one slow consumer
backpressures its group instead of growing memory without limit.

``asyncio.Queue`` is deliberately not used: a full queue cannot accept
the terminal error a crashed engine must deliver, and the producer is
synchronous (the tick loop never awaits a put).  This stream instead
separates the two paths: :meth:`SnapshotStream.push` is a synchronous,
bound-enforced producer call, while :meth:`SnapshotStream.close` always
lands — a normal close drains the remaining items to the consumer, an
error close drops them so the typed exception surfaces immediately.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServiceError
from repro.runtime.result import RunResult, SummaryDict

__all__ = ["Snapshot", "SnapshotStream"]


@dataclass(frozen=True)
class Snapshot:
    """One streamed window of a client's run.

    Attributes
    ----------
    seq:
        0-based window index for this client.
    window:
        The client's rows for the ticks recorded in this window (a
        :class:`~repro.runtime.result.RunResult`; may hold zero ticks
        when the window was shorter than the decimation stride).
        Windows concatenate with ``RunResult.concat_time`` into the
        uninterrupted run, bit for bit.
    summary:
        ``window.summary()`` — the incremental ``run.*`` statistics
        over just this window (the streamed summary delta).
    done_steps / total_steps:
        Engine samples completed for this client after this window, and
        the client's full horizon.
    """

    seq: int
    window: RunResult
    summary: SummaryDict
    done_steps: int
    total_steps: int

    @property
    def complete(self) -> bool:
        """Whether this is the client's final window."""
        return self.done_steps >= self.total_steps


class SnapshotStream:
    """Single-producer single-consumer bounded snapshot queue.

    Parameters
    ----------
    bound:
        Maximum queued snapshots; the producer must check
        :attr:`has_space` before :meth:`push` (the tick loop stalls the
        group otherwise).
    on_space:
        Optional callback invoked when a consumer pop frees space —
        the service wires its loop wake-up here so a stalled group
        resumes as soon as the slow client catches up.
    """

    def __init__(self, bound: int,
                 on_space: Callable[[], None] | None = None) -> None:
        if bound < 1:
            raise ServiceError("stream bound must be >= 1",
                               reason="backpressure")
        self._bound = int(bound)
        self._items: deque[Snapshot] = deque()
        self._data = asyncio.Event()
        self._on_space = on_space
        self._closed = False
        self._error: BaseException | None = None

    @property
    def has_space(self) -> bool:
        """Whether one more :meth:`push` fits within the bound."""
        return len(self._items) < self._bound

    @property
    def depth(self) -> int:
        """Snapshots currently queued (bounded by ``bound``)."""
        return len(self._items)

    def push(self, snapshot: Snapshot) -> None:
        """Producer: enqueue one snapshot (synchronous, bound-enforced).

        Raises
        ------
        ServiceError
            If the stream is closed or full — both are producer-side
            invariant violations (the tick loop must check
            :attr:`has_space` first), surfaced rather than silently
            dropped.
        """
        if self._closed:
            raise ServiceError("push on a closed stream",
                               reason="backpressure")
        if not self.has_space:
            raise ServiceError(
                f"push would overrun the stream bound ({self._bound})",
                reason="backpressure")
        self._items.append(snapshot)
        self._data.set()

    def close(self, error: BaseException | None = None) -> None:
        """Terminate the stream (idempotent; always lands, even full).

        A normal close lets the consumer drain what is queued, then
        ends iteration.  An error close drops the queue so the consumer
        sees ``error`` on its very next pull.
        """
        if self._closed:
            return
        self._closed = True
        self._error = error
        if error is not None:
            self._items.clear()
        self._data.set()

    async def get(self) -> Snapshot | None:
        """Consumer: next snapshot, or None when the stream ended.

        Raises
        ------
        BaseException
            The error the stream was closed with, if any (e.g. a
            :class:`~repro.errors.SensorFault` from the shared engine).
        """
        while True:
            if self._items:
                item = self._items.popleft()
                if self._on_space is not None and not self._closed:
                    self._on_space()
                return item
            if self._closed:
                if self._error is not None:
                    raise self._error
                return None
            self._data.clear()
            await self._data.wait()
