"""The resident fleet service: many client sessions, shared engine ticks.

:class:`FleetService` is a long-lived asyncio component that multiplexes
concurrent client runs onto shared engine advances.  Clients
:meth:`~FleetService.attach` a profile with their own fleet description
(a :class:`~repro.runtime.FleetSpec`, or the legacy size/seed/build
kwargs); the service groups clients who share a profile, cadence, loop
rate and numerics into *cohorts* — build configurations may differ
freely, because each cohort runs on a
:class:`~repro.runtime.mixed.MixedEngine` that sub-batches per config
group — advances each cohort in bounded tick slices, and streams every
client its own rows of each window through a bounded
:class:`~repro.service.streams.SnapshotStream`.

The engine guarantees the service leans on (see
:meth:`BatchEngine.advance <repro.runtime.batch.BatchEngine.advance>` and
:meth:`BatchEngine.drop <repro.runtime.batch.BatchEngine.drop>`, which
:class:`~repro.runtime.mixed.MixedEngine` mirrors per config group):

- advancing in arbitrary tick slices is bit-identical to one
  uninterrupted run, so streamed windows concatenate into exactly the
  result a standalone ``Session.run`` returns;
- per-monitor state and RNG streams are independent, so a client's rows
  inside a shared cohort are bit-identical to a cohort of its own, and
  a detaching client's rows can be dropped without perturbing the rest.

Concurrency model: everything runs on one event loop; the tick loop
never awaits inside a tick, so attach/detach mutations — which run as
coroutines on the same loop — are naturally serialized *between* ticks
with no locks.  Backpressure is cooperative: a cohort only ticks while
every member's stream has space, so one slow consumer stalls its cohort
(bounded memory) without blocking other cohorts.

Crash recovery: with ``checkpoint_dir=`` the service snapshots every
sealed cohort after each tick — the live
:class:`~repro.runtime.mixed.MixedEngine` plus each member's streamed
windows, a consistent pair — into ``cohort-<id>.ckpt`` artifacts, and
deletes them when the cohort completes, crashes deterministically, or
empties.  After a process death, :func:`recover_cohorts` lists the
orphaned cohorts and each :class:`RecoveredCohort` can :meth:`~
RecoveredCohort.resume` — advancing the engine to the horizon and
stitching per-client results bit-identical to what the uninterrupted
service would have streamed.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import AsyncIterator

import numpy as np

from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.observability import get_event_log, get_registry, get_tracer
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.runtime.mixed import MixedEngine
from repro.runtime.result import RunResult
from repro.runtime.session import Session, resolve_record_every_n
from repro.runtime.spec import FleetSpec
from repro.runtime.kernels import resolve_numerics
from repro.service.streams import Snapshot, SnapshotStream
from repro.station.health import RigHealthTracker, fleet_reference
from repro.station.profiles import Profile

__all__ = ["FleetService", "ClientSession", "RecoveredCohort",
           "recover_cohorts"]


def _empty_result(n: int) -> RunResult:
    """A zero-tick result for an ``n``-monitor fleet (detach before data)."""
    empty = np.empty((n, 0))
    return RunResult(
        time_s=np.empty(0),
        true_speed_mps=empty,
        reference_mps=empty.copy(),
        measured_mps=empty.copy(),
        direction=np.empty((n, 0), dtype=np.int64),
        pressure_pa=empty.copy(),
        temperature_k=empty.copy(),
        bubble_coverage=empty.copy(),
    )


def _slice_rows(window: RunResult, lo: int, hi: int) -> RunResult:
    """A client's rows ``[lo, hi)`` of a cohort window (copies)."""
    return RunResult(
        time_s=window.time_s.copy(),
        **{name: getattr(window, name)[lo:hi].copy()
           for name in RunResult.STACKED_FIELDS},
    )


class _Member:
    """Service-side bookkeeping for one attached client."""

    __slots__ = ("client", "session", "rigs", "n", "stream", "windows",
                 "future", "group", "finalized", "done", "health")

    def __init__(self, client: "ClientSession", session: Session,
                 rigs: list, stream: SnapshotStream) -> None:
        self.client = client
        self.session = session
        self.rigs = rigs
        self.n = len(rigs)
        self.stream = stream
        self.windows: list[RunResult] = []
        self.done = 0  # frozen off the cohort clock at finalize
        # One streaming RigHealthTracker per rig, fed each tick window
        # against the cohort reference (built lazily at the first tick).
        self.health: list[RigHealthTracker] = []
        self.future: asyncio.Future[RunResult] = (
            asyncio.get_running_loop().create_future())
        # Results are also streamed; never let an unawaited future warn.
        self.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self.group: "_Group | None" = None
        self.finalized = False


class _Group:
    """One cohort: clients sharing a profile, cadence, loop rate and
    numerics — build configurations may differ, the cohort engine is a
    :class:`~repro.runtime.mixed.MixedEngine` sub-batching per config
    group.

    A cohort is *open* while its engine is unbuilt — attaches with the
    same key keep joining.  The first tick seals it (builds the engine
    from every member's rigs, in attach order); later attaches with the
    same key start a fresh cohort, because a running engine cannot admit
    new rigs without disturbing the shared clocks.
    """

    __slots__ = ("group_id", "key", "profile", "record_every_n", "numerics",
                 "chunk_size", "total_steps", "members", "engine", "done")

    def __init__(self, group_id: int, key: tuple, profile: Profile,
                 record_every_n: int, numerics: str, chunk_size: int,
                 total_steps: int) -> None:
        self.group_id = group_id
        self.key = key
        self.profile = profile
        self.record_every_n = record_every_n
        self.numerics = numerics
        self.chunk_size = chunk_size
        self.total_steps = total_steps
        self.members: list[_Member] = []
        self.engine: MixedEngine | None = None
        self.done = 0

    def ready(self) -> bool:
        """Whether every member's stream can take one more snapshot."""
        return all(m.stream.has_space for m in self.members)


class ClientSession:
    """A client's handle on its run inside the fleet service.

    Returned by :meth:`FleetService.attach`.  The client consumes
    incremental :class:`~repro.service.streams.Snapshot` windows through
    :meth:`snapshots` (or one at a time via :meth:`snapshot`), awaits
    the stitched final :class:`~repro.runtime.result.RunResult` from
    :meth:`result`, and may leave early with :meth:`detach` — which
    finalizes a *partial* result bit-identical to a standalone
    ``Session.run`` of the same config/seed over the completed horizon.
    """

    def __init__(self, service: "FleetService", client_id: str,
                 trace_id: str, seed: int, n_monitors: int,
                 total_steps: int, record_every_n: int) -> None:
        self.client_id = client_id
        self.trace_id = trace_id
        self.seed = seed
        self.n_monitors = n_monitors
        self.total_steps = total_steps
        self.record_every_n = record_every_n
        self._service = service
        self._member: _Member | None = None  # linked by attach

    @property
    def done_steps(self) -> int:
        """Engine samples completed for this client so far.

        Frozen at detach/completion: the surviving cohort advancing
        further does not move a finalized client's count.
        """
        member = self._member
        if member is None:
            return 0
        if member.finalized or member.group is None:
            return member.done
        return member.group.done

    @property
    def group_id(self) -> int:
        """The cohort this client was multiplexed into."""
        member = self._member
        if member is None or member.group is None:
            raise ServiceError("client is not attached", reason="detached")
        return member.group.group_id

    @property
    def attached(self) -> bool:
        """False once the run completed, crashed, or the client left."""
        member = self._member
        return member is not None and not member.finalized

    @property
    def stream_depth(self) -> int:
        """Snapshots queued and not yet consumed (bounded)."""
        if self._member is None:
            return 0
        return self._member.stream.depth

    def health(self) -> list[dict]:
        """Per-rig fused health reports (see :mod:`repro.station.health`).

        One dict per monitor row (``rig``, ``score``, ``status``,
        ``components``, ...), updated by the service at every tick from
        the cohort-reference residuals.  Empty before the first tick.
        """
        member = self._member
        if member is None:
            return []
        reports = []
        for rig, tracker in enumerate(member.health):
            report = tracker.report()
            report["rig"] = rig
            reports.append(report)
        return reports

    async def snapshot(self) -> Snapshot | None:
        """Next streamed window, or None once the stream ended.

        Raises
        ------
        ReproError
            The typed engine fault, if the shared engine crashed, or a
            :class:`~repro.errors.ServiceError` if the service stopped
            under the client.
        """
        if self._member is None:
            raise ServiceError("client is not attached", reason="detached")
        return await self._member.stream.get()

    async def snapshots(self) -> AsyncIterator[Snapshot]:
        """Async-iterate the streamed windows until the run ends.

        Terminates normally at the horizon (or after a detach); raises
        the propagated typed exception if the shared engine crashed.
        """
        while True:
            snap = await self.snapshot()
            if snap is None:
                return
            yield snap

    async def result(self) -> RunResult:
        """Await the stitched run result (full horizon, or the partial
        finalized by :meth:`detach`).

        Raises
        ------
        ReproError
            The typed engine fault if the shared engine crashed, or a
            :class:`~repro.errors.ServiceError` if the service stopped.
        """
        if self._member is None:
            raise ServiceError("client is not attached", reason="detached")
        return await self._member.future

    async def detach(self) -> RunResult:
        """Leave the cohort now; returns the partial result so far.

        The service removes this client's rigs from the shared engine
        (bit-preserving for the remaining members) and finalizes the
        windows streamed so far into a partial
        :class:`~repro.runtime.result.RunResult` — bit-identical to a
        standalone ``Session.run`` of the same config/seed over
        :attr:`done_steps` samples.

        Raises
        ------
        ServiceError
            If the client already detached or its run already finished
            (``reason="detached"``).
        """
        return await self._service._detach(self)


class FleetService:
    """Long-lived multiplexer of client runs onto shared engine ticks.

    Parameters
    ----------
    tick_steps:
        Upper bound on engine samples per cohort tick — the streaming
        granularity.  Each tick yields one snapshot per member, so
        smaller ticks stream finer windows at more coalescing overhead.
    max_pending:
        Per-client snapshot queue bound.  A cohort only ticks while
        every member has queue space, so a slow consumer stalls its
        cohort at ``max_pending`` buffered windows (bounded memory)
        without affecting other cohorts.
    chunk_size:
        Noise pre-draw block length for cohort engines (bit-invariant;
        a locality/memory trade-off only).
    checkpoint_dir:
        When given, every sealed cohort is snapshotted to
        ``cohort-<id>.ckpt`` under this directory after each tick (and
        the artifact deleted once the cohort ends), so a process death
        strands no compute: :func:`recover_cohorts` salvages the
        orphans and finishes their runs bit-identically.
    workers / backend:
        Shard every cohort's ticks across worker processes
        (:class:`~repro.runtime.mixed.MixedEngine` with fixed workers).
        ``backend="shm"`` rides the persistent zero-copy pool of
        :mod:`repro.runtime.shm` — tick overhead is one command
        round-trip per shard — and :meth:`stop` tears the pool down.
        Streamed windows are bit-identical for any setting.
    sample_every_s / http_port / http_host:
        Wire up the live observability plane
        (:mod:`repro.observability.live`): ``sample_every_s`` starts a
        background :class:`~repro.observability.live.SnapshotPipeline`
        at that cadence, ``http_port`` additionally serves
        ``/metrics``, ``/health``, ``/ready`` and ``/snapshot`` on a
        stdlib HTTP thread (``http_port`` alone implies a 0.5 s
        cadence; ``http_port=0`` picks a free port — read it back from
        :attr:`http_url`).  Neither touches the tick path: streamed
        windows stay bit-identical with the plane on or off.
    health_scores:
        Keep per-rig :class:`~repro.station.health.RigHealthTracker`
        scores updated at every tick (default on; the fused scores feed
        ``/health`` and :meth:`ClientSession.health`).

    Lifecycle: ``await start()`` spawns the tick loop, ``await stop()``
    fails the remaining clients with :class:`~repro.errors.ServiceError`
    and cancels it; ``async with`` does both.  :meth:`attach` may be
    called before ``start`` — those clients simply wait for the loop.
    """

    def __init__(self, *, tick_steps: int = 1000, max_pending: int = 8,
                 chunk_size: int = 1024, checkpoint_dir=None,
                 workers: int | None = None,
                 backend: str = "spawn",
                 sample_every_s: float | None = None,
                 http_port: int | None = None,
                 http_host: str = "127.0.0.1",
                 health_scores: bool = True) -> None:
        if tick_steps < 1:
            raise ConfigurationError("tick_steps must be >= 1")
        if max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if http_port is not None and sample_every_s is None:
            sample_every_s = 0.5  # an HTTP plane without samples is useless
        if sample_every_s is not None and sample_every_s <= 0.0:
            raise ConfigurationError("sample_every_s must be > 0")
        from repro.runtime.shm import resolve_backend
        self._tick_steps = int(tick_steps)
        self._max_pending = int(max_pending)
        self._chunk = int(chunk_size)
        # Cohort parallelism: every sealed cohort's engine shards its
        # ticks across this many workers on this backend ("shm" rides
        # the persistent zero-copy pool, so per-tick overhead is one
        # command round-trip per shard, not a process spawn).
        self._workers = None if workers is None else int(workers)
        self._backend = resolve_backend(backend)
        self._checkpoint_dir = (None if checkpoint_dir is None
                                else Path(checkpoint_dir))
        self._groups: dict[int, _Group] = {}
        self._open_by_key: dict[tuple, _Group] = {}
        self._members: set[_Member] = set()
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._stopped = False
        self._client_seq = 0
        self._group_seq = 0
        self._counters = {
            "attaches": 0, "detaches": 0, "ticks": 0, "snapshots": 0,
            "backpressure_stalls": 0, "completed": 0, "crashed_groups": 0,
        }
        # Live observability plane (repro.observability.live), started
        # and stopped with the service when configured.
        self._sample_every = (None if sample_every_s is None
                              else float(sample_every_s))
        self._http_port = None if http_port is None else int(http_port)
        self._http_host = http_host
        self._health_scores = bool(health_scores)
        self._pipeline = None
        self._http = None
        self._last_tick_monotonic: float | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the tick loop is live."""
        return self._task is not None and not self._task.done()

    async def start(self) -> "FleetService":
        """Spawn the tick loop (idempotent until :meth:`stop`).

        Raises
        ------
        ServiceError
            If the service was already stopped (``reason="stopped"``).
        """
        if self._stopped:
            raise ServiceError("service already stopped", reason="stopped")
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._loop())
        if self._sample_every is not None and self._pipeline is None:
            from repro.observability.live import SnapshotPipeline
            self._pipeline = SnapshotPipeline(
                cadence_s=self._sample_every,
                sources={"service": self.stats, "health": self.health})
            self._pipeline.start()
        if self._http_port is not None and self._http is None:
            from repro.observability.live import LiveServer
            self._http = LiveServer(
                pipeline=self._pipeline,
                health_source=self.health,
                ready_source=lambda: self.running and not self._stopped,
                host=self._http_host, port=self._http_port)
            self._http.start()
        return self

    async def stop(self) -> None:
        """Stop the loop; fail still-attached clients (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        exc = ServiceError("service stopped", reason="stopped")
        for member in list(self._members):
            self._finalize(member, error=exc)
        for group in self._groups.values():
            if group.engine is not None:
                group.engine.close()
        self._groups.clear()
        self._open_by_key.clear()
        if self._backend == "shm":
            from repro.runtime.shm import shutdown_pool
            shutdown_pool()
        if self._http is not None:
            self._http.stop()
            self._http = None
        if self._pipeline is not None:
            self._pipeline.stop()
        get_event_log().emit("service.stop")

    async def __aenter__(self) -> "FleetService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- client surface ------------------------------------------------------

    async def attach(self, profile: Profile, *,
                     fleet: FleetSpec | None = None,
                     n_monitors: int | None = None,
                     seed: int | None = None,
                     snapshot_s: float | None = None,
                     record_every_n: int | None = None,
                     numerics: str = "exact",
                     **session_kwargs) -> ClientSession:
        """Join the service with a profile; returns the client handle.

        Builds (and calibrates) a :class:`~repro.runtime.Session` for
        the client's fleet — preferably a
        :class:`~repro.runtime.FleetSpec` via ``fleet=`` (possibly
        mixed), or the legacy ``n_monitors``/``seed``/``session_kwargs``
        spelling — the same deterministic materialization a standalone
        run uses, which is what makes the streamed rows bit-identical
        to ``Session.run`` — then queues the rigs into an *open* cohort
        of clients sharing this profile, cadence, loop rate and
        numerics.  Build configurations may differ across a cohort's
        members: the cohort engine sub-batches per config group
        (:class:`~repro.runtime.mixed.MixedEngine`), bit-identical per
        rig to a cohort of its own.  The cohort seals at its first
        tick; every client attached before that (e.g. an attach storm
        racing the loop) lands in one shared engine.

        Parameters mirror :meth:`repro.runtime.Session.run` where they
        overlap (``snapshot_s`` / ``record_every_n`` cadence,
        ``numerics``); ``session_kwargs`` forward to the Session
        constructor (``loop_rate_hz``, ``use_pulsed_drive``,
        ``fast_calibration``, ... — deprecated there in favor of
        ``fleet=``, warning once per process).

        Raises
        ------
        ServiceError
            If the service was stopped (``reason="stopped"``).
        ConfigurationError
            For an empty profile, conflicting cadence spellings, or
            ``fleet=`` combined with the legacy fleet kwargs.
        """
        if self._stopped:
            raise ServiceError("service stopped", reason="stopped")
        mode = resolve_numerics(numerics)
        if fleet is not None:
            # Session refuses fleet= + legacy kwargs with the precise
            # error; just forward both spellings.
            session = Session(n_monitors, seed, fleet=fleet,
                              chunk_size=self._chunk, **session_kwargs)
        else:
            session = Session(n_monitors=1 if n_monitors is None
                              else n_monitors,
                              seed=42 if seed is None else seed,
                              chunk_size=self._chunk, **session_kwargs)
        n_monitors = session.n_monitors
        seed = session.seed
        session.open()
        try:
            every = resolve_record_every_n(session._dt, snapshot_s,
                                           record_every_n)
            if every < 1:
                raise ConfigurationError("record_every_n must be >= 1")
            total_steps = int(round(profile.duration_s / session._dt))
            if total_steps < 1:
                raise ConfigurationError("profile shorter than one loop tick")

            self._client_seq += 1
            client_id = f"c{self._client_seq}"
            tracer = get_tracer()
            with tracer.span("service.attach", client=client_id,
                             n_monitors=n_monitors, seed=seed):
                context = tracer.current_context()
                trace_id = (context.trace_id if context is not None
                            else f"trace-{client_id}")
                session.calibrate()
                rigs = [handle.rig for handle in session.monitors]
        except BaseException:
            # Once registered, _finalize owns closing the session; until
            # then a validation/calibration failure must not leak it.
            session.close()
            raise

        client = ClientSession(self, client_id, trace_id, seed=int(seed),
                               n_monitors=int(n_monitors),
                               total_steps=total_steps,
                               record_every_n=every)
        stream = SnapshotStream(self._max_pending, on_space=self._wake.set)
        member = _Member(client, session, rigs, stream)
        client._member = member

        key = self._group_key(session, profile, every, mode)
        group = self._open_by_key.get(key)
        if group is None:
            self._group_seq += 1
            group = _Group(self._group_seq, key, profile, every, mode,
                           self._chunk, total_steps)
            self._groups[group.group_id] = group
            self._open_by_key[key] = group
        group.members.append(member)
        member.group = group
        self._members.add(member)

        self._counters["attaches"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("service.attaches").inc()
            registry.gauge("service.clients").set(len(self._members))
            registry.gauge("service.groups").set(len(self._groups))
        get_event_log().emit("service.attach", client=client_id,
                             trace=trace_id, n_monitors=n_monitors,
                             seed=int(seed), group=group.group_id)
        self._wake.set()
        return client

    def stats(self) -> dict:
        """Service-level snapshot: counters, cohorts and queue depths.

        Safe to call from a sampler thread (the live snapshot pipeline
        polls it): all shared containers are copied before iteration,
        so a concurrent attach/detach on the event loop cannot break
        the walk — the view is simply a moment-in-time sample.
        """
        groups = []
        for g in list(self._groups.values()):
            members = list(g.members)
            groups.append({
                "group_id": g.group_id,
                "sealed": g.engine is not None,
                "members": len(members),
                "fleet_size": sum(m.n for m in members),
                "config_groups": (len(g.engine.groups)
                                  if g.engine is not None else None),
                "done_steps": g.done,
                "total_steps": g.total_steps,
                "queue_depth": max((m.stream.depth for m in members),
                                   default=0),
            })
        registry = get_registry()
        return {
            "running": self.running,
            "clients": len(self._members),
            "groups": groups,
            **dict(self._counters),
            "metrics": registry.snapshot() if registry.enabled else {},
        }

    def health(self) -> dict:
        """Liveness/saturation report for the ``/health`` endpoint.

        JSON-safe and thread-safe (copied views, like :meth:`stats`).
        ``status`` is ``"ok"`` while the tick loop is live and
        backpressure saturation — stalled loop passes over total passes
        — stays under 90%; a configured-but-dead shm pool or a stopped
        loop degrades it.
        """
        stalls = self._counters["backpressure_stalls"]
        ticks = self._counters["ticks"]
        saturation = stalls / max(1, stalls + ticks)
        if self._stopped:
            status = "stopped"
        elif not self.running:
            status = "idle"
        elif saturation >= 0.9 and len(self._members) > 0:
            status = "degraded"
        else:
            status = "ok"
        pool: dict = {"backend": self._backend}
        if self._backend == "shm":
            from repro.runtime.shm import existing_pool
            live = existing_pool()
            pool["workers_alive"] = 0 if live is None else live.size
            # A sealed cohort with no live pool means ticks will stall.
            if (status == "ok" and live is None
                    and any(g.engine is not None
                            for g in list(self._groups.values()))):
                status = "degraded"
        worst = []
        if self._health_scores:
            for member in list(self._members):
                for rig, tracker in enumerate(list(member.health)):
                    worst.append({
                        "client": member.client.client_id,
                        "rig": rig,
                        "score": tracker.score(),
                        "status": tracker.status().name.lower(),
                    })
            worst.sort(key=lambda r: r["score"], reverse=True)
        since_tick = (None if self._last_tick_monotonic is None
                      else time.monotonic() - self._last_tick_monotonic)
        return {
            "status": status,
            "running": self.running,
            "clients": len(self._members),
            "groups": len(self._groups),
            "backpressure": {"stalls": stalls, "ticks": ticks,
                             "saturation": saturation},
            "pool": pool,
            "since_last_tick_s": since_tick,
            "worst_rigs": worst[:5],
        }

    @property
    def pipeline(self):
        """The live :class:`~repro.observability.live.SnapshotPipeline`
        (None unless ``sample_every_s``/``http_port`` was configured)."""
        return self._pipeline

    @property
    def http_url(self) -> str | None:
        """Base URL of the live HTTP plane once started, else None."""
        return self._http.url if self._http is not None else None

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _group_key(session: Session, profile: Profile, every: int,
                   mode: str) -> tuple:
        """Cohort identity: everything that must match for one engine.

        Build configurations are deliberately *absent*: the cohort
        engine is a :class:`~repro.runtime.mixed.MixedEngine`, so
        clients with different builds coalesce into one mixed cohort.
        Only the shared clocks remain — profile, cadence, loop rate
        (``session._dt``) and numerics.
        """
        return (tuple(profile.segments), every, session._dt, mode)

    async def _detach(self, client: ClientSession) -> RunResult:
        """Remove ``client`` between ticks; finalize its partial result."""
        member = client._member
        if member is None or member.finalized:
            raise ServiceError(
                f"client {client.client_id} is not attached",
                reason="detached")
        group = member.group
        with get_tracer().span("service.detach", client=client.client_id,
                               group=group.group_id if group else -1):
            if group is not None:
                index = group.members.index(member)
                if group.engine is not None:
                    lo = sum(m.n for m in group.members[:index])
                    group.engine.drop(list(range(lo, lo + member.n)))
                group.members.pop(index)
                if not group.members:
                    self._discard_group(group)
            partial = self._stitch(member)
            self._finalize(member, result=partial)
        self._counters["detaches"] += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("service.detaches").inc()
            registry.gauge("service.clients").set(len(self._members))
            registry.gauge("service.groups").set(len(self._groups))
        get_event_log().emit("service.detach", client=client.client_id,
                             done_steps=group.done if group else 0)
        self._wake.set()
        return partial

    def _stitch(self, member: _Member) -> RunResult:
        """Concatenate a member's streamed windows into one result."""
        if not member.windows:
            return _empty_result(member.n)
        return RunResult.concat_time(member.windows)

    def _finalize(self, member: _Member,
                  result: RunResult | None = None,
                  error: BaseException | None = None) -> None:
        """Resolve a member's future and stream; detach it everywhere."""
        if member.finalized:
            return
        member.finalized = True
        if member.group is not None:
            member.done = member.group.done
        self._members.discard(member)
        if not member.future.done():
            if error is not None:
                member.future.set_exception(error)
            else:
                member.future.set_result(result)
        member.stream.close(error)
        member.session.close()
        registry = get_registry()
        if registry.enabled:
            registry.gauge("service.clients").set(len(self._members))

    def _discard_group(self, group: _Group) -> None:
        if group.engine is not None:
            # Evict any pool-resident shard state the cohort engine
            # holds (a no-op for serial groups).
            group.engine.close()
        self._groups.pop(group.group_id, None)
        if self._open_by_key.get(group.key) is group:
            del self._open_by_key[group.key]
        if self._checkpoint_dir is not None:
            # The cohort ended (completed, crashed or emptied): its
            # checkpoint no longer names recoverable work.
            (self._checkpoint_dir
             / f"cohort-{group.group_id}.ckpt").unlink(missing_ok=True)
        registry = get_registry()
        if registry.enabled:
            registry.gauge("service.groups").set(len(self._groups))
        # Retire the cohort's own gauge so a resident service's registry
        # cardinality stays bounded by *live* cohorts, not history.
        get_registry().discard(
            f"service.group.{group.group_id}.queue_depth")

    def _seal(self, group: _Group) -> None:
        """Build the cohort engine; no more members may join.

        The engine is a :class:`~repro.runtime.mixed.MixedEngine` over
        every member's rigs in attach order: a homogeneous cohort takes
        its single-group fast path (byte-identical to the plain
        ``BatchEngine`` it used to build), a mixed cohort sub-batches
        per config group.
        """
        if self._open_by_key.get(group.key) is group:
            del self._open_by_key[group.key]
        rigs = [rig for member in group.members for rig in member.rigs]
        group.engine = MixedEngine(rigs, chunk_size=group.chunk_size,
                                   numerics=group.numerics,
                                   workers=self._workers,
                                   backend=self._backend)

    def _fail_group(self, group: _Group, exc: BaseException) -> None:
        """Propagate an engine fault to every member; drop the cohort."""
        self._counters["crashed_groups"] += 1
        get_event_log().emit("service.crash", group=group.group_id,
                             error=type(exc).__name__)
        for member in list(group.members):
            self._finalize(member, error=exc)
        group.members.clear()
        self._discard_group(group)

    def _tick(self, group: _Group) -> None:
        """Advance one cohort by one bounded slice; fan out snapshots."""
        tick_start = time.perf_counter()
        tracer = get_tracer()
        if group.engine is None:
            try:
                self._seal(group)
            except ReproError as exc:
                self._fail_group(group, exc)
                return
        budget = min(self._tick_steps, group.total_steps - group.done)
        with tracer.span("service.tick", group=group.group_id,
                         steps=budget, clients=len(group.members)):
            try:
                window = group.engine.advance(
                    group.profile, budget, group.record_every_n)
            except ReproError as exc:
                self._fail_group(group, exc)
                return
        group.done += budget
        complete = group.done >= group.total_steps
        if self._health_scores and len(window):
            self._score_window(group, window)
        lo = 0
        for member in group.members:
            rows = _slice_rows(window, lo, lo + member.n)
            lo += member.n
            member.windows.append(rows)
            member.stream.push(Snapshot(
                seq=len(member.windows) - 1,
                window=rows,
                summary=rows.summary(),
                done_steps=group.done,
                total_steps=group.total_steps,
            ))
        self._counters["ticks"] += 1
        self._counters["snapshots"] += len(group.members)
        self._last_tick_monotonic = time.monotonic()
        registry = get_registry()
        if registry.enabled:
            registry.counter("service.ticks").inc()
            registry.counter("service.snapshots").inc(len(group.members))
            registry.counter("service.samples").inc(
                budget * sum(m.n for m in group.members))
            registry.histogram("service.tick.wall_s").observe(
                time.perf_counter() - tick_start)
            depth = max((m.stream.depth for m in group.members), default=0)
            registry.gauge(f"service.group.{group.group_id}.queue_depth").set(
                depth)
            registry.gauge("service.queue.depth").set(depth)
        if complete:
            self._counters["completed"] += len(group.members)
            for member in list(group.members):
                self._finalize(member, result=self._stitch(member))
            group.members.clear()
            self._discard_group(group)
        elif self._checkpoint_dir is not None:
            self._checkpoint_group(group)

    def _score_window(self, group: _Group, window: RunResult) -> None:
        """Feed one cohort window through every member's health trackers.

        Residuals are taken against the cohort-wide reference trace
        (per-tick median across all rigs in the window), which cancels
        the shared demand profile and isolates per-rig anomalies; see
        :mod:`repro.station.health`.
        """
        dt_s = group.key[2] * group.record_every_n
        ref_speed = fleet_reference(window, "measured_mps")
        ref_press = fleet_reference(window, "pressure_pa")
        ref_temp = fleet_reference(window, "temperature_k")
        worst = 0.0
        lo = 0
        for member in group.members:
            if len(member.health) != member.n:
                member.health = [RigHealthTracker()
                                 for _ in range(member.n)]
            for offset, tracker in enumerate(member.health):
                row = lo + offset
                score = tracker.update(
                    dt_s=dt_s,
                    measured_mps=window.measured_mps[row],
                    reference_mps=ref_speed,
                    pressure_pa=window.pressure_pa[row],
                    reference_pa=ref_press,
                    temperature_k=window.temperature_k[row],
                    reference_k=ref_temp,
                    bubble_coverage=window.bubble_coverage[row],
                )
                worst = max(worst, score)
            lo += member.n
        registry = get_registry()
        if registry.enabled:
            registry.gauge("service.health.worst").set(worst)

    def _checkpoint_group(self, group: _Group) -> None:
        """Snapshot a sealed cohort to ``cohort-<id>.ckpt``.

        The artifact pairs the live engine with every member's streamed
        windows *at the same cut point*, so a resume continues exactly
        where the streamed data ends.  The write is atomic, so a crash
        mid-save leaves the previous tick's checkpoint intact.
        """
        save_checkpoint(
            group.engine,
            self._checkpoint_dir / f"cohort-{group.group_id}.ckpt",
            meta={
                "service": "cohort",
                "group_id": group.group_id,
                "done": group.done,
                "total_steps": group.total_steps,
                "record_every_n": group.record_every_n,
                "profile": group.profile,
                "members": [
                    {"client_id": m.client.client_id,
                     "seed": m.client.seed,
                     "n": m.n,
                     "windows": list(m.windows)}
                    for m in group.members
                ],
            })

    async def _loop(self) -> None:
        """The tick loop: round-robin over ready cohorts, stall on none.

        Never awaits inside a tick, so attach/detach coroutines (same
        event loop) interleave only between ticks; yields after every
        tick so consumers drain while the next cohort advances.
        """
        while True:
            progressed = False
            for group in list(self._groups.values()):
                if group.group_id not in self._groups or not group.members:
                    continue
                if not group.ready():
                    self._counters["backpressure_stalls"] += 1
                    registry = get_registry()
                    if registry.enabled:
                        registry.counter("service.backpressure.stalls").inc()
                    continue
                try:
                    self._tick(group)
                except Exception as exc:
                    # _tick maps engine faults itself; anything escaping
                    # is a service-side bug.  It must still resolve the
                    # cohort's futures/streams — an exception out of the
                    # loop task would strand every attached client.
                    self._fail_group(group, exc)
                progressed = True
                await asyncio.sleep(0)
            if not progressed:
                self._wake.clear()
                await self._wake.wait()


@dataclass
class RecoveredCohort:
    """One orphaned cohort salvaged from a dead service's checkpoints.

    Produced by :func:`recover_cohorts`.  Holds the restored live
    engine plus every member's already-streamed windows at the same cut
    point; :meth:`resume` finishes the run offline.

    Attributes
    ----------
    path:
        The checkpoint artifact this cohort was restored from.
    group_id:
        The dead service's cohort id.
    done / total_steps:
        Engine samples completed at the checkpoint, and the horizon.
    record_every_n:
        Recording decimation the cohort streamed at.
    clients:
        Member client ids, in attach order.
    """

    path: Path
    group_id: int
    done: int
    total_steps: int
    record_every_n: int
    clients: list[str]
    _profile: Profile
    _members: list[dict]
    _engine: MixedEngine

    def resume(self) -> dict[str, RunResult]:
        """Finish the cohort's run; per-client stitched results.

        Advances the restored engine from the checkpoint's cut point to
        the horizon, slices each member its own rows, and concatenates
        them onto the windows the dead service already streamed — the
        returned :class:`~repro.runtime.result.RunResult` per client id
        is bit-identical to what an uninterrupted service would have
        resolved from :meth:`ClientSession.result`.  On success the
        checkpoint artifact is deleted.
        """
        windows = [list(m["windows"]) for m in self._members]
        remaining = self.total_steps - self.done
        if remaining > 0:
            window = self._engine.advance(
                self._profile, remaining,
                record_every_n=self.record_every_n)
            lo = 0
            for m, acc in zip(self._members, windows):
                acc.append(_slice_rows(window, lo, lo + m["n"]))
                lo += m["n"]
        results = {
            m["client_id"]: (RunResult.concat_time(acc) if acc
                             else _empty_result(m["n"]))
            for m, acc in zip(self._members, windows)
        }
        self.path.unlink(missing_ok=True)
        return results


def recover_cohorts(checkpoint_dir) -> list[RecoveredCohort]:
    """List the cohorts a dead service left behind, oldest cohort first.

    Scans ``checkpoint_dir`` for ``cohort-*.ckpt`` artifacts written by
    a :class:`FleetService` run with ``checkpoint_dir=`` and restores
    each into a :class:`RecoveredCohort`.  Call
    :meth:`RecoveredCohort.resume` to finish a cohort's run and collect
    the per-client results the dead service never delivered.

    Returns an empty list when nothing was stranded (the service
    deletes checkpoints for cohorts that end normally).

    Raises
    ------
    CheckpointError
        ``reason="corrupt"``/``"version"``/``"kind"`` if an artifact in
        the directory is not a readable service cohort checkpoint.
    """
    root = Path(checkpoint_dir)
    cohorts = []
    for path in sorted(root.glob("cohort-*.ckpt")):
        ckpt = load_checkpoint(path, expect_kind="mixed")
        meta = ckpt.meta
        cohorts.append(RecoveredCohort(
            path=path,
            group_id=int(meta["group_id"]),
            done=int(meta["done"]),
            total_steps=int(meta["total_steps"]),
            record_every_n=int(meta["record_every_n"]),
            clients=[m["client_id"] for m in meta["members"]],
            _profile=meta["profile"],
            _members=meta["members"],
            _engine=ckpt.engine,
        ))
    cohorts.sort(key=lambda cohort: cohort.group_id)
    return cohorts
