"""Async streaming fleet service: many clients, shared engine ticks.

The runtime's one-shot ``Session.run`` answers "run this profile, hand
me the traces"; this package answers the deployment-shaped question —
many concurrent clients, each with its own fleet, seed and horizon,
monitored continuously.  A resident :class:`FleetService` multiplexes
attached clients onto shared :class:`~repro.runtime.batch.BatchEngine`
tick slices (grouping compatible configurations into cohorts), streams
each client incremental :class:`~repro.service.streams.Snapshot`
windows through bounded backpressured queues, and finalizes results —
full-horizon or detached-early partials — bit-identical to a standalone
``Session.run`` of the same config/seed/horizon.

Client-facing entry points (re-exported from the top-level ``repro``
package): :func:`~repro.service.facade.connect` for streaming,
:func:`~repro.service.facade.run` for one-shot runs.  See
``docs/service.md`` for the architecture and the parity guarantees.

Durability: a service built with ``checkpoint_dir=`` snapshots every
sealed cohort after each tick; after a process death
:func:`recover_cohorts` salvages the orphans and finishes their runs
bit-identically (see ``docs/durability.md``).
"""

from repro.service.facade import ServiceClient, connect, run
from repro.service.service import (ClientSession, FleetService,
                                   RecoveredCohort, recover_cohorts)
from repro.service.streams import Snapshot, SnapshotStream

__all__ = [
    "FleetService",
    "ClientSession",
    "RecoveredCohort",
    "ServiceClient",
    "Snapshot",
    "SnapshotStream",
    "connect",
    "recover_cohorts",
    "run",
]
