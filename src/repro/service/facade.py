"""The single client-facing entry point: ``repro.connect`` / ``repro.run``.

Notebook users, the CLI and the streaming service all historically chose
among ``Session.run``, ``TestRig.run`` and ``run_batch``; this module is
the one documented front door over all of them:

- :func:`run` — synchronous one-shot: build a session, calibrate, run,
  return the result.  Covers the common "give me the traces" case with
  one call and the unified keyword surface.
- :func:`connect` — the streaming path: returns a
  :class:`ServiceClient` wrapping a resident (or caller-provided)
  :class:`~repro.service.service.FleetService`, against which clients
  ``attach``/``detach`` and consume incremental snapshots.

Both are re-exported from the top-level ``repro`` package and asserted
single-source by the API-quality tests.
"""

from __future__ import annotations

from repro.errors import ServiceError
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.service.service import ClientSession, FleetService
from repro.station.profiles import Profile

__all__ = ["ServiceClient", "connect", "run"]


def run(profile: Profile, *, fleet=None,
        n_monitors: int | None = None, seed: int | None = None,
        snapshot_s: float | None = None, collect: str = "result",
        engine: str = "batch", workers: int | None = None,
        numerics: str = "exact", backend: str = "spawn",
        record_every_n: int | None = None,
        **session_kwargs) -> RunResult | dict:
    """One-shot fleet run: session lifecycle in a single call.

    Equivalent to building a :class:`~repro.runtime.Session`,
    calibrating, running the profile and closing — the recommended
    entry point when a resident service is overkill::

        import repro

        result = repro.run(repro.staircase([0.0, 50.0, 120.0],
                                           dwell_s=4.0),
                           n_monitors=8, seed=7)

    The fleet is described either by ``fleet=`` (a
    :class:`~repro.runtime.FleetSpec`, possibly mixed — a structurally
    heterogeneous fleet sub-batches per config group, bit-identical per
    rig to running its group alone) or by the legacy
    ``n_monitors``/``seed``/``session_kwargs`` spelling (``loop_rate_hz``,
    ``use_pulsed_drive``, ``fast_calibration``, ... — deprecated at the
    Session layer in favor of ``fleet=``).  All other keywords mirror
    :meth:`repro.runtime.Session.run` (``snapshot_s``/``record_every_n``
    cadence, ``collect``, ``engine``, ``workers``, ``backend``,
    ``numerics``).
    Traces are bit-identical to what a
    :meth:`~repro.service.service.FleetService` client streaming the
    same config/seed/profile would stitch together.

    Raises
    ------
    ConfigurationError
        For invalid knobs (propagated from the session layer), and for
        ``fleet=`` combined with the legacy fleet kwargs or a
        scenario-bearing spec (campaigns belong to
        :func:`repro.station.run_campaign`).
    """
    with Session(n_monitors, seed, fleet=fleet,
                 **session_kwargs) as session:
        session.calibrate()
        return session.run(profile, snapshot_s=snapshot_s, collect=collect,
                           engine=engine, workers=workers, numerics=numerics,
                           backend=backend, record_every_n=record_every_n)


class ServiceClient:
    """Client-side handle on a fleet service (owned or shared).

    Usage::

        async with repro.connect() as client:
            session = await client.attach(profile, n_monitors=4, seed=7)
            async for snap in session.snapshots():
                ...
            result = await session.result()

    When constructed without an explicit service the client owns a
    private in-process :class:`~repro.service.service.FleetService`,
    started lazily on first use and stopped by ``close()`` / leaving
    the ``async with`` block.  Pass ``service=`` to share a resident
    service across clients — lifecycle then stays with the caller.
    """

    def __init__(self, service: FleetService | None = None,
                 **service_kwargs) -> None:
        if service is not None and service_kwargs:
            raise ServiceError(
                "pass a service or service kwargs, not both")
        self._service = service if service is not None \
            else FleetService(**service_kwargs)
        self._owns = service is None

    @property
    def service(self) -> FleetService:
        """The underlying fleet service."""
        return self._service

    async def __aenter__(self) -> "ServiceClient":
        await self._service.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def attach(self, profile: Profile, **kwargs) -> ClientSession:
        """Attach a run to the service (starting it if this client owns
        an idle one); see :meth:`FleetService.attach` for parameters."""
        if self._owns and not self._service.running:
            await self._service.start()
        return await self._service.attach(profile, **kwargs)

    async def run(self, profile: Profile, **kwargs) -> RunResult:
        """Attach, stream to completion, and return the final result.

        The streaming equivalent of module-level :func:`run` — same
        bit-exact traces — for callers already inside an event loop.
        The snapshot stream is drained (and discarded) on the caller's
        behalf: the service only ticks a cohort while every member's
        bounded stream has space, so awaiting the result without a
        consumer would stall any run longer than
        ``max_pending * tick_steps`` samples.
        """
        session = await self.attach(profile, **kwargs)
        async for _ in session.snapshots():
            pass
        return await session.result()

    async def close(self) -> None:
        """Stop the service if this client owns it (else a no-op)."""
        if self._owns:
            await self._service.stop()


def connect(service: FleetService | None = None,
            **service_kwargs) -> ServiceClient:
    """Open a client on a fleet service; the streaming entry point.

    With no arguments the client owns a private in-process
    :class:`~repro.service.service.FleetService` (service knobs —
    ``tick_steps``, ``max_pending``, ``chunk_size``, ``workers``,
    ``backend`` — may be passed
    through); with ``service=`` it wraps a shared resident service
    without taking over its lifecycle.

    Raises
    ------
    ServiceError
        If both a service and service kwargs are given.
    """
    return ServiceClient(service, **service_kwargs)
