"""ADC metrology: SNDR / ENOB / SFDR from a sine test.

Standard converter characterisation (IEEE 1241 style): drive a
coherent-ish sine, window, FFT, split signal / harmonics / noise.  Used
by the ΣΔ tests and the E13 platform bench to put real numbers on the
16-bit channel instead of trusting the datasheet ENOB parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import windows

from repro.errors import ConfigurationError

__all__ = ["SineTestResult", "sine_test"]


@dataclass(frozen=True)
class SineTestResult:
    """Outcome of one sine test.

    Attributes
    ----------
    sndr_db:
        Signal to noise-and-distortion ratio.
    enob:
        Effective number of bits: (SNDR - 1.76) / 6.02.
    sfdr_db:
        Spurious-free dynamic range (signal to worst single bin).
    signal_bin:
        FFT bin the fundamental landed in.
    """

    sndr_db: float
    enob: float
    sfdr_db: float
    signal_bin: int


def sine_test(samples: np.ndarray, signal_hz: float,
              sample_rate_hz: float) -> SineTestResult:
    """Analyse a captured sine-test record.

    Parameters
    ----------
    samples:
        Output codes (or volts) of the converter under test; length
        should be >= 512 for a meaningful noise floor.
    signal_hz / sample_rate_hz:
        Stimulus frequency and capture rate.

    Notes
    -----
    A 4-term Blackman-Harris window (-92 dB sidelobes) makes the
    analysis robust to non-coherent sampling up to ~15 ENOB; the signal
    is taken as the fundamental bin ±5 (main-lobe width), DC (±5 bins)
    is excluded from the noise.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size < 512:
        raise ConfigurationError("need a 1-D record of >= 512 samples")
    if not 0.0 < signal_hz < sample_rate_hz / 2.0:
        raise ConfigurationError("signal must be inside (0, Nyquist)")
    n = x.size
    windowed = (x - np.mean(x)) * windows.blackmanharris(n)
    spectrum = np.abs(np.fft.rfft(windowed)) ** 2
    expected_bin = int(round(signal_hz / sample_rate_hz * n))
    lo = max(expected_bin - 3, 1)
    hi = min(expected_bin + 4, spectrum.size)
    signal_bin = lo + int(np.argmax(spectrum[lo:hi]))

    leak = 5  # Blackman-Harris main-lobe half-width
    signal_power = float(np.sum(
        spectrum[max(signal_bin - leak, 1):signal_bin + leak + 1]))
    noise = spectrum.copy()
    noise[:leak + 1] = 0.0  # DC and its leakage
    noise[max(signal_bin - leak, 0):signal_bin + leak + 1] = 0.0
    noise_power = float(np.sum(noise))
    if signal_power <= 0.0 or noise_power <= 0.0:
        raise ConfigurationError("degenerate record: no signal or no noise")
    sndr_db = 10.0 * np.log10(signal_power / noise_power)
    worst_spur = float(np.max(noise))
    peak_signal = float(np.max(
        spectrum[max(signal_bin - leak, 1):signal_bin + leak + 1]))
    sfdr_db = 10.0 * np.log10(peak_signal / worst_spur)
    return SineTestResult(
        sndr_db=sndr_db,
        enob=(sndr_db - 1.76) / 6.02,
        sfdr_db=sfdr_db,
        signal_bin=signal_bin,
    )
