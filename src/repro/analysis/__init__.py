"""Measurement analysis: the metrics the paper's §5 reports.

Resolution (±3σ in cm/s and % of full scale), repeatability, accuracy
against the reference, step response time, plus sweep and ASCII-table
helpers used by the benches.
"""

from repro.analysis.metrics import (
    resolution_3sigma,
    resolution_pct_fs,
    repeatability_pct_fs,
    accuracy_rms,
    settling_time_s,
    FULL_SCALE_MPS,
)
from repro.analysis.sweep import sweep, SweepResult
from repro.analysis.report import format_table
from repro.analysis.adc_metrics import sine_test, SineTestResult
from repro.analysis.uncertainty import fit_kings_law_with_covariance, speed_uncertainty, error_budget, FitCovariance
from repro.analysis.psd import welch_psd, white_floor, flicker_corner_hz, PsdResult

__all__ = [
    "resolution_3sigma",
    "resolution_pct_fs",
    "repeatability_pct_fs",
    "accuracy_rms",
    "settling_time_s",
    "FULL_SCALE_MPS",
    "sweep",
    "SweepResult",
    "format_table",
    "sine_test",
    "SineTestResult",
    "fit_kings_law_with_covariance",
    "speed_uncertainty",
    "error_budget",
    "FitCovariance",
    "welch_psd",
    "white_floor",
    "flicker_corner_hz",
    "PsdResult",
]
