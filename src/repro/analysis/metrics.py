"""Metric definitions matching §5 of the paper.

The paper reports, over a 0-250 cm/s full scale:

* resolution ±0.75 cm/s … ±4 cm/s (±0.35 % … ±1.76 % FS) — we read
  "resolution" as the ±3σ band of the filtered output at steady flow;
* repeatability ≈ ±1 % FS — the spread of steady-state means when the
  same setpoint is approached repeatedly;
* comparison accuracy against the Promag 50 reference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FULL_SCALE_MPS",
    "resolution_3sigma",
    "resolution_pct_fs",
    "repeatability_pct_fs",
    "accuracy_rms",
    "settling_time_s",
]

#: The paper's full scale: 250 cm/s.
FULL_SCALE_MPS = 2.5


def _require_samples(x: np.ndarray, minimum: int) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1 or arr.size < minimum:
        raise ConfigurationError(f"need a 1-D array of >= {minimum} samples")
    return arr


def resolution_3sigma(readings_mps: np.ndarray) -> float:
    """±3σ resolution [m/s] of a steady-state reading sequence."""
    arr = _require_samples(readings_mps, 10)
    return float(3.0 * np.std(arr))


def resolution_pct_fs(readings_mps: np.ndarray,
                      full_scale_mps: float = FULL_SCALE_MPS) -> float:
    """±3σ resolution as percent of full scale (the paper's unit)."""
    if full_scale_mps <= 0.0:
        raise ConfigurationError("full scale must be positive")
    return resolution_3sigma(readings_mps) / full_scale_mps * 100.0


def repeatability_pct_fs(run_means_mps: np.ndarray,
                         full_scale_mps: float = FULL_SCALE_MPS) -> float:
    """Half-spread of repeated steady-state means, % FS.

    ``run_means_mps`` holds the mean reading of each repeated approach
    to the same setpoint; repeatability is ±(max-min)/2 over FS.
    """
    arr = _require_samples(run_means_mps, 2)
    if full_scale_mps <= 0.0:
        raise ConfigurationError("full scale must be positive")
    return float((np.max(arr) - np.min(arr)) / 2.0 / full_scale_mps * 100.0)


def accuracy_rms(measured_mps: np.ndarray, reference_mps: np.ndarray) -> float:
    """RMS deviation of the sensor from the reference [m/s]."""
    m = _require_samples(measured_mps, 2)
    r = _require_samples(reference_mps, 2)
    if m.shape != r.shape:
        raise ConfigurationError("measured and reference must align")
    return float(np.sqrt(np.mean((m - r) ** 2)))


def settling_time_s(time_s: np.ndarray, readings: np.ndarray,
                    final_value: float, band_fraction: float = 0.05) -> float:
    """Time after which readings stay within ±band of the final value.

    Raises
    ------
    ConfigurationError
        If the signal never enters (and stays in) the band.
    """
    t = _require_samples(time_s, 2)
    x = _require_samples(readings, 2)
    if t.shape != x.shape:
        raise ConfigurationError("time and readings must align")
    if not 0.0 < band_fraction < 1.0:
        raise ConfigurationError("band fraction must be in (0, 1)")
    band = band_fraction * max(abs(final_value), 1e-12)
    inside = np.abs(x - final_value) <= band
    # Last sample outside the band defines settling.
    outside_idx = np.nonzero(~inside)[0]
    if outside_idx.size == 0:
        return float(t[0])
    last_outside = outside_idx[-1]
    if last_outside == len(t) - 1:
        raise ConfigurationError("signal has not settled within the record")
    return float(t[last_outside + 1] - t[0])
