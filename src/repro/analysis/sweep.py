"""Parameter-sweep helper for the design-space-exploration benches.

ISIF's whole point is "a quick and exhaustive design space exploration
changing analog settings, interconnecting digital IPs" (§3); this is
the harness side of that: run a factory+evaluator over a grid of
parameter values and collect scored results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = ["SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepResult:
    """One grid point of a sweep.

    Attributes
    ----------
    params:
        Parameter assignment of this point.
    metrics:
        Whatever the evaluator returned (a flat dict of floats).
    """

    params: dict[str, Any]
    metrics: dict[str, float]


def sweep(grid: dict[str, list[Any]],
          evaluate: Callable[..., dict[str, float]]) -> list[SweepResult]:
    """Run ``evaluate(**params)`` over the cartesian grid.

    Parameters
    ----------
    grid:
        ``{param_name: [values...]}``; the cartesian product is explored
        in deterministic (sorted-key, given-value) order.
    evaluate:
        Callable returning a flat metric dict for one assignment.
        Exceptions propagate — a sweep point that cannot be built is a
        bug in the grid, not something to paper over.

    Returns
    -------
    list of SweepResult
        One entry per grid point, in exploration order.
    """
    if not grid:
        raise ConfigurationError("sweep grid must not be empty")
    for name, values in grid.items():
        if not values:
            raise ConfigurationError(f"sweep parameter {name!r} has no values")
    names = sorted(grid)
    results = []
    for combo in product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        metrics = evaluate(**params)
        if not isinstance(metrics, dict):
            raise ConfigurationError("evaluator must return a dict of metrics")
        results.append(SweepResult(params=params, metrics=metrics))
    return results
