"""Analytic error budget of the flow measurement.

E2 measures the resolution empirically; this module predicts it from
first principles by propagating the two dominant error sources through
the King's-law inversion with the delta method:

* **conductance noise** sigma_G — loop/ADC/turbulence noise on the
  measured G, band-limited by the output filter;
* **calibration uncertainty** — the covariance of the fitted (A, B)
  from the least-squares campaign.

Since v = ((G - A)/B)^(1/n),

    dv/dG =  1 / (n B x^(n-1)),      x = ((G-A)/B)^(1/n) = v
    dv/dA = -dv/dG
    dv/dB = -v / (n B)

so  sigma_v^2 = (dv/dG)^2 sigma_G^2
              + [dv/dA, dv/dB] C [dv/dA, dv/dB]^T.

The 1/x^(n-1) factor *is* the King-law compression: with n = 0.5 the
sensitivity dv/dG grows like sqrt(v), which is exactly why the paper's
worst resolution (±4 cm/s) sits at the top of the range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.physics.kings_law import KingsLaw

__all__ = ["FitCovariance", "fit_kings_law_with_covariance",
           "speed_uncertainty", "error_budget"]


@dataclass(frozen=True)
class FitCovariance:
    """A fitted King's law plus the (A, B) covariance of the fit.

    Attributes
    ----------
    law:
        The fitted model (exponent held fixed during the fit).
    covariance:
        2x2 covariance matrix of (A, B) from the least-squares normal
        equations, scaled by the residual variance.
    """

    law: KingsLaw
    covariance: np.ndarray

    def __post_init__(self) -> None:
        c = np.asarray(self.covariance, dtype=float)
        if c.shape != (2, 2):
            raise ConfigurationError("covariance must be 2x2")


def fit_kings_law_with_covariance(
        speeds_mps: np.ndarray,
        conductances_w_per_k: np.ndarray,
        exponent: float = 0.5) -> FitCovariance:
    """Least-squares fit of (A, B) with its covariance.

    Raises
    ------
    CalibrationError
        On degenerate campaigns (as the plain fit) or non-physical
        coefficients.
    """
    v = np.abs(np.asarray(speeds_mps, dtype=float))
    g = np.asarray(conductances_w_per_k, dtype=float)
    if v.shape != g.shape or v.size < 4:
        raise CalibrationError("need >= 4 aligned calibration points")
    basis = np.column_stack([np.ones_like(v), v**exponent])
    coeffs, residual, rank, _ = np.linalg.lstsq(basis, g, rcond=None)
    if rank < 2:
        raise CalibrationError("degenerate calibration design matrix")
    dof = v.size - 2
    if residual.size:
        s2 = float(residual[0]) / max(dof, 1)
    else:
        s2 = float(np.sum((basis @ coeffs - g) ** 2)) / max(dof, 1)
    cov = s2 * np.linalg.inv(basis.T @ basis)
    law = KingsLaw(float(coeffs[0]), float(coeffs[1]), exponent)
    return FitCovariance(law=law, covariance=cov)


def speed_uncertainty(fit: FitCovariance, speed_mps: float,
                      conductance_noise_w_per_k: float) -> float:
    """1σ speed uncertainty [m/s] at an operating point.

    Parameters
    ----------
    fit:
        Calibration with covariance.
    speed_mps:
        Operating point (used to evaluate the sensitivities).
    conductance_noise_w_per_k:
        1σ of the measured conductance in the output bandwidth.
    """
    if speed_mps < 0.0 or conductance_noise_w_per_k < 0.0:
        raise ConfigurationError("speed and noise must be non-negative")
    law = fit.law
    n, b = law.exponent, law.coeff_b
    v = max(speed_mps, 1e-4)
    dv_dg = 1.0 / (n * b * v ** (n - 1.0))
    dv_da = -dv_dg
    dv_db = -v / (n * b)
    grad = np.array([dv_da, dv_db])
    var = (dv_dg * conductance_noise_w_per_k) ** 2 \
        + float(grad @ fit.covariance @ grad)
    return float(np.sqrt(var))


def error_budget(fit: FitCovariance, speeds_mps: np.ndarray,
                 conductance_noise_w_per_k: float,
                 full_scale_mps: float = 2.5) -> list[dict[str, float]]:
    """Per-setpoint error budget table (the analytic twin of E2).

    Returns a list of dicts with the noise and calibration contributions
    and the total ±3σ resolution, in cm/s and % of full scale.
    """
    if full_scale_mps <= 0.0:
        raise ConfigurationError("full scale must be positive")
    rows = []
    law = fit.law
    for v in np.asarray(speeds_mps, dtype=float):
        v_eval = max(float(v), 1e-4)
        dv_dg = 1.0 / (law.exponent * law.coeff_b
                       * v_eval ** (law.exponent - 1.0))
        noise_part = abs(dv_dg) * conductance_noise_w_per_k
        total = speed_uncertainty(fit, float(v), conductance_noise_w_per_k)
        cal_part = float(np.sqrt(max(total**2 - noise_part**2, 0.0)))
        rows.append({
            "speed_cmps": float(v) * 100.0,
            "noise_3sigma_cmps": 3.0 * noise_part * 100.0,
            "calibration_3sigma_cmps": 3.0 * cal_part * 100.0,
            "total_3sigma_cmps": 3.0 * total * 100.0,
            "total_pct_fs": 3.0 * total / full_scale_mps * 100.0,
        })
    return rows
