"""Power-spectral-density estimation and noise-corner identification.

Thin, tested wrapper over Welch's method plus the two fits the analog
validation actually needs:

* the white-noise floor of a record (median of the high band, robust to
  spurs);
* the 1/f corner: where the low-frequency PSD crosses twice the floor.

Used by the AFE/output-filter tests to verify the noise model produces
the spectra it claims, and available to users for their own records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal

from repro.errors import ConfigurationError

__all__ = ["PsdResult", "welch_psd", "white_floor", "flicker_corner_hz"]


@dataclass(frozen=True)
class PsdResult:
    """One-sided PSD estimate.

    Attributes
    ----------
    frequencies_hz:
        Bin centres.
    psd:
        Power spectral density [unit²/Hz].
    """

    frequencies_hz: np.ndarray
    psd: np.ndarray

    def band_power(self, f_lo: float, f_hi: float) -> float:
        """Integrated power in [f_lo, f_hi] [unit²]."""
        if not 0.0 <= f_lo < f_hi:
            raise ConfigurationError("need 0 <= f_lo < f_hi")
        mask = (self.frequencies_hz >= f_lo) & (self.frequencies_hz <= f_hi)
        if not np.any(mask):
            raise ConfigurationError("no PSD bins inside the band")
        return float(np.trapezoid(self.psd[mask], self.frequencies_hz[mask]))


def welch_psd(samples: np.ndarray, sample_rate_hz: float,
              segments: int = 8) -> PsdResult:
    """Welch PSD with Hann windows and 50 % overlap.

    Raises
    ------
    ConfigurationError
        For records too short to give ``segments`` segments.
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 1 or x.size < 64:
        raise ConfigurationError("need a 1-D record of >= 64 samples")
    if sample_rate_hz <= 0.0 or segments < 1:
        raise ConfigurationError("rate and segments must be positive")
    nperseg = int(2 ** np.floor(np.log2(2 * x.size / (segments + 1))))
    if nperseg < 16:
        raise ConfigurationError("record too short for the segment count")
    f, p = signal.welch(x - np.mean(x), fs=sample_rate_hz, nperseg=nperseg)
    return PsdResult(frequencies_hz=f, psd=p)


def white_floor(result: PsdResult, band_fraction: float = 0.5) -> float:
    """White-noise floor [unit²/Hz]: median PSD of the top band.

    The median is robust against isolated spurs (DDS images, idle
    tones); ``band_fraction`` selects how much of the upper spectrum is
    considered 'high band'.
    """
    if not 0.0 < band_fraction < 1.0:
        raise ConfigurationError("band fraction must be in (0, 1)")
    n = result.frequencies_hz.size
    start = int(n * (1.0 - band_fraction))
    return float(np.median(result.psd[start:]))


def flicker_corner_hz(result: PsdResult, floor: float | None = None,
                      smooth_bins: int = 9) -> float:
    """Frequency where the (smoothed) PSD falls to 2x the white floor.

    The raw Welch bins fluctuate by tens of percent, so the PSD is
    median-smoothed first and the corner is the first frequency above
    which the smoothed spectrum stays at the floor.  Returns 0.0 when
    the record shows no low-frequency excess at all — a meaningful
    outcome, not an error.
    """
    floor = white_floor(result) if floor is None else floor
    if floor <= 0.0:
        raise ConfigurationError("floor must be positive")
    if smooth_bins < 1 or smooth_bins % 2 == 0:
        raise ConfigurationError("smooth_bins must be odd and >= 1")
    psd = result.psd
    half = smooth_bins // 2
    smoothed = np.array([
        np.median(psd[max(i - half, 0):i + half + 1])
        for i in range(psd.size)
    ])
    above = smoothed > 2.0 * floor
    above[0] = False  # DC bin
    idx = np.nonzero(above)[0]
    if idx.size == 0:
        return 0.0
    # The corner is the end of the *contiguous* low-frequency excess,
    # not a stray high-frequency fluctuation.
    run_end = idx[0]
    for i in idx[1:]:
        if i == run_end + 1:
            run_end = i
        else:
            break
    return float(result.frequencies_hz[run_end])
