"""ASCII table formatting for bench output.

Benches print the rows/series the paper reports; this keeps them
uniform and dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table"]


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000.0 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render a fixed-width table.

    Parameters
    ----------
    headers:
        Column titles.
    rows:
        Row data; every row must match the header length.
    title:
        Optional caption printed above the table.
    """
    if not headers:
        raise ConfigurationError("table needs headers")
    rendered = [[_render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(headers)} headers")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("| " + " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(sep)
    for row in rendered:
        lines.append("| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |")
    lines.append(sep)
    return "\n".join(lines)
