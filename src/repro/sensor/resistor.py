"""Thin-film sensing resistor with linear TCR.

Implements eq. (1) of the paper, R = R0 (1 + alpha (T - T_ref)), plus
manufacturing tolerance, Johnson/flicker noise and long-term drift.
Two instances make up each half-bridge: the 50.0 ± 0.5 Ω heater Rh and
the 2000 ± 30 Ω ambient reference Rt.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sensor.materials import TI_TIN, ResistorMaterial
from repro.units import BOLTZMANN

__all__ = ["SensingResistor"]


class SensingResistor:
    """A thin-film resistor whose value encodes its temperature.

    Parameters
    ----------
    nominal_ohm:
        Design resistance R0 at ``reference_temperature_k``.
    tolerance_ohm:
        Absolute manufacturing tolerance (±); the realised R0 is drawn
        uniformly within it when ``rng`` is given, else it is nominal.
    material:
        Electrical material (TCR, drift, flicker corner).
    reference_temperature_k:
        Temperature at which R = R0 (the paper's T_ref, ambient).
    rng:
        Optional generator for the tolerance draw.
    """

    def __init__(
        self,
        nominal_ohm: float,
        tolerance_ohm: float = 0.0,
        material: ResistorMaterial = TI_TIN,
        reference_temperature_k: float = 293.15,
        rng: np.random.Generator | None = None,
    ) -> None:
        if nominal_ohm <= 0.0:
            raise ConfigurationError("nominal resistance must be positive")
        if tolerance_ohm < 0.0:
            raise ConfigurationError("tolerance must be non-negative")
        if tolerance_ohm >= nominal_ohm:
            raise ConfigurationError("tolerance larger than the nominal value")
        self.nominal_ohm = nominal_ohm
        self.tolerance_ohm = tolerance_ohm
        self.material = material
        self.reference_temperature_k = reference_temperature_k
        offset = 0.0
        if rng is not None and tolerance_ohm > 0.0:
            offset = float(rng.uniform(-tolerance_ohm, tolerance_ohm))
        self._r0 = nominal_ohm + offset
        self._aging_factor = 1.0

    @property
    def r0_ohm(self) -> float:
        """Realised (post-tolerance, post-aging) resistance at T_ref [Ω]."""
        return self._r0 * self._aging_factor

    def resistance(self, temperature_k) -> np.ndarray:
        """R(T) = R0 (1 + alpha (T - T_ref)) — eq. (1) of the paper."""
        t = np.asarray(temperature_k, dtype=float)
        return self.r0_ohm * (1.0 + self.material.tcr_per_k * (t - self.reference_temperature_k))

    def temperature_from_resistance(self, resistance_ohm) -> np.ndarray:
        """Invert eq. (1): the temperature [K] a measured R implies."""
        r = np.asarray(resistance_ohm, dtype=float)
        if np.any(r <= 0.0):
            raise ConfigurationError("measured resistance must be positive")
        return self.reference_temperature_k + (r / self.r0_ohm - 1.0) / self.material.tcr_per_k

    def target_resistance(self, overtemperature_k: float) -> float:
        """Resistance corresponding to T_ref + overtemperature [Ω].

        This is the constant-temperature setpoint: the CTA loop drives
        the bridge so the heater sits at this resistance.
        """
        if overtemperature_k < 0.0:
            raise ConfigurationError("overtemperature must be non-negative")
        return float(self.resistance(self.reference_temperature_k + overtemperature_k))

    def johnson_noise_vrms(self, temperature_k: float, bandwidth_hz: float) -> float:
        """Thermal (Johnson-Nyquist) noise voltage [V rms] in a bandwidth."""
        if bandwidth_hz < 0.0:
            raise ConfigurationError("bandwidth must be non-negative")
        r = float(self.resistance(temperature_k))
        return float(np.sqrt(4.0 * BOLTZMANN * temperature_k * r * bandwidth_hz))

    def age(self, powered_hours: float) -> None:
        """Apply long-term powered drift (zero for the paper's Ti/TiN)."""
        if powered_hours < 0.0:
            raise ConfigurationError("powered_hours must be non-negative")
        self._aging_factor *= 1.0 + self.material.drift_per_kh * powered_hours / 1000.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SensingResistor({self.r0_ohm:.2f} Ω @ {self.reference_temperature_k:.2f} K, "
            f"alpha={self.material.tcr_per_k:.2e}/K, {self.material.name})"
        )
