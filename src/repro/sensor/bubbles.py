"""Bubble generation on the heated wire (fig. 7 of the paper).

In water, a continuously biased hot wire nucleates bubbles (dissolved
gas comes out of solution well below saturation; outright vapour forms
when the wall reaches the local boiling point).  Stuck bubbles insulate
the wire — vapour conducts ~25x worse than water — so the heat-transfer
calibration collapses and the signal becomes invalid.

The paper's fix, reproduced by this model:

* *pulsed* voltage driving — bubbles shrink and detach during the off
  intervals, so coverage never accumulates;
* *reduced overtemperature* relative to air operation — keeps the wall
  below the nucleation threshold in the first place.

State is a single surface-coverage fraction c in [0, 1) integrated with
nucleation/growth and detachment rates; coverage blends the film
conductance toward a vapour-blanket value and injects extra noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.water import boiling_temperature

__all__ = ["BubbleConfig", "BubbleModel"]


@dataclass(frozen=True)
class BubbleConfig:
    """Tuning of the bubble surface model.

    Attributes
    ----------
    nucleation_superheat_k:
        Wall superheat above the *bulk* water at which dissolved-gas
        bubbles start nucleating on the passivation surface.  Around
        25 K for air-saturated potable water.
    growth_rate_per_k_s:
        Coverage growth rate per kelvin of superheat beyond onset [1/(K s)].
    shear_detach_per_mps_s:
        Detachment rate per m/s of local flow speed [1/( (m/s) s )].
    idle_detach_per_s:
        Detachment/collapse rate while the heater is unpowered [1/s] —
        this is what makes pulsed drive effective.
    base_detach_per_s:
        Always-on detachment floor (buoyancy, dissolution) [1/s].
    vapor_conductance_fraction:
        Film conductance of a fully bubble-blanketed surface relative to
        clean water (~1/25).
    noise_fraction:
        RMS multiplicative conductance noise injected at full coverage.
    """

    nucleation_superheat_k: float = 25.0
    growth_rate_per_k_s: float = 0.02
    shear_detach_per_mps_s: float = 0.8
    idle_detach_per_s: float = 1.5
    base_detach_per_s: float = 0.01
    vapor_conductance_fraction: float = 0.04
    noise_fraction: float = 0.30

    def __post_init__(self) -> None:
        if self.nucleation_superheat_k <= 0.0:
            raise ConfigurationError("nucleation superheat must be positive")
        rates = (
            self.growth_rate_per_k_s,
            self.shear_detach_per_mps_s,
            self.idle_detach_per_s,
            self.base_detach_per_s,
        )
        if any(r < 0.0 for r in rates):
            raise ConfigurationError("bubble rates must be non-negative")
        if not 0.0 < self.vapor_conductance_fraction < 1.0:
            raise ConfigurationError("vapour conductance fraction must be in (0, 1)")
        if not 0.0 <= self.noise_fraction <= 1.0:
            raise ConfigurationError("noise fraction must be in [0, 1]")


class BubbleModel:
    """Surface bubble-coverage dynamics for one heater element."""

    def __init__(self, config: BubbleConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config or BubbleConfig()
        self._rng = rng or np.random.default_rng(0)
        self._coverage = 0.0

    @property
    def coverage(self) -> float:
        """Current bubble surface coverage fraction in [0, 1)."""
        return self._coverage

    def reset(self) -> None:
        """Return to a clean surface."""
        self._coverage = 0.0

    def step(
        self,
        dt: float,
        wall_temperature_k: float,
        bulk_temperature_k: float,
        pressure_pa: float,
        speed_mps: float,
        heater_powered: bool,
    ) -> float:
        """Advance coverage by ``dt`` seconds and return the new value.

        Nucleation activates once the wall superheat exceeds the onset
        threshold, with a strong extra term if the wall reaches the local
        boiling temperature (pressure dependent — higher line pressure
        suppresses outright vapour formation).
        """
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        cfg = self.config
        superheat = wall_temperature_k - bulk_temperature_k
        growth = 0.0
        if heater_powered and superheat > cfg.nucleation_superheat_k:
            growth = cfg.growth_rate_per_k_s * (superheat - cfg.nucleation_superheat_k)
            t_boil = float(boiling_temperature(max(pressure_pa, 5_000.0)))
            if wall_temperature_k >= t_boil:
                growth += 10.0 * cfg.growth_rate_per_k_s * (wall_temperature_k - t_boil + 1.0)
        detach = cfg.base_detach_per_s + cfg.shear_detach_per_mps_s * abs(speed_mps)
        if not heater_powered:
            detach += cfg.idle_detach_per_s
        # Logistic-style saturation: growth slows as sites fill.
        dc = growth * (1.0 - self._coverage) - detach * self._coverage
        self._coverage = min(max(self._coverage + dc * dt, 0.0), 0.999)
        return self._coverage

    def conductance_factor(self) -> float:
        """Multiplier on the clean-film conductance for current coverage."""
        cfg = self.config
        return 1.0 - self._coverage * (1.0 - cfg.vapor_conductance_fraction)

    def conductance_noise(self, dt: float) -> float:
        """Multiplicative noise sample (mean 1) from bubble churn.

        Variance scales with coverage; a clean wire returns exactly 1.
        Scaled by 1/sqrt(dt) white-noise convention so the band-limited
        power is step-size independent.
        """
        if self._coverage <= 0.0:
            return 1.0
        sigma = self.config.noise_fraction * self._coverage
        return 1.0 + sigma * self._rng.normal() * math.sqrt(min(1.0, 0.01 / dt))
