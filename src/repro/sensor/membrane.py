"""The thin dielectric membrane carrying the heater wires.

Models the two roles the membrane plays in the paper:

* thermally — it isolates the heaters from the chip frame (parasitic
  lateral conductance) and sets the heater time constant ("due to the
  extremely thin membrane technology (2 µm thickness including the
  passivation layer) the response times are reasonably short, even in
  water");
* mechanically — it must survive line pressure (0–3 bar, peaks of
  7 bar).  For water operation the backside cavity is filled with a
  flexible organic material of low thermal conductivity, which both
  stiffens the structure and prevents uncontrolled backside heat loss.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.sensor.materials import (
    SI_NITRIDE_LPCVD,
    SI_NITRIDE_PECVD,
    SI_OXIDE,
    MembraneLayer,
)

__all__ = ["BacksideFill", "Membrane", "ORGANIC_FILL", "WATER_BACKSIDE", "default_stack"]


@dataclass(frozen=True)
class BacksideFill:
    """What sits in the KOH-etched cavity behind the membrane.

    Attributes
    ----------
    name:
        Fill description.
    thermal_conductivity:
        k of the fill medium [W/(m K)].  The paper's organic fill has
        "significant lower heat conduction as water" so the signal comes
        explicitly from the front side.
    stiffening_factor:
        Multiplier on membrane burst pressure provided by the fill's
        mechanical support (>= 1).
    """

    name: str
    thermal_conductivity: float
    stiffening_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.thermal_conductivity <= 0.0:
            raise ConfigurationError("fill conductivity must be positive")
        if self.stiffening_factor < 1.0:
            raise ConfigurationError("fill cannot weaken the membrane")

    def to_dict(self) -> dict:
        """Serialise to a plain dict (JSON-safe)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "BacksideFill":
        """Restore from :meth:`to_dict` output.

        Images matching one of the canonical fills return the canonical
        *instance* (the sensor model distinguishes the water-flooded
        cavity by identity, not just by value).
        """
        fill = cls(name=str(data["name"]),
                   thermal_conductivity=float(data["thermal_conductivity"]),
                   stiffening_factor=float(data.get("stiffening_factor", 1.0)))
        for canonical in (ORGANIC_FILL, WATER_BACKSIDE):
            if fill == canonical:
                return canonical
        return fill


#: Flexible organic cavity fill (silicone-like), the paper's water solution.
ORGANIC_FILL = BacksideFill(
    name="flexible organic fill",
    thermal_conductivity=0.20,
    stiffening_factor=50.0,
)

#: No fill: the cavity floods with water (gas-sensor configuration used
#: naively in water) — high backside loss and an unsupported membrane.
WATER_BACKSIDE = BacksideFill(
    name="water-flooded cavity",
    thermal_conductivity=0.60,
    stiffening_factor=1.0,
)


def default_stack() -> tuple[MembraneLayer, ...]:
    """The paper's nitride/oxide/nitride stack plus PECVD passivation.

    Total thickness 2.0 µm including passivation, as quoted in §4.
    """
    return (
        SI_NITRIDE_LPCVD,
        SI_OXIDE,
        SI_NITRIDE_LPCVD,
        SI_NITRIDE_PECVD,
    )


@dataclass
class Membrane:
    """Lumped thermal/mechanical model of the sensor membrane.

    Parameters
    ----------
    stack:
        Dielectric layers, front to back.
    side_m:
        Edge length of the (square) membrane window [m].
    heater_fraction:
        Fraction of the membrane area covered by the heater films; sets
        the heater node's share of membrane heat capacity.
    backside:
        Cavity fill.
    cavity_depth_m:
        Depth of the KOH cavity [m] (backside conduction path length).
    """

    stack: tuple[MembraneLayer, ...] = field(default_factory=default_stack)
    side_m: float = 1.0e-3
    heater_fraction: float = 0.15
    backside: BacksideFill = ORGANIC_FILL
    cavity_depth_m: float = 380.0e-6

    def __post_init__(self) -> None:
        if not self.stack:
            raise ConfigurationError("membrane needs at least one layer")
        if self.side_m <= 0.0 or self.cavity_depth_m <= 0.0:
            raise ConfigurationError("membrane dimensions must be positive")
        if not 0.0 < self.heater_fraction < 1.0:
            raise ConfigurationError("heater_fraction must be in (0, 1)")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Serialise the full stack + cavity description (JSON-safe)."""
        return {
            "stack": [asdict(layer) for layer in self.stack],
            "side_m": self.side_m,
            "heater_fraction": self.heater_fraction,
            "backside": self.backside.to_dict(),
            "cavity_depth_m": self.cavity_depth_m,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Membrane":
        """Restore from :meth:`to_dict` output (validates on construction)."""
        stack = tuple(MembraneLayer(**layer) for layer in data["stack"])
        return cls(stack=stack,
                   side_m=float(data["side_m"]),
                   heater_fraction=float(data["heater_fraction"]),
                   backside=BacksideFill.from_dict(data["backside"]),
                   cavity_depth_m=float(data["cavity_depth_m"]))

    # -- geometry -----------------------------------------------------------

    @property
    def thickness_m(self) -> float:
        """Total stack thickness [m] (paper: 2 µm incl. passivation)."""
        return sum(layer.thickness_m for layer in self.stack)

    @property
    def area_m2(self) -> float:
        """Membrane window area [m^2]."""
        return self.side_m**2

    # -- thermal ------------------------------------------------------------

    @property
    def heater_region_capacity_j_per_k(self) -> float:
        """Heat capacity of the membrane patch under the heaters [J/K]."""
        areal = sum(layer.areal_heat_capacity for layer in self.stack)
        return areal * self.area_m2 * self.heater_fraction

    @property
    def rim_region_capacity_j_per_k(self) -> float:
        """Heat capacity of the remaining membrane annulus [J/K]."""
        areal = sum(layer.areal_heat_capacity for layer in self.stack)
        return areal * self.area_m2 * (1.0 - self.heater_fraction)

    @property
    def lateral_conductance_w_per_k(self) -> float:
        """In-plane conductance from heater patch to the chip rim [W/K].

        Sheet-conduction estimate: G = sum(k_i t_i) * perimeter / path.
        This is the membrane's thermal-isolation figure — about two
        orders of magnitude below the convective conductance to water,
        which is what makes the device a good anemometer.
        """
        sheet = sum(layer.sheet_conductance for layer in self.stack)
        heater_side = self.side_m * np.sqrt(self.heater_fraction)
        path = 0.5 * (self.side_m - heater_side)
        return sheet * 4.0 * heater_side / path

    @property
    def backside_conductance_w_per_k(self) -> float:
        """Conductance from the heater patch through the cavity [W/K]."""
        area = self.area_m2 * self.heater_fraction
        return self.backside.thermal_conductivity * area / self.cavity_depth_m

    # -- mechanical -----------------------------------------------------------

    @property
    def burst_pressure_pa(self) -> float:
        """Differential pressure at which the membrane fractures [Pa].

        Small-deflection plate estimate sigma_max ~ 0.31 p (a/t)^2 for a
        clamped square plate, inverted for the weakest layer, then scaled
        by the backside fill's stiffening factor.  With the organic fill
        the rating comfortably exceeds the paper's 7 bar peaks.
        """
        half_side = self.side_m / 2.0
        t = self.thickness_m
        weakest = min(layer.tensile_strength_pa for layer in self.stack)
        p_plate = weakest / 0.31 * (t / half_side) ** 2
        return p_plate * self.backside.stiffening_factor

    def deflection_m(self, pressure_pa: float) -> float:
        """Centre deflection [m] under differential pressure (linear plate).

        w0 = 0.0138 p a^4 / (E t^3), E taken as nitride-dominated 250 GPa,
        reduced by the fill stiffening.
        """
        if pressure_pa < 0.0:
            raise ConfigurationError("pressure must be non-negative")
        e_eff = 250.0e9 * self.backside.stiffening_factor
        return 0.0138 * pressure_pa * self.side_m**4 / (e_eff * self.thickness_m**3)
