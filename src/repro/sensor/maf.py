"""The complete MAF sensor die in water.

Composes the substrate models into the device of fig. 1/2:

* two heater films ("arranged twice on a chip ... adjoined closely in
  parallel") on a shared membrane, each the hot arm of a half-bridge;
* one interdigitated 2 kΩ reference shared by both half-bridges;
* flow-dependent convective coupling to the water (King's law via the
  Kramers correlation), lateral conduction into the membrane, backside
  conduction through the cavity fill;
* a thermal-wake coupling from the upstream to the downstream heater —
  the paper's direction-detection mechanism;
* bubble and fouling surface states per heater;
* housing leakage and membrane burst checks.

The electrical interface is intentionally narrow — two bridge supply
voltages in, two bridge differential voltages out — because that is all
the ISIF front-end can see.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SensorFault
from repro.physics.carbonate import TUSCAN_TAP_WATER, WaterChemistry
from repro.physics.convection import WireGeometry, film_conductance
from repro.physics.turbulence import OrnsteinUhlenbeck
from repro.sensor.bridge import WheatstoneBridge
from repro.sensor.bubbles import BubbleConfig, BubbleModel
from repro.sensor.fouling import FoulingConfig, FoulingModel
from repro.sensor.membrane import Membrane, WATER_BACKSIDE
from repro.sensor.packaging import SensorHousing
from repro.sensor.resistor import SensingResistor

__all__ = ["FlowConditions", "MAFConfig", "SensorReadout", "MAFSensor", "HEATER_A", "HEATER_B"]

#: Heater identifiers: A is upstream for positive (forward) flow.
HEATER_A = "a"
HEATER_B = "b"

#: Below this supply the heater is considered unpowered (pulsed-drive off
#: phase) for the bubble model.
POWERED_THRESHOLD_V = 0.05


@dataclass(frozen=True)
class FlowConditions:
    """Environment of the sensor head for one simulation step.

    Attributes
    ----------
    speed_mps:
        Signed local water speed [m/s]; positive = forward (A upstream).
    temperature_k:
        Bulk water temperature [K].
    pressure_pa:
        Gauge line pressure [Pa].
    chemistry:
        Bulk water chemistry (for fouling).
    """

    speed_mps: float
    temperature_k: float = 288.15
    pressure_pa: float = 2.0e5
    chemistry: WaterChemistry = TUSCAN_TAP_WATER


@dataclass(frozen=True)
class MAFConfig:
    """Static configuration of a MAF die + assembly.

    Attributes
    ----------
    geometry:
        Equivalent-cylinder geometry of each heater.
    membrane:
        Membrane stack / cavity model.
    heater_nominal_ohm / heater_tolerance_ohm:
        Rh = 50.0 ± 0.5 Ω (paper §2).
    reference_nominal_ohm / reference_tolerance_ohm:
        Rt = 2000 ± 30 Ω (paper §2).
    r_series_ohm:
        Fixed bridge resistor in series with each heater.
    reference_lag_s:
        First-order lag of the reference's tracking of water temperature.
    wake_peak_coupling:
        Peak fraction of the upstream overtemperature reaching the
        downstream heater's boundary layer.
    wake_peak_speed_mps:
        Speed at which the wake coupling peaks (rise-then-decay shape of
        calorimetric coupling).
    enable_bubbles / enable_fouling:
        Switch the surface degradation models (benches disable what they
        don't study to isolate effects).
    seed:
        Seed for all stochastic draws inside the device.
    """

    geometry: WireGeometry = field(default_factory=WireGeometry)
    membrane: Membrane = field(default_factory=Membrane)
    heater_nominal_ohm: float = 50.0
    heater_tolerance_ohm: float = 0.5
    reference_nominal_ohm: float = 2000.0
    reference_tolerance_ohm: float = 30.0
    r_series_ohm: float = 50.0
    reference_lag_s: float = 0.2
    wake_peak_coupling: float = 0.06
    wake_peak_speed_mps: float = 0.30
    bubble_config: BubbleConfig = field(default_factory=BubbleConfig)
    fouling_config: FoulingConfig = field(default_factory=FoulingConfig)
    enable_bubbles: bool = True
    enable_fouling: bool = True
    #: Working medium: "water" (the paper's application) or "air" (the
    #: die's original automotive duty, §2).  Air disables the liquid-only
    #: degradation models automatically.
    medium: str = "water"
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.heater_nominal_ohm <= 0.0 or self.reference_nominal_ohm <= 0.0:
            raise ConfigurationError("resistor nominals must be positive")
        if self.reference_lag_s <= 0.0:
            raise ConfigurationError("reference lag must be positive")
        if not 0.0 <= self.wake_peak_coupling < 1.0:
            raise ConfigurationError("wake coupling must be in [0, 1)")
        if self.wake_peak_speed_mps <= 0.0:
            raise ConfigurationError("wake peak speed must be positive")
        if self.medium not in ("water", "air"):
            raise ConfigurationError(f"unknown medium {self.medium!r}")

    def to_dict(self) -> dict:
        """Serialise to a plain nested dict (JSON-safe)."""
        return {
            "geometry": asdict(self.geometry),
            "membrane": self.membrane.to_dict(),
            "heater_nominal_ohm": self.heater_nominal_ohm,
            "heater_tolerance_ohm": self.heater_tolerance_ohm,
            "reference_nominal_ohm": self.reference_nominal_ohm,
            "reference_tolerance_ohm": self.reference_tolerance_ohm,
            "r_series_ohm": self.r_series_ohm,
            "reference_lag_s": self.reference_lag_s,
            "wake_peak_coupling": self.wake_peak_coupling,
            "wake_peak_speed_mps": self.wake_peak_speed_mps,
            "bubble_config": asdict(self.bubble_config),
            "fouling_config": asdict(self.fouling_config),
            "enable_bubbles": self.enable_bubbles,
            "enable_fouling": self.enable_fouling,
            "medium": self.medium,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MAFConfig":
        """Restore from :meth:`to_dict` output.

        Raises
        ------
        ConfigurationError
            On missing or malformed fields (the dataclass validators
            run on construction, so out-of-range values fail too).
        """
        from repro.sensor.membrane import Membrane
        try:
            return cls(
                geometry=WireGeometry(**data["geometry"]),
                membrane=Membrane.from_dict(data["membrane"]),
                heater_nominal_ohm=float(data["heater_nominal_ohm"]),
                heater_tolerance_ohm=float(data["heater_tolerance_ohm"]),
                reference_nominal_ohm=float(data["reference_nominal_ohm"]),
                reference_tolerance_ohm=float(data["reference_tolerance_ohm"]),
                r_series_ohm=float(data["r_series_ohm"]),
                reference_lag_s=float(data["reference_lag_s"]),
                wake_peak_coupling=float(data["wake_peak_coupling"]),
                wake_peak_speed_mps=float(data["wake_peak_speed_mps"]),
                bubble_config=BubbleConfig(**data["bubble_config"]),
                fouling_config=FoulingConfig(**data["fouling_config"]),
                enable_bubbles=bool(data["enable_bubbles"]),
                enable_fouling=bool(data["enable_fouling"]),
                medium=str(data["medium"]),
                seed=int(data["seed"]),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed MAFConfig image: {exc}") from exc


@dataclass(frozen=True)
class SensorReadout:
    """Electrical + diagnostic snapshot after one step.

    Only ``differential_a_v`` / ``differential_b_v`` are observable by
    the electronics; the rest is simulation ground truth used by tests
    and benches.
    """

    differential_a_v: float
    differential_b_v: float
    reference_midpoint_a_v: float
    heater_a_temperature_k: float
    heater_b_temperature_k: float
    heater_a_resistance_ohm: float
    heater_b_resistance_ohm: float
    reference_resistance_ohm: float
    heater_a_power_w: float
    heater_b_power_w: float
    bubble_coverage_a: float
    bubble_coverage_b: float
    fouling_thickness_a_m: float
    fouling_thickness_b_m: float
    supply_current_a: float


def _resolve_medium(name: str):
    """Map a config medium name to its property module (air or water)."""
    if name == "air":
        from repro.physics import air as _air
        return _air
    from repro.physics import water as _water
    return _water


class MAFSensor:
    """Stateful simulation of one MAF die + housing in the water line.

    Drive it by calling :meth:`step` once per control-loop period with
    the two bridge supply voltages and the current flow conditions.
    """

    def __init__(self, config: MAFConfig | None = None,
                 housing: SensorHousing | None = None) -> None:
        self.config = config or MAFConfig()
        self.housing = housing or SensorHousing()
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config
        self._medium = _resolve_medium(cfg.medium)

        self.heater_a = SensingResistor(
            cfg.heater_nominal_ohm, cfg.heater_tolerance_ohm, rng=rng)
        self.heater_b = SensingResistor(
            cfg.heater_nominal_ohm, cfg.heater_tolerance_ohm, rng=rng)
        # Interdigitated reference: one physical resistor shared by both
        # half-bridges (fig. 1, ref. [10] of the paper).
        self.reference = SensingResistor(
            cfg.reference_nominal_ohm, cfg.reference_tolerance_ohm, rng=rng)

        self.bridge_a = WheatstoneBridge(self.heater_a, self.reference,
                                         r_series_ohm=cfg.r_series_ohm)
        self.bridge_b = WheatstoneBridge(self.heater_b, self.reference,
                                         r_series_ohm=cfg.r_series_ohm)

        self.bubbles_a = BubbleModel(cfg.bubble_config, np.random.default_rng(cfg.seed + 1))
        self.bubbles_b = BubbleModel(cfg.bubble_config, np.random.default_rng(cfg.seed + 2))
        self.fouling_a = FoulingModel(cfg.fouling_config)
        self.fouling_b = FoulingModel(cfg.fouling_config)

        # Backside fluctuation noise is only present with a flooded cavity
        # ("prevents uncontrolled fluctuations on the backside").
        self._backside_noise = OrnsteinUhlenbeck(
            tau_s=0.5, sigma=0.25 if cfg.membrane.backside is WATER_BACKSIDE else 0.0,
            rng=np.random.default_rng(cfg.seed + 3))

        # Thermal state.
        t0 = 288.15
        self._t_a = t0
        self._t_b = t0
        self._t_membrane = t0
        self._t_reference = t0
        self._failed: str | None = None

        # Per-heater patch heat capacity: half of the heater region each,
        # plus the metal film itself (negligible next to the dielectric).
        self._heater_capacity = cfg.membrane.heater_region_capacity_j_per_k / 2.0
        self._membrane_capacity = cfg.membrane.rim_region_capacity_j_per_k
        self._g_lateral = cfg.membrane.lateral_conductance_w_per_k / 2.0
        self._g_backside = cfg.membrane.backside_conductance_w_per_k / 2.0

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Swap the medium module for its name (modules don't pickle)."""
        state = self.__dict__.copy()
        state["_medium"] = self.config.medium
        return state

    def __setstate__(self, state: dict) -> None:
        """Re-resolve the medium module from the pickled name."""
        self.__dict__.update(state)
        self._medium = _resolve_medium(self.config.medium)

    # -- configuration passthroughs ------------------------------------------

    def set_overtemperature(self, overtemperature_k: float,
                            ambient_k: float | None = None) -> None:
        """Trim both bridges for a constant-temperature setpoint."""
        self.bridge_a.trim_for_overtemperature(overtemperature_k, ambient_k)
        self.bridge_b.trim_for_overtemperature(overtemperature_k, ambient_k)

    @property
    def failed(self) -> str | None:
        """Failure description if the die is dead, else None."""
        return self._failed

    # -- state access -----------------------------------------------------------

    def heater_temperatures(self) -> tuple[float, float]:
        """(T_a, T_b) in kelvin — simulation ground truth."""
        return self._t_a, self._t_b

    def wetted_area_m2(self) -> float:
        """Wetted area of one heater element [m^2]."""
        return self.config.geometry.surface_area_m2

    # -- main entry point --------------------------------------------------------

    def step(self, dt: float, supply_a_v: float, supply_b_v: float,
             conditions: FlowConditions) -> SensorReadout:
        """Advance the die by ``dt`` seconds under the given drive.

        Parameters
        ----------
        dt:
            Step duration [s]; the thermal update is exact (exponential)
            for piecewise-constant inputs, so dt may exceed the heater
            time constant without loss of stability.
        supply_a_v / supply_b_v:
            Bridge supply voltages commanded by the conditioning loop.
        conditions:
            Local flow environment (already turbulence-perturbed by the
            test rig if realism is wanted).

        Raises
        ------
        SensorFault
            On membrane burst (overpressure) or if the die already failed.
        """
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        if self._failed is not None:
            raise SensorFault(self._failed)
        cfg = self.config
        if conditions.pressure_pa > cfg.membrane.burst_pressure_pa:
            self._failed = (
                f"membrane burst at {conditions.pressure_pa / 1e5:.2f} bar "
                f"(rating {cfg.membrane.burst_pressure_pa / 1e5:.2f} bar, "
                f"backside: {cfg.membrane.backside.name})"
            )
            raise SensorFault(self._failed)
        self.housing.check_pressure(conditions.pressure_pa)

        v = conditions.speed_mps
        t_fluid = conditions.temperature_k

        # Reference tracks the water with a small lag + self-heating bias.
        alpha = 1.0 - math.exp(-dt / cfg.reference_lag_s)
        p_ref = self.bridge_a.reference_power_w(supply_a_v, self.reference.resistance(self._t_reference)) \
            + self.bridge_b.reference_power_w(supply_b_v, self.reference.resistance(self._t_reference))
        # Reference sits on the bulk chip (well heat-sunk): ~30 K/W
        # spreading resistance into the silicon, so its self-heating bias
        # stays ~0.1 K even at full bridge drive.
        t_ref_target = t_fluid + 30.0 * p_ref
        self._t_reference += alpha * (t_ref_target - self._t_reference)
        rt = float(self.reference.resistance(self._t_reference))

        # Wake coupling: the downstream heater's incoming water is
        # pre-heated by the upstream heater.
        t_in_a, t_in_b = self._inlet_temperatures(v, t_fluid)

        # Film conductances including surface degradation.  The bubble
        # model needs the *absolute* local pressure for the boiling check.
        p_abs = conditions.pressure_pa + 101_325.0
        g_a = self._effective_conductance(
            self.bubbles_a, self.fouling_a, v, self._t_a, t_fluid, p_abs, dt)
        g_b = self._effective_conductance(
            self.bubbles_b, self.fouling_b, v, self._t_b, t_fluid, p_abs, dt)

        # Leakage path from the housing state.
        leak = self.housing.leakage_conductance_s()
        self.bridge_a.leakage_conductance_s = leak
        self.bridge_b.leakage_conductance_s = leak

        # Electro-thermal update, heater by heater (exact exponential step
        # given piecewise-constant power over dt).
        backside_factor = 1.0 + self._backside_noise.step(dt)
        g_back = self._g_backside * max(backside_factor, 0.1)
        rh_a = float(self.heater_a.resistance(self._t_a))
        rh_b = float(self.heater_b.resistance(self._t_b))
        p_a = self.bridge_a.heater_power_w(supply_a_v, rh_a)
        p_b = self.bridge_b.heater_power_w(supply_b_v, rh_b)

        self._t_a = self._exp_update(
            self._t_a, dt, p_a, g_a, t_in_a, g_back, t_fluid)
        self._t_b = self._exp_update(
            self._t_b, dt, p_b, g_b, t_in_b, g_back, t_fluid)

        # Membrane rim: collects lateral leakage from both heaters and
        # sheds it to the chip frame (at fluid temperature).
        g_rim_total = 2.0 * self._g_lateral + cfg.membrane.lateral_conductance_w_per_k
        t_rim_inf = (
            self._g_lateral * (self._t_a + self._t_b)
            + cfg.membrane.lateral_conductance_w_per_k * t_fluid
        ) / g_rim_total
        rho_m = math.exp(-dt * g_rim_total / self._membrane_capacity)
        self._t_membrane = t_rim_inf + (self._t_membrane - t_rim_inf) * rho_m

        # Post-update electrical readout at the new operating point.
        rh_a = float(self.heater_a.resistance(self._t_a))
        rh_b = float(self.heater_b.resistance(self._t_b))
        return SensorReadout(
            differential_a_v=self.bridge_a.differential_v(supply_a_v, rh_a, rt),
            differential_b_v=self.bridge_b.differential_v(supply_b_v, rh_b, rt),
            reference_midpoint_a_v=self.bridge_a.midpoint_voltages(
                supply_a_v, rh_a, rt)[1],
            heater_a_temperature_k=self._t_a,
            heater_b_temperature_k=self._t_b,
            heater_a_resistance_ohm=rh_a,
            heater_b_resistance_ohm=rh_b,
            reference_resistance_ohm=rt,
            heater_a_power_w=p_a,
            heater_b_power_w=p_b,
            bubble_coverage_a=self.bubbles_a.coverage,
            bubble_coverage_b=self.bubbles_b.coverage,
            fouling_thickness_a_m=self.fouling_a.thickness_m,
            fouling_thickness_b_m=self.fouling_b.thickness_m,
            supply_current_a=(
                self.bridge_a.total_supply_current_a(supply_a_v, rh_a, rt)
                + self.bridge_b.total_supply_current_a(supply_b_v, rh_b, rt)
            ),
        )

    def step_fouling(self, dt_s: float, conditions: FlowConditions,
                     duty_cycle: float = 1.0) -> None:
        """Advance only the slow fouling state by a long interval.

        Used by months-scale benches between control-loop equilibria;
        ``duty_cycle`` scales the time the wall actually sits hot
        (pulsed drive spends most of the time near bulk temperature).
        """
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError("duty cycle must be in [0, 1]")
        if not self.config.enable_fouling:
            return
        v = conditions.speed_mps
        t_fluid = conditions.temperature_k
        for fouling, t_wall in ((self.fouling_a, self._t_a), (self.fouling_b, self._t_b)):
            t_eff = t_fluid + duty_cycle * max(t_wall - t_fluid, 0.0)
            fouling.step(dt_s, conditions.chemistry, t_eff, t_fluid, v)

    # -- internals -----------------------------------------------------------------

    def _inlet_temperatures(self, v: float, t_fluid: float) -> tuple[float, float]:
        """Boundary-layer inlet temperature for each heater given the wake."""
        coupling = self._wake_coupling(abs(v))
        if v >= 0.0:  # A upstream, B downstream.
            t_in_a = t_fluid
            t_in_b = t_fluid + coupling * max(self._t_a - t_fluid, 0.0)
        else:
            t_in_b = t_fluid
            t_in_a = t_fluid + coupling * max(self._t_b - t_fluid, 0.0)
        return t_in_a, t_in_b

    def _wake_coupling(self, speed: float) -> float:
        """Rise-then-decay calorimetric coupling vs speed.

        Zero at rest (no advection), peaks at ``wake_peak_speed_mps``,
        decays ~1/v at high speed as the wake thins — the classical
        calorimetric transfer curve.  The slow decay keeps direction
        detectable across the full 0-250 cm/s range, as the paper
        reports ("the flow direction was clearly detected").
        """
        cfg = self.config
        x = speed / cfg.wake_peak_speed_mps
        return cfg.wake_peak_coupling * 2.0 * x / (1.0 + x * x)

    def _effective_conductance(self, bubbles: BubbleModel, fouling: FoulingModel,
                               v: float, t_wall: float, t_fluid: float,
                               pressure_abs_pa: float, dt: float) -> float:
        g = float(film_conductance(v, self.config.geometry, t_wall, t_fluid,
                                   medium=self._medium))
        liquid = self.config.medium == "water"
        if self.config.enable_fouling and liquid:
            g = fouling.degrade_conductance(g, self.wetted_area_m2())
        if self.config.enable_bubbles and liquid:
            powered = t_wall - t_fluid > 1.0  # wall meaningfully hot
            bubbles.step(dt, t_wall, t_fluid, pressure_abs_pa, v, powered)
            g *= bubbles.conductance_factor() * bubbles.conductance_noise(dt)
        return max(g, 1e-6)

    def _exp_update(self, t: float, dt: float, power: float,
                    g_film: float, t_in: float, g_back: float,
                    t_frame: float) -> float:
        """Exact exponential step of one heater node."""
        g_total = g_film + self._g_lateral + g_back
        t_inf = (
            power
            + g_film * t_in
            + self._g_lateral * self._t_membrane
            + g_back * t_frame
        ) / g_total
        rho = math.exp(-dt * g_total / self._heater_capacity)
        return t_inf + (t - t_inf) * rho
