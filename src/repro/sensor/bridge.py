"""The Wheatstone half-bridge pair driving the hot wire.

Topology (one of the two on-die half-bridges; see fig. 1 and §4):

    supply U ──┬── R_series ──●── Rh (heater, 50 Ω) ──┬── gnd
               └── R_trim ────●── Rt (reference, 2 kΩ) ┘
                           midpoints -> instrumentation amplifier

Balance holds when Rh = (R_series / R_trim) · Rt.  Because Rt sits at
fluid temperature and shares the heater's TCR, the balance point tracks
ambient: nulling the bridge keeps the heater at a *constant
overtemperature* above the water — the paper's constant-temperature
operating mode.  The trim resistor (set through an ISIF DAC-controlled
trim in the real platform) selects the overtemperature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sensor.resistor import SensingResistor

__all__ = ["WheatstoneBridge"]


@dataclass
class WheatstoneBridge:
    """Electrical model of one half-bridge pair.

    Parameters
    ----------
    heater:
        The hot-wire resistor Rh (nominal 50 Ω).
    reference:
        The ambient reference Rt (nominal 2 kΩ, interdigitated).
    r_series_ohm:
        Fixed resistor in series with the heater.  A 1:1 ratio with the
        hot heater (≈50 Ω) maximises loop gain and keeps the required
        bridge supply within the platform's 0–5 V DAC range.
    r_trim_ohm:
        Trim resistor in series with the reference; selects the balance
        ratio (overtemperature).  Use :meth:`trim_for_overtemperature`.
    leakage_conductance_s:
        Parasitic conductance [S] in parallel with the heater from wet
        packaging faults; 0 for a healthy assembly.
    """

    heater: SensingResistor
    reference: SensingResistor
    r_series_ohm: float = 50.0
    r_trim_ohm: float = 2000.0
    leakage_conductance_s: float = 0.0

    def __post_init__(self) -> None:
        if self.r_series_ohm <= 0.0 or self.r_trim_ohm <= 0.0:
            raise ConfigurationError("bridge fixed resistors must be positive")
        if self.leakage_conductance_s < 0.0:
            raise ConfigurationError("leakage conductance must be non-negative")

    # -- configuration ---------------------------------------------------------

    def trim_for_overtemperature(self, overtemperature_k: float,
                                 ambient_k: float | None = None) -> float:
        """Compute and apply the trim resistance for a CT setpoint.

        Chooses R_trim so the bridge balances when the heater sits
        ``overtemperature_k`` above ambient.  Returns the applied value.
        """
        ambient = self.reference.reference_temperature_k if ambient_k is None else ambient_k
        rh_target = float(self.heater.resistance(ambient + overtemperature_k))
        rt_ambient = float(self.reference.resistance(ambient))
        self.r_trim_ohm = self.r_series_ohm * rt_ambient / rh_target
        return self.r_trim_ohm

    def balance_resistance(self, rt_ohm: float) -> float:
        """Heater resistance [Ω] at which the bridge output nulls."""
        if rt_ohm <= 0.0:
            raise ConfigurationError("reference resistance must be positive")
        return self.r_series_ohm * rt_ohm / self.r_trim_ohm

    # -- electrical solution ---------------------------------------------------

    def _effective_heater_ohm(self, rh_ohm: float) -> float:
        """Heater with any wet-leakage path in parallel."""
        if self.leakage_conductance_s == 0.0:
            return rh_ohm
        return 1.0 / (1.0 / rh_ohm + self.leakage_conductance_s)

    def midpoint_voltages(self, supply_v: float, rh_ohm: float, rt_ohm: float) -> tuple[float, float]:
        """(measurement, reference) midpoint voltages [V]."""
        self._validate(supply_v, rh_ohm, rt_ohm)
        rh_eff = self._effective_heater_ohm(rh_ohm)
        v_meas = supply_v * rh_eff / (self.r_series_ohm + rh_eff)
        v_ref = supply_v * rt_ohm / (self.r_trim_ohm + rt_ohm)
        return v_meas, v_ref

    def differential_v(self, supply_v: float, rh_ohm: float, rt_ohm: float) -> float:
        """Bridge error voltage [V] seen by the instrumentation amplifier.

        Positive when the heater is hotter than the setpoint (Rh above
        balance), so the loop must *reduce* the supply — a negative-
        feedback sign convention the PI controller relies on.
        """
        v_meas, v_ref = self.midpoint_voltages(supply_v, rh_ohm, rt_ohm)
        return v_meas - v_ref

    def heater_current_a(self, supply_v: float, rh_ohm: float) -> float:
        """Current through the heater branch [A]."""
        self._validate(supply_v, rh_ohm, 1.0)
        rh_eff = self._effective_heater_ohm(rh_ohm)
        branch_i = supply_v / (self.r_series_ohm + rh_eff)
        if self.leakage_conductance_s == 0.0:
            return branch_i
        # Current divider between the real heater and the leakage path.
        v_mid = branch_i * rh_eff
        return v_mid / rh_ohm

    def heater_power_w(self, supply_v: float, rh_ohm: float) -> float:
        """Joule power dissipated in the heater element [W]."""
        i = self.heater_current_a(supply_v, rh_ohm)
        return i * i * rh_ohm

    def reference_power_w(self, supply_v: float, rt_ohm: float) -> float:
        """Self-heating power of the reference resistor [W].

        Must stay microscopic (< µW) or the "ambient" reading is biased;
        the 2 kΩ / R_trim divider guarantees that, and the integration
        test asserts it.
        """
        self._validate(supply_v, 1.0, rt_ohm)
        i = supply_v / (self.r_trim_ohm + rt_ohm)
        return i * i * rt_ohm

    def total_supply_current_a(self, supply_v: float, rh_ohm: float, rt_ohm: float) -> float:
        """Total current drawn from the bridge supply [A] (power budget)."""
        rh_eff = self._effective_heater_ohm(rh_ohm)
        return supply_v / (self.r_series_ohm + rh_eff) + supply_v / (self.r_trim_ohm + rt_ohm)

    @staticmethod
    def _validate(supply_v: float, rh_ohm: float, rt_ohm: float) -> None:
        if supply_v < 0.0:
            raise ConfigurationError("bridge supply must be non-negative")
        if rh_ohm <= 0.0 or rt_ohm <= 0.0:
            raise ConfigurationError("bridge resistances must be positive")
