"""CaCO3 scale deposition on the heated surface (fig. 8 of the paper).

Calcite's inverse solubility makes the hot wire a preferential
crystallisation site: the reaction Ca(HCO3)2 -> CaCO3 + CO2 + H2O
(eq. (3)) runs exactly where the sensor is most sensitive to a parasitic
thermal resistance.  Deposit growth follows surface-crystallisation
kinetics driven by the wall-temperature supersaturation
(:func:`repro.physics.carbonate.scaling_driving_force`), moderated by

* the passivation layer — the paper's PECVD nitride is a poor adhesion
  substrate for calcite ("the right choice of a passivation layer
  results in a better protection against deposits");
* flow shear, which erodes loosely bound scale;
* pulsed drive, which lowers the time-averaged wall temperature.

The deposit adds a series thermal resistance delta/(k_scale * A) between
the heater film and the water, which the MAF model folds into the
effective film conductance — producing exactly the slow gain drift a
stale calibration turns into flow error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.carbonate import WaterChemistry, scaling_driving_force

__all__ = ["FoulingConfig", "FoulingModel"]

#: Thermal conductivity of calcium-carbonate scale [W/(m K)].
SCALE_CONDUCTIVITY = 2.2


@dataclass(frozen=True)
class FoulingConfig:
    """Tuning of the scale-growth model.

    Attributes
    ----------
    rate_constant_m_per_s:
        Deposit thickness growth per unit driving force [m/s].  Chosen
        so an unprotected surface held ~30 K hot in hard water
        accumulates micrometres over weeks — the regime of fig. 8 —
        while a surface at bulk temperature stays clean.
    adhesion_factor:
        0..1 multiplier for how well calcite sticks: ~1 on bare oxide,
        ~0.1 on the paper's inert PECVD nitride passivation.
    erosion_per_mps_s:
        Fractional thickness removal rate per m/s of flow speed [1/( (m/s) s)].
    induction_thickness_m:
        Nucleation induction: growth below this thickness is slowed
        (clean passivation resists the very first crystallites).
    """

    rate_constant_m_per_s: float = 1.0e-13
    adhesion_factor: float = 0.10
    erosion_per_mps_s: float = 2.0e-7
    induction_thickness_m: float = 50.0e-9

    def __post_init__(self) -> None:
        if self.rate_constant_m_per_s < 0.0 or self.erosion_per_mps_s < 0.0:
            raise ConfigurationError("fouling rates must be non-negative")
        if not 0.0 <= self.adhesion_factor <= 1.0:
            raise ConfigurationError("adhesion factor must be in [0, 1]")
        if self.induction_thickness_m < 0.0:
            raise ConfigurationError("induction thickness must be non-negative")


class FoulingModel:
    """Scale-thickness state for one heater element."""

    def __init__(self, config: FoulingConfig | None = None) -> None:
        self.config = config or FoulingConfig()
        self._thickness_m = 0.0

    @property
    def thickness_m(self) -> float:
        """Current deposit thickness [m]."""
        return self._thickness_m

    def reset(self) -> None:
        """Descale (fresh sensor)."""
        self._thickness_m = 0.0

    def step(
        self,
        dt: float,
        chemistry: WaterChemistry,
        wall_temperature_k: float,
        bulk_temperature_k: float,
        speed_mps: float,
    ) -> float:
        """Advance deposit thickness by ``dt`` seconds (may be hours).

        Quasi-static: fouling evolves over days, so benches call this
        with large dt between control-loop equilibria.
        """
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        cfg = self.config
        wall_t = max(wall_temperature_k, bulk_temperature_k)
        force = float(scaling_driving_force(chemistry, wall_t, bulk_temperature_k))
        growth = cfg.rate_constant_m_per_s * cfg.adhesion_factor * force
        if self._thickness_m < cfg.induction_thickness_m and cfg.induction_thickness_m > 0.0:
            # Early crystallites struggle on the inert passivation.
            growth *= 0.2 + 0.8 * self._thickness_m / cfg.induction_thickness_m
        erosion = cfg.erosion_per_mps_s * abs(speed_mps) * self._thickness_m
        self._thickness_m = max(0.0, self._thickness_m + (growth - erosion) * dt)
        return self._thickness_m

    def thermal_resistance_k_per_w(self, wetted_area_m2: float) -> float:
        """Series thermal resistance of the deposit [K/W]."""
        if wetted_area_m2 <= 0.0:
            raise ConfigurationError("wetted area must be positive")
        return self._thickness_m / (SCALE_CONDUCTIVITY * wetted_area_m2)

    def degrade_conductance(self, clean_g_w_per_k: float, wetted_area_m2: float) -> float:
        """Effective film conductance with the deposit in series [W/K]."""
        if clean_g_w_per_k <= 0.0:
            return clean_g_w_per_k
        r_clean = 1.0 / clean_g_w_per_k
        return 1.0 / (r_clean + self.thermal_resistance_k_per_w(wetted_area_m2))
