"""MEMS MAF-sensor device models.

Everything that lives on (or around) the die: Ti/TiN sensing resistors,
the LPCVD membrane stack, the Wheatstone half-bridges, the two failure
mechanisms the paper fights (bubble generation and CaCO3 fouling) and
the stainless-steel housing.  The top-level device is
:class:`repro.sensor.maf.MAFSensor`.
"""

from repro.sensor.materials import ResistorMaterial, MembraneLayer, TI_TIN, SI_NITRIDE_LPCVD, SI_OXIDE, SI_NITRIDE_PECVD
from repro.sensor.resistor import SensingResistor
from repro.sensor.membrane import Membrane, BacksideFill, ORGANIC_FILL, WATER_BACKSIDE
from repro.sensor.bridge import WheatstoneBridge
from repro.sensor.bubbles import BubbleModel, BubbleConfig
from repro.sensor.fouling import FoulingModel, FoulingConfig
from repro.sensor.packaging import SensorHousing, HousingQuality
from repro.sensor.maf import MAFSensor, MAFConfig, FlowConditions, SensorReadout

__all__ = [
    "ResistorMaterial",
    "MembraneLayer",
    "TI_TIN",
    "SI_NITRIDE_LPCVD",
    "SI_OXIDE",
    "SI_NITRIDE_PECVD",
    "SensingResistor",
    "Membrane",
    "BacksideFill",
    "ORGANIC_FILL",
    "WATER_BACKSIDE",
    "WheatstoneBridge",
    "BubbleModel",
    "BubbleConfig",
    "FoulingModel",
    "FoulingConfig",
    "SensorHousing",
    "HousingQuality",
    "MAFSensor",
    "MAFConfig",
    "FlowConditions",
    "SensorReadout",
]
