"""Material properties of the MAF die.

The paper specifies Ti resistors capped with a TiN nanolayer ("no drift
due to electrical or temperature stress") on a membrane stack of LPCVD
Si3N4 / SiO2 / Si3N4 passivated with PECVD Si3N4.  These dataclasses
carry the handful of constants the thermal and electrical models need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "ResistorMaterial",
    "MembraneLayer",
    "TI_TIN",
    "SI_NITRIDE_LPCVD",
    "SI_OXIDE",
    "SI_NITRIDE_PECVD",
]


@dataclass(frozen=True)
class ResistorMaterial:
    """Electrical material of a thin-film sensing resistor.

    Attributes
    ----------
    name:
        Human-readable material name.
    tcr_per_k:
        Linear temperature coefficient of resistance alpha [1/K] around
        the reference temperature (eq. (1) of the paper).
    drift_per_kh:
        Fractional resistance drift per 1000 h of powered operation.
        The paper's Ti/TiN shows "no drift"; we keep the hook so the
        ablation benches can model an inferior metallisation.
    flicker_corner_hz:
        1/f noise corner frequency [Hz] at the nominal bias; thin-film
        metal resistors are quiet, so this is low.
    """

    name: str
    tcr_per_k: float
    drift_per_kh: float = 0.0
    flicker_corner_hz: float = 5.0

    def __post_init__(self) -> None:
        if self.tcr_per_k <= 0.0:
            raise ConfigurationError(
                f"{self.name}: hot-wire anemometry needs a positive TCR"
            )
        if self.drift_per_kh < 0.0:
            raise ConfigurationError(f"{self.name}: drift rate must be non-negative")
        if self.flicker_corner_hz < 0.0:
            raise ConfigurationError(f"{self.name}: flicker corner must be non-negative")


@dataclass(frozen=True)
class MembraneLayer:
    """One dielectric layer of the membrane stack.

    Attributes
    ----------
    name:
        Layer name (deposition process included for traceability).
    thickness_m:
        Layer thickness [m].
    thermal_conductivity:
        k [W/(m K)].
    density:
        rho [kg/m^3].
    specific_heat:
        cp [J/(kg K)].
    tensile_strength_pa:
        Fracture strength [Pa] used by the burst-pressure estimate.
    """

    name: str
    thickness_m: float
    thermal_conductivity: float
    density: float
    specific_heat: float
    tensile_strength_pa: float

    def __post_init__(self) -> None:
        if min(
            self.thickness_m,
            self.thermal_conductivity,
            self.density,
            self.specific_heat,
            self.tensile_strength_pa,
        ) <= 0.0:
            raise ConfigurationError(f"layer {self.name!r}: all properties must be positive")

    @property
    def areal_heat_capacity(self) -> float:
        """Heat capacity per unit area [J/(K m^2)]."""
        return self.density * self.specific_heat * self.thickness_m

    @property
    def sheet_conductance(self) -> float:
        """In-plane conductance-thickness product k*t [W/K] per square."""
        return self.thermal_conductivity * self.thickness_m


#: Titanium film capped with a TiN nanolayer — the paper's resistor metal.
#: Thin-film Ti TCR is ~3.5e-3 /K (bulk value, slightly reduced in films).
TI_TIN = ResistorMaterial(name="Ti/TiN", tcr_per_k=3.5e-3, drift_per_kh=0.0)

#: LPCVD stoichiometric silicon nitride (membrane structural layers).
SI_NITRIDE_LPCVD = MembraneLayer(
    name="Si3N4 (LPCVD)",
    thickness_m=0.6e-6,
    thermal_conductivity=3.2,
    density=3100.0,
    specific_heat=700.0,
    tensile_strength_pa=6.0e9,
)

#: Thermal/LPCVD silicon dioxide (middle, stress-compensating layer).
SI_OXIDE = MembraneLayer(
    name="SiO2 (LPCVD)",
    thickness_m=0.5e-6,
    thermal_conductivity=1.4,
    density=2200.0,
    specific_heat=740.0,
    tensile_strength_pa=1.0e9,
)

#: PECVD silicon nitride passivation (final, water-facing, biocompatible).
SI_NITRIDE_PECVD = MembraneLayer(
    name="Si3N4 (PECVD passivation)",
    thickness_m=0.3e-6,
    thermal_conductivity=1.8,
    density=2800.0,
    specific_heat=700.0,
    tensile_strength_pa=4.0e9,
)
