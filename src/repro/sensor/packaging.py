"""Sensor housing and assembly for the wet environment (§4, fig. 9).

"A proper assembly for the sensor housing is essential to protect the
contacts from leakage current and corrosion problems in the water
aggressive environment."  The prototype is a ceramic board with glob-top
protected wire bonds inside a smoothed stainless-steel pipe insert.

This module models what the conditioning electronics actually sees from
the assembly: a (hopefully negligible) leakage conductance across the
bridge, a flow-perturbation coefficient from the insert's profile, and
a slow corrosion process if the coating is compromised.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.errors import ConfigurationError, SensorFault

__all__ = ["HousingQuality", "SensorHousing"]


class HousingQuality(Enum):
    """Assembly grade of the prototype.

    PROTOTYPE is the paper's final build (glob top + coating, smoothed
    profile); BARE is a naive assembly used by ablation benches to show
    why the packaging work was necessary.
    """

    PROTOTYPE = "prototype"
    BARE = "bare"


@dataclass
class SensorHousing:
    """Stainless-steel insertion housing with the sensor head.

    Parameters
    ----------
    quality:
        Assembly grade (see :class:`HousingQuality`).
    profile_smoothing:
        0..1 — how well the head profile was smoothed; scales the local
        turbulence added by the insert itself ("its profile has been
        smoothed to introduce low perturbations in the flow").
    pressure_rating_pa:
        Mechanical rating of the housing/feed-through [Pa gauge].
        The prototype survived 7 bar peaks.
    supports_hot_insertion:
        Whether the insert can be mounted without stopping the line
        ("insertion in pressure techniques") — a deployment property
        surfaced in the comparison bench.
    """

    quality: HousingQuality = HousingQuality.PROTOTYPE
    profile_smoothing: float = 0.9
    pressure_rating_pa: float = 10.0e5
    supports_hot_insertion: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.profile_smoothing <= 1.0:
            raise ConfigurationError("profile_smoothing must be in [0, 1]")
        if self.pressure_rating_pa <= 0.0:
            raise ConfigurationError("pressure rating must be positive")
        self._immersion_hours = 0.0
        self._corroded = False

    # -- electrical ------------------------------------------------------------

    def leakage_conductance_s(self) -> float:
        """Parasitic conductance [S] across the heater from moisture ingress.

        The prototype's glob-top + coating keeps this in the nano-siemens
        range (invisible next to 50 Ω); a bare assembly develops a path
        that grows with immersion time and wrecks the bridge balance.
        """
        if self.quality is HousingQuality.PROTOTYPE:
            return 1.0e-9
        # Bare assembly: ingress grows with exposure, saturating at ~1 kΩ.
        saturated = 1.0e-3
        ingress = 1.0 - np.exp(-self._immersion_hours / 200.0)
        return 1.0e-7 + saturated * ingress

    # -- fluid-dynamic ------------------------------------------------------------

    def turbulence_multiplier(self) -> float:
        """Multiplier on local turbulence intensity caused by the insert."""
        return 1.0 + 1.5 * (1.0 - self.profile_smoothing)

    # -- degradation ------------------------------------------------------------

    def immerse(self, hours: float) -> None:
        """Accumulate immersion time; bare assemblies eventually corrode.

        Raises
        ------
        SensorFault
            When a bare assembly's contacts corrode open (~2000 h in
            potable water), ending the measurement campaign.
        """
        if hours < 0.0:
            raise ConfigurationError("immersion hours must be non-negative")
        self._immersion_hours += hours
        if self.quality is HousingQuality.BARE and self._immersion_hours > 2000.0:
            self._corroded = True
        if self._corroded:
            raise SensorFault(
                "contact corrosion opened the bridge wiring after "
                f"{self._immersion_hours:.0f} h immersion (bare assembly)"
            )

    def check_pressure(self, pressure_pa: float) -> None:
        """Verify the housing survives a line-pressure event.

        Raises
        ------
        SensorFault
            If the gauge pressure exceeds the housing rating.
        """
        if pressure_pa < 0.0:
            raise ConfigurationError("pressure must be non-negative")
        if pressure_pa > self.pressure_rating_pa:
            raise SensorFault(
                f"housing rated {self.pressure_rating_pa / 1e5:.1f} bar failed at "
                f"{pressure_pa / 1e5:.1f} bar"
            )

    @property
    def immersion_hours(self) -> float:
        """Total accumulated immersion time [h]."""
        return self._immersion_hours
