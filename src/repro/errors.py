"""Exception hierarchy for the anemos reproduction library.

Every error raised on purpose by this package derives from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "CalibrationError",
    "SaturationError",
    "ConvergenceError",
    "RegisterError",
    "SensorFault",
    "SessionError",
    "FrameError",
    "ServiceError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """A component was configured with physically or logically invalid values.

    ``reason`` is a machine-readable slug for programmatic handling:
    ``"config"`` (the default catch-all) or a knob-specific tag such as
    ``"numerics"`` for an invalid numerics-mode selection, or
    ``"heterogeneous"`` when a structurally mixed fleet reaches a
    homogeneous-only surface (e.g. a raw
    :class:`~repro.runtime.BatchEngine` handed rigs from more than one
    config group — the message names the offending group keys; use
    :class:`~repro.runtime.MixedEngine` or a
    :class:`~repro.runtime.FleetSpec` surface instead).
    """

    def __init__(self, message: str, reason: str = "config") -> None:
        super().__init__(message)
        self.reason = reason


class CalibrationError(ReproError):
    """Calibration could not be performed or produced an unusable model."""


class SaturationError(ReproError):
    """A signal exceeded the range of an analog or digital block.

    Raised only when the block is configured with ``strict=True``;
    by default blocks clip and flag instead, as real silicon does.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its budget."""


class RegisterError(ReproError):
    """Invalid access to the ISIF register file (bad address, width, field)."""


class SensorFault(ReproError):
    """The simulated sensor entered a failed state (e.g. membrane rupture)."""


class SessionError(ReproError):
    """A :class:`repro.runtime.Session` was used outside its lifecycle.

    The session API enforces ``open() -> calibrate() -> run() -> close()``;
    calling a stage out of order (or after ``close()``) raises this.
    """


class ServiceError(ReproError):
    """A :class:`repro.service.FleetService` request could not be honored.

    ``reason`` is a machine-readable slug for programmatic handling:
    ``"detached"`` (the client already left or finished),
    ``"stopped"`` (the service shut down under the client),
    ``"backpressure"`` (a producer-side push would overrun the bounded
    snapshot queue — an internal invariant, surfaced for diagnostics) or
    the ``"service"`` catch-all.
    """

    def __init__(self, message: str, reason: str = "service") -> None:
        super().__init__(message)
        self.reason = reason


class CheckpointError(ReproError):
    """A checkpoint or store artifact could not be saved or restored.

    ``reason`` is a machine-readable slug for programmatic handling:
    ``"missing"`` (no checkpoint at the given path / key),
    ``"corrupt"`` (the artifact failed validation — bad magic, a torn
    or truncated payload), ``"version"`` (written by an incompatible
    format version), ``"kind"`` (the checkpoint holds a different
    engine kind than the caller expected), ``"mismatch"`` (the
    checkpoint was taken under a different configuration — profile,
    cadence, fleet — than the resuming run), or the ``"checkpoint"``
    catch-all.
    """

    def __init__(self, message: str, reason: str = "checkpoint") -> None:
        super().__init__(message)
        self.reason = reason


class FrameError(ReproError):
    """A received telemetry frame failed validation.

    ``reason`` is machine-readable for drop accounting:
    ``"length"`` (short/long input), ``"crc"`` (CRC-16 mismatch, the
    line-noise case) or ``"sync"`` (bad sync word).
    """

    def __init__(self, message: str, reason: str = "frame") -> None:
        super().__init__(message)
        self.reason = reason
