"""Fleet simulation: a monitored distribution network over days.

The §6 end-state: MAF monitoring points at both ends of every pipe of a
distribution network, diurnal demands, and a supervisor running segment
mass balance.  Simulating every node's full mixed-signal loop for days
is wasteful — each monitor's behaviour at the fleet time scale is fully
characterised by its calibration bias and resolution, both *measured*
from the real simulated monitor (bench E2/E3).  The fleet model
therefore wraps each meter as (bias, noise) drawn from those measured
distributions, which keeps day-scale runs tractable while staying
anchored to the detailed model.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.observability import get_event_log, get_registry, get_tracer
from repro.conditioning.leak_detect import LeakDetector, LeakEvent, NetworkSegmentMonitor
from repro.station.demand import DiurnalDemand
from repro.station.network import PipeNetwork
from repro.station.profiles import Profile

__all__ = ["MeterCharacter", "MonitoredNetwork", "FleetReport",
           "characterize_meter_pool"]


def characterize_meter_pool(fleet=None, seed: int = 0, *,
                            n_meters: int | None = None,
                            speed_cmps: float = 100.0,
                            duration_s: float = 20.0,
                            settle_s: float = 8.0,
                            fast_calibration: bool = True,
                            workers: int | None = None,
                            numerics: str = "exact",
                            backend: str = "spawn",
                            ) -> list["MeterCharacter"]:
    """Measure meter characters from full monitor simulations.

    Builds and calibrates the fleet's complete monitoring points
    through the batched runtime (:class:`repro.runtime.Session`), holds
    them at a steady line speed, and condenses each monitor's steady
    window into the (bias, noise) pair the fleet model consumes — the
    E2/E3 anchoring described in the module docstring, automated.

    Parameters
    ----------
    fleet:
        A :class:`repro.runtime.FleetSpec` describing the pool —
        possibly mixed; a structurally heterogeneous pool sub-batches
        per config group through the mixed engine, bit-identical per
        meter to characterizing its group alone.

        .. deprecated:: 1.2
            An integer meter count (the old ``n_meters=`` spelling,
            paired with ``seed``/``fast_calibration``) still works —
            it warns once per process and is removed in 2.0; pass
            ``FleetSpec.homogeneous(n, seed=s, use_pulsed_drive=False,
            fast_calibration=True)`` instead (the integer path forces
            continuous drive, as it always has).
    seed:
        Session seed for the integer spelling (per-meter seeds are
        spawned from it).  Must stay at its default with a
        ``FleetSpec`` — the spec carries its own seed.
    speed_cmps:
        Steady characterization speed [cm/s].
    duration_s / settle_s:
        Hold duration and the initial transient to discard.
    fast_calibration:
        Short calibration windows for the integer spelling (keep True
        except for final benches); a ``FleetSpec`` entry carries its
        own ``fast_calibration``.
    workers:
        Forwarded to :meth:`repro.runtime.Session.run`; with
        ``workers > 1`` the characterization hold runs through the
        process-parallel sharded engine (bit-identical traces, so the
        measured characters do not depend on the worker count).
    numerics:
        Kernel numerics mode for the characterization hold, forwarded
        to :meth:`repro.runtime.Session.run`: ``"exact"`` (default) or
        ``"fast"`` (≤1e-9 relative error on the traces, far below the
        bias/noise statistics condensed here).
    backend:
        Parallel backend for ``workers > 1`` (``"spawn"`` or
        ``"shm"``), forwarded to :meth:`repro.runtime.Session.run`;
        the characters are bit-identical either way.

    Returns
    -------
    list[MeterCharacter]
        One character per monitor, in fleet index order.
    """
    from repro.runtime import (  # local: avoid a station->runtime cycle
        FleetSpec, Session)
    from repro.runtime.spec import warn_once
    from repro.station.profiles import hold

    if n_meters is not None:
        if fleet is not None:
            raise ConfigurationError(
                "pass either a FleetSpec or the deprecated n_meters=, "
                "not both")
        fleet = n_meters
    if fleet is None:
        raise ConfigurationError(
            "characterize_meter_pool needs a FleetSpec describing the "
            "pool (or, deprecated, an integer meter count)")
    if isinstance(fleet, FleetSpec):
        if seed != 0:
            raise ConfigurationError(
                "a FleetSpec carries its own seed; do not also pass "
                "seed= to characterize_meter_pool")
        spec = fleet
    else:
        n_meters = int(fleet)
        if n_meters < 1:
            raise ConfigurationError("need at least one meter")
        warn_once(
            "characterize-meter-pool-n-meters",
            "characterize_meter_pool(n_meters=...) is deprecated and "
            "will be removed in repro 2.0; describe the pool with "
            "repro.runtime.FleetSpec (e.g. FleetSpec.homogeneous(n, "
            "seed=s, use_pulsed_drive=False, fast_calibration=True)) "
            "and pass it as the first argument")
        spec = FleetSpec.homogeneous(
            n_meters, seed=seed, use_pulsed_drive=False,
            fast_calibration=fast_calibration)
    n_meters = spec.n_monitors
    if not 0.0 <= settle_s < duration_s:
        raise ConfigurationError("settle window must fit inside the hold")
    true_mps = speed_cmps * 1e-2
    with get_tracer().span("fleet.characterize_meter_pool",
                           n_meters=n_meters, seed=spec.seed):
        with Session(fleet=spec) as session:
            session.calibrate()
            result = session.run(hold(speed_cmps, duration_s),
                                 workers=workers, numerics=numerics,
                                 backend=backend)
    registry = get_registry()
    if registry.enabled:
        registry.counter("station.fleet.meters_characterized").inc(n_meters)
    get_event_log().emit("fleet.characterize", n_meters=n_meters,
                         seed=spec.seed, workers=workers, numerics=numerics)
    characters = []
    for i in range(n_meters):
        window = result.trace(i).steady_window(settle_s, duration_s)
        measured = np.asarray(window.measured_mps, dtype=float)
        bias = (float(measured.mean()) - true_mps) / true_mps \
            if true_mps > 0.0 else 0.0
        characters.append(MeterCharacter(
            bias_fraction=float(np.clip(bias, -0.2, 0.2)),
            noise_mps=float(measured.std()),
        ))
    return characters


@dataclass(frozen=True)
class MeterCharacter:
    """Day-scale behavioural summary of one installed MAF monitor.

    Attributes
    ----------
    bias_fraction:
        Calibration bias as a fraction of reading (E1-class systematic).
    noise_mps:
        1σ reading noise at the reporting cadence (E2-class, at the
        0.1 Hz output bandwidth).
    """

    bias_fraction: float = 0.0
    noise_mps: float = 0.004

    def __post_init__(self) -> None:
        if abs(self.bias_fraction) > 0.2:
            raise ConfigurationError("bias beyond any calibrated meter")
        if self.noise_mps < 0.0:
            raise ConfigurationError("noise must be non-negative")


@dataclass
class FleetReport:
    """Outcome of one fleet run.

    Attributes
    ----------
    events:
        Leak alarms raised, in order.
    snapshots:
        Meter snapshots processed.
    night_fraction:
        Fraction of snapshots inside the night window (diagnostic
        sensitivity budget).
    """

    events: list[LeakEvent] = field(default_factory=list)
    snapshots: int = 0
    night_fraction: float = 0.0


class MonitoredNetwork:
    """A pipe network with a meter pair per segment and a supervisor.

    Parameters
    ----------
    network:
        The hydraulic substrate (demands are overwritten by the
        per-node diurnal generators each snapshot).
    seed:
        Seed for meter characters and noise.
    meter_noise_mps:
        1σ reading noise applied per meter per snapshot.
    meter_bias_sigma:
        1σ of the per-meter calibration bias draw.
    characters:
        Optional measured characters keyed by ``(up, down, position)``
        with position ``"inlet"`` or ``"outlet"``; keys present here
        override the synthetic draw (use
        :func:`characterize_meter_pool` to obtain characters anchored
        to the full monitor simulation).  Keys not covered fall back to
        the drawn character, and the noise stream is unaffected.
    """

    def __init__(self, network: PipeNetwork, seed: int = 0,
                 meter_noise_mps: float = 0.004,
                 meter_bias_sigma: float = 0.003,
                 characters: dict[tuple[str, str, str],
                                 MeterCharacter] | None = None) -> None:
        self.network = network
        self._rng = np.random.default_rng(seed)
        self._demands: dict[str, DiurnalDemand] = {}
        self._meters: dict[tuple[str, str, str], MeterCharacter] = {}
        for i, (up, down) in enumerate(network.pipes):
            for j, position in enumerate(("inlet", "outlet")):
                # Always draw, so the RNG stream (and the per-snapshot
                # noise that follows it) is the same with or without
                # measured characters.
                drawn = MeterCharacter(
                    bias_fraction=float(
                        self._rng.normal(0.0, meter_bias_sigma)),
                    noise_mps=meter_noise_mps,
                )
                key = (up, down, position)
                self._meters[key] = (
                    characters.get(key, drawn) if characters else drawn)
        self.detector = LeakDetector()
        for up, down in network.pipes:
            # Drift: tolerate ~4 sigma of combined pair noise; threshold:
            # ~10 min of a just-above-drift leak at the 60 s cadence.
            self.detector.add_segment(NetworkSegmentMonitor(
                f"{up}->{down}", drift_mps=4.0 * meter_noise_mps,
                threshold_mps_s=1500.0 * meter_noise_mps))

    def attach_demand(self, node: str, demand: DiurnalDemand) -> None:
        """Drive a junction's demand with a diurnal generator."""
        self._demands[node] = demand

    def _reading(self, key: tuple[str, str, str], true_mps: float) -> float:
        meter = self._meters[key]
        return (true_mps * (1.0 + meter.bias_fraction)
                + float(self._rng.normal(0.0, meter.noise_mps)))

    def commission(self, hours: float = 2.0, snapshot_s: float = 60.0,
                   start_h: float = 2.0) -> None:
        """Learn each segment's standing meter-pair imbalance.

        Run once at installation on a known-leak-free network (night
        window by default, where flows are steadiest); the observed mean
        imbalance becomes the segment baseline the CUSUM works against.
        """
        if hours <= 0.0 or snapshot_s <= 0.0:
            raise ConfigurationError("hours and cadence must be positive")
        imb: dict[str, float] = {name: 0.0 for name in self.detector.segments}
        inlet: dict[str, float] = {name: 0.0 for name in self.detector.segments}
        count = 0
        steps = int(hours * 3600.0 / snapshot_s)
        for k in range(steps):
            t_h = start_h + k * snapshot_s / 3600.0
            for node, demand in self._demands.items():
                self.network.set_demand(node, demand.demand_m3_s(t_h))
            flows = self.network.solve()
            for (up, down), flow in flows.items():
                v_in = self._reading((up, down, "inlet"), flow.inlet_speed_mps)
                v_out = self._reading((up, down, "outlet"), flow.outlet_speed_mps)
                imb[f"{up}->{down}"] += v_in - v_out
                inlet[f"{up}->{down}"] += v_in
            count += 1
        for name in imb:
            # Meter-pair gain mismatch scales with flow: store it as a
            # ratio against the inlet reading so it cancels at any demand.
            ratio = imb[name] / inlet[name] if inlet[name] > 0.0 else 0.0
            self.detector.segment(name).set_baseline(baseline_ratio=ratio)

    def run(self, profile: Profile | float | None = None, *args,
            snapshot_s: float | None = None,
            collect: str = "result",
            leak: tuple[str, str, float] | None = None,
            leak_at_h: float | None = None,
            workers: int | None = None,
            hours: float | None = None) -> FleetReport | dict:
        """Simulate the fleet for a duration.

        This is the unified run surface (shared with
        :meth:`repro.runtime.session.Session.run` and
        :meth:`repro.station.rig.TestRig.run`): a profile (or a plain
        duration in hours) first, everything else keyword-only.

        Parameters
        ----------
        profile:
            Simulated span — either a
            :class:`~repro.station.profiles.Profile` (its
            ``duration_s`` sets the span; the fleet abstraction does
            not track the profile's speed setpoints) or a plain number
            of hours.
        snapshot_s:
            Meter reporting cadence (default 60 s).
        collect:
            ``"result"`` returns the :class:`FleetReport`;
            ``"summary"`` returns a JSON-safe dict of the report.
        leak / leak_at_h:
            Optional (upstream, downstream, m3/s) leak opened at the
            given hour.
        workers:
            Accepted for surface uniformity with the other run methods
            and validated (``>= 1``), but the day-scale fleet model
            always executes serially: every meter reading is drawn from
            one shared RNG stream, so sharding it across processes
            would change the realized noise.  The heavy lifting that
            *does* parallelize — characterizing the meter pool — goes
            through :func:`characterize_meter_pool`'s ``workers``.

        Returns
        -------
        FleetReport | dict

        .. deprecated:: 1.1
            The ``hours=`` keyword and positional ``snapshot_s`` still
            work but emit :class:`FutureWarning`; pass the span as
            ``profile`` and the cadence by keyword.  Both legacy
            spellings will be removed in 2.0.
        """
        if args:
            warnings.warn(
                "positional snapshot_s is deprecated and will be removed "
                "in repro 2.0; MonitoredNetwork.run is keyword-only after "
                "the duration — pass snapshot_s=...",
                FutureWarning, stacklevel=2)
            if len(args) > 1:
                raise ConfigurationError(
                    f"MonitoredNetwork.run takes at most the duration and "
                    f"snapshot_s positionally (got {1 + len(args)})")
            if snapshot_s is not None:
                raise ConfigurationError(
                    "snapshot_s given both positionally and by keyword")
            snapshot_s = args[0]
        if hours is not None:
            warnings.warn(
                "hours= is deprecated and will be removed in repro 2.0; "
                "pass the duration (hours or a Profile) as the first "
                "argument: run(1.0, ...)",
                FutureWarning, stacklevel=2)
            if profile is not None:
                raise ConfigurationError(
                    "pass the duration as profile or hours=, not both")
            profile = hours
        if profile is None:
            raise ConfigurationError("a duration (hours or Profile) is required")
        if collect not in ("result", "summary"):
            raise ConfigurationError(
                f"unknown collect {collect!r}; use 'result' or 'summary'")
        if workers is not None and workers < 1:
            raise ConfigurationError("workers must be >= 1")
        span_h = (profile.duration_s / 3600.0
                  if isinstance(profile, Profile) else float(profile))
        if snapshot_s is None:
            snapshot_s = 60.0
        if span_h <= 0.0 or snapshot_s <= 0.0:
            raise ConfigurationError("hours and cadence must be positive")
        with get_tracer().span("fleet.run", hours=span_h,
                               segments=len(self.detector.segments)):
            report = self._run(span_h, float(snapshot_s), leak, leak_at_h)
        registry = get_registry()
        if registry.enabled:
            registry.counter("station.fleet.snapshots").inc(report.snapshots)
            registry.counter("station.fleet.leak_events").inc(
                len(report.events))
        get_event_log().emit("fleet.run", hours=span_h,
                             snapshots=report.snapshots,
                             leak_events=len(report.events))
        if collect == "summary":
            return {
                "snapshots": report.snapshots,
                "night_fraction": report.night_fraction,
                "leak_events": [
                    {"segment": e.segment, "time_s": e.time_s,
                     "estimated_loss_mps": e.estimated_loss_mps}
                    for e in report.events
                ],
            }
        return report

    def _run(self, hours: float, snapshot_s: float,
             leak: tuple[str, str, float] | None,
             leak_at_h: float | None) -> FleetReport:
        report = FleetReport()
        night = 0
        steps = int(hours * 3600.0 / snapshot_s)
        probe = next(iter(self._demands.values()), None)
        for k in range(steps):
            t_h = k * snapshot_s / 3600.0
            for node, demand in self._demands.items():
                self.network.set_demand(node, demand.demand_m3_s(t_h))
            if leak is not None and leak_at_h is not None and \
                    t_h >= leak_at_h and k == int(leak_at_h * 3600.0 / snapshot_s):
                self.network.inject_leak(leak[0], leak[1], leak[2])
            flows = self.network.solve()
            readings = {
                f"{up}->{down}": (
                    self._reading((up, down, "inlet"), flow.inlet_speed_mps),
                    self._reading((up, down, "outlet"), flow.outlet_speed_mps),
                )
                for (up, down), flow in flows.items()
            }
            report.events.extend(self.detector.update(readings, snapshot_s))
            report.snapshots += 1
            if probe is not None and probe.is_night_window(t_h):
                night += 1
        report.night_fraction = night / max(report.snapshots, 1)
        return report
