"""Simulated water test station (§5: the Vinci line).

A dedicated measurement line "derived from conventional water lines, in
which pressure and water speed could be fine tuned", with the reference
Promag 50 and a transparent inspection section.  The rig orchestrates
profiles, the line dynamics, the sensor-under-test and the reference
meter, and records synchronous traces.
"""

from repro.station.line import WaterLine, LineConfig, LineState
from repro.station.profiles import Profile, Segment, staircase, ramp, step, hold, bidirectional_staircase, pressure_peaks
from repro.station.rig import TestRig, RigRecord, run_calibration
from repro.station.scenarios import vinci_station, build_calibrated_monitor, CalibratedSetup
from repro.station.network import PipeNetwork, PipeFlow
from repro.station.demand import DiurnalDemand
from repro.station.fleet import MonitoredNetwork, MeterCharacter, FleetReport
from repro.station.health import (RigHealthTracker, evaluate_scores,
                                  fleet_reference, score_fleet)
from repro.station.campaign import (EVENT_KINDS, SCENARIO_NAMES,
                                    CampaignReport, Event, ScenarioProfile,
                                    ScenarioSpec, builtin_scenario,
                                    household_demand, resolve_scenario,
                                    run_campaign, station_demand)

__all__ = [
    "WaterLine",
    "LineConfig",
    "LineState",
    "Profile",
    "Segment",
    "staircase",
    "ramp",
    "step",
    "hold",
    "bidirectional_staircase",
    "pressure_peaks",
    "TestRig",
    "RigRecord",
    "run_calibration",
    "vinci_station",
    "build_calibrated_monitor",
    "CalibratedSetup",
    "PipeNetwork",
    "PipeFlow",
    "DiurnalDemand",
    "MonitoredNetwork",
    "MeterCharacter",
    "FleetReport",
    "EVENT_KINDS",
    "SCENARIO_NAMES",
    "Event",
    "ScenarioSpec",
    "ScenarioProfile",
    "CampaignReport",
    "builtin_scenario",
    "resolve_scenario",
    "household_demand",
    "station_demand",
    "run_campaign",
    "RigHealthTracker",
    "score_fleet",
    "fleet_reference",
    "evaluate_scores",
]
