"""Water-distribution network substrate (the §6 deployment vision).

"Nowadays water monitoring is limited only to key points in the
distribution network ... The presented measurement system ... can be
widely diffused all over the water distribution channels: allowing also
any malfunction behavior (e.g. water loss in tube) ... to be
immediately localized and isolated."

A small quasi-static hydraulic model on a ``networkx`` digraph: nodes
are junctions (with demands) or the source reservoir; edges are pipes
with meters at both ends.  Flows solve mass balance exactly; leaks are
extra, unmetered demands injected mid-pipe.  The solver yields the true
edge speeds a fleet of MAF monitors would observe, which feed the
:class:`~repro.conditioning.leak_detect.LeakDetector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PipeNetwork", "PipeFlow"]


@dataclass(frozen=True)
class PipeFlow:
    """Solved state of one pipe.

    Attributes
    ----------
    inlet_speed_mps:
        Mean speed entering the pipe (upstream meter position).
    outlet_speed_mps:
        Mean speed leaving the pipe (downstream meter position).
    leak_m3_s:
        Unmetered loss inside the pipe.
    """

    inlet_speed_mps: float
    outlet_speed_mps: float
    leak_m3_s: float


class PipeNetwork:
    """Tree-topology distribution network with per-pipe leak injection.

    The model is quasi-static: each :meth:`solve` distributes the
    current demands and leaks from the source through the tree by mass
    balance.  (Real networks are meshed; a tree captures the §6
    localisation story — one meter pair per segment — without a full
    EPANET-style solver, and matches how rural distribution spurs are
    actually laid out.)
    """

    def __init__(self, source: str = "reservoir") -> None:
        self._graph = nx.DiGraph()
        self._graph.add_node(source, demand_m3_s=0.0)
        self.source = source
        self._leaks: dict[tuple[str, str], float] = {}

    # -- construction -----------------------------------------------------------

    def add_pipe(self, upstream: str, downstream: str,
                 diameter_m: float = 0.05,
                 demand_m3_s: float = 0.0) -> None:
        """Add a pipe feeding ``downstream`` (created with its demand)."""
        if upstream not in self._graph:
            raise ConfigurationError(f"unknown upstream node {upstream!r}")
        if downstream in self._graph:
            raise ConfigurationError(f"node {downstream!r} already exists "
                                     "(network must stay a tree)")
        if diameter_m <= 0.0:
            raise ConfigurationError("pipe diameter must be positive")
        if demand_m3_s < 0.0:
            raise ConfigurationError("demand must be non-negative")
        self._graph.add_node(downstream, demand_m3_s=demand_m3_s)
        self._graph.add_edge(upstream, downstream, diameter_m=diameter_m)

    def set_demand(self, node: str, demand_m3_s: float) -> None:
        """Update a junction's metered demand (diurnal patterns)."""
        if node not in self._graph or node == self.source:
            raise ConfigurationError(f"no demand node {node!r}")
        if demand_m3_s < 0.0:
            raise ConfigurationError("demand must be non-negative")
        self._graph.nodes[node]["demand_m3_s"] = demand_m3_s

    def inject_leak(self, upstream: str, downstream: str,
                    leak_m3_s: float) -> None:
        """Open (or close, with 0) a leak inside a pipe."""
        if not self._graph.has_edge(upstream, downstream):
            raise ConfigurationError(
                f"no pipe {upstream!r} -> {downstream!r}")
        if leak_m3_s < 0.0:
            raise ConfigurationError("leak must be non-negative")
        self._leaks[(upstream, downstream)] = leak_m3_s

    @property
    def pipes(self) -> tuple[tuple[str, str], ...]:
        """All pipes as (upstream, downstream) pairs, topological order."""
        order = list(nx.topological_sort(self._graph))
        rank = {n: i for i, n in enumerate(order)}
        return tuple(sorted(self._graph.edges, key=lambda e: rank[e[0]]))

    # -- solution ------------------------------------------------------------------

    def solve(self) -> dict[tuple[str, str], PipeFlow]:
        """Mass-balance flows for the current demands and leaks.

        Returns
        -------
        dict
            Per-pipe :class:`PipeFlow`, keyed by (upstream, downstream).
        """
        if not nx.is_tree(self._graph.to_undirected()):
            raise ConfigurationError("network must be a tree")
        # Downstream volumetric requirement of each node = its demand +
        # everything below it + leaks in pipes below it.
        requirement: dict[str, float] = {}
        for node in reversed(list(nx.topological_sort(self._graph))):
            total = self._graph.nodes[node]["demand_m3_s"]
            for _, child in self._graph.out_edges(node):
                total += requirement[child]
                total += self._leaks.get((node, child), 0.0)
            requirement[node] = total
        flows: dict[tuple[str, str], PipeFlow] = {}
        for up, down in self._graph.edges:
            leak = self._leaks.get((up, down), 0.0)
            q_out = requirement[down]
            q_in = q_out + leak
            area = np.pi * (self._graph.edges[up, down]["diameter_m"] / 2.0) ** 2
            flows[(up, down)] = PipeFlow(
                inlet_speed_mps=q_in / area,
                outlet_speed_mps=q_out / area,
                leak_m3_s=leak,
            )
        return flows

    def total_supply_m3_s(self) -> float:
        """Flow leaving the reservoir (demands + all leaks)."""
        flows = self.solve()
        return sum(
            f.inlet_speed_mps * np.pi
            * (self._graph.edges[e]["diameter_m"] / 2.0) ** 2
            for e, f in flows.items() if e[0] == self.source
        )
