"""Setpoint profiles for the test line.

A :class:`Profile` is a piecewise schedule of line setpoints (speed,
pressure, temperature).  Helpers build the shapes the paper's campaign
used: staircases over 0-250 cm/s, ramps, steps for response-time tests,
bidirectional sequences for direction detection, and pressure peaks up
to 7 bar.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.units import bar_to_pa, celsius_to_kelvin, cmps_to_mps

__all__ = [
    "Segment",
    "Profile",
    "staircase",
    "ramp",
    "step",
    "hold",
    "bidirectional_staircase",
    "pressure_peaks",
]


@dataclass(frozen=True)
class Segment:
    """One schedule entry.

    Attributes
    ----------
    duration_s:
        Segment length.
    speed_mps:
        Line speed setpoint at the segment *end* (linearly interpolated
        from the previous segment's end when ``interpolate``).
    pressure_pa:
        Gauge pressure setpoint.
    temperature_k:
        Water temperature setpoint.
    interpolate:
        Ramp from the previous value (True) or step (False).
    """

    duration_s: float
    speed_mps: float
    pressure_pa: float = 2.0e5
    temperature_k: float = 288.15
    interpolate: bool = False

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ConfigurationError("segment duration must be positive")
        if self.pressure_pa < 0.0:
            raise ConfigurationError("pressure must be non-negative")


@dataclass
class Profile:
    """Piecewise setpoint schedule with O(log n) time lookup."""

    segments: list[Segment] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        self._ends = list(np.cumsum([s.duration_s for s in self.segments]))

    def append(self, segment: Segment) -> None:
        """Add a segment at the end."""
        self.segments.append(segment)
        self._rebuild()

    @property
    def duration_s(self) -> float:
        """Total schedule length."""
        return self._ends[-1] if self._ends else 0.0

    def setpoints(self, t_s: float) -> tuple[float, float, float]:
        """(speed, pressure, temperature) setpoints at time ``t_s``.

        Times beyond the end hold the last segment's values.
        """
        if not self.segments:
            raise ConfigurationError("profile has no segments")
        if t_s < 0.0:
            raise ConfigurationError("time must be non-negative")
        i = min(bisect_right(self._ends, t_s), len(self.segments) - 1)
        seg = self.segments[i]
        if not seg.interpolate or i == 0:
            return seg.speed_mps, seg.pressure_pa, seg.temperature_k
        prev = self.segments[i - 1]
        start = self._ends[i - 1]
        frac = float(np.clip((t_s - start) / seg.duration_s, 0.0, 1.0))
        return (
            prev.speed_mps + frac * (seg.speed_mps - prev.speed_mps),
            prev.pressure_pa + frac * (seg.pressure_pa - prev.pressure_pa),
            prev.temperature_k + frac * (seg.temperature_k - prev.temperature_k),
        )


def hold(speed_cmps: float, duration_s: float, pressure_bar: float = 2.0,
         temperature_c: float = 15.0) -> Profile:
    """A single steady segment (paper units at the boundary)."""
    return Profile([Segment(
        duration_s=duration_s,
        speed_mps=float(cmps_to_mps(speed_cmps)),
        pressure_pa=float(bar_to_pa(pressure_bar)),
        temperature_k=float(celsius_to_kelvin(temperature_c)),
    )])


def staircase(levels_cmps: list[float], dwell_s: float,
              pressure_bar: float = 2.0, temperature_c: float = 15.0) -> Profile:
    """Step through speed levels, dwelling at each — the E1/E2 workload."""
    if not levels_cmps:
        raise ConfigurationError("need at least one level")
    return Profile([
        Segment(
            duration_s=dwell_s,
            speed_mps=float(cmps_to_mps(level)),
            pressure_pa=float(bar_to_pa(pressure_bar)),
            temperature_k=float(celsius_to_kelvin(temperature_c)),
        )
        for level in levels_cmps
    ])


def ramp(start_cmps: float, end_cmps: float, duration_s: float,
         pressure_bar: float = 2.0, temperature_c: float = 15.0) -> Profile:
    """Linear speed ramp."""
    p = float(bar_to_pa(pressure_bar))
    t = float(celsius_to_kelvin(temperature_c))
    return Profile([
        Segment(0.001, float(cmps_to_mps(start_cmps)), p, t),
        Segment(duration_s, float(cmps_to_mps(end_cmps)), p, t, interpolate=True),
    ])


def step(from_cmps: float, to_cmps: float, pre_s: float, post_s: float,
         pressure_bar: float = 2.0, temperature_c: float = 15.0) -> Profile:
    """A flow step for response-time measurements (E11)."""
    p = float(bar_to_pa(pressure_bar))
    t = float(celsius_to_kelvin(temperature_c))
    return Profile([
        Segment(pre_s, float(cmps_to_mps(from_cmps)), p, t),
        Segment(post_s, float(cmps_to_mps(to_cmps)), p, t),
    ])


def bidirectional_staircase(levels_cmps: list[float], dwell_s: float,
                            pressure_bar: float = 2.0,
                            temperature_c: float = 15.0) -> Profile:
    """Forward levels, then the same levels reversed in sign (E4)."""
    if not levels_cmps:
        raise ConfigurationError("need at least one level")
    forward = list(levels_cmps)
    reverse = [-level for level in levels_cmps]
    return staircase(forward + reverse, dwell_s, pressure_bar, temperature_c)


def pressure_peaks(speed_cmps: float, base_bar: float, peak_bar: float,
                   dwell_s: float, peaks: int = 3,
                   temperature_c: float = 15.0) -> Profile:
    """Alternate base pressure and short peaks (§5: 0-3 bar, 7 bar peaks)."""
    if peaks < 1:
        raise ConfigurationError("need at least one peak")
    v = float(cmps_to_mps(speed_cmps))
    t = float(celsius_to_kelvin(temperature_c))
    segments = []
    for _ in range(peaks):
        segments.append(Segment(dwell_s, v, float(bar_to_pa(base_bar)), t))
        segments.append(Segment(dwell_s / 4.0, v, float(bar_to_pa(peak_bar)), t))
    segments.append(Segment(dwell_s, v, float(bar_to_pa(base_bar)), t))
    return Profile(segments)
