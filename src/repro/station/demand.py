"""Diurnal water-demand patterns.

Distribution networks breathe: night minimum (when leak detection is
most sensitive — the minimum-night-flow method), morning and evening
peaks.  The generator produces a deterministic daily shape with
optional weekend scaling and stochastic consumer noise; the fleet
simulation drives :class:`~repro.station.network.PipeNetwork` demands
with it.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["DiurnalDemand"]


@dataclass(frozen=True)
class DiurnalDemandShape:
    """Shape constants of the daily curve (fractions of the mean).

    Attributes
    ----------
    night_floor:
        Demand multiplier at the 03:00 minimum.
    morning_peak / evening_peak:
        Multipliers at the 07:30 and 19:30 peaks.
    peak_width_h:
        Gaussian width of each peak.
    """

    night_floor: float = 0.25
    morning_peak: float = 1.65
    evening_peak: float = 1.45
    peak_width_h: float = 2.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.night_floor < 1.0:
            raise ConfigurationError("night floor must be in [0, 1)")
        if self.morning_peak <= 1.0 or self.evening_peak <= 1.0:
            raise ConfigurationError("peaks must exceed the mean")
        if self.peak_width_h <= 0.0:
            raise ConfigurationError("peak width must be positive")


class DiurnalDemand:
    """Daily demand multiplier for one consumer node.

    Parameters
    ----------
    mean_demand_m3_s:
        Average demand the multiplier scales.
    shape:
        Daily curve constants.
    weekend_factor:
        Multiplier applied on days 5 and 6 of each week.
    noise_fraction:
        RMS consumer randomness on top of the deterministic curve.
    seed:
        Noise seed.
    """

    MORNING_H = 7.5
    EVENING_H = 19.5
    NIGHT_H = 3.0

    def __init__(self, mean_demand_m3_s: float,
                 shape: DiurnalDemandShape | None = None,
                 weekend_factor: float = 1.1,
                 noise_fraction: float = 0.05,
                 seed: int = 0) -> None:
        if mean_demand_m3_s < 0.0:
            raise ConfigurationError("mean demand must be non-negative")
        if weekend_factor <= 0.0:
            raise ConfigurationError("weekend factor must be positive")
        if not 0.0 <= noise_fraction < 1.0:
            raise ConfigurationError("noise fraction must be in [0, 1)")
        self.mean_demand_m3_s = mean_demand_m3_s
        self.shape = shape or DiurnalDemandShape()
        self.weekend_factor = weekend_factor
        self.noise_fraction = noise_fraction
        self._rng = np.random.default_rng(seed)

    def multiplier(self, time_h: float) -> float:
        """Deterministic daily multiplier at an absolute time [hours]."""
        if time_h < 0.0:
            raise ConfigurationError("time must be non-negative")
        s = self.shape
        hour = time_h % 24.0

        def peak(centre: float, height: float) -> float:
            # Wrapped Gaussian bump around the peak hour.
            d = min(abs(hour - centre), 24.0 - abs(hour - centre))
            return (height - s.night_floor) * math.exp(
                -0.5 * (d / s.peak_width_h) ** 2)

        value = s.night_floor
        value += peak(self.MORNING_H, s.morning_peak)
        value += peak(self.EVENING_H, s.evening_peak)
        day = int(time_h // 24.0) % 7
        if day >= 5:
            value *= self.weekend_factor
        return value

    def demand_m3_s(self, time_h: float) -> float:
        """Stochastic demand at an absolute time [hours]."""
        base = self.mean_demand_m3_s * self.multiplier(time_h)
        if self.noise_fraction == 0.0:
            return base
        return max(0.0, base * (1.0 + self.noise_fraction * float(self._rng.normal())))

    def is_night_window(self, time_h: float, half_width_h: float = 1.5) -> bool:
        """Whether the time falls in the minimum-night-flow window."""
        hour = time_h % 24.0
        return abs(hour - self.NIGHT_H) <= half_width_h
