"""Hydraulic dynamics of the dedicated measurement line.

The line cannot jump between setpoints: pump/valve dynamics move the
bulk speed with a first-order lag, pressure follows its own (faster)
lag, and the thermal mass of the line makes temperature the slowest
state.  On top of the bulk speed, developed-pipe turbulence perturbs
the *local* speed at the sensor head (scaled by the housing's profile
smoothing).  This is the plant every meter in the rig observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.physics.carbonate import TUSCAN_TAP_WATER, WaterChemistry
from repro.physics.turbulence import FlowNoise, FlowNoiseConfig
from repro.sensor.maf import FlowConditions

__all__ = ["LineConfig", "LineState", "WaterLine"]


@dataclass(frozen=True)
class LineConfig:
    """Physical parameters of the test line.

    Attributes
    ----------
    pipe_diameter_m:
        Inner diameter (DN50 at the Vinci station).
    speed_tau_s:
        Pump/valve first-order time constant of the bulk speed.
    pressure_tau_s:
        Pressure regulation time constant.
    temperature_tau_s:
        Thermal time constant of the water volume.
    turbulence:
        Local-fluctuation model parameters.
    chemistry:
        Water chemistry of the campaign.
    seed:
        Seed for the turbulence generator.
    """

    pipe_diameter_m: float = 0.05
    speed_tau_s: float = 1.5
    pressure_tau_s: float = 0.3
    temperature_tau_s: float = 120.0
    turbulence: FlowNoiseConfig = FlowNoiseConfig()
    chemistry: WaterChemistry = TUSCAN_TAP_WATER
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.pipe_diameter_m <= 0.0:
            raise ConfigurationError("pipe diameter must be positive")
        if min(self.speed_tau_s, self.pressure_tau_s, self.temperature_tau_s) <= 0.0:
            raise ConfigurationError("time constants must be positive")


@dataclass(frozen=True)
class LineState:
    """Bulk line state after one step.

    ``local_speed_mps`` is the turbulence-perturbed speed at the sensor
    head; ``bulk_speed_mps`` is what an averaging reference meter sees.
    """

    time_s: float
    bulk_speed_mps: float
    local_speed_mps: float
    pressure_pa: float
    temperature_k: float


class WaterLine:
    """Stateful line plant: set targets, call :meth:`step` each tick."""

    def __init__(self, config: LineConfig | None = None,
                 turbulence_multiplier: float = 1.0) -> None:
        self.config = config or LineConfig()
        if turbulence_multiplier <= 0.0:
            raise ConfigurationError("turbulence multiplier must be positive")
        cfg = self.config
        noise_cfg = FlowNoiseConfig(
            intensity=cfg.turbulence.intensity * turbulence_multiplier,
            floor_mps=cfg.turbulence.floor_mps,
            integral_length_m=cfg.turbulence.integral_length_m,
            min_speed_mps=cfg.turbulence.min_speed_mps,
        )
        self._noise = FlowNoise(np.random.default_rng(cfg.seed), noise_cfg)
        self._time_s = 0.0
        self._speed = 0.0
        self._pressure = 2.0e5
        self._temperature = 288.15

    @property
    def time_s(self) -> float:
        """Line-local simulation time."""
        return self._time_s

    def jump_to(self, speed_mps: float, pressure_pa: float = 2.0e5,
                temperature_k: float = 288.15) -> None:
        """Teleport the state (fast-forward between campaign points)."""
        self._speed = speed_mps
        self._pressure = pressure_pa
        self._temperature = temperature_k

    def step(self, dt: float, speed_target_mps: float,
             pressure_target_pa: float = 2.0e5,
             temperature_target_k: float = 288.15) -> LineState:
        """Advance the plant one tick toward the targets."""
        if dt <= 0.0:
            raise ConfigurationError("dt must be positive")
        cfg = self.config
        self._speed += (1.0 - np.exp(-dt / cfg.speed_tau_s)) * (speed_target_mps - self._speed)
        self._pressure += (1.0 - np.exp(-dt / cfg.pressure_tau_s)) * (
            pressure_target_pa - self._pressure)
        self._temperature += (1.0 - np.exp(-dt / cfg.temperature_tau_s)) * (
            temperature_target_k - self._temperature)
        local = self._noise.perturb(self._speed, dt)
        self._time_s += dt
        return LineState(
            time_s=self._time_s,
            bulk_speed_mps=self._speed,
            local_speed_mps=local,
            pressure_pa=self._pressure,
            temperature_k=self._temperature,
        )

    def conditions(self, state: LineState) -> FlowConditions:
        """Package a line state as sensor-head conditions."""
        return FlowConditions(
            speed_mps=state.local_speed_mps,
            temperature_k=state.temperature_k,
            pressure_pa=state.pressure_pa,
            chemistry=self.config.chemistry,
        )
