"""Scenario campaigns: demand generators + event injection over fleets.

The paper characterizes one meter on a bench; a deployment review asks a
different question — *what does the fleet report when something happens
on the line?*  This module provides the scenario layer:

- **Demand generators** (:func:`household_demand`,
  :func:`station_demand`) synthesize line profiles from the diurnal
  demand model in :mod:`repro.station.demand`: one or more 24 h demand
  cycles compressed into a simulated window, household-shaped (sharp
  07:30/19:30 peaks over a deep night floor) or station-shaped
  (flatter, higher base).
- **An event vocabulary** (:data:`EVENT_KINDS`): slab leak, tank leak,
  mains burst, low-flow trickle, freeze, and CaCO3-heavy episodes —
  each a deterministic transform of the ``(speed, pressure,
  temperature)`` setpoints over a ``[at_s, at_s + duration_s)`` window.
  :class:`Event` schedules one occurrence; :class:`ScenarioSpec` names
  a schedule; :func:`builtin_scenario` places each kind's canonical
  occurrence inside a given horizon.
- **The campaign driver** (:func:`run_campaign`): takes a
  :class:`~repro.runtime.FleetSpec` whose entries carry scenario tags,
  materializes the fleet, groups rigs by (config group, scenario), and
  advances each group window-by-window through
  :meth:`BatchEngine.advance <repro.runtime.batch.BatchEngine.advance>`
  with the event schedule applied at *absolute step offsets* — so a
  rig's trace is bit-identical whether or not unrelated scenarios run
  alongside it.  Per-window ``run.*`` summary deltas (vs the
  scenario's pre-event window) and day-scale rollups land in the
  returned :class:`CampaignReport`.

Runtime imports stay inside functions (the station package must not
import :mod:`repro.runtime` at module load; see
:func:`repro.station.fleet.characterize_meter_pool` for the same
idiom).

Campaigns are durable: pass ``checkpoint_dir=`` and
:func:`run_campaign` snapshots the live group engine plus all completed
bookkeeping after every window (the event-edge cuts it already advances
between).  A killed campaign restarted with ``resume=True`` skips the
completed groups and windows and produces a :class:`CampaignReport`
bit-identical to an uninterrupted run — groups execute in a
deterministic order and untouched groups re-materialize from their
seeds, so only the in-flight engine needs to ride the checkpoint.  A
fault hook for tests and CI: set ``REPRO_CAMPAIGN_FAULT=kill:<k>`` to
SIGKILL the process right after the k-th checkpoint write.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.observability import get_event_log, get_registry, get_tracer
from repro.station.demand import DiurnalDemand, DiurnalDemandShape
from repro.station.profiles import Profile, Segment

__all__ = ["EVENT_KINDS", "SCENARIO_NAMES", "Event", "ScenarioSpec",
           "ScenarioProfile", "CampaignReport", "builtin_scenario",
           "resolve_scenario", "household_demand", "station_demand",
           "run_campaign", "CAMPAIGN_FAULT_ENV"]

#: Environment variable consulted after every campaign checkpoint write
#: (test hook): ``kill:<k>`` SIGKILLs the process right after the k-th
#: write — the deterministic mid-window crash the durability CI job and
#: the resume tests rely on.
CAMPAIGN_FAULT_ENV = "REPRO_CAMPAIGN_FAULT"

_CAMPAIGN_CHECKPOINT_WRITES = 0


def _maybe_campaign_fault() -> None:
    """Honour the ``REPRO_CAMPAIGN_FAULT`` test hook after a write."""
    spec = os.environ.get(CAMPAIGN_FAULT_ENV)
    if not spec:
        return
    mode, target = spec.split(":")
    if mode == "kill" and _CAMPAIGN_CHECKPOINT_WRITES == int(target):
        os.kill(os.getpid(), signal.SIGKILL)


def _write_campaign_checkpoint(engine, path, meta: dict) -> None:
    """One durable campaign snapshot, then the fault hook (tests/CI)."""
    global _CAMPAIGN_CHECKPOINT_WRITES
    from repro.runtime.checkpoint import save_checkpoint
    save_checkpoint(engine, path, meta=meta)
    _CAMPAIGN_CHECKPOINT_WRITES += 1
    _maybe_campaign_fault()


def _slab_leak(s: float, p: float, t: float, m: float):
    """Concealed slab leak: a small persistent draw with pressure sag."""
    return s + 0.05 * m, p - 5.0e3 * m, t


def _tank_leak(s: float, p: float, t: float, m: float):
    """Tank float leak: a trickle-scale persistent draw, pressure intact."""
    return s + 0.02 * m, p, t


def _mains_burst(s: float, p: float, t: float, m: float):
    """Mains burst: a large draw with a deep pressure drop."""
    return s + 0.8 * m, p - 0.8e5 * m, t


def _low_flow_trickle(s: float, p: float, t: float, m: float):
    """Low-flow trickle: a floor under the line speed (running fixture)."""
    return max(s, 0.01 * m), p, t


def _freeze(s: float, p: float, t: float, m: float):
    """Freeze event: water chilled toward 0.5 degC, flow throttled."""
    return 0.3 * s, p, max(273.65, t - 12.0 * m)


def _caco3_episode(s: float, p: float, t: float, m: float):
    """CaCO3-heavy episode: warm hard-water supply shifting the film."""
    return s, p, t + 6.0 * m


#: The event-injection vocabulary: kind -> setpoint transform
#: ``(speed_mps, pressure_pa, temperature_k, magnitude) -> (s, p, t)``.
EVENT_KINDS = {
    "slab_leak": _slab_leak,
    "tank_leak": _tank_leak,
    "mains_burst": _mains_burst,
    "low_flow_trickle": _low_flow_trickle,
    "freeze": _freeze,
    "caco3_episode": _caco3_episode,
}

#: Names :func:`builtin_scenario` accepts: ``baseline`` plus one
#: canonical occurrence of each event kind.
SCENARIO_NAMES = ("baseline",) + tuple(EVENT_KINDS)

#: Canonical in-horizon placement per builtin scenario:
#: (start fraction, duration fraction, magnitude).
_BUILTIN_PLACEMENTS = {
    "slab_leak": (0.30, 0.60, 1.0),
    "tank_leak": (0.25, 0.50, 1.0),
    "mains_burst": (0.50, 0.15, 1.0),
    "low_flow_trickle": (0.20, 0.60, 1.0),
    "freeze": (0.40, 0.30, 1.0),
    "caco3_episode": (0.30, 0.40, 1.0),
}


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence of an event kind.

    Active over ``[at_s, at_s + duration_s)`` in *absolute* profile
    time; ``magnitude`` scales the kind's canonical effect (1.0 is the
    textbook occurrence).
    """

    kind: str
    at_s: float
    duration_s: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        """Validate the kind and the schedule window."""
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown event kind {self.kind!r}; one of "
                f"{sorted(EVENT_KINDS)}")
        if self.at_s < 0.0:
            raise ConfigurationError("event start must be non-negative")
        if self.duration_s <= 0.0:
            raise ConfigurationError("event duration must be positive")

    def apply(self, s: float, p: float, t: float) -> tuple:
        """Transform one setpoint triple by this event's effect."""
        return EVENT_KINDS[self.kind](s, p, t, self.magnitude)

    def to_dict(self) -> dict:
        """JSON-safe dict form (round-trips through :meth:`from_dict`)."""
        return {"kind": self.kind, "at_s": self.at_s,
                "duration_s": self.duration_s,
                "magnitude": self.magnitude}

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Rebuild an Event from its :meth:`to_dict` form."""
        return cls(**payload)


@dataclass(frozen=True)
class ScenarioSpec:
    """A named event-injection schedule (possibly empty = baseline)."""

    name: str
    events: tuple[Event, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        """Normalize the event sequence to a tuple."""
        object.__setattr__(self, "events", tuple(self.events))

    def to_dict(self) -> dict:
        """JSON-safe dict form (round-trips through :meth:`from_dict`)."""
        return {"name": self.name,
                "events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        """Rebuild a ScenarioSpec from its :meth:`to_dict` form."""
        return cls(name=str(payload["name"]),
                   events=tuple(Event.from_dict(e)
                                for e in payload.get("events", ())))


def builtin_scenario(name: str, duration_s: float) -> ScenarioSpec:
    """The canonical scenario of a given name, sized to a horizon.

    ``baseline`` has no events; every event kind gets one occurrence at
    its canonical fraction of ``duration_s`` (e.g. ``mains_burst``
    starts at 0.5 T and lasts 0.15 T).
    """
    if duration_s <= 0.0:
        raise ConfigurationError("scenario horizon must be positive")
    if name == "baseline":
        return ScenarioSpec(name="baseline")
    if name not in _BUILTIN_PLACEMENTS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; one of {sorted(SCENARIO_NAMES)}")
    frac_at, frac_dur, magnitude = _BUILTIN_PLACEMENTS[name]
    return ScenarioSpec(name=name, events=(
        Event(kind=name, at_s=frac_at * duration_s,
              duration_s=frac_dur * duration_s, magnitude=magnitude),))


def resolve_scenario(tag, duration_s: float) -> ScenarioSpec:
    """Coerce a FleetSpec scenario tag to a :class:`ScenarioSpec`.

    ``None`` means baseline; a string names a builtin scenario; a
    ready :class:`ScenarioSpec` passes through unchanged.
    """
    if tag is None:
        return ScenarioSpec(name="baseline")
    if isinstance(tag, str):
        return builtin_scenario(tag, duration_s)
    if isinstance(tag, ScenarioSpec):
        return tag
    raise ConfigurationError(
        f"scenario tags are builtin names or ScenarioSpec, got "
        f"{type(tag).__name__}")


class ScenarioProfile(Profile):
    """A base profile with an event schedule layered on its setpoints.

    The batch kernels only ever call :meth:`Profile.setpoints
    <repro.station.profiles.Profile.setpoints>` at absolute times, so
    overriding it here injects events bit-exactly on any engine — one
    uninterrupted run and a window-sliced ``advance`` sequence see the
    same setpoint stream.  Speed is floored at 0 and pressure at
    10 kPa after the transforms.
    """

    def __init__(self, base: Profile, events: tuple[Event, ...]) -> None:
        """Wrap ``base`` (segments are shared) with ``events``."""
        super().__init__(list(base.segments))
        self.events = tuple(events)

    def setpoints(self, t_s: float) -> tuple[float, float, float]:
        """Base setpoints with every active event's transform applied."""
        s, p, t = super().setpoints(t_s)
        for event in self.events:
            if event.at_s <= t_s < event.at_s + event.duration_s:
                s, p, t = event.apply(s, p, t)
        return max(s, 0.0), max(p, 1.0e4), t


# -- demand generators -------------------------------------------------------

#: Station aggregation flattens the household curve: higher night floor,
#: broader and lower peaks (many unsynchronized consumers).
_STATION_SHAPE = DiurnalDemandShape(night_floor=0.55, morning_peak=1.25,
                                    evening_peak=1.2, peak_width_h=3.5)


def _demand_profile(duration_s: float, shape: DiurnalDemandShape | None,
                    base_cmps: float, days: int,
                    segments_per_day: int) -> Profile:
    """Compress ``days`` diurnal cycles into ``duration_s`` of profile."""
    if duration_s <= 0.0:
        raise ConfigurationError("demand horizon must be positive")
    if days < 1 or segments_per_day < 1:
        raise ConfigurationError(
            "need at least one day and one segment per day")
    demand = DiurnalDemand(1.0, shape=shape, noise_fraction=0.0)
    n = days * segments_per_day
    seg_s = duration_s / n
    segments = []
    for i in range(n):
        time_h = (i + 0.5) * 24.0 * days / n
        speed_mps = 1e-2 * base_cmps * demand.multiplier(time_h)
        segments.append(Segment(duration_s=seg_s, speed_mps=speed_mps))
    profile = Profile(segments)
    profile.campaign_days = days
    return profile


def household_demand(duration_s: float, *, base_cmps: float = 60.0,
                     days: int = 1,
                     segments_per_day: int = 48) -> Profile:
    """Synthetic household demand: sharp peaks over a deep night floor.

    ``days`` diurnal cycles (07:30/19:30 peaks, 03:00 minimum) are
    compressed into ``duration_s`` of simulated line time as a
    piecewise-constant profile of ``segments_per_day`` steps per cycle,
    scaled so the *mean* line speed is ``base_cmps`` [cm/s].  Fully
    deterministic — campaign runs stay bit-reproducible.
    """
    return _demand_profile(duration_s, None, base_cmps, days,
                           segments_per_day)


def station_demand(duration_s: float, *, base_cmps: float = 90.0,
                   days: int = 1,
                   segments_per_day: int = 48) -> Profile:
    """Synthetic station demand: the flatter many-consumer aggregate.

    Same construction as :func:`household_demand` but with a station
    shape (night floor 0.55, broad 1.2-1.25x peaks) and a higher
    default base speed.
    """
    return _demand_profile(duration_s, _STATION_SHAPE, base_cmps, days,
                           segments_per_day)


# -- the campaign driver -----------------------------------------------------

_DEMANDS = {"household": household_demand, "station": station_demand}


@dataclass
class CampaignReport:
    """What :func:`run_campaign` hands back.

    Attributes
    ----------
    result:
        The merged fleet :class:`~repro.runtime.RunResult` in caller
        order (row ``i`` is fleet position ``i``), with per-row
        ``(config_key:scenario, row_in_group)`` provenance.
    groups:
        One dict per (config group, scenario) execution group:
        ``scenario``, ``config_key``, ``positions``, ``events`` and the
        per-window ``windows`` list — each window carrying its time
        span, the active event kinds, its ``run.*`` summary means and
        the ``deltas`` of those means vs the scenario's first
        (pre-event) window.
    days:
        Day-scale rollups: per simulated day, the fleet-pooled
        ``run.*`` summary means.
    duration_s / record_every_n:
        The campaign horizon and the decimation actually used.
    """

    result: object
    groups: list[dict]
    days: list[dict]
    duration_s: float
    record_every_n: int

    def summary(self) -> dict:
        """JSON-safe campaign digest (no arrays; CLI/export friendly)."""
        return {
            "duration_s": self.duration_s,
            "record_every_n": self.record_every_n,
            "n_monitors": int(self.result.n_monitors),
            "groups": [
                {k: v for k, v in group.items()}
                for group in self.groups
            ],
            "days": list(self.days),
        }


def _window_means(rows) -> dict:
    """Per-window ``run.*`` summary means (pooled over the group rows)."""
    return {name: stats["mean"]
            for name, stats in rows.summary().items()
            if name != "run.time_s"}


def run_campaign(fleet, *, duration_s: float | None = None,
                 base_profile: Profile | None = None,
                 demand: str = "household",
                 snapshot_s: float | None = None,
                 record_every_n: int | None = None,
                 numerics: str = "exact",
                 chunk_size: int = 1024,
                 checkpoint_dir=None,
                 resume: bool = False) -> CampaignReport:
    """Run a scenario campaign described by a scenario-tagged FleetSpec.

    Each :class:`~repro.runtime.RigSpec` entry's ``scenario`` tag (a
    builtin name, a :class:`ScenarioSpec`, or None for baseline) picks
    that entry's event schedule.  The fleet is materialized with the
    spec's seed plumbing, partitioned into (config group, scenario)
    execution groups, and every group advances window-by-window on a
    :class:`~repro.runtime.batch.BatchEngine`, splitting exactly at the
    event boundaries (absolute step offsets) — so each window's
    ``run.*`` summary isolates one event configuration, and a rig's
    trace is bit-identical to running its group alone over the same
    horizon.

    Parameters
    ----------
    fleet:
        The :class:`~repro.runtime.FleetSpec` (scenario tags welcome —
        this is the surface that consumes them).
    duration_s:
        Campaign horizon; required unless ``base_profile`` is given
        (whose duration then rules).
    base_profile:
        Explicit base line profile; default is the ``demand`` generator
        over ``duration_s``.
    demand:
        ``"household"`` or ``"station"`` — the generator used when no
        ``base_profile`` is given.
    snapshot_s / record_every_n:
        The unified cadence knob (see
        :func:`repro.runtime.session.resolve_record_every_n`).
    numerics / chunk_size:
        Forwarded to every group engine.
    checkpoint_dir:
        Durability root (default None: no disk artifacts).  The
        campaign checkpoints its state to
        ``<checkpoint_dir>/campaign.ckpt`` after every completed
        window; the artifact is deleted on success.
    resume:
        Continue from the checkpoint a previous (killed) campaign left
        under ``checkpoint_dir``.  Completed groups and windows are
        skipped; the final report is bit-identical to an uninterrupted
        run.

    Raises
    ------
    ConfigurationError
        On a missing horizon, an unknown demand kind, unknown scenario
        names, or anything the engines refuse.
    CheckpointError
        When resuming: ``reason="missing"`` without a checkpoint,
        ``reason="mismatch"`` if the checkpoint belongs to a different
        campaign configuration.
    """
    # Lazy runtime imports: station must not pull repro.runtime at
    # module-import time (cycle; see module docstring).
    from repro.runtime import BatchEngine, FleetSpec, RunResult
    from repro.runtime.checkpoint import load_checkpoint
    from repro.runtime.kernels import resolve_numerics
    from repro.runtime.mixed import config_group_key
    from repro.runtime.session import resolve_record_every_n
    from repro.store import canonical_key

    if not isinstance(fleet, FleetSpec):
        raise ConfigurationError(
            f"run_campaign takes a FleetSpec, got {type(fleet).__name__}")
    if base_profile is None:
        if duration_s is None:
            raise ConfigurationError(
                "pass duration_s (for a generated demand profile) or "
                "base_profile")
        if demand not in _DEMANDS:
            raise ConfigurationError(
                f"unknown demand {demand!r}; one of {sorted(_DEMANDS)}")
        base_profile = _DEMANDS[demand](float(duration_s))
        days = getattr(base_profile, "campaign_days", 1)
    else:
        if duration_s is not None and \
                float(duration_s) != float(base_profile.duration_s):
            raise ConfigurationError(
                "duration_s conflicts with base_profile.duration_s; "
                "pass one of them")
        days = 1
    horizon_s = float(base_profile.duration_s)
    dt = fleet.dt_s
    every = resolve_record_every_n(dt, snapshot_s, record_every_n)
    if every < 1:
        raise ConfigurationError("record_every_n must be >= 1")
    total_steps = int(round(horizon_s / dt))
    if total_steps < 1:
        raise ConfigurationError("campaign horizon shorter than one tick")

    seeds = fleet.monitor_seeds()
    rigs = fleet.materialize(seeds)
    scenarios = [resolve_scenario(tag, horizon_s)
                 for tag in fleet.scenarios()]

    # Execution groups: same config group AND same scenario schedule.
    exec_groups: dict[tuple, dict] = {}
    for pos, (rig, scenario) in enumerate(zip(rigs, scenarios)):
        key = (config_group_key(rig), scenario.name,
               tuple(scenario.events))
        group = exec_groups.setdefault(
            key, {"config_key": key[0], "scenario": scenario,
                  "positions": [], "rigs": []})
        group["positions"].append(pos)
        group["rigs"].append(rig)

    checkpoint_path = (Path(checkpoint_dir) / "campaign.ckpt"
                       if checkpoint_dir is not None else None)
    fingerprint = None
    if checkpoint_path is not None:
        fingerprint = canonical_key({
            "fleet": fleet.to_dict(),
            "segments": [(s.duration_s, s.speed_mps, s.pressure_pa,
                          s.temperature_k, s.interpolate)
                         for s in base_profile.segments],
            "total_steps": total_steps,
            "record_every_n": every,
            "numerics": resolve_numerics(numerics),
            "chunk_size": int(chunk_size),
        })
    restored = None
    if resume:
        if checkpoint_path is None:
            raise ConfigurationError(
                "resume=True requires checkpoint_dir (the campaign "
                "checkpoint to pick up)")
        restored = load_checkpoint(checkpoint_path, expect_kind="batch")
        if restored.meta.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint {checkpoint_path} was taken under a different "
                f"campaign configuration (fleet/profile/cadence/numerics); "
                f"refusing to resume", reason="mismatch")

    with get_tracer().span("station.campaign", n_monitors=len(rigs),
                           n_groups=len(exec_groups),
                           duration_s=horizon_s):
        group_reports = []
        blocks = []
        indices = []
        # Completed groups travel inside the checkpoint; groups the
        # crash never reached re-materialize deterministically from
        # their seeds, so only the in-flight engine rides the artifact.
        completed = list(restored.meta["completed"]) if restored else []
        current = restored.meta["current"] if restored else None
        for gi, group in enumerate(exec_groups.values()):
            scenario = group["scenario"]
            if gi < len(completed):
                entry = completed[gi]
                blocks.append(entry["block"])
                indices.append(list(group["positions"]))
                group_reports.append(entry["report"])
                continue
            profile = ScenarioProfile(base_profile, scenario.events)
            # Window boundaries at the event edges, as absolute steps
            # (the same rounding used to label window activity below —
            # edge times carry float dust from fraction-of-horizon
            # placements, so everything compares in step space).
            cuts = {0, total_steps}
            edges = []
            for event in scenario.events:
                start = int(round(event.at_s / dt))
                end = int(round((event.at_s + event.duration_s) / dt))
                edges.append((event.kind, start, end))
                for step in (start, end):
                    if 0 < step < total_steps:
                        cuts.add(step)
            bounds = sorted(cuts)
            if current is not None and gi == len(completed):
                engine = restored.engine
                windows = list(current["windows"])
                window_rows = list(current["window_rows"])
                first_window = current["next_window"]
                current = None
            else:
                engine = BatchEngine(group["rigs"], chunk_size=chunk_size,
                                     numerics=numerics)
                windows = []
                window_rows = []
                first_window = 0
            for wi in range(first_window, len(bounds) - 1):
                lo, hi = bounds[wi], bounds[wi + 1]
                rows = engine.advance(profile, hi - lo,
                                      record_every_n=every)
                active = sorted({kind for kind, start, end in edges
                                 if start < hi and end > lo})
                window_rows.append(rows)
                windows.append({
                    "start_s": lo * dt, "end_s": hi * dt,
                    "active": active,
                    "means": _window_means(rows),
                })
                if checkpoint_path is not None and wi < len(bounds) - 2:
                    _write_campaign_checkpoint(
                        engine, checkpoint_path,
                        meta={"fingerprint": fingerprint,
                              "completed": completed,
                              "current": {"windows": windows,
                                          "window_rows": window_rows,
                                          "next_window": wi + 1}})
            baseline_means = windows[0]["means"]
            for window in windows:
                window["deltas"] = {
                    name: window["means"][name] - baseline_means[name]
                    for name in window["means"]}
            merged = RunResult.concat(window_rows, axis="time") \
                if len(window_rows) > 1 else window_rows[0]
            blocks.append(merged)
            indices.append(group["positions"])
            report = {
                "scenario": scenario.name,
                "config_key": group["config_key"],
                "positions": list(group["positions"]),
                "events": [event.to_dict()
                           for event in scenario.events],
                "windows": windows,
            }
            group_reports.append(report)
            if checkpoint_path is not None and gi < len(exec_groups) - 1:
                completed.append({"report": report, "block": merged})
                _write_campaign_checkpoint(
                    engine, checkpoint_path,
                    meta={"fingerprint": fingerprint,
                          "completed": completed,
                          "current": None})
        if len(blocks) == 1 and indices[0] == list(range(len(rigs))):
            result = blocks[0]
        else:
            result = RunResult.concat(blocks, axis="fleet",
                                      indices=indices)
        result._provenance = [
            (_exec_label(group_reports, pos),
             _rank_in_group(group_reports, pos))
            for pos in range(len(rigs))]

    registry = get_registry()
    if registry.enabled:
        registry.counter("station.campaign.runs").inc()
        registry.gauge("station.campaign.groups").set(len(exec_groups))
    get_event_log().emit("station.campaign", n_monitors=len(rigs),
                         n_groups=len(exec_groups), duration_s=horizon_s)

    if checkpoint_path is not None:
        checkpoint_path.unlink(missing_ok=True)
    day_reports = _day_rollups(result, horizon_s, days)
    return CampaignReport(result=result, groups=group_reports,
                          days=day_reports, duration_s=horizon_s,
                          record_every_n=every)


def _exec_label(group_reports: list[dict], pos: int) -> str:
    """``config_key:scenario`` label of the group owning fleet row ``pos``."""
    for group in group_reports:
        if pos in group["positions"]:
            return f"{group['config_key']}:{group['scenario']}"
    raise ConfigurationError(f"fleet position {pos} is in no group")


def _rank_in_group(group_reports: list[dict], pos: int) -> int:
    """Row index of fleet position ``pos`` inside its execution group."""
    for group in group_reports:
        if pos in group["positions"]:
            return group["positions"].index(pos)
    raise ConfigurationError(f"fleet position {pos} is in no group")


def _day_rollups(result, horizon_s: float, days: int) -> list[dict]:
    """Pooled ``run.*`` means per simulated day of the campaign."""
    time_s = np.asarray(result.time_s, dtype=float)
    if time_s.size == 0 or days < 1:
        return []
    day_span = horizon_s / days
    rollups = []
    for day in range(days):
        lo, hi = day * day_span, (day + 1) * day_span
        mask = (time_s > lo) & (time_s <= hi + 1e-12)
        if not mask.any():
            continue
        day_means = {}
        for name in ("true_speed_mps", "reference_mps", "measured_mps",
                     "pressure_pa", "temperature_k", "bubble_coverage"):
            field_rows = np.asarray(getattr(result, name), dtype=float)
            day_means[f"run.{name}"] = float(field_rows[:, mask].mean())
        rollups.append({"day": day, "start_s": lo, "end_s": hi,
                        "means": day_means})
    return rollups
