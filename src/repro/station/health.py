"""Per-rig fleet health scoring (the live-plane "fleet intelligence" layer).

Fuses the conditioning-stack fault signals — the one-sided CUSUM from
:mod:`repro.conditioning.leak_detect`, the coverage/drift thresholds
from :mod:`repro.conditioning.diagnostics` and the excess-volume
bookkeeping of :class:`repro.conditioning.totaliser.VolumeTotaliser` —
into a single [0, 1] health score per rig, streamable window-by-window
so a resident :class:`~repro.service.FleetService` can publish it live.

The score is *measured*, not heuristic: :func:`evaluate_scores` is a
Mann-Whitney ROC/AUC harness, and the test suite drives it with the
labeled fault injectors from :func:`repro.station.run_campaign`
(tank/slab leaks, freeze, CaCO3 episodes) so separation from clean rigs
is pinned numerically.

Residuals are taken against a *fleet reference* — by default the
cross-sectional median trace of the cohort — which cancels shared
demand/diurnal structure and leaves per-rig anomalies.  With at least
half the cohort healthy the median is robust to the faulty rigs.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.conditioning.diagnostics import HealthStatus
from repro.conditioning.leak_detect import CusumDetector
from repro.conditioning.totaliser import VolumeTotaliser
from repro.errors import ConfigurationError

__all__ = ["RigHealthTracker", "score_fleet", "fleet_reference", "evaluate_scores"]


class RigHealthTracker:
    """Streaming health score for one rig.

    Feed windows of decimated trace rows (plus the matching fleet
    reference rows) through :meth:`update`; read :meth:`score`,
    :meth:`components` and :meth:`status` at any point.  Components are
    each normalized to [0, 1] and fused with a noisy-OR, so any single
    saturated signal drives the score to 1 while small correlated
    evidence still accumulates:

    ``leak``
        One-sided CUSUM on the speed residual vs the fleet reference
        (:class:`~repro.conditioning.leak_detect.CusumDetector`),
        normalized by ``leak_sensitivity_mps`` x elapsed time — a
        persistent excess draw above the allowance saturates it.
    ``draw``
        Unaccounted volume: excess residual flow integrated by a
        :class:`~repro.conditioning.totaliser.VolumeTotaliser` as a
        fraction of the reference throughput.
    ``pressure``
        Mean supply-pressure sag below the fleet reference (slab leaks
        depressurize the loop; scale ``pressure_scale_pa``).
    ``thermal``
        Mean absolute water-temperature anomaly vs the fleet reference
        (freeze events and CaCO3-favouring warm episodes; scale
        ``thermal_scale_k``).
    ``loop``
        Worst bubble coverage seen, against the
        :class:`~repro.conditioning.diagnostics.LoopHealthMonitor`
        convention (``coverage_limit`` degraded, 3x for fault).
    """

    def __init__(self, *,
                 drift_mps: float = 0.005,
                 leak_sensitivity_mps: float = 0.01,
                 draw_fraction: float = 0.02,
                 pressure_scale_pa: float = 5e3,
                 thermal_scale_k: float = 4.0,
                 thermal_deadband_k: float = 1.0,
                 coverage_limit: float = 0.05,
                 pipe_diameter_m: float = 0.05,
                 baseline_s: float = 1.0,
                 degraded_at: float = 0.3,
                 fault_at: float = 0.8) -> None:
        if leak_sensitivity_mps <= 0.0 or draw_fraction <= 0.0:
            raise ConfigurationError(
                "leak_sensitivity_mps and draw_fraction must be > 0")
        if not 0.0 < degraded_at < fault_at <= 1.0:
            raise ConfigurationError(
                "need 0 < degraded_at < fault_at <= 1")
        self.leak_sensitivity_mps = leak_sensitivity_mps
        self.draw_fraction = draw_fraction
        self.pressure_scale_pa = pressure_scale_pa
        self.thermal_scale_k = thermal_scale_k
        self.thermal_deadband_k = thermal_deadband_k
        self.coverage_limit = coverage_limit
        self.degraded_at = degraded_at
        self.fault_at = fault_at
        self.drift_mps = drift_mps
        # The CUSUM runs on dt-weighted residuals with the drift
        # allowance already subtracted (in m/s, *before* the dt
        # weighting), so its statistic has units of metres and is
        # invariant under decimation; the detector's own per-element
        # drift would double-subtract, hence 0.  Threshold is irrelevant
        # here (we read the statistic, not the alarm bit).
        self._cusum = CusumDetector(drift=0.0, threshold=1.0)
        self._excess = VolumeTotaliser(pipe_diameter_m=pipe_diameter_m)
        self._reference = VolumeTotaliser(pipe_diameter_m=pipe_diameter_m)
        self._elapsed_s = 0.0
        self._scored_s = 0.0  # post-baseline time the leak signals cover
        self._cusum_peak = 0.0
        self._sag_integral_pa_s = 0.0
        self._thermal_integral_k_s = 0.0
        self._worst_coverage = 0.0
        self._windows = 0
        # Per-meter baseline learning: the first ``baseline_s`` of
        # residuals calibrate this rig's persistent *gain* vs the fleet
        # reference (meter character, fouling state scale with flow, so
        # the bias is multiplicative, not an offset), plus a pressure
        # offset.  Only changes relative to the rig's own normal count
        # as anomalies afterwards.
        self.baseline_s = float(baseline_s)
        self._baseline_gain: float | None = None
        self._baseline_pa: float | None = None
        self._warm_speed: deque[float] = deque(maxlen=1024)
        self._warm_press: deque[float] = deque(maxlen=1024)

    @property
    def elapsed_s(self) -> float:
        """Total trace time consumed so far [s]."""
        return self._elapsed_s

    @property
    def windows(self) -> int:
        """Number of update() calls consumed so far."""
        return self._windows

    def update(self, *, dt_s: float,
               measured_mps: np.ndarray,
               reference_mps: np.ndarray,
               pressure_pa: np.ndarray | None = None,
               reference_pa: np.ndarray | None = None,
               temperature_k: np.ndarray | None = None,
               reference_k: np.ndarray | None = None,
               bubble_coverage: np.ndarray | None = None) -> float:
        """Consume one decimated window for this rig; returns the new score.

        ``dt_s`` is the tick spacing of the (decimated) rows.
        ``measured_mps`` is the rig's own trace; ``reference_mps`` is the
        fleet reference over the same ticks (see :func:`fleet_reference`).
        Pressure/temperature/coverage channels are optional — omitted
        channels simply contribute nothing.
        """
        if dt_s <= 0.0:
            raise ConfigurationError("dt_s must be > 0")
        measured = np.asarray(measured_mps, dtype=np.float64).ravel()
        reference = np.asarray(reference_mps, dtype=np.float64).ravel()
        if measured.shape != reference.shape:
            raise ConfigurationError("measured/reference shape mismatch")
        if measured.size == 0:
            return self.score()
        self._windows += 1
        self._elapsed_s += measured.size * dt_s
        window_s = measured.size * dt_s
        residual = np.abs(measured) - np.abs(reference)
        p_res = None
        if pressure_pa is not None and reference_pa is not None:
            p_res = (np.asarray(reference_pa, dtype=np.float64).ravel()
                     - np.asarray(pressure_pa, dtype=np.float64).ravel())
        if self._baseline_gain is None:
            # Warmup: learn this rig's persistent *relative* bias vs the
            # fleet reference before scoring leak-type signals.  Meter
            # bias is multiplicative (a gain error scales with flow), so
            # the warmup collects residual/reference ratios — an offset
            # baseline learned at one demand level would mis-subtract as
            # soon as the diurnal demand moves.  The floor keeps
            # near-stagnant ticks from blowing the ratio up.
            floor = np.maximum(np.abs(reference), 0.05)
            self._warm_speed.extend((residual / floor).tolist())
            if p_res is not None:
                self._warm_press.extend(p_res.tolist())
            if self._elapsed_s >= self.baseline_s:
                self._baseline_gain = (float(np.median(self._warm_speed))
                                       if self._warm_speed else 0.0)
                self._baseline_pa = (float(np.median(self._warm_press))
                                     if self._warm_press else 0.0)
                self._warm_speed.clear()
                self._warm_press.clear()
        else:
            self._scored_s += window_s
            adjusted = residual - self._baseline_gain * np.abs(reference)
            # Leak CUSUM runs on the drift-discounted residual scaled by
            # dt so the statistic has units of metres (speed x time)
            # independent of decimation.
            peak = self._cusum.update_block(
                (adjusted - self.drift_mps) * dt_s)
            self._cusum_peak = max(self._cusum_peak, peak)
            # Unaccounted draw: one-sided means of the residual would
            # count symmetric inter-rig noise as a leak, so the negative
            # lobe is subtracted — zero-mean noise cancels, a persistent
            # positive shift survives.  The totaliser is linear in
            # speed x dt, so one net-mean call per window integrates it
            # exactly.
            positive = np.maximum(adjusted - self.drift_mps, 0.0).mean()
            negative = np.maximum(-adjusted - self.drift_mps, 0.0).mean()
            excess = max(0.0, float(positive - negative))
            self._excess.accumulate(excess, window_s)
            self._reference.accumulate(float(np.abs(reference).mean()),
                                       window_s)
            if p_res is not None:
                p_adj = p_res - (self._baseline_pa or 0.0)
                sag = max(0.0, float(np.maximum(p_adj, 0.0).mean()
                                     - np.maximum(-p_adj, 0.0).mean()))
                self._sag_integral_pa_s += sag * window_s
        if temperature_k is not None and reference_k is not None:
            anomaly = np.abs(np.asarray(temperature_k, dtype=np.float64).ravel()
                             - np.asarray(reference_k, dtype=np.float64).ravel())
            shifted = np.maximum(anomaly - self.thermal_deadband_k, 0.0)
            self._thermal_integral_k_s += float(shifted.sum()) * dt_s
        if bubble_coverage is not None:
            cov = np.asarray(bubble_coverage, dtype=np.float64)
            if cov.size:
                self._worst_coverage = max(self._worst_coverage,
                                           float(cov.max()))
        return self.score()

    def components(self) -> dict:
        """Per-signal [0, 1] contributions (keys: leak/draw/pressure/thermal/loop)."""
        if self._elapsed_s <= 0.0:
            return {"leak": 0.0, "draw": 0.0, "pressure": 0.0,
                    "thermal": 0.0, "loop": 0.0}
        scored = self._scored_s
        leak = (0.0 if scored <= 0.0 else
                min(1.0, self._cusum.statistic
                    / (self.leak_sensitivity_mps * scored)))
        ref_m3 = self._reference.forward_m3
        draw = min(1.0, self._excess.forward_m3
                   / (self.draw_fraction * ref_m3 + 1e-12))
        pressure = (0.0 if scored <= 0.0 else
                    min(1.0, (self._sag_integral_pa_s / scored)
                        / self.pressure_scale_pa))
        thermal = min(1.0, (self._thermal_integral_k_s / self._elapsed_s)
                      / self.thermal_scale_k)
        loop = min(1.0, self._worst_coverage / (3.0 * self.coverage_limit))
        return {"leak": leak, "draw": draw, "pressure": pressure,
                "thermal": thermal, "loop": loop}

    def score(self) -> float:
        """Fused [0, 1] health score (0 healthy, 1 faulted): noisy-OR of components."""
        prod = 1.0
        for value in self.components().values():
            prod *= 1.0 - value
        return 1.0 - prod

    def status(self) -> HealthStatus:
        """Map the fused score onto the diagnostics HealthStatus ladder."""
        score = self.score()
        if score >= self.fault_at:
            return HealthStatus.FAULT
        if score >= self.degraded_at:
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY

    def report(self) -> dict:
        """JSON-safe summary: score, status, components, elapsed, windows."""
        return {
            "score": self.score(),
            "status": self.status().name.lower(),
            "components": self.components(),
            "elapsed_s": self._elapsed_s,
            "windows": self._windows,
        }


def fleet_reference(result, field: str = "measured_mps") -> np.ndarray:
    """Cross-sectional fleet reference trace for one stacked field.

    The per-tick median across monitors for fleets of >= 3 rows — robust
    to a faulty minority — falling back to the per-tick mean for tiny
    fleets where a median of two is no more robust.
    """
    stacked = np.asarray(getattr(result, field), dtype=np.float64)
    if stacked.ndim != 2:
        raise ConfigurationError(f"field {field!r} is not a stacked trace")
    if stacked.shape[0] >= 3:
        return np.median(stacked, axis=0)
    return stacked.mean(axis=0)


def score_fleet(result, *, labels=None, **tracker_kwargs) -> list[dict]:
    """Score every rig in a RunResult against the fleet reference.

    Returns one dict per monitor row: ``rig``, ``score``, ``status``,
    ``components`` (plus ``label`` when ``labels`` is given — any
    per-rig annotation, e.g. the scenario tag used to build it).
    """
    n_ticks = len(result.time_s)
    if n_ticks < 2:
        raise ConfigurationError("need at least 2 record ticks to score")
    dt_s = float(np.median(np.diff(result.time_s)))
    if dt_s <= 0.0:
        raise ConfigurationError("time_s must be strictly increasing")
    if labels is not None and len(labels) != result.n_monitors:
        raise ConfigurationError("labels length must match n_monitors")
    ref_speed = fleet_reference(result, "measured_mps")
    ref_press = fleet_reference(result, "pressure_pa")
    ref_temp = fleet_reference(result, "temperature_k")
    out = []
    for rig in range(result.n_monitors):
        tracker = RigHealthTracker(**tracker_kwargs)
        # Feed the trace in windows a quarter of the baseline period
        # long, so the per-meter baseline warmup behaves the same as it
        # does under the streaming service's tick cadence.
        step = max(1, int(round(tracker.baseline_s / (4.0 * dt_s))))
        for lo in range(0, n_ticks, step):
            hi = min(n_ticks, lo + step)
            tracker.update(
                dt_s=dt_s,
                measured_mps=result.measured_mps[rig, lo:hi],
                reference_mps=ref_speed[lo:hi],
                pressure_pa=result.pressure_pa[rig, lo:hi],
                reference_pa=ref_press[lo:hi],
                temperature_k=result.temperature_k[rig, lo:hi],
                reference_k=ref_temp[lo:hi],
                bubble_coverage=result.bubble_coverage[rig, lo:hi],
            )
        row = tracker.report()
        row["rig"] = rig
        if labels is not None:
            row["label"] = labels[rig]
        out.append(row)
    return out


def evaluate_scores(labels, scores) -> dict:
    """ROC/AUC evaluation of a health score against binary fault labels.

    ``labels`` are truthy for injected-fault rigs; ``scores`` the fused
    health scores.  AUC is the Mann-Whitney statistic (midranks for
    ties), identical to the area under the empirical ROC curve, which is
    returned as ``roc``: (fpr, tpr) points for thresholds descending
    through the unique scores.
    """
    y = np.asarray([1 if bool(v) else 0 for v in labels], dtype=np.int64)
    s = np.asarray(list(scores), dtype=np.float64)
    if y.shape != s.shape or y.ndim != 1:
        raise ConfigurationError("labels and scores must be equal-length 1-D")
    n_pos = int(y.sum())
    n_neg = int(y.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ConfigurationError("need at least one positive and one negative")
    # Midranks: average rank within tied groups.
    order = np.argsort(s, kind="stable")
    ranks = np.empty(s.size, dtype=np.float64)
    sorted_s = s[order]
    i = 0
    while i < s.size:
        j = i
        while j + 1 < s.size and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    auc = (float(ranks[y == 1].sum()) - n_pos * (n_pos + 1) / 2.0) \
        / (n_pos * n_neg)
    # Empirical ROC: sweep thresholds from +inf down through unique scores.
    points = [(0.0, 0.0)]
    for thr in np.unique(s)[::-1]:
        pred = s >= thr
        tpr = float((pred & (y == 1)).sum()) / n_pos
        fpr = float((pred & (y == 0)).sum()) / n_neg
        points.append((fpr, tpr))
    if points[-1] != (1.0, 1.0):
        points.append((1.0, 1.0))
    return {"auc": auc, "roc": points, "n_pos": n_pos, "n_neg": n_neg}
