"""Test-rig orchestration: profile → line → sensor-under-test + reference.

Runs a :class:`~repro.station.profiles.Profile` through the
:class:`~repro.station.line.WaterLine`, steps the monitor-under-test and
the Promag 50 reference synchronously, and records decimated traces.
Also hosts :func:`run_calibration` — the §4 procedure that produced the
paper's calibration.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CalibrationError, ConfigurationError
from repro.observability import get_tracer
from repro.baselines.base import FlowMeter
from repro.baselines.promag import Promag50
from repro.conditioning.calibration import CalibrationProcedure, FlowCalibration
from repro.conditioning.cta import CTAController
from repro.conditioning.direction import DirectionDetector
from repro.conditioning.monitor import WaterFlowMonitor
from repro.station.line import WaterLine
from repro.station.profiles import Profile

__all__ = ["RigRecord", "TestRig", "run_calibration"]


@dataclass
class RigRecord:
    """Synchronous decimated traces from one rig run (numpy arrays)."""

    time_s: np.ndarray
    true_speed_mps: np.ndarray
    reference_mps: np.ndarray
    measured_mps: np.ndarray
    direction: np.ndarray
    pressure_pa: np.ndarray
    temperature_k: np.ndarray
    bubble_coverage: np.ndarray

    def __len__(self) -> int:
        return len(self.time_s)

    FIELDS = ("time_s", "true_speed_mps", "reference_mps", "measured_mps",
              "direction", "pressure_pa", "temperature_k", "bubble_coverage")

    def steady_window(self, t_from_s: float, t_to_s: float) -> "RigRecord":
        """Slice the record to a time window (for per-dwell statistics)."""
        mask = (self.time_s >= t_from_s) & (self.time_s < t_to_s)
        return RigRecord(**{
            name: getattr(self, name)[mask] for name in self.FIELDS
        })

    def summary(self) -> dict:
        """Per-trace statistics: ``{field: {mean, std, min, max}}``.

        Empty records yield NaN statistics rather than raising, so the
        method is safe on freshly sliced windows.
        """
        out: dict[str, dict[str, float]] = {}
        for name in self.FIELDS:
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.size == 0:
                stats = {k: float("nan") for k in ("mean", "std", "min", "max")}
            else:
                stats = {
                    "mean": float(arr.mean()),
                    "std": float(arr.std()),
                    "min": float(arr.min()),
                    "max": float(arr.max()),
                }
            out[name] = stats
        return out

    def to_csv(self, path) -> None:
        """Export the traces as a CSV file with one column per field."""
        header = ",".join(self.FIELDS)
        data = np.column_stack([
            np.asarray(getattr(self, name), dtype=float)
            for name in self.FIELDS
        ])
        np.savetxt(path, data, delimiter=",", header=header, comments="")

    def save(self, path) -> None:
        """Persist the traces to an ``.npz`` archive."""
        np.savez_compressed(path, **{
            name: getattr(self, name) for name in self.FIELDS
        })

    @classmethod
    def load(cls, path) -> "RigRecord":
        """Restore traces written by :meth:`save`.

        Raises
        ------
        ConfigurationError
            If the archive is missing any expected trace.
        """
        with np.load(path) as data:
            missing = [name for name in cls.FIELDS if name not in data]
            if missing:
                raise ConfigurationError(
                    f"record archive missing traces {missing}")
            return cls(**{name: data[name] for name in cls.FIELDS})

    @classmethod
    def concat(cls, parts: list["RigRecord"]) -> "RigRecord":
        """Stitch consecutive windows (from :meth:`TestRig.advance`)
        back into one record, trace by trace.

        Raises
        ------
        ConfigurationError
            If ``parts`` is empty.
        """
        if not parts:
            raise ConfigurationError("RigRecord.concat needs at least one part")
        traces = {}
        for name in cls.FIELDS:
            arrays = [np.asarray(getattr(part, name)) for part in parts]
            # A window too short to cross a recording boundary yields an
            # empty list whose default float dtype would promote integer
            # traces (direction); drop empties unless all are empty.
            filled = [arr for arr in arrays if arr.size] or arrays[:1]
            traces[name] = np.concatenate(filled)
        return cls(**traces)


class TestRig:
    """One measurement line with a monitor-under-test and a reference."""

    def __init__(self, monitor: WaterFlowMonitor, line: WaterLine | None = None,
                 reference: FlowMeter | None = None) -> None:
        self.monitor = monitor
        self.line = line or WaterLine(
            turbulence_multiplier=monitor.sensor.housing.turbulence_multiplier())
        self.reference = reference or Promag50()

    def run(self, profile: Profile, *args,
            snapshot_s: float | None = None,
            collect: str = "result",
            record_every_n: int | None = None) -> RigRecord | dict:
        """Execute a profile; returns decimated synchronous traces.

        This is the unified run surface (shared with
        :meth:`repro.runtime.session.Session.run` and
        :meth:`repro.station.fleet.MonitoredNetwork.run`): everything
        after ``profile`` is keyword-only.

        Parameters
        ----------
        profile:
            Line profile to execute.
        snapshot_s:
            Seconds between recorded points.  Mutually exclusive with
            the legacy ``record_every_n`` (loop ticks between points,
            default 20).
        collect:
            ``"result"`` returns the :class:`RigRecord`; ``"summary"``
            returns :meth:`RigRecord.summary`.

        Raises
        ------
        ConfigurationError
            On an empty profile or non-positive decimation.

        .. deprecated:: 1.1
            Positional ``record_every_n`` still works but emits
            :class:`FutureWarning`; pass it by keyword.  The positional
            form will be removed in 2.0.
        """
        # Local import: repro.runtime.session imports this module.
        from repro.runtime.session import resolve_record_every_n

        if args:
            warnings.warn(
                "positional record_every_n is deprecated and will be "
                "removed in repro 2.0; TestRig.run is keyword-only after "
                "profile — pass record_every_n=... (or snapshot_s=...)",
                FutureWarning, stacklevel=2)
            if len(args) > 1:
                raise ConfigurationError(
                    f"TestRig.run takes at most profile and record_every_n "
                    f"positionally (got {1 + len(args)})")
            if record_every_n is not None:
                raise ConfigurationError(
                    "record_every_n given both positionally and by keyword")
            record_every_n = args[0]
        if collect not in ("result", "summary"):
            raise ConfigurationError(
                f"unknown collect {collect!r}; use 'result' or 'summary'")
        dt = self.monitor.platform.dt_s
        record_every_n = resolve_record_every_n(dt, snapshot_s, record_every_n)
        if record_every_n < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        with get_tracer().span("rig.run", duration_s=profile.duration_s):
            record = self._run(profile, record_every_n, dt)
        if collect == "summary":
            return record.summary()
        return record

    def _run(self, profile: Profile, record_every_n: int,
             dt: float) -> RigRecord:
        steps = int(round(profile.duration_s / dt))
        if steps < 1:
            raise ConfigurationError("profile shorter than one loop tick")
        return self._advance(profile, 0, steps, record_every_n, dt)

    @property
    def offset(self) -> int:
        """Absolute loop tick the next :meth:`advance` resumes from.

        Zero on a fresh rig; advances by ``steps`` per :meth:`advance`
        call.  Checkpoints taken between windows (pickling the rig)
        carry this offset, which is what makes a resumed run evaluate
        profile setpoints at the same absolute times — and record the
        same decimation phase — as an uninterrupted one.
        """
        return getattr(self, "_advance_offset", 0)

    def advance(self, profile: Profile, steps: int,
                record_every_n: int = 20) -> RigRecord:
        """Advance ``steps`` loop ticks through ``profile`` and return
        the window's decimated traces.

        The scalar sibling of :meth:`repro.runtime.BatchEngine.advance`
        (the PR 6 contract): consecutive windows stitched with
        :meth:`RigRecord.concat` are bit-identical to one uninterrupted
        :meth:`run` of the same total length — setpoints are evaluated
        at absolute step times and the ``record_every_n`` decimation
        phase carries across window boundaries.

        Raises
        ------
        ConfigurationError
            On non-positive ``steps`` or ``record_every_n``.
        """
        if steps < 1:
            raise ConfigurationError("advance needs at least one step")
        if record_every_n < 1:
            raise ConfigurationError("record_every_n must be >= 1")
        dt = self.monitor.platform.dt_s
        start = self.offset
        record = self._advance(profile, start, steps, record_every_n, dt)
        self._advance_offset = start + steps
        return record

    def _advance(self, profile: Profile, start: int, steps: int,
                 record_every_n: int, dt: float) -> RigRecord:
        t_buf, v_true, v_ref, v_meas = [], [], [], []
        direction, pressure, temperature, coverage = [], [], [], []
        for i in range(start, start + steps):
            t = i * dt
            v_set, p_set, t_set = profile.setpoints(t)
            state = self.line.step(dt, v_set, p_set, t_set)
            conditions = self.line.conditions(state)
            measurement = self.monitor.step(conditions)
            ref_reading = self.reference.read(state.bulk_speed_mps, dt)
            if i % record_every_n == 0:
                t_buf.append(state.time_s)
                v_true.append(state.bulk_speed_mps)
                v_ref.append(ref_reading)
                v_meas.append(measurement.speed_mps)
                direction.append(measurement.direction)
                pressure.append(state.pressure_pa)
                temperature.append(state.temperature_k)
                coverage.append(measurement.bubble_coverage)
        return RigRecord(
            time_s=np.array(t_buf),
            true_speed_mps=np.array(v_true),
            reference_mps=np.array(v_ref),
            measured_mps=np.array(v_meas),
            direction=np.array(direction),
            pressure_pa=np.array(pressure),
            temperature_k=np.array(temperature),
            bubble_coverage=np.array(coverage),
        )


def run_calibration(controller: CTAController,
                    speeds_cmps: list[float],
                    line: WaterLine | None = None,
                    reference: FlowMeter | None = None,
                    settle_s: float = 1.0,
                    average_s: float = 0.5) -> FlowCalibration:
    """The §4 calibration campaign against the reference meter.

    For each setpoint: the line is jumped to steady state, the CTA loop
    settles, then supplies and the reference reading are averaged and a
    calibration point is recorded.  Returns the fitted
    :class:`FlowCalibration`.

    Raises
    ------
    CalibrationError
        From the underlying fit when the campaign is too sparse.
    """
    if len(speeds_cmps) < 4:
        raise CalibrationError("calibration campaign needs at least 4 speeds")
    line = line or WaterLine()
    reference = reference or Promag50()
    dt = controller.platform.dt_s
    procedure = CalibrationProcedure(
        overtemperature_k=controller.config.overtemperature_k)
    rt_readings: list[float] = []
    for v_cmps in speeds_cmps:
        v_target = abs(v_cmps) * 1e-2
        line.jump_to(v_target)
        settle_steps = int(round(settle_s / dt))
        for _ in range(settle_steps):
            state = line.step(dt, v_target)
            controller.step(line.conditions(state))
            reference.read(state.bulk_speed_mps, dt)
        avg_steps = max(1, int(round(average_s / dt)))
        u_a_acc = u_b_acc = ref_acc = 0.0
        valid = 0
        for i in range(avg_steps):
            state = line.step(dt, v_target)
            tel = controller.step(line.conditions(state))
            ref_acc += reference.read(state.bulk_speed_mps, dt)
            if tel.sample_valid:
                u_a_acc += tel.supply_a_v
                u_b_acc += tel.supply_b_v
                valid += 1
                if i % 50 == 0:  # temperature anchor for compensation
                    rt = controller.read_reference_resistance(tel)
                    if rt is not None:
                        rt_readings.append(rt)
        if valid == 0:
            raise CalibrationError(
                "no valid samples during averaging (pulsed drive duty too low "
                "for the chosen average_s)")
        u_a = u_a_acc / valid
        u_b = u_b_acc / valid
        g = controller.conductance_from_supplies(u_a, u_b)
        procedure.add_point(
            reference_speed_mps=ref_acc / avg_steps,
            conductance_w_per_k=g,
            heater_asymmetry=DirectionDetector.asymmetry(u_a, u_b),
        )
    if rt_readings:
        procedure.reference_resistance_ohm = float(np.mean(rt_readings))
    return procedure.fit()
