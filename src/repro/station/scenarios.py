"""Canned experimental setups.

:func:`vinci_station` reproduces the paper's test site parameters;
:func:`build_calibrated_monitor` is the one-call entry point used by the
examples and every system bench: it builds a die, a platform and a CTA
loop, runs the §4 calibration campaign against the Promag 50, and
returns a ready :class:`~repro.conditioning.monitor.WaterFlowMonitor`.

Seeds are plumbed through :class:`numpy.random.SeedSequence`: the single
``seed`` argument spawns independent child streams for the die, the
calibration bench, and the returned rig, so no two components share (or
collide on) a raw integer seed.

Repeat builds are cheap: the fitted calibration and the sensor's
post-campaign state are memoized in a small LRU keyed by everything that
determines them, so fleet-scale callers (``repro.runtime.Session``) pay
for one campaign per distinct configuration.  Builds with a caller-owned
``housing`` bypass the cache — the assembly carries mutable state the
cache must not alias.

Underneath the LRU sits the optional disk-backed
:class:`repro.store.ArtifactStore` (``store=`` argument, or the
process-wide default from :func:`repro.store.get_default_store` /
``REPRO_STORE``): an LRU miss first consults the store — keyed by the
canonical hash of the sensor config's ``to_dict`` plus the build knobs
— and only runs the §4 campaign when the store misses too, publishing
the artifact for other workers and future processes.  Restoring from
the store is bit-identical to a fresh campaign: the same
(calibration, sensor-state snapshot) pair the LRU holds round-trips
through pickle exactly.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.baselines.promag import Promag50
from repro.observability import get_registry, get_tracer
from repro.conditioning.calibration import FlowCalibration
from repro.conditioning.cta import CTAConfig, CTAController
from repro.conditioning.monitor import MonitorConfig, WaterFlowMonitor
from repro.isif.platform import ISIFPlatform
from repro.sensor.maf import MAFConfig, MAFSensor
from repro.sensor.packaging import SensorHousing
from repro.station.line import LineConfig, WaterLine
from repro.station.rig import TestRig, run_calibration
from repro.store import canonical_key, get_default_store

__all__ = ["CalibratedSetup", "vinci_station", "build_calibrated_monitor",
           "clear_calibration_cache", "calibration_cache_stats",
           "DEFAULT_CALIBRATION_SPEEDS_CMPS"]

#: Default calibration campaign: zero (direction offset + King A) plus a
#: geometric ladder over the paper's 0-250 cm/s range.
DEFAULT_CALIBRATION_SPEEDS_CMPS = [0.0, 10.0, 25.0, 50.0, 90.0, 140.0, 200.0, 250.0]


def _child_seed(sequence: np.random.SeedSequence) -> int:
    """Collapse a spawned SeedSequence into one plain integer seed."""
    return int(sequence.generate_state(1)[0])


def vinci_station(seed: int = 2024) -> WaterLine:
    """The Tuscan test line: DN50, hard Arno-basin water, 15 °C."""
    child = np.random.SeedSequence(seed).spawn(1)[0]
    return WaterLine(LineConfig(seed=_child_seed(child)))


@dataclass
class CalibratedSetup:
    """Everything :func:`build_calibrated_monitor` produced.

    Attributes
    ----------
    monitor:
        Calibrated, ready-to-run monitoring point.
    rig:
        Test rig wrapping the monitor, the line and the reference meter.
    calibration:
        The fitted calibration (also installed in the monitor).
    """

    monitor: WaterFlowMonitor
    rig: TestRig
    calibration: FlowCalibration


#: LRU of (calibration, sensor-state snapshot) keyed by every input that
#: determines the campaign outcome.
_CALIBRATION_CACHE: "OrderedDict[tuple, tuple[FlowCalibration, dict]]" = OrderedDict()
_CALIBRATION_CACHE_MAX = 32
_CACHE_HITS = 0
_CACHE_MISSES = 0


def clear_calibration_cache() -> None:
    """Drop all memoized calibrations (test isolation / memory)."""
    global _CACHE_HITS, _CACHE_MISSES
    _CALIBRATION_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


def calibration_cache_stats() -> dict:
    """Lifetime LRU statistics: size, hits, misses and the hit rate.

    The hit/miss tallies are process-lifetime (reset by
    :func:`clear_calibration_cache`); uncacheable builds (caller-owned
    housing, ``use_cache=False``) count as misses — they paid for a
    full campaign.  A *miss* may still be served from the disk-backed
    artifact store without a campaign — the store keeps its own
    hit/miss tallies (:meth:`repro.store.ArtifactStore.stats`).
    """
    lookups = _CACHE_HITS + _CACHE_MISSES
    return {
        "size": len(_CALIBRATION_CACHE),
        "max_size": _CALIBRATION_CACHE_MAX,
        "hits": _CACHE_HITS,
        "misses": _CACHE_MISSES,
        "hit_rate": _CACHE_HITS / lookups if lookups else 0.0,
    }


def _snapshot_sensor(sensor: MAFSensor) -> dict:
    """Capture every sensor field the calibration campaign mutates."""
    return {
        "t_a": copy.deepcopy(sensor._t_a),
        "t_b": copy.deepcopy(sensor._t_b),
        "t_membrane": copy.deepcopy(sensor._t_membrane),
        "t_reference": copy.deepcopy(sensor._t_reference),
        "failed": sensor._failed,
        "cov_a": sensor.bubbles_a._coverage,
        "cov_b": sensor.bubbles_b._coverage,
        "bub_rng_a": copy.deepcopy(sensor.bubbles_a._rng.bit_generator.state),
        "bub_rng_b": copy.deepcopy(sensor.bubbles_b._rng.bit_generator.state),
        "backside_x": sensor._backside_noise._x,
        "backside_rng": copy.deepcopy(
            sensor._backside_noise._rng.bit_generator.state),
        "foul_a": sensor.fouling_a._thickness_m,
        "foul_b": sensor.fouling_b._thickness_m,
        "r_trim_a": sensor.bridge_a.r_trim_ohm,
        "r_trim_b": sensor.bridge_b.r_trim_ohm,
        "leak_a": sensor.bridge_a.leakage_conductance_s,
        "leak_b": sensor.bridge_b.leakage_conductance_s,
    }


def _restore_sensor(sensor: MAFSensor, snapshot: dict) -> None:
    """Put a freshly built sensor into the snapshotted post-campaign state.

    The fresh sensor was constructed from the same config and seed, so
    its realized tolerances already match; only the mutable state the
    campaign advanced needs to be written back.
    """
    sensor._t_a = copy.deepcopy(snapshot["t_a"])
    sensor._t_b = copy.deepcopy(snapshot["t_b"])
    sensor._t_membrane = copy.deepcopy(snapshot["t_membrane"])
    sensor._t_reference = copy.deepcopy(snapshot["t_reference"])
    sensor._failed = snapshot["failed"]
    sensor.bubbles_a._coverage = snapshot["cov_a"]
    sensor.bubbles_b._coverage = snapshot["cov_b"]
    sensor.bubbles_a._rng.bit_generator.state = copy.deepcopy(
        snapshot["bub_rng_a"])
    sensor.bubbles_b._rng.bit_generator.state = copy.deepcopy(
        snapshot["bub_rng_b"])
    sensor._backside_noise._x = snapshot["backside_x"]
    sensor._backside_noise._rng.bit_generator.state = copy.deepcopy(
        snapshot["backside_rng"])
    sensor.fouling_a._thickness_m = snapshot["foul_a"]
    sensor.fouling_b._thickness_m = snapshot["foul_b"]
    sensor.bridge_a.r_trim_ohm = snapshot["r_trim_a"]
    sensor.bridge_b.r_trim_ohm = snapshot["r_trim_b"]
    sensor.bridge_a.leakage_conductance_s = snapshot["leak_a"]
    sensor.bridge_b.leakage_conductance_s = snapshot["leak_b"]


def build_calibrated_monitor(
    seed: int = 42,
    loop_rate_hz: float = 1000.0,
    overtemperature_k: float = 5.0,
    output_bandwidth_hz: float = 0.1,
    use_pulsed_drive: bool = True,
    bit_true_adc: bool = False,
    calibration_speeds_cmps: list[float] | None = None,
    fast: bool = False,
    sensor_config: MAFConfig | None = None,
    housing: SensorHousing | None = None,
    use_cache: bool = True,
    store=None,
) -> CalibratedSetup:
    """Build, calibrate and wrap a complete monitoring point.

    Parameters
    ----------
    seed:
        Instance seed; spawned into independent child streams (die
        tolerances, calibration bench, runtime rig) via SeedSequence.
    loop_rate_hz / overtemperature_k / output_bandwidth_hz:
        Loop and estimator settings (paper defaults).
    use_pulsed_drive:
        Operate (post-calibration) with the paper's pulsed drive.
    bit_true_adc:
        Use the bit-true ΣΔ + CIC chain (slow; E13 only).
    calibration_speeds_cmps:
        Campaign setpoints; defaults to the 0-250 cm/s ladder.
    fast:
        Shorter settle/average windows — for unit tests, not benches.
    sensor_config / housing:
        Override the die or the assembly under test.
    use_cache:
        Memoize the campaign per distinct configuration (default).
        Builds with a caller-owned ``housing`` always bypass the cache.
    store:
        Disk-backed :class:`repro.store.ArtifactStore` layered under
        the in-process LRU (defaults to the process-wide store from
        :func:`repro.store.get_default_store`, if any).  Cacheable LRU
        misses consult it before recalibrating and publish the fitted
        artifact after a campaign.
    """
    (die_ss, cal_platform_ss, cal_line_ss, cal_reference_ss,
     run_platform_ss, rig_line_ss, rig_reference_ss) = \
        np.random.SeedSequence(seed).spawn(7)
    sensor_cfg = sensor_config or MAFConfig(seed=_child_seed(die_ss))
    speeds = list(calibration_speeds_cmps or DEFAULT_CALIBRATION_SPEEDS_CMPS)
    cta_cfg = CTAConfig(overtemperature_k=overtemperature_k)
    settle_s = 0.3 if fast else 1.0
    average_s = 0.2 if fast else 0.5

    sensor = MAFSensor(sensor_cfg, housing=housing)
    cacheable = use_cache and housing is None
    cache_key = (repr(sensor_cfg), seed, loop_rate_hz, overtemperature_k,
                 output_bandwidth_hz, use_pulsed_drive, bit_true_adc,
                 tuple(speeds), fast)
    cached = _CALIBRATION_CACHE.get(cache_key) if cacheable else None
    global _CACHE_HITS, _CACHE_MISSES
    registry = get_registry()
    if cached is not None:
        _CACHE_HITS += 1
        if registry.enabled:
            registry.counter("station.calibration_cache.hits").inc()
        calibration, snapshot = cached
        _CALIBRATION_CACHE.move_to_end(cache_key)
        _restore_sensor(sensor, snapshot)
    else:
        _CACHE_MISSES += 1
        if registry.enabled:
            registry.counter("station.calibration_cache.misses").inc()
        disk = (store or get_default_store()) if cacheable else None
        disk_key = canonical_key({
            "sensor": sensor_cfg.to_dict(),
            "seed": seed,
            "loop_rate_hz": loop_rate_hz,
            "overtemperature_k": overtemperature_k,
            "output_bandwidth_hz": output_bandwidth_hz,
            "use_pulsed_drive": use_pulsed_drive,
            "bit_true_adc": bit_true_adc,
            "speeds": speeds,
            "fast": fast,
        }) if disk is not None else None
        artifact = disk.get("calibration", disk_key) if disk is not None else None
        if artifact is not None:
            calibration = artifact["calibration"]
            snapshot = artifact["snapshot"]
            _restore_sensor(sensor, snapshot)
        else:
            with get_tracer().span("scenarios.calibration_campaign",
                                   seed=seed):
                cal_platform = ISIFPlatform.for_anemometer(
                    loop_rate_hz=loop_rate_hz, bit_true_adc=bit_true_adc,
                    seed=_child_seed(cal_platform_ss))
                cal_controller = CTAController(sensor, cal_platform, cta_cfg)
                line = WaterLine(LineConfig(seed=_child_seed(cal_line_ss)))
                calibration = run_calibration(
                    cal_controller, speeds, line=line,
                    reference=Promag50(seed=_child_seed(cal_reference_ss)),
                    settle_s=settle_s, average_s=average_s)
            snapshot = _snapshot_sensor(sensor)
            if disk is not None:
                disk.put("calibration", disk_key,
                         {"calibration": calibration, "snapshot": snapshot})
        if cacheable:
            _CALIBRATION_CACHE[cache_key] = (calibration, snapshot)
            while len(_CALIBRATION_CACHE) > _CALIBRATION_CACHE_MAX:
                _CALIBRATION_CACHE.popitem(last=False)

    monitor_cfg = MonitorConfig(
        loop_rate_hz=loop_rate_hz,
        cta=cta_cfg,
        output_bandwidth_hz=output_bandwidth_hz,
        use_pulsed_drive=use_pulsed_drive,
    )
    run_platform = ISIFPlatform.for_anemometer(
        loop_rate_hz=loop_rate_hz, bit_true_adc=bit_true_adc,
        seed=_child_seed(run_platform_ss))
    monitor = WaterFlowMonitor(sensor, calibration, monitor_cfg,
                               platform=run_platform)
    rig = TestRig(
        monitor,
        line=WaterLine(LineConfig(seed=_child_seed(rig_line_ss)),
                       turbulence_multiplier=sensor.housing.turbulence_multiplier()),
        reference=Promag50(seed=_child_seed(rig_reference_ss)))
    return CalibratedSetup(monitor=monitor, rig=rig, calibration=calibration)
